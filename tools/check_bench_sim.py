#!/usr/bin/env python3
"""Compare a fresh BENCH_sim.json against the committed baseline.

Usage: check_bench_sim.py BASELINE.json CURRENT.json [MAX_SLOWDOWN]

Both files are google-benchmark JSON exports (--benchmark_out_format=json).
For every benchmark present in the baseline, the current per-iteration
real_time must not exceed MAX_SLOWDOWN (default 1.3) times the baseline
value. The margin absorbs run-to-run noise on comparable hardware; a
genuine fast-path regression (lost precomputation, per-run allocation
creep) overshoots it. On CI hosts whose hardware differs materially from
the machine that recorded the baseline, loosen the gate with the
BENCH_SIM_MAX_SLOWDOWN environment variable (the positional argument, when
given, takes precedence).

Exit code 0 when every benchmark passes, 1 on any regression or missing
benchmark.
"""

import json
import os
import sys

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = TIME_UNIT_NS[b.get("time_unit", "ns")]
        out[b["name"]] = b["real_time"] * unit
    return out


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    baseline = load(argv[1])
    current = load(argv[2])
    if len(argv) > 3:
        max_slowdown = float(argv[3])
    else:
        max_slowdown = float(os.environ.get("BENCH_SIM_MAX_SLOWDOWN", "1.3"))

    if not baseline:
        print(f"error: no benchmarks in baseline {argv[1]}")
        return 1

    failed = False
    for name, base_ns in sorted(baseline.items()):
        if name not in current:
            print(f"FAIL {name}: missing from current run")
            failed = True
            continue
        cur_ns = current[name]
        ratio = cur_ns / base_ns if base_ns > 0 else float("inf")
        verdict = "ok" if ratio <= max_slowdown else "FAIL"
        print(f"{verdict:>4} {name}: baseline {base_ns:.1f} ns, "
              f"current {cur_ns:.1f} ns ({ratio:.2f}x)")
        if ratio > max_slowdown:
            failed = True

    if failed:
        print(f"perf smoke failed: slowdown above {max_slowdown:.1f}x")
        return 1
    print("perf smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
