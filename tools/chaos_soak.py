#!/usr/bin/env python3
"""Deterministic chaos soak for the mapping service's durable store.

Iterates the daemon's full crash-point matrix (`automap_cli crash-points`:
every store-write/fsync/rename instant in src/support/durable.cpp). For
each point it arms AUTOMAP_CRASH_POINT so the daemon `_exit(42)`s at that
exact instant, drives a scenario that reaches the instant, restarts the
daemon on the same store, resubmits the identical request, and asserts
the final answer is byte-identical (summary line and mapping bytes) to an
uninterrupted reference run. A crash at any persistence step must cost at
most recomputation — never a wrong answer, a wedged store, or a daemon
that refuses to start.

Scenarios by artifact kind:
  request / checkpoint / result  submit a small search; the crash fires
                                 while persisting the request, a
                                 task-boundary checkpoint, or the result.
  bucket                         same, submitted with --reuse so job
                                 completion writes an eval-cache bucket.
  tombstone                      queued-job cancel on a --workers 0
                                 daemon; the crash fires while writing
                                 the cancellation tombstone.

Usage: chaos_soak.py <path-to-automap_cli> <path-to-automap_client>
                     [--points save.result.renamed,...] [--keep]
"""

import argparse
import os
import shutil
import subprocess
import sys
import tempfile
import time

CRASH_EXIT = 42
SEARCH_FLAGS = ["--rotations", "4", "--repeats", "2"]
STEP_TIMEOUT_S = 120


def log(message):
    print(message, flush=True)


def fail(message, *logs):
    sys.stderr.write("FAIL: %s\n" % message)
    for path in logs:
        if path and os.path.exists(path):
            sys.stderr.write("---- %s ----\n" % path)
            sys.stderr.write(open(path, errors="replace").read())
    sys.exit(1)


class Daemon:
    """One daemon process on a given socket/store, optionally armed."""

    def __init__(self, cli, sock, store, log_path, crash_point=None,
                 workers=1):
        self.sock = sock
        self.log_path = log_path
        env = dict(os.environ)
        env.pop("AUTOMAP_CRASH_POINT", None)
        if crash_point:
            env["AUTOMAP_CRASH_POINT"] = crash_point
        self.log_file = open(log_path, "ab")
        self.proc = subprocess.Popen(
            [cli, "serve", "--socket", sock, "--store", store,
             "--eval-threads", "2", "--workers", str(workers)],
            stdout=self.log_file, stderr=subprocess.STDOUT, env=env)

    def wait_ready(self, client):
        deadline = time.time() + STEP_TIMEOUT_S
        while time.time() < deadline:
            if self.proc.poll() is not None:
                fail("daemon exited before becoming ready (rc %s)"
                     % self.proc.returncode, self.log_path)
            ping = subprocess.run(
                [client, "ping", "--socket", self.sock],
                capture_output=True)
            if ping.returncode == 0:
                return
            time.sleep(0.05)
        fail("daemon did not come up", self.log_path)

    def wait_exit(self, timeout_s):
        """Returns the exit code, or None if still running after timeout."""
        deadline = time.time() + timeout_s
        while time.time() < deadline:
            rc = self.proc.poll()
            if rc is not None:
                self.log_file.close()
                return rc
            time.sleep(0.02)
        return None

    def shutdown(self, client):
        subprocess.run([client, "shutdown", "--socket", self.sock],
                       capture_output=True)
        rc = self.wait_exit(STEP_TIMEOUT_S)
        if rc is None:
            self.kill()
            fail("daemon ignored shutdown", self.log_path)
        if rc != 0:
            fail("daemon shutdown rc %d" % rc, self.log_path)

    def kill(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()
        self.log_file.close()


def best_line(text_path):
    for line in open(text_path, errors="replace"):
        if "best mapping" in line:
            return line
    fail("no 'best mapping' line in %s" % text_path, text_path)


def submit_args(client, sock, machine, graph, reuse, wait_to=None):
    cmd = [client, "submit", machine, graph, "--socket", sock]
    cmd += SEARCH_FLAGS
    if reuse:
        cmd.append("--reuse")
    if wait_to:
        cmd += ["--wait", "-o", wait_to]
    return cmd


class Soak:
    def __init__(self, cli, client, workdir):
        self.cli = cli
        self.client = client
        self.workdir = workdir
        self.machine = os.path.join(workdir, "m.machine")
        self.graph = os.path.join(workdir, "g.graph")
        subprocess.run([cli, "export-machine", "shepard", "2", self.machine],
                       check=True, capture_output=True)
        subprocess.run([cli, "export-app", "stencil", "2", "1", self.graph],
                       check=True, capture_output=True)
        self.n_scenarios = 0

    def scenario_dir(self, name):
        path = os.path.join(self.workdir, name.replace(".", "_"))
        os.makedirs(path, exist_ok=True)
        return path

    def reference(self, reuse):
        """One uninterrupted daemon run — the byte-identity yardstick."""
        name = "ref-reuse" if reuse else "ref-plain"
        d = self.scenario_dir(name)
        sock = os.path.join(d, "s.sock")
        daemon = Daemon(self.cli, sock, os.path.join(d, "store"),
                        os.path.join(d, "serve.log"))
        daemon.wait_ready(self.client)
        mapping = os.path.join(d, "ref.mapping")
        out = os.path.join(d, "ref.txt")
        result = subprocess.run(
            submit_args(self.client, sock, self.machine, self.graph, reuse,
                        wait_to=mapping),
            stdout=open(out, "wb"), stderr=subprocess.STDOUT,
            timeout=STEP_TIMEOUT_S)
        if result.returncode != 0:
            fail("reference submit failed", out, daemon.log_path)
        daemon.shutdown(self.client)
        return {"line": best_line(out),
                "mapping": open(mapping, "rb").read()}

    def check_final(self, sock, ref, d, log_path):
        """Resubmits on the restarted daemon and compares to `ref`."""
        mapping = os.path.join(d, "final.mapping")
        out = os.path.join(d, "final.txt")
        reuse = ref is self.ref_reuse
        result = subprocess.run(
            submit_args(self.client, sock, self.machine, self.graph, reuse,
                        wait_to=mapping),
            stdout=open(out, "wb"), stderr=subprocess.STDOUT,
            timeout=STEP_TIMEOUT_S)
        if result.returncode != 0:
            fail("post-restart submit failed", out, log_path)
        if best_line(out) != ref["line"]:
            fail("summary line diverged after crash/restart:\n  got  %r\n"
                 "  want %r" % (best_line(out), ref["line"]), log_path)
        if open(mapping, "rb").read() != ref["mapping"]:
            fail("mapping bytes diverged after crash/restart", log_path)

    def run_submit_scenario(self, point, ref):
        """Crash while persisting request/checkpoint/result/bucket."""
        d = self.scenario_dir(point)
        sock = os.path.join(d, "s.sock")
        store = os.path.join(d, "store")
        log1 = os.path.join(d, "serve1.log")
        daemon = Daemon(self.cli, sock, store, log1, crash_point=point)
        daemon.wait_ready(self.client)
        reuse = ref is self.ref_reuse
        # The submit may die with the daemon (request-kind points fire
        # inside handle_submit) — any exit code is acceptable here.
        subprocess.run(
            submit_args(self.client, sock, self.machine, self.graph, reuse),
            capture_output=True, timeout=STEP_TIMEOUT_S)
        rc = daemon.wait_exit(STEP_TIMEOUT_S)
        if rc is None:
            daemon.kill()
            fail("%s never fired: daemon still alive after the job"
                 % point, log1)
        if rc != CRASH_EXIT:
            fail("%s: daemon exited rc %d, expected %d"
                 % (point, rc, CRASH_EXIT), log1)
        # Restart unarmed on the wounded store; recovery must accept it.
        daemon2 = Daemon(self.cli, sock, store,
                         os.path.join(d, "serve2.log"))
        daemon2.wait_ready(self.client)
        self.check_final(sock, ref, d, daemon2.log_path)
        daemon2.shutdown(self.client)
        self.n_scenarios += 1
        log("ok %s (killed at crash point, recovered byte-identical)"
            % point)

    def run_tombstone_scenario(self, point, ref):
        """Crash while writing a queued-job cancellation tombstone."""
        d = self.scenario_dir(point)
        sock = os.path.join(d, "s.sock")
        store = os.path.join(d, "store")
        log1 = os.path.join(d, "serve1.log")
        # --workers 0: the job stays queued, so cancel takes the
        # tombstone-then-purge path deterministically.
        daemon = Daemon(self.cli, sock, store, log1, crash_point=point,
                        workers=0)
        daemon.wait_ready(self.client)
        submit = subprocess.run(
            submit_args(self.client, sock, self.machine, self.graph,
                        reuse=False),
            capture_output=True, timeout=STEP_TIMEOUT_S)
        if submit.returncode != 0:
            fail("%s: queued submit failed unexpectedly" % point, log1)
        # The cancel dies with the daemon; tolerate the client error.
        subprocess.run([self.client, "cancel", "1", "--socket", sock],
                       capture_output=True, timeout=STEP_TIMEOUT_S)
        rc = daemon.wait_exit(STEP_TIMEOUT_S)
        if rc is None:
            daemon.kill()
            fail("%s never fired during cancel" % point, log1)
        if rc != CRASH_EXIT:
            fail("%s: daemon exited rc %d, expected %d"
                 % (point, rc, CRASH_EXIT), log1)
        daemon2 = Daemon(self.cli, sock, store,
                         os.path.join(d, "serve2.log"))
        daemon2.wait_ready(self.client)
        self.check_final(sock, ref, d, daemon2.log_path)
        daemon2.shutdown(self.client)
        self.n_scenarios += 1
        log("ok %s (killed mid-cancel, recovered byte-identical)" % point)

    def run(self, points):
        log("building reference runs (uninterrupted)")
        self.ref_plain = self.reference(reuse=False)
        self.ref_reuse = self.reference(reuse=True)
        for point in points:
            kind = point.split(".")[1]
            if kind == "tombstone":
                self.run_tombstone_scenario(point, self.ref_plain)
            elif kind == "bucket":
                self.run_submit_scenario(point, self.ref_reuse)
            else:
                self.run_submit_scenario(point, self.ref_plain)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("cli", help="path to automap_cli")
    parser.add_argument("client", help="path to automap_client")
    parser.add_argument("--points",
                        help="comma-separated subset of crash points "
                             "(default: the full matrix)")
    parser.add_argument("--keep", action="store_true",
                        help="keep the scratch directory")
    args = parser.parse_args()

    listed = subprocess.run([args.cli, "crash-points"], check=True,
                            capture_output=True, text=True)
    matrix = [p for p in listed.stdout.split() if p]
    if args.points:
        chosen = args.points.split(",")
        unknown = [p for p in chosen if p not in matrix]
        if unknown:
            fail("unknown crash points: %s" % ", ".join(unknown))
        matrix = chosen

    workdir = tempfile.mkdtemp(prefix="automap-chaos-")
    try:
        soak = Soak(os.path.abspath(args.cli), os.path.abspath(args.client),
                    workdir)
        soak.run(matrix)
        log("chaos soak passed: %d crash points, all recoveries "
            "byte-identical" % soak.n_scenarios)
    finally:
        if args.keep:
            log("scratch kept at %s" % workdir)
        else:
            shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
