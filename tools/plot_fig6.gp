# Gnuplot script for the Figure 6 speedup series.
#
# Generate the data, then plot:
#   AUTOMAP_CSV=1 build/bench/bench_fig6_pennant > pennant.txt
#   grep -A100 '^input,' pennant.txt | head -8 > pennant.csv   # pick a node count
#   gnuplot -e "datafile='pennant.csv'; app='Pennant'" tools/plot_fig6.gp
#
# Produces fig6.svg with the custom-mapper and AM-CCD speedup bars over the
# default mapper, in the paper's style.

if (!exists("datafile")) datafile = "fig6.csv"
if (!exists("app")) app = "application"

set terminal svg size 720,420 font "monospace,11"
set output "fig6.svg"

set datafile separator ","
set style data histograms
set style histogram clustered gap 1.5
set style fill solid 0.85 border -1
set boxwidth 0.9

set title sprintf("%s: speedup over DefaultMapper", app)
set ylabel "speedup"
set yrange [0.7:*]
set xtics rotate by -35 scale 0
set key top right
set grid ytics

# Reference line at parity with the default mapper.
set arrow from graph 0, first 1.0 to graph 1, first 1.0 nohead dt 2 lc "gray40"

plot datafile using 3:xtic(1) title "Custom Mapper" lc rgb "#808080", \
     ''       using 4         title "AM-CCD"        lc rgb "#2a6fbb"
