// automap — the offline mapping driver (paper §3.3).
//
// Implements the paper's workflow as a command-line tool: the application
// is profiled once and exports its machine model and search space (task
// graph) as text files; this driver then searches offline — invoking the
// (simulated) application to evaluate candidates — and writes the best
// mapping found, which the application's mapper replays in production runs.
//
// Commands:
//   export-machine <shepard|lassen> <nodes> <out.machine>
//   export-app <circuit|stencil|pennant|htr|maestro> <nodes> <step>
//              <out.graph>
//   describe <machine file> <graph file>
//   search <machine file> <graph file> [options] [-o mapping.txt]
//       --algorithm ccd|cd|ot     (default ccd)
//       --rotations N             (default 5)
//       --repeats N               (default 7)
//       --budget SECONDS          (simulated; default unlimited)
//       --seed N                  (default 42)
//       --fallbacks               (enable §3.1 memory priority lists)
//   evaluate <machine file> <graph file> <mapping file> [--repeats N]
//   explain <graph file> <journal.jsonl>        (decision provenance)
//   replay <machine file> <graph file> <journal.jsonl>  (drift cross-check)

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include <optional>

#include "src/apps/registry.hpp"
#include "src/automap/automap.hpp"
#include "src/io/text_io.hpp"
#include "src/report/analysis.hpp"
#include "src/report/codegen.hpp"
#include "src/report/explain.hpp"
#include "src/report/journal.hpp"
#include "src/report/profile.hpp"
#include "src/report/visualize.hpp"
#include "src/support/metrics.hpp"
#include "src/search/algorithms.hpp"
#include "src/machine/machine.hpp"
#include "src/runtime/mapper.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/error.hpp"
#include "src/support/format.hpp"

namespace {
using namespace automap;

int usage() {
  std::cerr
      << "usage:\n"
         "  automap_cli export-machine <shepard|lassen|cpu-cluster> "
         "<nodes> <out>\n"
         "  automap_cli export-app <app> <nodes> <step> <out>\n"
         "  automap_cli describe <machine> <graph>\n"
         "  automap_cli search <machine> <graph>\n"
         "              [--algorithm "
      << search_algorithm_names()
      << "]\n"
         "              [--rotations N] [--repeats N] [--budget S]\n"
         "              [--seed N] [--threads N] [--no-prune] "
         "[--fallbacks]\n"
         "              [-o mapping.txt] [--profiles db.txt]\n"
         "              [--telemetry] [--profile] [--trace-json out.json]\n"
         "              [--fault-crash P] [--fault-straggler P]\n"
         "              [--fault-straggler-factor X] [--fault-oom P]\n"
         "              [--fault-copy P] [--retries N] [--quarantine K]\n"
         "              [--backoff S] [--aggregate mean|median|trimmed]\n"
         "              [--checkpoint file] [--resume file]\n"
         "              [--journal out.jsonl] [--metrics-out out.txt]\n"
         "  automap_cli evaluate <machine> <graph> <mapping> [--repeats N]\n"
         "              [--profile] [--trace-json out.json]\n"
         "  automap_cli explain <graph> <journal.jsonl>\n"
         "  automap_cli replay <machine> <graph> <journal.jsonl> "
         "[--threads N]\n"
         "  automap_cli visualize <machine> <graph> <mapping>\n"
         "              [--dot out.dot] [--trace out.json]\n"
         "  automap_cli codegen <graph> <mapping> <ClassName> <out.cpp>\n"
         "  automap_cli validate <machine> <graph> <mapping>\n";
  return 2;
}

int cmd_export_machine(const std::vector<std::string>& args) {
  if (args.size() != 3) return usage();
  const int nodes = std::stoi(args[1]);
  const MachineModel machine = args[0] == "lassen"        ? make_lassen(nodes)
                               : args[0] == "cpu-cluster" ? make_cpu_cluster(
                                                                nodes)
                                                          : make_shepard(nodes);
  save_machine(args[2], machine);
  std::cout << "wrote " << args[2] << "\n" << machine.describe();
  return 0;
}

int cmd_export_app(const std::vector<std::string>& args) {
  if (args.size() != 4) return usage();
  const std::string& name = args[0];
  AM_REQUIRE(is_app_name(name), "unknown application: " + name);
  const int nodes = std::stoi(args[1]);
  const int step = std::stoi(args[2]);
  const BenchmarkApp app = make_app_by_name(name, nodes, step);
  save_task_graph(args[3], app.graph);
  std::cout << "wrote " << args[3] << " (" << app.name << " " << app.input
            << ": " << app.graph.num_tasks() << " tasks, "
            << app.graph.num_collection_args() << " collection args)\n";
  return 0;
}

int cmd_describe(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  const MachineModel machine = load_machine(args[0]);
  const TaskGraph graph = load_task_graph(args[1]);
  std::cout << machine.describe() << "\n" << graph.describe();
  return 0;
}

/// Reruns `mapping` noise-free with trace recording and emits the requested
/// observability outputs: the profile digest to stdout and/or Chrome-trace
/// JSON to `trace_json_path`.
void emit_observability(const MachineModel& machine, const TaskGraph& graph,
                        const Mapping& mapping, bool profile,
                        const std::string& trace_json_path,
                        const std::vector<TrajectoryPoint>& trajectory = {}) {
  if (!profile && trace_json_path.empty()) return;
  Simulator sim(machine, graph,
                {.iterations = 10, .noise_sigma = 0.0, .record_trace = true});
  const ExecutionReport report = sim.run(mapping, 1);
  AM_REQUIRE(report.ok, "mapping failed to execute: " + report.failure);
  if (profile) {
    std::cout << "\n" << render_profile(graph, compute_profile(graph, report));
  }
  if (!trace_json_path.empty()) {
    save_text(trace_json_path, render_chrome_trace(report, trajectory));
    std::cout << "\nwrote " << trace_json_path
              << " (open in a Chrome-tracing / Perfetto viewer)\n";
  }
}

int cmd_search(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const MachineModel machine = load_machine(args[0]);
  const TaskGraph graph = load_task_graph(args[1]);

  std::string algorithm_name = "ccd";
  SearchOptions options{.seed = 42};
  FaultModel faults;
  std::string out_path;
  std::string profiles_path;
  std::string trace_json_path;
  std::string resume_path;
  std::string journal_path;
  std::string metrics_path;
  bool telemetry = false;
  bool profile = false;
  for (std::size_t i = 2; i < args.size(); ++i) {
    auto value = [&]() -> const std::string& {
      AM_REQUIRE(i + 1 < args.size(), args[i] + " needs a value");
      return args[++i];
    };
    if (args[i] == "--algorithm") {
      algorithm_name = value();
    } else if (args[i] == "--rotations") {
      options.rotations = std::stoi(value());
    } else if (args[i] == "--repeats") {
      options.repeats = std::stoi(value());
    } else if (args[i] == "--budget") {
      options.time_budget_s = std::stod(value());
    } else if (args[i] == "--seed") {
      options.seed = std::stoull(value());
    } else if (args[i] == "--threads") {
      // 0 = one evaluation lane per hardware thread. Results are
      // bit-identical for every value; only wall-clock time changes.
      options.threads = std::stoi(value());
    } else if (args[i] == "--no-prune") {
      // Disable incumbent-bounded candidate pruning. Results are
      // bit-identical with or without it; only wall-clock time changes.
      options.prune_candidates = false;
    } else if (args[i] == "--fallbacks") {
      options.memory_fallbacks = true;
    } else if (args[i] == "-o") {
      out_path = value();
    } else if (args[i] == "--profiles") {
      profiles_path = value();
    } else if (args[i] == "--trace-json") {
      trace_json_path = value();
    } else if (args[i] == "--telemetry") {
      telemetry = true;
    } else if (args[i] == "--profile") {
      profile = true;
    } else if (args[i] == "--fault-crash") {
      faults.crash_prob = std::stod(value());
    } else if (args[i] == "--fault-straggler") {
      faults.straggler_prob = std::stod(value());
    } else if (args[i] == "--fault-straggler-factor") {
      faults.straggler_factor = std::stod(value());
    } else if (args[i] == "--fault-oom") {
      faults.mem_pressure_prob = std::stod(value());
    } else if (args[i] == "--fault-copy") {
      faults.copy_fault_prob = std::stod(value());
    } else if (args[i] == "--retries") {
      options.resilience.max_retries = std::stoi(value());
    } else if (args[i] == "--quarantine") {
      options.resilience.quarantine_after = std::stoi(value());
    } else if (args[i] == "--backoff") {
      options.resilience.retry_backoff_s = std::stod(value());
    } else if (args[i] == "--aggregate") {
      const std::string& name = value();
      if (name == "mean") {
        options.resilience.aggregation = Aggregation::kMean;
      } else if (name == "median") {
        options.resilience.aggregation = Aggregation::kMedian;
      } else if (name == "trimmed") {
        options.resilience.aggregation = Aggregation::kTrimmedMean;
      } else {
        std::cerr << "unknown aggregation: " << name
                  << " (expected mean|median|trimmed)\n";
        return usage();
      }
    } else if (args[i] == "--checkpoint") {
      options.checkpoint_path = value();
    } else if (args[i] == "--resume") {
      resume_path = value();
    } else if (args[i] == "--journal") {
      journal_path = value();
    } else if (args[i] == "--metrics-out") {
      metrics_path = value();
    } else {
      std::cerr << "unknown option: " << args[i] << "\n";
      return usage();
    }
  }

  // Every output path is validated before the search starts: a typo'd
  // directory costs milliseconds and one Error line here instead of a
  // finished search whose results cannot be written.
  for (const std::string* path :
       {&out_path, &profiles_path, &trace_json_path, &journal_path,
        &metrics_path, &options.checkpoint_path}) {
    if (!path->empty()) require_writable_path(*path);
  }

  if (!resume_path.empty()) {
    options.resume_state = load_text(resume_path);
    std::cout << "resuming from checkpoint " << resume_path << "\n";
  }

  if (!profiles_path.empty()) {
    // Resume from a previous search's profiles database if present.
    try {
      options.profiles_seed = load_text(profiles_path);
      std::cout << "seeded profiles database from " << profiles_path << "\n";
    } catch (const Error&) {
      // First run: the file does not exist yet.
    }
  }

  const SearchAlgorithmInfo* algorithm =
      find_search_algorithm(algorithm_name);
  if (algorithm == nullptr) {
    std::cerr << "unknown algorithm: " << algorithm_name << " (expected "
              << search_algorithm_names() << ")\n";
    return usage();
  }

  // Serializing the profiles database costs real time on long searches;
  // only pay for it when --profiles asked to save it.
  options.export_profiles_db = !profiles_path.empty();

  // Observability backends. The journal lives on this frame; the search
  // keeps only a pointer, and null pointers disable all emission. Raw
  // simulator run counters are thread-count-dependent (speculative pool
  // tails), so they are wired only into the final --metrics-out dump,
  // never into the journal.
  std::optional<Journal> journal;
  if (!journal_path.empty()) journal.emplace(journal_path);
  MetricsRegistry metrics;
  const bool want_metrics = journal.has_value() || !metrics_path.empty();
  options.journal = journal.has_value() ? &*journal : nullptr;
  options.metrics = want_metrics ? &metrics : nullptr;

  Simulator sim(machine, graph,
                {.faults = faults,
                 .metrics = metrics_path.empty() ? nullptr : &metrics});
  const SearchResult result = algorithm->run(sim, options);
  if (result.stats.degraded)
    std::cout << "warning: search degraded — finalist protocol was "
                 "unprofilable under the fault rate; reporting the "
                 "best-known incumbent\n";
  if (!profiles_path.empty()) save_text(profiles_path, result.profiles_db);
  std::cout << result.algorithm << ": best mapping "
            << format_seconds(result.best_seconds) << " after "
            << result.stats.suggested << " suggested / "
            << result.stats.evaluated << " evaluated mappings, simulated "
            << format_seconds(result.stats.search_time_s) << " of search ("
            << format_fixed(100 * result.stats.evaluation_fraction(), 0)
            << "% evaluating)\n\n"
            << result.best.describe(graph);
  if (!metrics_path.empty()) save_text(metrics_path, metrics.expose());
  if (telemetry)
    std::cout << "\n"
              << render_search_telemetry(result, journal_path, metrics_path);
  if (journal.has_value())
    std::cout << "\nwrote " << journal_path
              << " (inspect with: automap_cli explain / replay)\n";
  if (!metrics_path.empty())
    std::cout << (journal.has_value() ? "" : "\n") << "wrote " << metrics_path
              << " (Prometheus text format)\n";
  emit_observability(machine, graph, result.best, profile, trace_json_path,
                     result.trajectory);
  if (!out_path.empty()) {
    save_text(out_path, result.best.serialize());
    std::cout << "\nwrote " << out_path << "\n";
  }
  return 0;
}

int cmd_explain(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  const TaskGraph graph = load_task_graph(args[0]);
  std::cout << render_explain(graph, load_text(args[1]));
  return 0;
}

int cmd_replay(const std::vector<std::string>& args) {
  if (args.size() < 3) return usage();
  const MachineModel machine = load_machine(args[0]);
  const TaskGraph graph = load_task_graph(args[1]);
  const std::string journal_text = load_text(args[2]);
  int threads = 1;
  for (std::size_t i = 3; i < args.size(); ++i) {
    if (args[i] == "--threads" && i + 1 < args.size()) {
      threads = std::stoi(args[++i]);
    } else {
      std::cerr << "unknown option: " << args[i] << "\n";
      return usage();
    }
  }
  const ReplayOutcome outcome =
      replay_journal(machine, graph, journal_text, threads);
  std::cout << outcome.rendering;
  return outcome.drift ? 1 : 0;
}

int cmd_visualize(const std::vector<std::string>& args) {
  if (args.size() < 3) return usage();
  const MachineModel machine = load_machine(args[0]);
  const TaskGraph graph = load_task_graph(args[1]);
  const Mapping mapping = Mapping::parse(load_text(args[2]), graph);

  std::string dot_path, trace_path;
  for (std::size_t i = 3; i + 1 < args.size(); ++i) {
    if (args[i] == "--dot") dot_path = args[i + 1];
    if (args[i] == "--trace") trace_path = args[i + 1];
  }

  std::cout << render_mapping(graph, mapping);
  if (!dot_path.empty()) {
    save_text(dot_path, render_mapping_dot(graph, mapping));
    std::cout << "\nwrote " << dot_path << " (render with: dot -Tsvg)\n";
  }
  if (!trace_path.empty()) {
    Simulator sim(machine, graph,
                  {.iterations = 10, .noise_sigma = 0.0, .record_trace = true});
    const ExecutionReport report = sim.run(mapping, 1);
    AM_REQUIRE(report.ok, "mapping failed to execute: " + report.failure);
    save_text(trace_path, render_chrome_trace(report));
    std::cout << "wrote " << trace_path
              << " (open in a Chrome-tracing / Perfetto viewer)\n";
  }
  return 0;
}

int cmd_validate(const std::vector<std::string>& args) {
  if (args.size() != 3) return usage();
  const MachineModel machine = load_machine(args[0]);
  const TaskGraph graph = load_task_graph(args[1]);
  const Mapping mapping = Mapping::parse(load_text(args[2]), graph);

  const auto violations = mapping.violations(graph, machine);
  for (const auto& v : violations) std::cout << "constraint: " << v << "\n";
  if (!violations.empty()) return 1;

  // Capacity dry run: detect out-of-memory without timing anything.
  Simulator sim(machine, graph, {.iterations = 1, .noise_sigma = 0.0});
  const ExecutionReport report = sim.run(mapping, 1);
  if (!report.ok) {
    std::cout << "capacity: " << report.failure << "\n";
    return 1;
  }
  std::cout << "mapping is valid and executable; peak footprints:\n";
  for (const auto& fp : report.footprints) {
    std::cout << "  " << to_string(fp.kind) << ": "
              << format_bytes(fp.peak_instance_bytes) << " / "
              << format_bytes(fp.capacity_bytes) << " per allocation\n";
  }
  return 0;
}

int cmd_codegen(const std::vector<std::string>& args) {
  if (args.size() != 4) return usage();
  const TaskGraph graph = load_task_graph(args[0]);
  const Mapping mapping = Mapping::parse(load_text(args[1]), graph);
  save_text(args[3], generate_mapper_source(graph, mapping, args[2]));
  std::cout << "wrote " << args[3] << " (class " << args[2] << ")\n";
  return 0;
}

int cmd_evaluate(const std::vector<std::string>& args) {
  if (args.size() < 3) return usage();
  const MachineModel machine = load_machine(args[0]);
  const TaskGraph graph = load_task_graph(args[1]);
  const Mapping mapping = Mapping::parse(load_text(args[2]), graph);
  int repeats = 31;
  bool profile = false;
  std::string trace_json_path;
  for (std::size_t i = 3; i < args.size(); ++i) {
    if (args[i] == "--repeats" && i + 1 < args.size())
      repeats = std::stoi(args[++i]);
    else if (args[i] == "--trace-json" && i + 1 < args.size())
      trace_json_path = args[++i];
    else if (args[i] == "--profile")
      profile = true;
  }

  Simulator sim(machine, graph, {});
  const double mean = measure_mapping(sim, mapping, repeats, 1);
  std::cout << "mean over " << repeats
            << " runs: " << format_seconds(mean) << "\n";

  DefaultMapper dm;
  const double def =
      measure_mapping(sim, dm.map_all(graph, machine), repeats, 1);
  std::cout << "default mapper: " << format_seconds(def) << " ("
            << format_speedup(def / mean) << " speedup)\n";
  emit_observability(machine, graph, mapping, profile, trace_json_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "export-machine") return cmd_export_machine(args);
    if (command == "export-app") return cmd_export_app(args);
    if (command == "describe") return cmd_describe(args);
    if (command == "search") return cmd_search(args);
    if (command == "evaluate") return cmd_evaluate(args);
    if (command == "explain") return cmd_explain(args);
    if (command == "replay") return cmd_replay(args);
    if (command == "visualize") return cmd_visualize(args);
    if (command == "codegen") return cmd_codegen(args);
    if (command == "validate") return cmd_validate(args);
    return usage();
  } catch (const automap::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    // Anything the library did not convert to an Error (e.g. std::stoi on a
    // malformed numeric flag or a garbled input file) still exits with a
    // one-line diagnostic instead of an uncaught-exception abort.
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
