// automap — the offline mapping driver (paper §3.3).
//
// Implements the paper's workflow as a command-line tool: the application
// is profiled once and exports its machine model and search space (task
// graph) as text files; this driver then searches offline — invoking the
// (simulated) application to evaluate candidates — and writes the best
// mapping found, which the application's mapper replays in production runs.
//
// The subcommands live in src/cli (one registry row each — run
// `automap_cli help` for the list); the service-mode commands (`serve`,
// `client`) register through the same table. This file is only the
// entry point and the top-level error boundary.

#include <exception>
#include <iostream>

#include "src/cli/cli.hpp"
#include "src/cli/commands.hpp"
#include "src/cli/service_commands.hpp"
#include "src/support/error.hpp"

int main(int argc, char** argv) {
  automap::cli::CommandRegistry registry("automap_cli");
  automap::cli::register_core_commands(registry);
  automap::cli::register_service_commands(registry);
  try {
    return registry.run(argc, argv);
  } catch (const automap::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    // Anything the library did not convert to an Error (e.g. std::stoi on a
    // malformed numeric flag or a garbled input file) still exits with a
    // one-line diagnostic instead of an uncaught-exception abort.
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
