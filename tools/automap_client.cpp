// Standalone client for the mapping service daemon. `automap_client
// <action> ...` is exactly `automap_cli client <action> ...` — the same
// registry row runs in both binaries, so the flag vocabulary and output
// never drift apart.

#include <exception>
#include <iostream>
#include <vector>

#include "src/cli/cli.hpp"
#include "src/cli/service_commands.hpp"
#include "src/support/error.hpp"

int main(int argc, char** argv) {
  automap::cli::CommandRegistry registry("automap_client");
  automap::cli::register_service_commands(registry);

  // Forward argv as if the user had typed `automap_cli client ...`.
  static char client_command[] = "client";
  std::vector<char*> forwarded;
  forwarded.push_back(argv[0]);
  forwarded.push_back(client_command);
  for (int i = 1; i < argc; ++i) forwarded.push_back(argv[i]);

  try {
    return registry.run(static_cast<int>(forwarded.size()),
                        forwarded.data());
  } catch (const automap::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
