// Machine-sensitivity study (paper §1 and §7: "fast mappings are sensitive
// to the machine … porting to a new machine may necessitate re-tuning").
//
// For each application, tune on three machines (Shepard: 1 P100 behind
// PCIe; Lassen: 4 V100s behind NVLink; a GPU-less CPU cluster) and report
// (a) AutoMap's speedup over the default on each machine and (b) the
// penalty for executing a mapping tuned on machine A on machine B —
// the cross-porting matrix. Mappings that are invalid on the target
// (e.g. GPU placements on the CPU cluster) are marked "n/a".

#include <cmath>
#include <iostream>

#include "src/apps/registry.hpp"
#include "src/automap/automap.hpp"
#include "src/machine/machine.hpp"
#include "src/runtime/mapper.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/format.hpp"
#include "src/support/table.hpp"

int main() {
  using namespace automap;
  std::cout << "=== Machine sensitivity: tuned mappings do not port ===\n";

  const MachineModel machines[] = {make_shepard(1), make_lassen(1),
                                   make_cpu_cluster(1)};
  constexpr int kNumMachines = 3;

  for (const std::string& name : {std::string("htr"),
                                  std::string("pennant")}) {
    const BenchmarkApp app = make_app_by_name(name, 1, 1);

    Mapping tuned[kNumMachines] = {Mapping(app.graph), Mapping(app.graph),
                                   Mapping(app.graph)};
    double native[kNumMachines];

    Table tune_table({"machine", "default", "AutoMap", "speedup"});
    for (int m = 0; m < kNumMachines; ++m) {
      Simulator sim(machines[m], app.graph, app.sim);
      DefaultMapper dm;
      const double def = measure_mapping(
          sim, dm.map_all(app.graph, machines[m]), 31, 1);
      const SearchResult res = automap_optimize(
          sim, SearchAlgorithm::kCcd,
          {.rotations = 5, .repeats = 7, .seed = 42});
      tuned[m] = res.best;
      native[m] = measure_mapping(sim, res.best, 31, 2);
      tune_table.add_row({machines[m].name(), format_seconds(def),
                          format_seconds(native[m]),
                          format_speedup(def / native[m])});
    }
    std::cout << "\n-- " << app.name << " " << app.input << " --\n";
    tune_table.print(std::cout);

    Table port({"tuned on \\ run on", machines[0].name(), machines[1].name(),
                machines[2].name()});
    for (int src = 0; src < kNumMachines; ++src) {
      std::vector<std::string> row = {tuned[src].valid(app.graph,
                                                       machines[src])
                                          ? machines[src].name()
                                          : machines[src].name() + "?"};
      for (int dst = 0; dst < kNumMachines; ++dst) {
        if (!tuned[src].valid(app.graph, machines[dst])) {
          row.push_back("n/a");
          continue;
        }
        Simulator sim(machines[dst], app.graph, app.sim);
        const double ported = measure_mapping(sim, tuned[src], 31, 3);
        // Slowdown relative to the mapping tuned natively on dst.
        row.push_back(std::isfinite(ported)
                          ? format_fixed(ported / native[dst], 2) + "x"
                          : "oom");
      }
      port.add_row(std::move(row));
    }
    std::cout << "\ncross-porting penalty (columns: executed on; 1.00x = "
                 "as good as native tuning):\n";
    port.print(std::cout);
  }
  return 0;
}
