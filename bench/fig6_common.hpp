#pragma once

// Shared driver for the Figure 6 benches: for each node count and each
// weak-scaled input, measure the default mapper, the hand-written custom
// mapper and the AutoMap-CCD result, and print speedups over the default —
// the exact series the paper plots.

#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "src/apps/app.hpp"
#include "src/automap/automap.hpp"
#include "src/machine/machine.hpp"
#include "src/mappers/custom_mappers.hpp"
#include "src/report/analysis.hpp"
#include "src/report/profile.hpp"
#include "src/report/visualize.hpp"
#include "src/runtime/mapper.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/format.hpp"
#include "src/support/table.hpp"

namespace automap::bench {

struct Fig6Row {
  int nodes;
  std::string input;
  double default_s;
  double custom_speedup;
  double automap_speedup;
};

/// Observability options shared by the figure benches: search telemetry per
/// sweep entry, an execution profile of the last AM-CCD winner, and a
/// Chrome-trace JSON export of that winner's run.
struct BenchObservability {
  int threads = 1;
  /// --no-prune disables incumbent-bounded candidate pruning; results are
  /// bit-identical either way (only the wall-clock column changes), which
  /// is exactly what the flag exists to demonstrate.
  bool prune = true;
  bool telemetry = false;
  bool profile = false;
  std::string trace_json;
};

/// Parses --threads N, --no-prune, --telemetry, --profile,
/// --trace-json PATH.
inline BenchObservability parse_bench_observability(int argc, char** argv) {
  BenchObservability opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc)
      opts.threads = std::atoi(argv[++i]);
    else if (arg == "--no-prune")
      opts.prune = false;
    else if (arg == "--telemetry")
      opts.telemetry = true;
    else if (arg == "--profile")
      opts.profile = true;
    else if (arg == "--trace-json" && i + 1 < argc)
      opts.trace_json = argv[++i];
  }
  return opts;
}

/// Re-runs `mapping` noise-free with trace recording and emits the profile
/// digest and/or Chrome-trace JSON.
inline void emit_bench_observability(const MachineModel& machine,
                                     const BenchmarkApp& app,
                                     const Mapping& mapping,
                                     const BenchObservability& opts) {
  if (!opts.profile && opts.trace_json.empty()) return;
  SimOptions sim_options = app.sim;
  sim_options.noise_sigma = 0.0;
  sim_options.record_trace = true;
  Simulator sim(machine, app.graph, sim_options);
  const ExecutionReport report = sim.run(mapping, 1);
  if (!report.ok) return;
  if (opts.profile) {
    std::cout << "\n"
              << render_profile(app.graph, compute_profile(app.graph, report));
  }
  if (!opts.trace_json.empty()) {
    std::ofstream os(opts.trace_json);
    os << render_chrome_trace(report);
    std::cout << "wrote " << opts.trace_json
              << " (open in a Chrome-tracing / Perfetto viewer)\n";
  }
}

/// Runs the full sweep. `make_app(nodes, step)` builds the weak-scaled
/// input; `num_steps` is the length of each per-node-count series.
inline void run_fig6(
    const std::string& title, int num_steps,
    const std::function<BenchmarkApp(int nodes, int step)>& make_app,
    const BenchObservability& opts = {}) {
  std::cout << "=== " << title
            << " — speedup over DefaultMapper (Shepard) ===\n";
  const int kNodeCounts[] = {1, 2, 4, 8};
  // Reporting protocol (§5): candidate evaluations average 7 runs; final
  // numbers average 31 runs of the winning mapping.
  constexpr int kReportRepeats = 31;

  for (const int nodes : kNodeCounts) {
    const MachineModel machine = make_shepard(nodes);
    Table table({"input", "default", "custom", "AM-CCD", "search evals"});
    for (int step = 0; step < num_steps; ++step) {
      const BenchmarkApp app = make_app(nodes, step);
      Simulator sim(machine, app.graph, app.sim);

      DefaultMapper default_mapper;
      const double default_s = measure_mapping(
          sim, default_mapper.map_all(app.graph, machine), kReportRepeats, 1);

      const auto custom = make_custom_mapper(app.name);
      const double custom_s = measure_mapping(
          sim, custom->map_all(app.graph, machine), kReportRepeats, 1);

      const SearchResult result = automap_optimize(
          sim, SearchAlgorithm::kCcd,
          {.rotations = 5, .repeats = 7,
           .seed = 42 + static_cast<std::uint64_t>(step),
           .threads = opts.threads, .prune_candidates = opts.prune,
           .export_profiles_db = false});
      const double automap_s =
          measure_mapping(sim, result.best, kReportRepeats, 2);

      table.add_row({app.input, format_seconds(default_s),
                     format_fixed(default_s / custom_s, 2),
                     format_fixed(default_s / automap_s, 2),
                     std::to_string(result.stats.evaluated)});
      if (opts.telemetry) {
        std::cout << "[" << nodes << " node(s), " << app.input << "] "
                  << render_search_telemetry(result);
      }
      // Observability exports cover the last sweep entry (largest machine
      // and input): one representative timeline/profile per bench run.
      if (nodes == kNodeCounts[3] && step == num_steps - 1)
        emit_bench_observability(machine, app, result.best, opts);
    }
    std::cout << "\n-- " << nodes << " node(s) --\n";
    table.print(std::cout);
    // Machine-readable series for plotting (AUTOMAP_CSV=1).
    if (const char* csv = std::getenv("AUTOMAP_CSV");
        csv != nullptr && csv[0] == '1') {
      table.print_csv(std::cout);
    }
  }
  std::cout << "\n";
}

}  // namespace automap::bench
