// Reproduces Figure 6c: Pennant speedups of the custom mapper and
// AutoMap-CCD over the default mapper.
//
// Expected shape (paper): the largest AM-CCD gains at small inputs come
// from mixed mappings with most of the 31 tasks on the CPU and a few
// collection arguments in Zero-Copy; as the input grows AutoMap shifts
// tasks to the GPU and data to Frame-Buffer, converging to ~1.0.

#include "bench/fig6_common.hpp"
#include "src/apps/pennant.hpp"

int main(int argc, char** argv) {
  automap::bench::run_fig6(
      "Figure 6c: Pennant", 7,
      [](int nodes, int step) {
        return automap::make_pennant(automap::pennant_config_for(nodes, step));
      },
      automap::bench::parse_bench_observability(argc, argv));
  return 0;
}
