// Reproduces Figure 8: Pennant with inputs +1.3 %, +7.1 % and +14.3 %
// larger than the largest input that fits entirely in Frame-Buffer memory,
// on 1 and 4 nodes of both Shepard and Lassen (§5.2).
//
// Baseline "GPU+ZC" places *all* collections in Zero-Copy (the
// straightforward bigger-but-slower choice). AutoMap searches with §3.1
// memory priority lists enabled, so it finds a subset of collections to
// keep in the Frame-Buffer and demotes the rest.
//
// Expected shape (paper): AutoMap at least 4x faster than all-Zero-Copy
// (up to 50x at +1.3 %), degrading as the overflow grows; several
// collection arguments demoted per mapping.

#include <iostream>
#include <limits>

#include "src/apps/pennant.hpp"
#include "src/automap/automap.hpp"
#include "src/machine/machine.hpp"
#include "src/search/evaluator.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/format.hpp"
#include "src/support/table.hpp"

namespace {
using namespace automap;

Mapping all_zero_copy(const TaskGraph& graph) {
  Mapping m(graph);
  for (const GroupTask& t : graph.tasks()) {
    m.at(t.id).proc =
        t.cost.has_gpu_variant() ? ProcKind::kGpu : ProcKind::kCpu;
    m.at(t.id).arg_memories.assign(t.args.size(), {MemKind::kZeroCopy});
  }
  return m;
}

}  // namespace

int main() {
  std::cout << "=== Figure 8: Pennant execution time, inputs larger than "
               "the Frame-Buffer ===\n";

  const struct {
    const char* label;
    double over;
  } kOverflows[] = {{"+1.3%", 1.013}, {"+7.1%", 1.071}, {"+14.3%", 1.143}};

  for (const bool lassen : {false, true}) {
    for (const int nodes : {1, 4}) {
      const MachineModel machine =
          lassen ? make_lassen(nodes) : make_shepard(nodes);
      const int gpus = machine.procs_per_node(ProcKind::kGpu);
      const long max_y = pennant_max_fb_zones_y(
          machine.mem_capacity(MemKind::kFrameBuffer), nodes, gpus);

      Table table({"input", "GPU+ZC", "AutoMap", "speedup", "demoted args"});
      for (const auto& overflow : kOverflows) {
        PennantConfig config;
        config.num_nodes = nodes;
        config.zones_y =
            static_cast<long>(static_cast<double>(max_y) * overflow.over);
        const BenchmarkApp app = make_pennant(config);
        Simulator sim(machine, app.graph, app.sim);

        const double zc_s =
            measure_mapping(sim, all_zero_copy(app.graph), 31, 1);

        const SearchResult result = automap_optimize(
            sim, SearchAlgorithm::kCcd,
            {.rotations = 5, .repeats = 7, .seed = 42,
             .memory_fallbacks = true});
        // Measure with the same fallback lists the search used. Read the
        // outcome through the evaluator's read-only view — reporting code
        // never needs the mutating interface.
        Evaluator measure(sim, {.repeats = 31, .seed = 2,
                                .memory_fallbacks = true});
        measure.evaluate(result.best);
        const EvaluatorView measured = measure.view();
        const double am_s = measured.has_best()
                                ? measured.best_seconds()
                                : std::numeric_limits<double>::infinity();
        const auto report =
            sim.run(measure.with_fallbacks(result.best), 99);

        table.add_row({overflow.label, format_seconds(zc_s),
                       format_seconds(am_s), format_speedup(zc_s / am_s),
                       std::to_string(report.ok ? report.demoted_args : -1)});
      }
      std::cout << "\n-- " << machine.name() << ", " << nodes
                << " node(s), max in-FB input: 320x" << max_y << " --\n";
      table.print(std::cout);
    }
  }
  return 0;
}
