// Reproduces Figure 7: Maestro multi-fidelity ensemble CFD (§5.1).
//
// A high-fidelity sample is pinned to the GPUs with its data filling the
// Frame-Buffer; the question is where to run the low-fidelity ensemble.
// For each LF sample count and resolution we report the *slowdown of the
// run relative to the HF simulation executing alone* (1.0 = the LF
// ensemble is free) under three strategies:
//   cpu+sys : all LF tasks on CPUs, data in System memory;
//   gpu+zc  : all LF tasks on GPUs, data in Zero-Copy memory;
//   AutoMap : CCD search over the LF mapping (HF pinned, as the paper
//             configures Maestro).
//
// Expected shape (paper): neither fixed strategy is always best — small
// ensembles at high resolution favour GPU+ZC, large ensembles at low
// resolution favour the CPUs — and AutoMap matches or beats both.

#include <iostream>

#include "src/apps/maestro.hpp"
#include "src/automap/automap.hpp"
#include "src/machine/machine.hpp"
#include "src/runtime/mapper.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/format.hpp"
#include "src/support/table.hpp"

namespace {
using namespace automap;

/// Pins the HF tasks to GPU + FrameBuffer in-place.
void pin_hf(Mapping& m, const BenchmarkApp& app) {
  for (const TaskId t : maestro_hf_tasks(app)) {
    m.at(t).proc = ProcKind::kGpu;
    m.at(t).distribute = true;
    m.at(t).arg_memories.assign(app.graph.task(t).args.size(),
                                {MemKind::kFrameBuffer});
  }
}

Mapping lf_strategy(const BenchmarkApp& app, ProcKind proc, MemKind mem) {
  Mapping m(app.graph);
  pin_hf(m, app);
  for (const TaskId t : maestro_lf_tasks(app)) {
    m.at(t).proc = proc;
    m.at(t).distribute = true;
    m.at(t).arg_memories.assign(app.graph.task(t).args.size(), {mem});
  }
  return m;
}

}  // namespace

int main() {
  std::cout << "=== Figure 7: Maestro HF slowdown vs HF running alone "
               "(lower is better, 1.0 = free LF ensemble) ===\n";

  for (const int nodes : {1, 2}) {
    const MachineModel machine = make_shepard(nodes);
    Table table({"LF samples", "LF resolution", "cpu+sys", "gpu+zc",
                 "AutoMap"});

    // Baseline: the HF simulation alone.
    MaestroConfig alone;
    alone.num_lf_samples = 0;
    alone.num_nodes = nodes;
    const BenchmarkApp hf_only = make_maestro(alone);
    Simulator hf_sim(machine, hf_only.graph, hf_only.sim);
    DefaultMapper dm;
    const double hf_alone_s =
        measure_mapping(hf_sim, dm.map_all(hf_only.graph, machine), 31, 1);

    for (const int resolution : {16, 32}) {
      for (const int samples : {8, 16, 32, 64}) {
        MaestroConfig c = alone;
        c.num_lf_samples = samples;
        c.lf_resolution = resolution;
        const BenchmarkApp app = make_maestro(c);
        Simulator sim(machine, app.graph, app.sim);

        const double cpu_s = measure_mapping(
            sim, lf_strategy(app, ProcKind::kCpu, MemKind::kSystem), 31, 1);
        const double gpu_s = measure_mapping(
            sim, lf_strategy(app, ProcKind::kGpu, MemKind::kZeroCopy), 31, 1);

        // AutoMap: the paper's Maestro configuration searches only the LF
        // tasks (§3.3's subset search); the HF tasks are frozen at the
        // starting point (GPU + Frame-Buffer).
        SearchOptions options{.rotations = 5, .repeats = 7, .seed = 42};
        options.frozen_tasks = maestro_hf_tasks(app);
        const SearchResult result =
            automap_optimize(sim, SearchAlgorithm::kCcd, options);
        const double am_s = measure_mapping(sim, result.best, 31, 2);

        table.add_row({std::to_string(samples),
                       std::to_string(resolution) + "^3",
                       format_fixed(cpu_s / hf_alone_s, 2),
                       format_fixed(gpu_s / hf_alone_s, 2),
                       format_fixed(am_s / hf_alone_s, 2)});
      }
    }
    std::cout << "\n-- " << nodes << " node(s), HF alone: "
              << format_seconds(hf_alone_s) << " --\n";
    table.print(std::cout);
  }
  return 0;
}
