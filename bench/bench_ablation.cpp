// Ablations of AutoMap's design choices (DESIGN.md):
//   1. CCD rotation count (the paper settles on 5; §5: more rotations add
//      search time without gains, fewer collapse CCD into CD);
//   2. co-location constraints on/off (the CCD-vs-CD gap, §4.2);
//   3. evaluation repeat count (the paper averages 7 runs per candidate
//      because noisy single runs misrank candidates);
//   4. task/collection orderings (by runtime / by size, §4.1) vs reversed.

#include <iostream>

#include "src/apps/circuit.hpp"
#include "src/apps/htr.hpp"
#include "src/apps/pennant.hpp"
#include "src/automap/automap.hpp"
#include "src/machine/machine.hpp"
#include "src/mappers/custom_mappers.hpp"
#include "src/runtime/mapper.hpp"
#include "src/search/evaluator.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/format.hpp"
#include "src/support/stats.hpp"
#include "src/support/table.hpp"

namespace {
using namespace automap;

void ablate_rotations(const Simulator& sim) {
  std::cout << "\n-- ablation: CCD rotations (paper default: 5) --\n";
  Table table({"rotations", "best exec", "search time", "suggested"});
  for (const int rotations : {1, 2, 3, 5, 8}) {
    const SearchResult r = automap_optimize(
        sim, SearchAlgorithm::kCcd,
        {.rotations = rotations, .repeats = 7, .seed = 42});
    table.add_row({std::to_string(rotations), format_seconds(r.best_seconds),
                   format_seconds(r.stats.search_time_s),
                   std::to_string(r.stats.suggested)});
  }
  table.print(std::cout);
}

void ablate_constraints(const Simulator& sim) {
  std::cout << "\n-- ablation: co-location constraints (CCD vs CD) --\n";
  Table table({"algorithm", "best exec", "evaluated"});
  const SearchResult ccd = automap_optimize(
      sim, SearchAlgorithm::kCcd, {.rotations = 5, .repeats = 7, .seed = 42});
  const SearchResult cd = automap_optimize(
      sim, SearchAlgorithm::kCd, {.repeats = 7, .seed = 42});
  table.add_row({"CCD (constraints on)", format_seconds(ccd.best_seconds),
                 std::to_string(ccd.stats.evaluated)});
  table.add_row({"CD (constraints off)", format_seconds(cd.best_seconds),
                 std::to_string(cd.stats.evaluated)});
  table.print(std::cout);
}

void ablate_repeats(const Simulator& sim) {
  std::cout << "\n-- ablation: evaluation repeats vs selection quality "
               "(paper default: 7) --\n";
  // For each repeat count, run the search with several seeds and report
  // the spread of the final result: fewer repeats -> noisier candidate
  // ranking -> more variable outcomes.
  Table table({"repeats", "mean best", "stddev across seeds"});
  for (const int repeats : {1, 3, 7, 15}) {
    OnlineStats stats;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const SearchResult r = automap_optimize(
          sim, SearchAlgorithm::kCcd,
          {.rotations = 3, .repeats = repeats, .seed = seed});
      stats.add(r.best_seconds);
    }
    table.add_row({std::to_string(repeats), format_seconds(stats.mean()),
                   format_seconds(stats.stddev())});
  }
  table.print(std::cout);
}

void ablate_distribution_search() {
  // Extension ablation: adding the blocked-vs-round-robin distribution
  // dimension to CCD's search (the paper's future work) on multi-node
  // Circuit, where its absence is why the custom mapper sometimes wins.
  std::cout << "\n-- ablation: distribution-strategy search (Circuit, 4 "
               "nodes) --\n";
  const MachineModel machine = make_shepard(4);
  Table table({"input", "custom (blocked)", "CCD", "CCD+dist"});
  for (const int step : {2, 4, 6}) {
    const BenchmarkApp app = make_circuit(circuit_config_for(4, step));
    Simulator sim(machine, app.graph, app.sim);
    DefaultMapper dm;
    const double def =
        measure_mapping(sim, dm.map_all(app.graph, machine), 31, 1);
    const auto custom = make_custom_mapper("circuit");
    const double custom_s =
        measure_mapping(sim, custom->map_all(app.graph, machine), 31, 1);
    const SearchResult plain = automap_optimize(
        sim, SearchAlgorithm::kCcd, {.rotations = 5, .repeats = 7,
                                     .seed = 42});
    const SearchResult extended = automap_optimize(
        sim, SearchAlgorithm::kCcd,
        {.rotations = 5, .repeats = 7, .seed = 42,
         .search_distribution_strategies = true});
    table.add_row(
        {app.input, format_fixed(def / custom_s, 2),
         format_fixed(def / measure_mapping(sim, plain.best, 31, 2), 2),
         format_fixed(def / measure_mapping(sim, extended.best, 31, 2), 2)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "=== Design-choice ablations (Pennant 320x180 / HTR "
               "16x16y18z, Shepard 1 node) ===\n";
  const MachineModel machine = make_shepard(1);

  const BenchmarkApp pennant = make_pennant(pennant_config_for(1, 1));
  Simulator pennant_sim(machine, pennant.graph, pennant.sim);
  ablate_rotations(pennant_sim);
  ablate_constraints(pennant_sim);

  const BenchmarkApp htr = make_htr(htr_config_for(1, 1));
  Simulator htr_sim(machine, htr.graph, htr.sim);
  ablate_repeats(htr_sim);

  ablate_distribution_search();
  return 0;
}
