// Reproduces Figure 6b: Stencil speedups of the custom mapper and
// AutoMap-CCD over the default mapper.
//
// Expected shape (paper): AM-CCD gains at small/medium inputs from CPU
// placements with System/Zero-Copy data mixes (Zero-Copy is one allocation
// per node while System is per-socket), fading to ~1.0 as the grid grows;
// the custom mapper tracks the default (~1.0 throughout).

#include "bench/fig6_common.hpp"
#include "src/apps/stencil.hpp"

int main(int argc, char** argv) {
  automap::bench::run_fig6(
      "Figure 6b: Stencil", 11,
      [](int nodes, int step) {
        return automap::make_stencil(automap::stencil_config_for(nodes, step));
      },
      automap::bench::parse_bench_observability(argc, argv));
  return 0;
}
