// Reproduces the §5.3 search-efficiency statistics on Pennant: mappings
// suggested vs evaluated per algorithm and the share of search time spent
// executing candidates.
//
// Paper values (Pennant): CCD suggests 1941, evaluates ~460; CD suggests
// 389, evaluates ~226; OpenTuner suggests ~157k, evaluates ~273. CCD/CD
// spend 99 % of the time evaluating; OpenTuner 13-45 %.

#include <iostream>
#include <string>

#include "src/apps/pennant.hpp"
#include "src/automap/automap.hpp"
#include "src/machine/machine.hpp"
#include "src/search/ensemble_tuner.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/format.hpp"
#include "src/support/table.hpp"

int main(int argc, char** argv) {
  using namespace automap;
  int threads = 1;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--threads") threads = std::stoi(argv[i + 1]);

  std::cout << "=== Section 5.3: search-efficiency statistics (Pennant "
               "320x180, Shepard 1 node) ===\n\n";

  const MachineModel machine = make_shepard(1);
  const BenchmarkApp app = make_pennant(pennant_config_for(1, 1));
  Simulator sim(machine, app.graph, app.sim);

  const SearchResult ccd = automap_optimize(
      sim, SearchAlgorithm::kCcd,
      {.rotations = 5, .repeats = 7, .seed = 42, .threads = threads});
  const SearchOptions budgeted{.rotations = 5, .repeats = 7,
                               .time_budget_s = ccd.stats.search_time_s,
                               .seed = 42, .threads = threads};
  const SearchResult cd = automap_optimize(sim, SearchAlgorithm::kCd,
                                           budgeted);
  const SearchResult ot = run_ensemble_tuner(sim, budgeted);

  Table table({"algorithm", "suggested", "evaluated", "invalid",
               "eval fraction", "best exec"});
  for (const SearchResult* r : {&ccd, &cd, &ot}) {
    table.add_row({r->algorithm, std::to_string(r->stats.suggested),
                   std::to_string(r->stats.evaluated),
                   std::to_string(r->stats.invalid),
                   format_fixed(r->stats.evaluation_fraction(), 2),
                   format_seconds(r->best_seconds)});
  }
  table.print(std::cout);
  return 0;
}
