// Component micro-benchmarks (google-benchmark): the building blocks whose
// cost determines how many candidate mappings an offline search can afford
// to try — simulator runs, dependence analysis, overlap-graph construction,
// co-location fixed points and mapping hashing.

#include <benchmark/benchmark.h>

#include <limits>

#include "src/apps/circuit.hpp"
#include "src/apps/htr.hpp"
#include "src/apps/pennant.hpp"
#include "src/apps/stencil.hpp"
#include "src/machine/machine.hpp"
#include "src/report/journal.hpp"
#include "src/runtime/mapper.hpp"
#include "src/support/json.hpp"
#include "src/search/coordinate_descent.hpp"
#include "src/search/search.hpp"
#include "src/sim/simulator.hpp"

namespace {
using namespace automap;

const BenchmarkApp& pennant_app() {
  static const BenchmarkApp app = make_pennant(pennant_config_for(1, 1));
  return app;
}
const MachineModel& shepard1() {
  static const MachineModel m = make_shepard(1);
  return m;
}

void BM_SimulatorRunCircuit(benchmark::State& state) {
  const BenchmarkApp app = make_circuit(circuit_config_for(1, 3));
  Simulator sim(shepard1(), app.graph, app.sim);
  DefaultMapper dm;
  const Mapping m = dm.map_all(app.graph, shepard1());
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(m, ++seed));
  }
}
BENCHMARK(BM_SimulatorRunCircuit);

void BM_SimulatorRunPennant(benchmark::State& state) {
  Simulator sim(shepard1(), pennant_app().graph, pennant_app().sim);
  DefaultMapper dm;
  const Mapping m = dm.map_all(pennant_app().graph, shepard1());
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(m, ++seed));
  }
}
BENCHMARK(BM_SimulatorRunPennant);

void BM_SimulatorRunHtr(benchmark::State& state) {
  const BenchmarkApp app = make_htr(htr_config_for(1, 1));
  Simulator sim(shepard1(), app.graph, app.sim);
  DefaultMapper dm;
  const Mapping m = dm.map_all(app.graph, shepard1());
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(m, ++seed));
  }
}
BENCHMARK(BM_SimulatorRunHtr);

void BM_DependenceAnalysisPennant(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_pennant(pennant_config_for(1, 1)));
  }
}
BENCHMARK(BM_DependenceAnalysisPennant);

void BM_OverlapGraphBuild(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(pennant_app().graph.build_overlap_graph());
  }
}
BENCHMARK(BM_OverlapGraphBuild);

void BM_OverlapMapBuild(benchmark::State& state) {
  const auto edges = pennant_app().graph.build_overlap_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        detail::build_overlap_map(pennant_app().graph, edges));
  }
}
BENCHMARK(BM_OverlapMapBuild);

void BM_ColocationFixedPoint(benchmark::State& state) {
  const TaskGraph& g = pennant_app().graph;
  std::vector<OverlapEdge> edges = g.build_overlap_graph();
  for (const Collection& c : g.collections())
    edges.push_back({c.id, c.id, g.collection_bytes(c.id)});
  const auto overlap = detail::build_overlap_map(g, edges);
  const Mapping f = search_starting_point(g, shepard1());
  for (auto _ : state) {
    benchmark::DoNotOptimize(detail::colocation_constraints(
        f, TaskId(0), 0, ProcKind::kGpu, MemKind::kZeroCopy, overlap, g,
        shepard1()));
  }
}
BENCHMARK(BM_ColocationFixedPoint);

void BM_MappingHash(benchmark::State& state) {
  const Mapping m = search_starting_point(pennant_app().graph, shepard1());
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.hash());
  }
}
BENCHMARK(BM_MappingHash);

void BM_MappingSerializeRoundTrip(benchmark::State& state) {
  const Mapping m = search_starting_point(pennant_app().graph, shepard1());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Mapping::parse(m.serialize(),
                                            pennant_app().graph));
  }
}
BENCHMARK(BM_MappingSerializeRoundTrip);

void BM_StencilGraphGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_stencil(stencil_config_for(4, 5)));
  }
}
BENCHMARK(BM_StencilGraphGeneration);

// Journal emission cost per candidate event (in-memory journal). The hot
// path with the journal *disabled* is a single pointer check — covered by
// the SimThroughput gate below, which runs with options.journal == nullptr.
void BM_JournalEmitCandidate(benchmark::State& state) {
  Journal journal;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    journal.event("candidate")
        .integer("seq", static_cast<long long>(++seq))
        .str("status", "evaluated")
        .num("mean", 0.0525)
        .num("clock", static_cast<double>(seq) * 0.1)
        .str("hash", hex_u64(0x9e3779b97f4a7c15ULL * seq));
  }
  benchmark::DoNotOptimize(journal.text());
}
BENCHMARK(BM_JournalEmitCandidate);

// Simulator steady-state throughput on the search fast path (begin_runs
// once, run_prepared per repeat against a reused arena) — the quantity that
// bounds how many candidates a search can afford. The CI perf-smoke job
// runs these with
//
//   bench_micro "--benchmark_filter=SimThroughput|SimRepeats" \
//               --benchmark_out=BENCH_sim.json --benchmark_out_format=json
//
// and fails on a >1.3x regression of any entry versus the committed baseline
// (bench/BENCH_sim_baseline.json, checked by tools/check_bench_sim.py).
// Counters: runs_per_s (simulated runs per wall second), events_per_second
// (scheduling events — task executions plus copy legs — per wall second;
// the roadmap's ~10M events/s goal tracks this number directly) and
// ns_per_event (its inverse in wall nanoseconds).
void sim_throughput(benchmark::State& state, const BenchmarkApp& app) {
  Simulator sim(shepard1(), app.graph, app.sim);
  DefaultMapper dm;
  const Mapping m = dm.map_all(app.graph, shepard1());
  SimScratch scratch;
  if (!sim.begin_runs(m, scratch)) {
    state.SkipWithError("default mapping failed to resolve");
    return;
  }
  std::uint64_t seed = 0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const ExecutionReport& rep = sim.run_prepared(
        m, ++seed, scratch, std::numeric_limits<double>::infinity());
    // True event count from the run itself: one per task execution plus one
    // per copy leg — the denominator of the ~10M events/s roadmap goal.
    events += rep.events;
    benchmark::DoNotOptimize(&rep);
  }
  const double runs = static_cast<double>(state.iterations());
  const double ev = static_cast<double>(events);
  state.counters["runs_per_s"] =
      benchmark::Counter(runs, benchmark::Counter::kIsRate);
  state.counters["events_per_second"] =
      benchmark::Counter(ev, benchmark::Counter::kIsRate);
  // kIsRate|kInvert reports elapsed/value; with value = events * 1e-9 that
  // is wall nanoseconds per event.
  state.counters["ns_per_event"] = benchmark::Counter(
      ev * 1e-9,
      benchmark::Counter::Flags(benchmark::Counter::kIsRate |
                                benchmark::Counter::kInvert));
}

/// Batch-interleaved variant: all `lanes` repeats of the candidate in one
/// pass over the plan (Simulator::run_repeats) — the shape the evaluator's
/// repeat loop uses, where graph-traversal overhead amortizes across lanes.
void sim_repeats_throughput(benchmark::State& state, const BenchmarkApp& app,
                            std::size_t lanes) {
  Simulator sim(shepard1(), app.graph, app.sim);
  DefaultMapper dm;
  const Mapping m = dm.map_all(app.graph, shepard1());
  SimScratch scratch;
  if (!sim.begin_runs(m, scratch)) {
    state.SkipWithError("default mapping failed to resolve");
    return;
  }
  std::vector<std::uint64_t>& seeds = scratch.seed_buffer();
  seeds.resize(lanes);
  std::uint64_t seed = 0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    for (std::uint64_t& s : seeds) s = ++seed;
    const auto reports = sim.run_repeats(
        m, seeds, scratch, std::numeric_limits<double>::infinity());
    for (const ExecutionReport& rep : reports) events += rep.events;
    benchmark::DoNotOptimize(reports.data());
  }
  const double runs =
      static_cast<double>(state.iterations()) * static_cast<double>(lanes);
  const double ev = static_cast<double>(events);
  state.counters["runs_per_s"] =
      benchmark::Counter(runs, benchmark::Counter::kIsRate);
  state.counters["events_per_second"] =
      benchmark::Counter(ev, benchmark::Counter::kIsRate);
  state.counters["ns_per_event"] = benchmark::Counter(
      ev * 1e-9,
      benchmark::Counter::Flags(benchmark::Counter::kIsRate |
                                benchmark::Counter::kInvert));
}

void BM_SimThroughputStencil(benchmark::State& state) {
  const BenchmarkApp app = make_stencil(stencil_config_for(1, 1));
  sim_throughput(state, app);
}
BENCHMARK(BM_SimThroughputStencil);

void BM_SimThroughputPennant(benchmark::State& state) {
  sim_throughput(state, pennant_app());
}
BENCHMARK(BM_SimThroughputPennant);

void BM_SimThroughputHtr(benchmark::State& state) {
  const BenchmarkApp app = make_htr(htr_config_for(1, 1));
  sim_throughput(state, app);
}
BENCHMARK(BM_SimThroughputHtr);

void BM_SimRepeatsThroughputStencil(benchmark::State& state) {
  const BenchmarkApp app = make_stencil(stencil_config_for(1, 1));
  sim_repeats_throughput(state, app, 7);
}
BENCHMARK(BM_SimRepeatsThroughputStencil);

void BM_SimRepeatsThroughputPennant(benchmark::State& state) {
  sim_repeats_throughput(state, pennant_app(), 7);
}
BENCHMARK(BM_SimRepeatsThroughputPennant);

}  // namespace

BENCHMARK_MAIN();
