// Reproduces Figure 6d: HTR (multi-physics solver) speedups of the custom
// mapper and AutoMap-CCD over the default mapper.
//
// Expected shape (paper): 1.44x/1.5x at the two smallest inputs on one node
// (CPU placements + Zero-Copy for shared collections), approaching 1.0 at
// scale where the GPU-heavy chemistry dominates and the default's
// all-GPU/Frame-Buffer strategy is already optimal.

#include "bench/fig6_common.hpp"
#include "src/apps/htr.hpp"

int main(int argc, char** argv) {
  automap::bench::run_fig6(
      "Figure 6d: HTR", 5,
      [](int nodes, int step) {
        return automap::make_htr(automap::htr_config_for(nodes, step));
      },
      automap::bench::parse_bench_observability(argc, argv));
  return 0;
}
