// Reproduces Figures 2 and 3: the discovered mappings themselves.
//
// Fig. 2 shows a partial dependence graph of HTR with a discovered
// mapping; Fig. 3 visualizes the best HTR mappings for two inputs on
// 1/2/4 nodes — tasks tagged CPU/GPU, collection arguments colored by
// memory kind with relative-size bars. The paper highlights the 4-node
// 64x256y72z mapping that places 9 collection arguments in Zero-Copy and
// 2 tasks on the CPU (§5 "Results").
//
// This bench runs the same searches and prints the same visualization
// (text form; pipe through `automap_cli visualize --dot` for graphics),
// plus the per-mapping decision counts the caption quotes.

#include <iostream>

#include "src/apps/htr.hpp"
#include "src/automap/automap.hpp"
#include "src/machine/machine.hpp"
#include "src/report/visualize.hpp"
#include "src/runtime/mapper.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/format.hpp"

namespace {
using namespace automap;

void show(const BenchmarkApp& app, const MachineModel& machine) {
  Simulator sim(machine, app.graph, app.sim);
  DefaultMapper dm;
  const double def =
      measure_mapping(sim, dm.map_all(app.graph, machine), 31, 1);
  const SearchResult res = automap_optimize(
      sim, SearchAlgorithm::kCcd, {.rotations = 5, .repeats = 7, .seed = 42});
  const double am = measure_mapping(sim, res.best, 31, 2);

  int cpu_tasks = 0, zc_args = 0, system_args = 0;
  for (const GroupTask& t : app.graph.tasks()) {
    if (res.best.at(t.id).proc == ProcKind::kCpu) ++cpu_tasks;
    for (std::size_t a = 0; a < t.args.size(); ++a) {
      const MemKind m = res.best.primary_memory(t.id, a);
      if (m == MemKind::kZeroCopy) ++zc_args;
      if (m == MemKind::kSystem) ++system_args;
    }
  }

  std::cout << "\n=== HTR " << app.input << " on " << machine.num_nodes()
            << " node(s): " << format_speedup(def / am)
            << " over the default; " << cpu_tasks << " task(s) on CPU, "
            << zc_args << " collection arg(s) in Zero-Copy, " << system_args
            << " in System ===\n";
  std::cout << render_mapping(app.graph, res.best);
}

}  // namespace

int main() {
  std::cout << "=== Figures 2-3: discovered HTR mappings (Shepard) ===\n";
  // Fig. 3's grid: two input families across 1, 2 and 4 nodes.
  for (const int nodes : {1, 2, 4}) {
    const MachineModel machine = make_shepard(nodes);
    for (const int step : {1, 3}) {
      show(make_htr(htr_config_for(nodes, step)), machine);
    }
  }
  return 0;
}
