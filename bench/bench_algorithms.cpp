// Extended search-algorithm comparison (beyond the paper's Fig. 9 trio):
// every algorithm in the search registry — CCD, CD, the ensemble tuner,
// random search, simulated annealing, the HEFT-style static baseline and
// multi-start CCD — under the CCD budget, on Circuit and HTR.
//
// The HEFT row demonstrates the paper's §6 argument directly: static
// scheduling with a single memory per processor cannot exploit the
// task/data trade-off, so it matches the default mapper at best.
//
// Pass --threads N to parallelize candidate evaluation (bit-identical
// results; only wall-clock changes).

#include <iostream>
#include <string>
#include <vector>

#include "src/apps/circuit.hpp"
#include "src/apps/htr.hpp"
#include "src/apps/pennant.hpp"
#include "src/automap/automap.hpp"
#include "src/machine/machine.hpp"
#include "src/search/algorithms.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/format.hpp"
#include "src/support/table.hpp"

namespace {
using namespace automap;

void run_case(const BenchmarkApp& app, const MachineModel& machine,
              int threads, bool memory_fallbacks = false) {
  Simulator sim(machine, app.graph, app.sim);

  const SearchAlgorithmInfo* ccd_info = find_search_algorithm("ccd");
  const SearchResult ccd =
      ccd_info->run(sim, {.rotations = 5, .repeats = 7, .seed = 42,
                          .memory_fallbacks = memory_fallbacks,
                          .threads = threads});
  SearchOptions budgeted{.rotations = 5, .repeats = 7,
                         .time_budget_s = ccd.stats.search_time_s,
                         .seed = 42, .threads = threads};
  budgeted.memory_fallbacks = memory_fallbacks;

  std::vector<SearchResult> results = {ccd};
  for (const SearchAlgorithmInfo& info : search_algorithms()) {
    if (info.name == "ccd") continue;
    SearchOptions options = budgeted;
    // Multistart gets 3x the budget (it runs up to three CCD passes).
    if (info.name == "multistart")
      options.time_budget_s = 3 * ccd.stats.search_time_s;
    results.push_back(info.run(sim, options));
  }

  std::cout << "\n-- " << app.name << " " << app.input << " (budget "
            << format_seconds(ccd.stats.search_time_s) << ") --\n";
  Table table({"algorithm", "best exec", "vs CCD", "evaluated"});
  for (const SearchResult& r : results) {
    table.add_row({r.algorithm, format_seconds(r.best_seconds),
                   format_fixed(r.best_seconds / ccd.best_seconds, 2),
                   std::to_string(r.stats.evaluated)});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 1;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--threads") threads = std::stoi(argv[i + 1]);

  std::cout << "=== Extended algorithm comparison (Shepard, 1 node) ===\n";
  const MachineModel machine = make_shepard(1);
  run_case(make_circuit(circuit_config_for(1, 1)), machine, threads);
  run_case(make_htr(htr_config_for(1, 1)), machine, threads);

  // Memory-constrained Pennant (+7 % over the Frame-Buffer, §5.2): static
  // scheduling has no way to pick *which* collections to demote — its
  // first-fit fallbacks land arbitrarily — while CCD chooses the subset.
  PennantConfig overflow;
  overflow.zones_y = (pennant_max_fb_zones_y(
                          machine.mem_capacity(MemKind::kFrameBuffer), 1, 1) *
                      107) /
                     100;
  run_case(make_pennant(overflow), machine, threads,
           /*memory_fallbacks=*/true);
  return 0;
}
