// Extended search-algorithm comparison (beyond the paper's Fig. 9 trio):
// CCD, CD and the ensemble tuner, plus random search, simulated annealing
// and the HEFT-style static baseline, all under the CCD budget, on Circuit
// and HTR.
//
// The HEFT row demonstrates the paper's §6 argument directly: static
// scheduling with a single memory per processor cannot exploit the
// task/data trade-off, so it matches the default mapper at best.

#include <iostream>

#include "src/apps/circuit.hpp"
#include "src/apps/htr.hpp"
#include "src/apps/pennant.hpp"
#include "src/automap/automap.hpp"
#include "src/machine/machine.hpp"
#include "src/search/ensemble_tuner.hpp"
#include "src/search/extra_algorithms.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/format.hpp"
#include "src/support/table.hpp"

namespace {
using namespace automap;

void run_case(const BenchmarkApp& app, const MachineModel& machine,
              bool memory_fallbacks = false) {
  Simulator sim(machine, app.graph, app.sim);

  const SearchResult ccd = automap_optimize(
      sim, SearchAlgorithm::kCcd,
      {.rotations = 5, .repeats = 7, .seed = 42,
       .memory_fallbacks = memory_fallbacks});
  SearchOptions budgeted{.rotations = 5, .repeats = 7,
                         .time_budget_s = ccd.stats.search_time_s,
                         .seed = 42};
  budgeted.memory_fallbacks = memory_fallbacks;
  // Multistart gets 3x the budget (it runs up to three CCD passes).
  SearchOptions multistart_options = budgeted;
  multistart_options.time_budget_s = 3 * ccd.stats.search_time_s;
  const SearchResult results[] = {
      ccd,
      automap_optimize(sim, SearchAlgorithm::kCd, budgeted),
      run_ensemble_tuner(sim, budgeted),
      run_random_search(sim, budgeted),
      run_simulated_annealing(sim, budgeted),
      run_heft_static(sim, budgeted),
      run_ccd_multistart(sim, multistart_options, 2),
  };

  std::cout << "\n-- " << app.name << " " << app.input << " (budget "
            << format_seconds(ccd.stats.search_time_s) << ") --\n";
  Table table({"algorithm", "best exec", "vs CCD", "evaluated"});
  for (const SearchResult& r : results) {
    table.add_row({r.algorithm, format_seconds(r.best_seconds),
                   format_fixed(r.best_seconds / ccd.best_seconds, 2),
                   std::to_string(r.stats.evaluated)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "=== Extended algorithm comparison (Shepard, 1 node) ===\n";
  const MachineModel machine = make_shepard(1);
  run_case(make_circuit(circuit_config_for(1, 1)), machine);
  run_case(make_htr(htr_config_for(1, 1)), machine);

  // Memory-constrained Pennant (+7 % over the Frame-Buffer, §5.2): static
  // scheduling has no way to pick *which* collections to demote — its
  // first-fit fallbacks land arbitrarily — while CCD chooses the subset.
  PennantConfig overflow;
  overflow.zones_y = (pennant_max_fb_zones_y(
                          machine.mem_capacity(MemKind::kFrameBuffer), 1, 1) *
                      107) /
                     100;
  run_case(make_pennant(overflow), machine, /*memory_fallbacks=*/true);
  return 0;
}
