# One bench binary per paper table/figure plus micro-benchmarks and
# ablations. Included from the top-level CMakeLists so build/bench/ holds
# nothing but the executables.
file(GLOB BENCH_SOURCES CONFIGURE_DEPENDS ${CMAKE_CURRENT_SOURCE_DIR}/bench/*.cpp)

foreach(bench_src ${BENCH_SOURCES})
  get_filename_component(bench_name ${bench_src} NAME_WE)
  add_executable(${bench_name} ${bench_src})
  target_link_libraries(${bench_name} PRIVATE automap benchmark::benchmark)
  set_target_properties(${bench_name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endforeach()
