// Reproduces the Figure 5 table: for each benchmark application, the task
// count, collection-argument count, search-space size and CCD search time.
//
// Paper values: Circuit 3/15/~2^18/1-2h, Stencil 2/12/~2^14/1-2h,
// Pennant 31/97/~2^128/1-4h, HTR 28/72/~2^100/4-7h, Maestro 13/30/~2^43/1-2h.
// The search-space column uses the paper's §3.2 estimate (P^T * M^C with
// two processor kinds and two addressable memories per kind) and
// reproduces the exponents exactly.

#include <iostream>

#include "src/apps/circuit.hpp"
#include "src/apps/htr.hpp"
#include "src/apps/maestro.hpp"
#include "src/apps/pennant.hpp"
#include "src/apps/stencil.hpp"
#include "src/automap/automap.hpp"
#include "src/machine/machine.hpp"
#include "src/search/search.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/format.hpp"
#include "src/support/table.hpp"

int main() {
  using namespace automap;
  std::cout << "=== Figure 5: benchmark applications ===\n\n";

  const MachineModel machine = make_shepard(1);
  Table table({"application", "tasks", "collection args",
               "search space", "CCD search time (simulated)"});

  struct Case {
    BenchmarkApp app;
    std::vector<TaskId> searched;  // empty = all
  };
  std::vector<Case> cases;
  cases.push_back({make_circuit(circuit_config_for(1, 4)), {}});
  cases.push_back({make_stencil(stencil_config_for(1, 4)), {}});
  cases.push_back({make_pennant(pennant_config_for(1, 1)), {}});
  cases.push_back({make_htr(htr_config_for(1, 1)), {}});
  {
    MaestroConfig mc;
    mc.num_lf_samples = 16;
    BenchmarkApp maestro = make_maestro(mc);
    const auto lf = maestro_lf_tasks(maestro);
    cases.push_back({std::move(maestro), lf});
  }

  for (const Case& c : cases) {
    const TaskGraph& g = c.app.graph;
    std::size_t tasks = g.num_tasks();
    std::size_t args = g.num_collection_args();
    if (!c.searched.empty()) {
      // Maestro's search space covers only the LF tasks (Fig. 5).
      tasks = c.searched.size();
      args = 0;
      for (const TaskId t : c.searched) args += g.task(t).args.size();
    }

    double bits = search_space_log2(g, machine);
    if (!c.searched.empty()) {
      // Subtract the pinned HF tasks' contribution: one processor bit plus
      // one memory bit per argument (the same P = M = 2 estimate).
      for (const GroupTask& t : g.tasks()) {
        bool searched = false;
        for (const TaskId s : c.searched)
          if (s == t.id) searched = true;
        if (searched) continue;
        bits -= 1.0 + static_cast<double>(t.args.size());
      }
    }

    Simulator sim(machine, g, c.app.sim);
    SearchOptions options{.rotations = 5, .repeats = 7, .seed = 42};
    if (!c.searched.empty()) {
      // Maestro: only the LF tasks are searched (§3.3 subset search).
      for (const GroupTask& t : g.tasks()) {
        bool searched = false;
        for (const TaskId s : c.searched)
          if (s == t.id) searched = true;
        if (!searched) options.frozen_tasks.push_back(t.id);
      }
    }
    const SearchResult ccd =
        automap_optimize(sim, SearchAlgorithm::kCcd, options);

    table.add_row({c.app.name, std::to_string(tasks), std::to_string(args),
                   "~2^" + std::to_string(static_cast<int>(bits)),
                   format_seconds(ccd.stats.search_time_s)});
  }
  table.print(std::cout);
  return 0;
}
