// Reproduces Figure 9: best execution time per iteration as a function of
// search time for the three search algorithms (AM-CCD, AM-CD, AM-OT) on
// Pennant (320x90, 320x180) and HTR (8x8y9z, 16x16y18z), all given the same
// simulated time budget (§5.3).
//
// Expected shape (paper): CCD reaches the fastest mappings (up to 1.57x
// better than the others); CD plateaus earlier and higher (it is CCD's
// final rotation alone); the ensemble tuner converges slowest because it
// wastes proposals on invalid/duplicate mappings.
//
// Pass --threads N to fan candidate evaluation across N worker threads
// (0 = one per hardware thread). Every simulated-seconds statistic,
// trajectory point and chosen mapping is bit-identical across thread
// counts — only the wall-clock column changes. --no-prune disables
// incumbent-bounded candidate pruning; the results are again bit-identical,
// only slower to compute — the flag exists to demonstrate (and measure)
// exactly that. --preset pennant|htr|stencil|all selects the app series
// (default all). --telemetry prints the per-algorithm search telemetry
// (cache hit rate, rotation deltas, wall vs simulated clocks);
// --trace-json PATH exports a Chrome-trace timeline of the last case's
// AM-CCD winner.

#include <chrono>
#include <iostream>
#include <string>

#include "bench/fig6_common.hpp"
#include "src/apps/htr.hpp"
#include "src/apps/pennant.hpp"
#include "src/apps/stencil.hpp"
#include "src/automap/automap.hpp"
#include "src/machine/machine.hpp"
#include "src/report/analysis.hpp"
#include "src/search/ensemble_tuner.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/format.hpp"
#include "src/support/table.hpp"

namespace {
using namespace automap;

/// Wall-clock seconds of one call (the real time the search costs us, as
/// opposed to the simulated seconds it charges the search clock).
template <typename Fn>
SearchResult timed(Fn&& fn, double& wall_s) {
  const auto start = std::chrono::steady_clock::now();
  SearchResult result = fn();
  wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count();
  return result;
}

void run_case(const BenchmarkApp& app, const MachineModel& machine,
              const bench::BenchObservability& opts) {
  Simulator sim(machine, app.graph, app.sim);

  // Budget: what a full CCD needs, shared by all three algorithms.
  double ccd_wall = 0.0, cd_wall = 0.0, ot_wall = 0.0;
  // No pass here reuses the profiles database, so skip serializing it —
  // the wall-clock column should measure the search, not the export.
  const SearchOptions base{.rotations = 5, .repeats = 7, .seed = 42,
                           .threads = opts.threads,
                           .prune_candidates = opts.prune,
                           .export_profiles_db = false};
  const SearchResult ccd = timed(
      [&] { return automap_optimize(sim, SearchAlgorithm::kCcd, base); },
      ccd_wall);
  const double budget = ccd.stats.search_time_s;
  SearchOptions budgeted = base;
  budgeted.time_budget_s = budget;
  const SearchResult cd = timed(
      [&] { return automap_optimize(sim, SearchAlgorithm::kCd, budgeted); },
      cd_wall);
  const SearchResult ot = timed(
      [&] { return run_ensemble_tuner(sim, budgeted); }, ot_wall);

  std::cout << "\n-- " << app.name << " " << app.input
            << " (budget " << format_seconds(budget) << ", " << opts.threads
            << " thread(s)) --\n";
  Table table({"algorithm", "best exec/iter", "search time", "wall clock",
               "suggested", "evaluated", "eval frac"});
  const int iters = app.sim.iterations;
  const double walls[] = {ccd_wall, cd_wall, ot_wall};
  const SearchResult* results[] = {&ccd, &cd, &ot};
  for (int i = 0; i < 3; ++i) {
    const SearchResult* r = results[i];
    table.add_row({r->algorithm, format_seconds(r->best_seconds / iters),
                   format_seconds(r->stats.search_time_s),
                   format_seconds(walls[i]),
                   std::to_string(r->stats.suggested),
                   std::to_string(r->stats.evaluated),
                   format_fixed(r->stats.evaluation_fraction(), 2)});
  }
  table.print(std::cout);

  // Convergence trajectories: (search time, best exec time/iteration).
  for (const SearchResult* r : results) {
    std::cout << "  " << r->algorithm << " trajectory:";
    for (const TrajectoryPoint& p : r->trajectory) {
      std::cout << " (" << format_fixed(p.search_time_s, 1) << "s, "
                << format_seconds(p.best_exec_s / iters) << ")";
    }
    std::cout << "\n";
  }

  if (opts.telemetry) {
    for (const SearchResult* r : results)
      std::cout << render_search_telemetry(*r);
  }
  bench::emit_bench_observability(machine, app, ccd.best, opts);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchObservability opts =
      bench::parse_bench_observability(argc, argv);
  std::string preset = "all";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--preset" && i + 1 < argc)
      preset = argv[i + 1];
  }

  std::cout << "=== Figure 9: search-algorithm comparison (Shepard, "
               "1 node) ===\n";
  const MachineModel machine = make_shepard(1);
  if (preset == "all" || preset == "pennant") {
    for (const int step : {0, 1})
      run_case(make_pennant(pennant_config_for(1, step)), machine, opts);
  }
  if (preset == "all" || preset == "htr") {
    for (const int step : {0, 1})
      run_case(make_htr(htr_config_for(1, step)), machine, opts);
  }
  if (preset == "all" || preset == "stencil") {
    for (const int step : {0, 1})
      run_case(make_stencil(stencil_config_for(1, step)), machine, opts);
  }
  return 0;
}
