// Reproduces Figure 9: best execution time per iteration as a function of
// search time for the three search algorithms (AM-CCD, AM-CD, AM-OT) on
// Pennant (320x90, 320x180) and HTR (8x8y9z, 16x16y18z), all given the same
// simulated time budget (§5.3).
//
// Expected shape (paper): CCD reaches the fastest mappings (up to 1.57x
// better than the others); CD plateaus earlier and higher (it is CCD's
// final rotation alone); the ensemble tuner converges slowest because it
// wastes proposals on invalid/duplicate mappings.

#include <iostream>

#include "src/apps/htr.hpp"
#include "src/apps/pennant.hpp"
#include "src/automap/automap.hpp"
#include "src/machine/machine.hpp"
#include "src/search/ensemble_tuner.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/format.hpp"
#include "src/support/table.hpp"

namespace {
using namespace automap;

void run_case(const BenchmarkApp& app, const MachineModel& machine) {
  Simulator sim(machine, app.graph, app.sim);

  // Budget: what a full CCD needs, shared by all three algorithms.
  const SearchResult ccd = automap_optimize(
      sim, SearchAlgorithm::kCcd, {.rotations = 5, .repeats = 7, .seed = 42});
  const double budget = ccd.stats.search_time_s;
  const SearchOptions budgeted{.rotations = 5, .repeats = 7,
                               .time_budget_s = budget, .seed = 42};
  const SearchResult cd = automap_optimize(sim, SearchAlgorithm::kCd,
                                           budgeted);
  const SearchResult ot = run_ensemble_tuner(sim, budgeted);

  std::cout << "\n-- " << app.name << " " << app.input
            << " (budget " << format_seconds(budget) << ") --\n";
  Table table({"algorithm", "best exec/iter", "search time", "suggested",
               "evaluated", "eval frac"});
  const int iters = app.sim.iterations;
  for (const SearchResult* r : {&ccd, &cd, &ot}) {
    table.add_row({r->algorithm, format_seconds(r->best_seconds / iters),
                   format_seconds(r->stats.search_time_s),
                   std::to_string(r->stats.suggested),
                   std::to_string(r->stats.evaluated),
                   format_fixed(r->stats.evaluation_fraction(), 2)});
  }
  table.print(std::cout);

  // Convergence trajectories: (search time, best exec time/iteration).
  for (const SearchResult* r : {&ccd, &cd, &ot}) {
    std::cout << "  " << r->algorithm << " trajectory:";
    for (const TrajectoryPoint& p : r->trajectory) {
      std::cout << " (" << format_fixed(p.search_time_s, 1) << "s, "
                << format_seconds(p.best_exec_s / iters) << ")";
    }
    std::cout << "\n";
  }
}

}  // namespace

int main() {
  std::cout << "=== Figure 9: search-algorithm comparison (Shepard, "
               "1 node) ===\n";
  const MachineModel machine = make_shepard(1);
  for (const int step : {0, 1}) {
    run_case(make_pennant(pennant_config_for(1, step)), machine);
  }
  for (const int step : {0, 1}) {
    run_case(make_htr(htr_config_for(1, step)), machine);
  }
  return 0;
}
