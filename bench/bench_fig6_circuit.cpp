// Reproduces Figure 6a: Circuit speedups of the custom mapper and
// AutoMap-CCD over Legion's default mapper, weak-scaled over 1/2/4/8 nodes.
//
// Expected shape (paper): large AM-CCD gains at the smallest inputs (2.41x
// at n50w200 on 1 node) converging to ~1.0 at the largest; the custom
// mapper ~1.0 at small inputs, below 1.0 at large single-node inputs, and
// slightly ahead of AM-CCD in the multi-node mid-range thanks to its
// blocked decomposition (a dimension AutoMap does not search).

#include "bench/fig6_common.hpp"
#include "src/apps/circuit.hpp"

int main(int argc, char** argv) {
  automap::bench::run_fig6(
      "Figure 6a: Circuit", 8,
      [](int nodes, int step) {
        return automap::make_circuit(automap::circuit_config_for(nodes, step));
      },
      automap::bench::parse_bench_observability(argc, argv));
  return 0;
}
