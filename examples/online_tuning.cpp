// Inspector-executor (online) tuning — the §6 extension.
//
// Long production runs cannot afford a separate offline search, but they
// can afford to *become* the search: the first stretch of iterations
// doubles as the inspector that measures candidate mappings, and the rest
// of the run executes under the best mapping found. This example shows the
// break-even: short runs should stick with the default mapper, long runs
// amortize the search many times over.
//
// Usage: online_tuning [app] [step]   (default circuit 0)

#include <cstdlib>
#include <iostream>

#include "src/apps/registry.hpp"
#include "src/automap/automap.hpp"
#include "src/machine/machine.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/format.hpp"
#include "src/support/table.hpp"

int main(int argc, char** argv) {
  using namespace automap;
  const std::string name = argc > 1 ? argv[1] : "circuit";
  const int step = argc > 2 ? std::atoi(argv[2]) : 0;

  const BenchmarkApp app = make_app_by_name(name, 1, step);
  const MachineModel machine = make_shepard(1);
  Simulator sim(machine, app.graph, {.iterations = 10, .noise_sigma = 0.05});

  std::cout << "online tuning of " << app.name << " " << app.input
            << " (evaluation window: 10 iterations per candidate run)\n\n";

  Table table({"production run (iters)", "default mapper", "online AutoMap",
               "speedup", "search share"});
  for (const long total : {100000L, 400000L, 2000000L, 10000000L}) {
    OnlineOptions options;
    options.total_iterations = total;
    options.search = {.rotations = 3, .repeats = 3, .seed = 42};
    try {
      const OnlineResult r = automap_online(sim, options);
      table.add_row(
          {std::to_string(total), format_seconds(r.default_seconds),
           format_seconds(r.online_seconds), format_speedup(r.speedup()),
           format_fixed(100.0 * static_cast<double>(r.search_iterations) /
                            static_cast<double>(total),
                        1) +
               "%"});
    } catch (const Error&) {
      table.add_row({std::to_string(total), "-", "-",
                     "run too short to tune", "-"});
    }
  }
  table.print(std::cout);
  std::cout << "\nThe search consumes a fixed number of iterations, so its\n"
               "share shrinks as the production run grows — the discovered\n"
               "mapping's advantage compounds over every remaining "
               "iteration.\n";
  return 0;
}
