// Bring your own application: writing a task-based program against the
// mini-Legion Program API and tuning it with AutoMap.
//
// The app is a 1-D reaction-diffusion solver: per time step, a
// memory-bound diffusion sweep over a block-partitioned field (with halo
// exchange built by the partition helper), a compute-dense per-cell
// reaction step with a GPU-friendly variant, and a cheap reduction. The
// point of the example is the workflow, not the physics:
//
//   Program -> lower() -> Simulator -> automap_optimize -> mapping.
//
// Usage: custom_app [cells] [pieces]   (default 262144 16; at this size
// AutoMap finds a mixed CPU/GPU mapping ~1.3x faster than the default)

#include <cstdlib>
#include <iostream>

#include "src/automap/automap.hpp"
#include "src/machine/machine.hpp"
#include "src/report/analysis.hpp"
#include "src/runtime/mapper.hpp"
#include "src/runtime/partition.hpp"
#include "src/runtime/program.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/format.hpp"

int main(int argc, char** argv) {
  using namespace automap;
  const long cells = argc > 1 ? std::atol(argv[1]) : 1L << 18;
  const int pieces = argc > 2 ? std::atoi(argv[2]) : 16;

  // --- write the application against the Program API ----------------------
  Program program;
  const RegionId field =
      program.add_region("field", Rect::line(0, cells - 1), 8);
  const RegionId rates =
      program.add_region("rates", Rect::line(0, cells - 1), 8);
  const RegionId misc = program.add_region("misc", Rect::line(0, 255), 8);

  // Block-partition the field with 2-wide halos; the helper creates the
  // overlap structure the dependence analysis and CCD consume.
  const BlockPartition1D part = make_block_partition_1d(
      program, field, 0, cells - 1, pieces, /*halo_width=*/2, "field");
  const CollectionId field_all =
      program.add_collection(field, "field_all", Rect::line(0, cells - 1));
  const CollectionId rate_all =
      program.add_collection(rates, "rates_all", Rect::line(0, cells - 1));
  const CollectionId residual =
      program.add_collection(misc, "residual", Rect::line(0, 255));

  const double per_piece = static_cast<double>(cells) / pieces;
  // diffuse: 3-point stencil, memory bound (tiny per-cell compute).
  program.launch("diffuse", pieces,
                 {.cpu_seconds_per_point = 1.0e-9 * per_piece,
                  .gpu_seconds_per_point = 0.02e-9 * per_piece},
                 {{field_all, Privilege::kReadWrite, 1.0},
                  {part.halo_lo[1], Privilege::kReadOnly, 1.0},
                  {part.halo_hi[0], Privilege::kReadOnly, 1.0},
                  {part.blocks[0], Privilege::kWriteOnly, 1.0},
                  {part.blocks[1], Privilege::kWriteOnly, 1.0}});
  // react: stiff per-cell chemistry, strongly GPU-favoured.
  program.launch("react", pieces,
                 {.cpu_seconds_per_point = 0.5e-6 * per_piece,
                  .gpu_seconds_per_point = 5e-9 * per_piece},
                 {{field_all, Privilege::kReadOnly, 1.0},
                  {rate_all, Privilege::kWriteOnly, 1.0}});
  program.launch("apply_rates", pieces,
                 {.cpu_seconds_per_point = 0.8e-9 * per_piece,
                  .gpu_seconds_per_point = 0.02e-9 * per_piece},
                 {{field_all, Privilege::kReadWrite, 1.0},
                  {rate_all, Privilege::kReadOnly, 1.0}});
  // residual_norm: cheap reduction, CPU-friendly.
  program.launch("residual_norm", pieces,
                 {.cpu_seconds_per_point = 0.2e-9 * per_piece,
                  .gpu_seconds_per_point = 0.05e-9 * per_piece},
                 {{field_all, Privilege::kReadOnly, 0.5},
                  {residual, Privilege::kReduce, 1.0}});

  const TaskGraph graph = program.lower();
  std::cout << "lowered: " << graph.num_tasks() << " tasks, "
            << graph.num_collections() << " collections, "
            << graph.num_edges() << " dependences\n";

  // --- tune -----------------------------------------------------------------
  const MachineModel machine = make_shepard(1);
  Simulator sim(machine, graph, {.iterations = 10, .noise_sigma = 0.05});

  DefaultMapper dm;
  const double def = measure_mapping(sim, dm.map_all(graph, machine), 31, 1);
  const SearchResult res = automap_optimize(sim, SearchAlgorithm::kCcd,
                                            {.rotations = 5, .repeats = 7,
                                             .seed = 42});
  const double am = measure_mapping(sim, res.best, 31, 2);
  std::cout << "default " << format_seconds(def) << ", AutoMap "
            << format_seconds(am) << " (" << format_speedup(def / am)
            << ")\n\n"
            << res.best.describe(graph);

  const auto report = sim.run(res.best, 7);
  if (report.ok)
    std::cout << "\n" << render_analysis(graph, analyze_run(graph, report));
  return 0;
}
