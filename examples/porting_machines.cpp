// Machine sensitivity (paper §1 and §7): the best mapping depends on the
// machine. The same application and input are tuned on a Shepard-like node
// (one P100 behind PCIe) and on a Lassen-like node (four V100s behind
// NVLink), and the two discovered mappings are compared — porting to the
// new machine really does require re-tuning, and AutoMap does it without
// touching the application.
//
// Usage: porting_machines [htr_step]   (default 1)

#include <cstdlib>
#include <iostream>

#include "src/apps/htr.hpp"
#include "src/automap/automap.hpp"
#include "src/machine/machine.hpp"
#include "src/runtime/mapper.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/format.hpp"

int main(int argc, char** argv) {
  using namespace automap;
  const int step = argc > 1 ? std::atoi(argv[1]) : 1;
  const BenchmarkApp app = make_htr(htr_config_for(1, step));
  std::cout << "HTR " << app.input << "\n\n";

  Mapping best_shepard(app.graph), best_lassen(app.graph);
  for (const bool lassen : {false, true}) {
    const MachineModel machine = lassen ? make_lassen(1) : make_shepard(1);
    Simulator sim(machine, app.graph, app.sim);

    DefaultMapper dm;
    const double default_s =
        measure_mapping(sim, dm.map_all(app.graph, machine), 31, 1);
    const SearchResult result = automap_optimize(
        sim, SearchAlgorithm::kCcd, {.rotations = 5, .repeats = 7,
                                     .seed = 42});
    const double am_s = measure_mapping(sim, result.best, 31, 2);

    std::cout << machine.name() << ": default "
              << format_seconds(default_s) << ", AutoMap "
              << format_seconds(am_s) << " ("
              << format_speedup(default_s / am_s) << ")\n";
    (lassen ? best_lassen : best_shepard) = result.best;
  }

  std::cout << "\nmapping decisions that differ between the two machines' "
               "tuned mappings:\n";
  const auto diffs = best_shepard.diff(best_lassen, app.graph);
  for (const auto& d : diffs) std::cout << "  " << d << "\n";
  if (diffs.empty())
    std::cout << "  (none — both machines favour the same mapping here)\n";

  // Cross-porting check: how much is lost by carrying a mapping across?
  {
    const MachineModel lassen = make_lassen(1);
    Simulator sim(lassen, app.graph, app.sim);
    const double ported = measure_mapping(sim, best_shepard, 31, 3);
    const double native = measure_mapping(sim, best_lassen, 31, 3);
    std::cout << "\nShepard-tuned mapping executed on Lassen: "
              << format_seconds(ported) << " vs natively tuned "
              << format_seconds(native) << " ("
              << format_speedup(ported / native)
              << " left on the table by not re-tuning)\n";
  }
  return 0;
}
