// Multi-fidelity ensemble CFD mapping (paper §5.1, Figure 7).
//
// Maestro runs one expensive high-fidelity CFD sample (pinned to the GPUs,
// filling the Frame-Buffer) next to an ensemble of cheap low-fidelity
// samples. Where should the ensemble run so it disturbs the high-fidelity
// simulation as little as possible? This example compares the two obvious
// strategies with AutoMap's answer for one configuration.
//
// Usage: ensemble_cfd [num_lf_samples] [lf_resolution]   (default 32 32)

#include <cstdlib>
#include <iostream>

#include "src/apps/maestro.hpp"
#include "src/automap/automap.hpp"
#include "src/machine/machine.hpp"
#include "src/runtime/mapper.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/format.hpp"

int main(int argc, char** argv) {
  using namespace automap;
  MaestroConfig config;
  config.num_lf_samples = argc > 1 ? std::atoi(argv[1]) : 32;
  config.lf_resolution = argc > 2 ? std::atoi(argv[2]) : 32;

  const MachineModel machine = make_shepard(1);

  // Baseline: the high-fidelity sample running alone.
  MaestroConfig alone = config;
  alone.num_lf_samples = 0;
  const BenchmarkApp hf_only = make_maestro(alone);
  Simulator hf_sim(machine, hf_only.graph, hf_only.sim);
  DefaultMapper dm;
  const double hf_alone =
      measure_mapping(hf_sim, dm.map_all(hf_only.graph, machine), 31, 1);
  std::cout << "HF sample alone: " << format_seconds(hf_alone) << "\n\n";

  const BenchmarkApp app = make_maestro(config);
  Simulator sim(machine, app.graph, app.sim);
  std::cout << "ensemble: " << config.num_lf_samples << " LF samples at "
            << config.lf_resolution << "^3\n";

  auto strategy = [&](ProcKind proc, MemKind mem) {
    Mapping m(app.graph);
    for (const TaskId t : maestro_hf_tasks(app)) {
      m.at(t).proc = ProcKind::kGpu;
      m.at(t).arg_memories.assign(app.graph.task(t).args.size(),
                                  {MemKind::kFrameBuffer});
    }
    for (const TaskId t : maestro_lf_tasks(app)) {
      m.at(t).proc = proc;
      m.at(t).arg_memories.assign(app.graph.task(t).args.size(), {mem});
    }
    return m;
  };

  const double cpu_s = measure_mapping(
      sim, strategy(ProcKind::kCpu, MemKind::kSystem), 31, 1);
  const double gpu_s = measure_mapping(
      sim, strategy(ProcKind::kGpu, MemKind::kZeroCopy), 31, 1);
  std::cout << "LF on CPU+System   : HF slowed "
            << format_fixed(cpu_s / hf_alone, 2) << "x\n";
  std::cout << "LF on GPU+ZeroCopy : HF slowed "
            << format_fixed(gpu_s / hf_alone, 2) << "x\n";

  const SearchResult result = automap_optimize(
      sim, SearchAlgorithm::kCcd, {.rotations = 5, .repeats = 7, .seed = 42});
  const double am_s = measure_mapping(sim, result.best, 31, 2);
  std::cout << "AutoMap            : HF slowed "
            << format_fixed(am_s / hf_alone, 2) << "x\n\n";

  std::cout << "AutoMap's low-fidelity placement:\n";
  for (const TaskId t : maestro_lf_tasks(app)) {
    const TaskMapping& tm = result.best.at(t);
    std::cout << "  " << app.graph.task(t).name << " -> " << to_string(tm.proc)
              << " / " << to_string(result.best.primary_memory(t, 0)) << "\n";
  }
  return 0;
}
