// Developer utility: run the CCD search on a chosen app/input/nodes and
// print the discovered mapping, its diff against the default mapper, and
// per-task execution reports under both mappings.
//
// Usage: inspect_mapping <circuit|stencil|pennant|htr> <nodes> <step>

#include <cstdlib>
#include <iostream>
#include <string>

#include "src/apps/circuit.hpp"
#include "src/apps/htr.hpp"
#include "src/apps/pennant.hpp"
#include "src/apps/stencil.hpp"
#include "src/automap/automap.hpp"
#include "src/machine/machine.hpp"
#include "src/report/analysis.hpp"
#include "src/report/visualize.hpp"
#include "src/runtime/mapper.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/format.hpp"

int main(int argc, char** argv) {
  using namespace automap;
  const std::string name = argc > 1 ? argv[1] : "circuit";
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 1;
  const int step = argc > 3 ? std::atoi(argv[3]) : 0;

  BenchmarkApp app = name == "stencil"
                         ? make_stencil(stencil_config_for(nodes, step))
                     : name == "pennant"
                         ? make_pennant(pennant_config_for(nodes, step))
                     : name == "htr" ? make_htr(htr_config_for(nodes, step))
                                     : make_circuit(
                                           circuit_config_for(nodes, step));
  const MachineModel machine = make_shepard(nodes);
  Simulator sim(machine, app.graph, app.sim);

  DefaultMapper dm;
  const Mapping def = dm.map_all(app.graph, machine);
  const SearchResult res =
      automap_optimize(sim, SearchAlgorithm::kCcd, {.seed = 42 + static_cast<std::uint64_t>(step)});

  auto report = [&](const char* label, const Mapping& m) {
    const auto r = sim.run(m, 99);
    std::cout << label << ": total " << format_seconds(r.total_seconds)
              << ", copies intra " << format_bytes(r.intra_node_copy_bytes)
              << " inter " << format_bytes(r.inter_node_copy_bytes)
              << " per iter\n";
    for (const auto& tr : r.tasks) {
      std::cout << "    " << app.graph.task(tr.task).name << ": compute "
                << format_seconds(tr.compute_seconds) << ", wait "
                << format_seconds(tr.copy_wait_seconds) << "\n";
    }
  };
  report("default", def);
  report("AM-CCD ", res.best);

  std::cout << "\ndiff vs default:\n";
  for (const auto& d : def.diff(res.best, app.graph))
    std::cout << "  " << d << "\n";

  const auto base_report = sim.run(def, 99);
  const auto best_report = sim.run(res.best, 99);
  if (base_report.ok && best_report.ok) {
    std::cout << "\nwhy the discovered mapping wins:\n"
              << compare_runs(app.graph, base_report, best_report);
    std::cout << "\nrun analysis of the discovered mapping:\n"
              << render_analysis(app.graph,
                                 analyze_run(app.graph, best_report));
  }

  std::cout << "\nFig. 3-style rendering:\n"
            << render_mapping(app.graph, res.best);
  return 0;
}
