// Quickstart: the end-to-end AutoMap workflow on one benchmark input.
//
//   1. build a machine model (a 1-node Shepard-like GPU box),
//   2. generate an application task graph (Circuit at a small input),
//   3. measure Legion's default mapping and the hand-written custom mapping,
//   4. run the AutoMap CCD search,
//   5. print the discovered mapping and the speedups.
//
// Usage: quickstart [step]   (step 0..7 picks the Fig. 6a input size)

#include <cstdlib>
#include <iostream>

#include "src/apps/circuit.hpp"
#include "src/automap/automap.hpp"
#include "src/machine/machine.hpp"
#include "src/mappers/custom_mappers.hpp"
#include "src/runtime/mapper.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/format.hpp"

int main(int argc, char** argv) {
  using namespace automap;

  const int step = argc > 1 ? std::atoi(argv[1]) : 0;

  // 1. Machine: one node with 48 usable cores and a P100.
  const MachineModel machine = make_shepard(1);
  std::cout << machine.describe() << "\n";

  // 2. Application: the Legion circuit simulation.
  const BenchmarkApp app = make_circuit(circuit_config_for(1, step));
  std::cout << "app: " << app.name << " input " << app.input << " — "
            << app.graph.num_tasks() << " group tasks, "
            << app.graph.num_collection_args() << " collection args\n\n";

  Simulator sim(machine, app.graph, app.sim);

  // 3. Baselines.
  DefaultMapper default_mapper;
  const Mapping default_mapping = default_mapper.map_all(app.graph, machine);
  const double default_s = measure_mapping(sim, default_mapping, 31, 1);

  const auto custom_mapper = make_custom_mapper(app.name);
  const Mapping custom_mapping = custom_mapper->map_all(app.graph, machine);
  const double custom_s = measure_mapping(sim, custom_mapping, 31, 1);

  // 4. AutoMap offline search (CCD, 5 rotations, 7-run evaluations).
  const SearchResult result = automap_optimize(sim, SearchAlgorithm::kCcd,
                                               {.rotations = 5, .repeats = 7,
                                                .seed = 42});
  const double automap_s = measure_mapping(sim, result.best, 31, 2);

  // 5. Report.
  std::cout << "default mapper : " << format_seconds(default_s) << "\n";
  std::cout << "custom mapper  : " << format_seconds(custom_s) << " ("
            << format_speedup(default_s / custom_s) << " vs default)\n";
  std::cout << "AutoMap (CCD)  : " << format_seconds(automap_s) << " ("
            << format_speedup(default_s / automap_s) << " vs default)\n";
  std::cout << "search: " << result.stats.suggested << " suggested, "
            << result.stats.evaluated << " evaluated, simulated search time "
            << format_seconds(result.stats.search_time_s) << "\n\n";

  std::cout << "discovered mapping:\n"
            << result.best.describe(app.graph) << "\n";
  const auto changes = default_mapping.diff(result.best, app.graph);
  std::cout << changes.size() << " decisions differ from the default.\n";
  return 0;
}
