// Memory-constrained mapping (paper §5.2, Figure 8).
//
// Scenario: you want to run Pennant with an input ~7 % larger than what
// fits in the GPUs' Frame-Buffer. The naive fix — putting everything in
// the bigger-but-slower Zero-Copy memory — is painfully slow. AutoMap, with
// the §3.1 memory *priority lists* enabled, searches for which collections
// to keep in the fast memory and which to demote, and finds mappings many
// times faster.
//
// Usage: memory_constrained [overflow_percent]   (default 7)

#include <cstdlib>
#include <iostream>

#include "src/apps/pennant.hpp"
#include "src/automap/automap.hpp"
#include "src/machine/machine.hpp"
#include "src/search/evaluator.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/format.hpp"

int main(int argc, char** argv) {
  using namespace automap;
  const double overflow_pct = argc > 1 ? std::atof(argv[1]) : 7.0;

  const MachineModel machine = make_shepard(1);
  const long max_y = pennant_max_fb_zones_y(
      machine.mem_capacity(MemKind::kFrameBuffer), 1,
      machine.procs_per_node(ProcKind::kGpu));

  PennantConfig config;
  config.zones_y =
      static_cast<long>(static_cast<double>(max_y) * (1.0 + overflow_pct / 100.0));
  const BenchmarkApp app = make_pennant(config);
  std::cout << "Pennant " << app.input << " — "
            << format_bytes(pennant_total_bytes(config)) << " of data vs "
            << format_bytes(machine.mem_capacity(MemKind::kFrameBuffer))
            << " of Frame-Buffer (+" << overflow_pct << "%)\n\n";

  Simulator sim(machine, app.graph, app.sim);

  // Naive: GPU everywhere, all data in Frame-Buffer -> out of memory.
  Mapping all_fb(app.graph);
  const auto oom = sim.run(all_fb, 1);
  std::cout << "all in Frame-Buffer: "
            << (oom.ok ? "unexpectedly ok?!" : oom.failure) << "\n";

  // Naive fix: everything in Zero-Copy. Works, but slowly.
  Mapping all_zc(app.graph);
  for (const GroupTask& t : app.graph.tasks()) {
    all_zc.at(t.id).proc =
        t.cost.has_gpu_variant() ? ProcKind::kGpu : ProcKind::kCpu;
    all_zc.at(t.id).arg_memories.assign(t.args.size(), {MemKind::kZeroCopy});
  }
  const double zc_s = measure_mapping(sim, all_zc, 31, 1);
  std::cout << "all in Zero-Copy   : " << format_seconds(zc_s) << "\n";

  // AutoMap with memory fallbacks: the search places what it can in the
  // Frame-Buffer and the runtime demotes the rest down each argument's
  // priority list.
  const SearchResult result = automap_optimize(
      sim, SearchAlgorithm::kCcd,
      {.rotations = 5, .repeats = 7, .seed = 42, .memory_fallbacks = true});
  Evaluator measure(sim,
                    {.repeats = 31, .seed = 2, .memory_fallbacks = true});
  const double am_s = measure.evaluate(result.best);
  std::cout << "AutoMap            : " << format_seconds(am_s) << "  ("
            << format_speedup(zc_s / am_s) << " faster than all-Zero-Copy)\n";

  const auto report = sim.run(measure.with_fallbacks(result.best), 99);
  if (report.ok) {
    std::cout << "\nfootprints of the discovered mapping:\n";
    for (const auto& fp : report.footprints) {
      std::cout << "  " << to_string(fp.kind) << ": "
                << format_bytes(fp.peak_instance_bytes) << " / "
                << format_bytes(fp.capacity_bytes) << " per allocation\n";
    }
    std::cout << report.demoted_args
              << " collection argument(s) demoted at runtime via priority "
                 "lists\n";
  }
  return 0;
}
