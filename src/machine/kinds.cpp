#include "src/machine/kinds.hpp"

#include <algorithm>
#include <cctype>
#include <string>

#include "src/support/error.hpp"

namespace automap {

std::string_view to_string(ProcKind k) {
  switch (k) {
    case ProcKind::kCpu:
      return "CPU";
    case ProcKind::kGpu:
      return "GPU";
  }
  AM_UNREACHABLE("bad ProcKind");
}

std::string_view to_string(MemKind k) {
  switch (k) {
    case MemKind::kSystem:
      return "System";
    case MemKind::kZeroCopy:
      return "ZeroCopy";
    case MemKind::kFrameBuffer:
      return "FrameBuffer";
  }
  AM_UNREACHABLE("bad MemKind");
}

std::ostream& operator<<(std::ostream& os, ProcKind k) {
  return os << to_string(k);
}
std::ostream& operator<<(std::ostream& os, MemKind k) {
  return os << to_string(k);
}

namespace {
std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}
}  // namespace

ProcKind parse_proc_kind(std::string_view name) {
  const std::string u = to_upper(name);
  if (u == "CPU") return ProcKind::kCpu;
  if (u == "GPU") return ProcKind::kGpu;
  AM_REQUIRE(false, "unknown processor kind: " + std::string(name));
  AM_UNREACHABLE("");
}

MemKind parse_mem_kind(std::string_view name) {
  const std::string u = to_upper(name);
  if (u == "SYSTEM" || u == "SYSMEM") return MemKind::kSystem;
  if (u == "ZEROCOPY" || u == "ZC" || u == "ZERO-COPY")
    return MemKind::kZeroCopy;
  if (u == "FRAMEBUFFER" || u == "FB" || u == "FRAME-BUFFER")
    return MemKind::kFrameBuffer;
  AM_REQUIRE(false, "unknown memory kind: " + std::string(name));
  AM_UNREACHABLE("");
}

}  // namespace automap
