#pragma once

// Processor and memory *kinds* — the alphabet of the mapping search space.
//
// Following the paper (§2), a machine is a graph of processors and memories;
// AutoMap's factorization (§3.2) searches only over kinds and leaves the
// selection of concrete instances to deterministic runtime logic, so kinds
// are the currency of the whole search layer.

#include <array>
#include <cstdint>
#include <ostream>
#include <string_view>

namespace automap {

enum class ProcKind : std::uint8_t {
  kCpu = 0,
  kGpu = 1,
};
inline constexpr std::size_t kNumProcKinds = 2;
inline constexpr std::array<ProcKind, kNumProcKinds> kAllProcKinds = {
    ProcKind::kCpu, ProcKind::kGpu};

enum class MemKind : std::uint8_t {
  /// CPU-addressable RAM; one allocation per socket on multi-socket nodes.
  kSystem = 0,
  /// Pinned host memory addressable by all CPUs and GPUs of a node.
  kZeroCopy = 1,
  /// GPU-local high-bandwidth memory; one per GPU, smallest capacity.
  kFrameBuffer = 2,
};
inline constexpr std::size_t kNumMemKinds = 3;
inline constexpr std::array<MemKind, kNumMemKinds> kAllMemKinds = {
    MemKind::kSystem, MemKind::kZeroCopy, MemKind::kFrameBuffer};

[[nodiscard]] constexpr std::size_t index_of(ProcKind k) {
  return static_cast<std::size_t>(k);
}
[[nodiscard]] constexpr std::size_t index_of(MemKind k) {
  return static_cast<std::size_t>(k);
}

[[nodiscard]] std::string_view to_string(ProcKind k);
[[nodiscard]] std::string_view to_string(MemKind k);

std::ostream& operator<<(std::ostream& os, ProcKind k);
std::ostream& operator<<(std::ostream& os, MemKind k);

/// Parses "CPU"/"GPU" (case-insensitive). Throws Error on unknown names.
[[nodiscard]] ProcKind parse_proc_kind(std::string_view name);
/// Parses "System"/"ZeroCopy"/"FrameBuffer" plus common aliases
/// ("SYSMEM", "ZC", "FB"). Throws Error on unknown names.
[[nodiscard]] MemKind parse_mem_kind(std::string_view name);

}  // namespace automap
