#pragma once

// Machine model (paper §2): a graph whose nodes are processors and memories.
//
// Processor–memory edges carry access bandwidth/latency ("affinities" in
// Legion terminology); memory–memory edges carry copy bandwidth/latency
// ("channels"). Because AutoMap's search operates over *kinds* (§3.2), the
// model is expressed per kind and per node, and concrete instances (cores,
// GPUs, per-socket system allocations) are described by per-node counts that
// the execution simulator expands.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/machine/kinds.hpp"
#include "src/support/error.hpp"

namespace automap {

/// Processor-to-memory access edge.
///
/// `bandwidth_bytes_per_s` is the aggregate streaming bandwidth of the whole
/// pool of this processor kind on one node into one allocation of the memory
/// kind; cores of a socket share the memory controller, so per-core figures
/// would badly overstate CPU pools. For FrameBuffer the figure is per GPU —
/// the simulator engages as many allocations as the group occupies GPUs.
struct Affinity {
  double bandwidth_bytes_per_s = 0.0;
  double latency_s = 0.0;
};

/// Memory-to-memory copy edge. Inter-node channels already fold in the
/// network bottleneck, so effective inter-node bandwidth is typically far
/// below the intra-node figure.
struct Channel {
  double bandwidth_bytes_per_s = 0.0;
  double latency_s = 0.0;
};

/// One kind of processor on every node of the machine.
struct ProcGroup {
  ProcKind kind = ProcKind::kCpu;
  /// Application-usable instances per node (cores already reserved for the
  /// runtime, as the paper reserves 8 per node for Legion, are excluded).
  int count_per_node = 0;
  /// Relative compute speed: multiplies the per-point work throughput that
  /// application cost profiles declare for a *reference* processor of this
  /// kind. 1.0 means reference speed.
  double speed = 1.0;
  /// Fixed per-task-launch overhead (kernel launch / task startup), seconds.
  /// This is what makes small weak-scaled inputs favour CPU mappings.
  double launch_overhead_s = 0.0;
  /// Busy power draw of one instance (one core / one GPU), watts. Drives
  /// the optional energy objective (§3.3: "AutoMap is suitable for
  /// minimizing other metrics (e.g., power consumption)").
  double watts_busy = 0.0;
};

/// One kind of memory on every node of the machine.
struct MemGroup {
  MemKind kind = MemKind::kSystem;
  /// Independent allocations per node (System: one per socket; FrameBuffer:
  /// one per GPU; ZeroCopy: one shared allocation).
  int count_per_node = 0;
  /// Capacity of each allocation in bytes.
  std::uint64_t capacity_bytes = 0;
};

/// A full machine: N identical nodes, kind-level affinities and channels.
class MachineModel {
 public:
  MachineModel(std::string name, int num_nodes);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int num_nodes() const { return num_nodes_; }

  /// Returns a copy of this machine scaled to a different node count
  /// (used for the 1/2/4/8-node sweeps of the evaluation).
  [[nodiscard]] MachineModel with_nodes(int num_nodes) const;

  // --- construction -------------------------------------------------------

  void add_proc_group(const ProcGroup& group);
  void add_mem_group(const MemGroup& group);
  void set_affinity(ProcKind p, MemKind m, Affinity a);
  void set_channel(MemKind src, MemKind dst, bool inter_node, Channel c);
  /// Cross-socket System<->System transfer channel (NUMA); only meaningful
  /// when the System memory group has count_per_node > 1.
  void set_cross_socket_channel(Channel c);
  /// Mapping-independent runtime cost per group-task launch (dependence
  /// analysis, mapper queries, instance binding — paid on the runtime's
  /// reserved cores whichever processor kind executes the task). This floor
  /// is what keeps the paper's small-input speedups moderate.
  void set_runtime_overhead(double seconds);
  /// Simulated cost of restarting a failed application run on this machine
  /// (process respawn, runtime re-initialization, instance re-binding) —
  /// what a fault-tolerant driver pays per retry on top of the work the
  /// fault itself destroyed. Used as the default retry backoff quantum by
  /// the search layer's resilience policy.
  void set_restart_overhead(double seconds);

  /// Verifies internal consistency (every declared proc kind can address at
  /// least one memory kind, channels exist between co-addressable memories,
  /// counts and capacities are positive). Throws Error when malformed.
  void validate() const;

  // --- kind-level queries (used by the search) ----------------------------

  [[nodiscard]] bool has_proc_kind(ProcKind k) const;
  [[nodiscard]] bool has_mem_kind(MemKind k) const;
  [[nodiscard]] std::vector<ProcKind> proc_kinds() const;
  [[nodiscard]] std::vector<MemKind> mem_kinds() const;

  /// True when a processor of kind p can directly address memory kind m.
  [[nodiscard]] bool addressable(ProcKind p, MemKind m) const;
  /// Memory kinds addressable by processor kind p, in declaration order.
  [[nodiscard]] std::vector<MemKind> memories_addressable_by(ProcKind p) const;
  /// The addressable memory kind with the highest access bandwidth from p —
  /// the "closest" memory the default mapper heuristic picks.
  [[nodiscard]] MemKind best_memory_for(ProcKind p) const;

  [[nodiscard]] Affinity affinity(ProcKind p, MemKind m) const;
  /// True when a copy channel between the two kinds is configured.
  [[nodiscard]] bool has_channel(MemKind src, MemKind dst,
                                 bool inter_node) const;
  [[nodiscard]] Channel channel(MemKind src, MemKind dst,
                                bool inter_node) const;
  [[nodiscard]] Channel cross_socket_channel() const;
  [[nodiscard]] double runtime_overhead() const { return runtime_overhead_; }
  [[nodiscard]] double restart_overhead() const { return restart_overhead_; }

  // --- instance-level queries (used by the simulator) ---------------------

  [[nodiscard]] const ProcGroup& proc_group(ProcKind k) const;
  [[nodiscard]] const MemGroup& mem_group(MemKind k) const;
  [[nodiscard]] int procs_per_node(ProcKind k) const;
  [[nodiscard]] int mems_per_node(MemKind k) const;
  [[nodiscard]] std::uint64_t mem_capacity(MemKind k) const;
  /// Total capacity of a memory kind across the whole machine.
  [[nodiscard]] std::uint64_t total_capacity(MemKind k) const;

  /// Human-readable multi-line description.
  [[nodiscard]] std::string describe() const;

 private:
  std::string name_;
  int num_nodes_;
  std::vector<ProcGroup> proc_groups_;
  std::vector<MemGroup> mem_groups_;
  std::optional<Affinity> affinities_[kNumProcKinds][kNumMemKinds];
  std::optional<Channel> channels_[kNumMemKinds][kNumMemKinds][2];
  std::optional<Channel> cross_socket_;
  double runtime_overhead_ = 0.0;
  double restart_overhead_ = 0.0;
};

/// Machine presets modeled on the paper's experimental clusters (§5).
///
/// Shepard: 2×28-core Xeon 8276, 196 GB RAM, 1×P100 (16 GB FB) per node;
/// 8 cores reserved for the runtime; 60 GB Zero-Copy reservation.
[[nodiscard]] MachineModel make_shepard(int num_nodes);

/// Lassen: 2×22-core Power9 (20 usable), 256 GB RAM, 4×V100 (16 GB FB each)
/// with NVLink 2.0 per node; 8 cores reserved; 80 GB Zero-Copy reservation
/// (sized above the 64 GB aggregate Frame-Buffer, see DESIGN.md).
[[nodiscard]] MachineModel make_lassen(int num_nodes);

/// A GPU-less dual-socket cluster (for machine-sensitivity studies): the
/// same CPUs and network as Shepard but no accelerators — System and
/// Zero-Copy memory only.
[[nodiscard]] MachineModel make_cpu_cluster(int num_nodes);

}  // namespace automap
