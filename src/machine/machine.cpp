#include "src/machine/machine.hpp"

#include <algorithm>
#include <sstream>

#include "src/support/format.hpp"

namespace automap {

namespace {
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
constexpr std::uint64_t gib(double n) {
  return static_cast<std::uint64_t>(n * kGiB);
}
constexpr double gbps(double n) { return n * 1e9; }
}  // namespace

MachineModel::MachineModel(std::string name, int num_nodes)
    : name_(std::move(name)), num_nodes_(num_nodes) {
  AM_REQUIRE(num_nodes_ > 0, "a machine needs at least one node");
}

MachineModel MachineModel::with_nodes(int num_nodes) const {
  MachineModel copy = *this;
  AM_REQUIRE(num_nodes > 0, "a machine needs at least one node");
  copy.num_nodes_ = num_nodes;
  return copy;
}

void MachineModel::add_proc_group(const ProcGroup& group) {
  AM_REQUIRE(group.count_per_node > 0, "processor group needs instances");
  AM_REQUIRE(group.speed > 0.0, "processor speed must be positive");
  AM_REQUIRE(group.launch_overhead_s >= 0.0, "negative launch overhead");
  AM_REQUIRE(!has_proc_kind(group.kind), "duplicate processor kind");
  proc_groups_.push_back(group);
}

void MachineModel::add_mem_group(const MemGroup& group) {
  AM_REQUIRE(group.count_per_node > 0, "memory group needs instances");
  AM_REQUIRE(group.capacity_bytes > 0, "memory capacity must be positive");
  AM_REQUIRE(!has_mem_kind(group.kind), "duplicate memory kind");
  mem_groups_.push_back(group);
}

void MachineModel::set_affinity(ProcKind p, MemKind m, Affinity a) {
  AM_REQUIRE(a.bandwidth_bytes_per_s > 0.0, "affinity bandwidth must be > 0");
  AM_REQUIRE(a.latency_s >= 0.0, "negative affinity latency");
  affinities_[index_of(p)][index_of(m)] = a;
}

void MachineModel::set_channel(MemKind src, MemKind dst, bool inter_node,
                               Channel c) {
  AM_REQUIRE(c.bandwidth_bytes_per_s > 0.0, "channel bandwidth must be > 0");
  AM_REQUIRE(c.latency_s >= 0.0, "negative channel latency");
  channels_[index_of(src)][index_of(dst)][inter_node ? 1 : 0] = c;
  channels_[index_of(dst)][index_of(src)][inter_node ? 1 : 0] = c;
}

void MachineModel::set_cross_socket_channel(Channel c) {
  AM_REQUIRE(c.bandwidth_bytes_per_s > 0.0, "channel bandwidth must be > 0");
  cross_socket_ = c;
}

void MachineModel::set_runtime_overhead(double seconds) {
  AM_REQUIRE(seconds >= 0.0, "negative runtime overhead");
  runtime_overhead_ = seconds;
}

void MachineModel::set_restart_overhead(double seconds) {
  AM_REQUIRE(seconds >= 0.0, "negative restart overhead");
  restart_overhead_ = seconds;
}

void MachineModel::validate() const {
  AM_REQUIRE(!proc_groups_.empty(), "machine has no processors");
  AM_REQUIRE(!mem_groups_.empty(), "machine has no memories");
  for (const auto& pg : proc_groups_) {
    bool any = false;
    for (const auto& mg : mem_groups_)
      if (addressable(pg.kind, mg.kind)) any = true;
    AM_CHECK(any, "processor kind addresses no memory kind");
  }
  // Every pair of declared memory kinds must have both intra- and inter-node
  // channels so any producer/consumer placement is executable.
  for (const auto& a : mem_groups_) {
    for (const auto& b : mem_groups_) {
      for (const bool inter : {false, true}) {
        if (num_nodes_ == 1 && inter) continue;
        AM_CHECK(channels_[index_of(a.kind)][index_of(b.kind)][inter ? 1 : 0]
                     .has_value(),
                 "missing channel between declared memory kinds");
      }
    }
  }
  if (mems_per_node(MemKind::kSystem) > 1)
    AM_CHECK(cross_socket_.has_value(),
             "multi-socket System memory needs a cross-socket channel");
}

bool MachineModel::has_proc_kind(ProcKind k) const {
  return std::any_of(proc_groups_.begin(), proc_groups_.end(),
                     [&](const ProcGroup& g) { return g.kind == k; });
}

bool MachineModel::has_mem_kind(MemKind k) const {
  return std::any_of(mem_groups_.begin(), mem_groups_.end(),
                     [&](const MemGroup& g) { return g.kind == k; });
}

std::vector<ProcKind> MachineModel::proc_kinds() const {
  std::vector<ProcKind> out;
  out.reserve(proc_groups_.size());
  for (const auto& g : proc_groups_) out.push_back(g.kind);
  return out;
}

std::vector<MemKind> MachineModel::mem_kinds() const {
  std::vector<MemKind> out;
  out.reserve(mem_groups_.size());
  for (const auto& g : mem_groups_) out.push_back(g.kind);
  return out;
}

bool MachineModel::addressable(ProcKind p, MemKind m) const {
  return affinities_[index_of(p)][index_of(m)].has_value();
}

std::vector<MemKind> MachineModel::memories_addressable_by(ProcKind p) const {
  std::vector<MemKind> out;
  for (const auto& g : mem_groups_)
    if (addressable(p, g.kind)) out.push_back(g.kind);
  return out;
}

MemKind MachineModel::best_memory_for(ProcKind p) const {
  std::optional<MemKind> best;
  double best_bw = -1.0;
  for (const auto& g : mem_groups_) {
    if (!addressable(p, g.kind)) continue;
    const double bw = affinity(p, g.kind).bandwidth_bytes_per_s;
    if (bw > best_bw) {
      best_bw = bw;
      best = g.kind;
    }
  }
  AM_REQUIRE(best.has_value(), "processor kind addresses no memory");
  return *best;
}

Affinity MachineModel::affinity(ProcKind p, MemKind m) const {
  const auto& a = affinities_[index_of(p)][index_of(m)];
  AM_REQUIRE(a.has_value(), std::string("no affinity ") +
                                std::string(to_string(p)) + " -> " +
                                std::string(to_string(m)));
  return *a;
}

bool MachineModel::has_channel(MemKind src, MemKind dst,
                               bool inter_node) const {
  return channels_[index_of(src)][index_of(dst)][inter_node ? 1 : 0]
      .has_value();
}

Channel MachineModel::channel(MemKind src, MemKind dst,
                              bool inter_node) const {
  const auto& c = channels_[index_of(src)][index_of(dst)][inter_node ? 1 : 0];
  AM_REQUIRE(c.has_value(), std::string("no channel ") +
                                std::string(to_string(src)) + " -> " +
                                std::string(to_string(dst)));
  return *c;
}

Channel MachineModel::cross_socket_channel() const {
  AM_REQUIRE(cross_socket_.has_value(), "no cross-socket channel configured");
  return *cross_socket_;
}

const ProcGroup& MachineModel::proc_group(ProcKind k) const {
  for (const auto& g : proc_groups_)
    if (g.kind == k) return g;
  AM_REQUIRE(false,
             "machine has no processors of kind " + std::string(to_string(k)));
  AM_UNREACHABLE("");
}

const MemGroup& MachineModel::mem_group(MemKind k) const {
  for (const auto& g : mem_groups_)
    if (g.kind == k) return g;
  AM_REQUIRE(false,
             "machine has no memory of kind " + std::string(to_string(k)));
  AM_UNREACHABLE("");
}

int MachineModel::procs_per_node(ProcKind k) const {
  return proc_group(k).count_per_node;
}

int MachineModel::mems_per_node(MemKind k) const {
  return has_mem_kind(k) ? mem_group(k).count_per_node : 0;
}

std::uint64_t MachineModel::mem_capacity(MemKind k) const {
  return mem_group(k).capacity_bytes;
}

std::uint64_t MachineModel::total_capacity(MemKind k) const {
  const auto& g = mem_group(k);
  return g.capacity_bytes * static_cast<std::uint64_t>(g.count_per_node) *
         static_cast<std::uint64_t>(num_nodes_);
}

std::string MachineModel::describe() const {
  std::ostringstream os;
  os << "machine " << name_ << ": " << num_nodes_ << " node(s), runtime "
     << "overhead " << format_seconds(runtime_overhead_) << "/launch, "
     << format_seconds(restart_overhead_) << "/restart\n";
  for (const auto& g : proc_groups_) {
    os << "  " << to_string(g.kind) << " x" << g.count_per_node
       << "/node, speed " << g.speed << ", launch overhead "
       << format_seconds(g.launch_overhead_s) << ", "
       << format_fixed(g.watts_busy, 0) << " W busy\n";
  }
  for (const auto& g : mem_groups_) {
    os << "  " << to_string(g.kind) << " x" << g.count_per_node << "/node, "
       << format_bytes(g.capacity_bytes) << " each\n";
  }
  return os.str();
}

MachineModel make_shepard(int num_nodes) {
  MachineModel m("shepard", num_nodes);
  // 2 sockets x 28 cores = 56, minus 8 reserved for the runtime.
  m.add_proc_group({.kind = ProcKind::kCpu,
                    .count_per_node = 48,
                    .speed = 1.0,
                    .launch_overhead_s = 10e-6,
                    .watts_busy = 6.0});
  // One P100 per node. A single GPU point-executes group tasks serially, but
  // each point runs much faster than a CPU core; kernel launch plus Legion
  // task management costs ~25us per point.
  m.add_proc_group({.kind = ProcKind::kGpu,
                    .count_per_node = 1,
                    .speed = 1.0,
                    .launch_overhead_s = 25e-6,
                    .watts_busy = 250.0});
  // 196 GB RAM: 60 GB reserved for Zero-Copy, the rest split across the two
  // per-socket System allocations.
  m.add_mem_group({.kind = MemKind::kSystem,
                   .count_per_node = 2,
                   .capacity_bytes = gib(64)});
  m.add_mem_group({.kind = MemKind::kZeroCopy,
                   .count_per_node = 1,
                   .capacity_bytes = gib(60)});
  m.add_mem_group({.kind = MemKind::kFrameBuffer,
                   .count_per_node = 1,
                   .capacity_bytes = gib(16)});

  // Access affinities (aggregate per pool, see Affinity docs). GPU->ZeroCopy
  // crosses PCIe gen3 (the key asymmetry the search exploits: ~50x slower
  // than FrameBuffer for GPU tasks, yet it eliminates host<->device copies
  // for shared data). CPU->System is the two sockets' combined bandwidth,
  // but the simulator blends in the cross-socket link for the far half of a
  // pool's accesses; ZeroCopy is a single allocation with no such penalty.
  m.set_affinity(ProcKind::kCpu, MemKind::kSystem, {gbps(190), 0.1e-6});
  m.set_affinity(ProcKind::kCpu, MemKind::kZeroCopy, {gbps(110), 0.12e-6});
  m.set_affinity(ProcKind::kGpu, MemKind::kFrameBuffer, {gbps(540), 0.4e-6});
  m.set_affinity(ProcKind::kGpu, MemKind::kZeroCopy, {gbps(11), 1.2e-6});

  // Intra-node copy channels (PCIe gen3 between host and device).
  m.set_channel(MemKind::kSystem, MemKind::kSystem, false, {gbps(38), 0.5e-6});
  m.set_channel(MemKind::kSystem, MemKind::kZeroCopy, false,
                {gbps(60), 0.5e-6});
  m.set_channel(MemKind::kSystem, MemKind::kFrameBuffer, false,
                {gbps(11), 8e-6});
  m.set_channel(MemKind::kZeroCopy, MemKind::kZeroCopy, false,
                {gbps(60), 0.5e-6});
  m.set_channel(MemKind::kZeroCopy, MemKind::kFrameBuffer, false,
                {gbps(11), 8e-6});
  m.set_channel(MemKind::kFrameBuffer, MemKind::kFrameBuffer, false,
                {gbps(11), 8e-6});
  m.set_cross_socket_channel({gbps(34), 0.8e-6});

  // Inter-node channels: 100 Gb/s InfiniBand EDR (~12 GB/s), with device
  // endpoints additionally bottlenecked by PCIe staging.
  const Channel ib{gbps(12), 2e-6};
  const Channel ib_dev{gbps(8), 10e-6};
  m.set_channel(MemKind::kSystem, MemKind::kSystem, true, ib);
  m.set_channel(MemKind::kSystem, MemKind::kZeroCopy, true, ib);
  m.set_channel(MemKind::kZeroCopy, MemKind::kZeroCopy, true, ib);
  m.set_channel(MemKind::kSystem, MemKind::kFrameBuffer, true, ib_dev);
  m.set_channel(MemKind::kZeroCopy, MemKind::kFrameBuffer, true, ib_dev);
  m.set_channel(MemKind::kFrameBuffer, MemKind::kFrameBuffer, true, ib_dev);

  m.set_runtime_overhead(50e-6);
  // Relaunching a failed run costs far more than launching a task: process
  // respawn plus runtime re-initialization on a warm allocation.
  m.set_restart_overhead(0.05);
  m.validate();
  return m;
}

MachineModel make_lassen(int num_nodes) {
  MachineModel m("lassen", num_nodes);
  // 2 sockets x 20 usable cores = 40, minus 8 reserved for the runtime.
  m.add_proc_group({.kind = ProcKind::kCpu,
                    .count_per_node = 32,
                    .speed = 0.9,
                    .launch_overhead_s = 10e-6,
                    .watts_busy = 7.0});
  // Four V100s with NVLink 2.0 to the Power9 host.
  m.add_proc_group({.kind = ProcKind::kGpu,
                    .count_per_node = 4,
                    .speed = 1.45,
                    .launch_overhead_s = 20e-6,
                    .watts_busy = 300.0});
  // Lassen's four 16 GiB Frame-Buffers total 64 GiB per node, so the
  // Zero-Copy reservation is sized above that (the 256 GiB hosts leave
  // ample room) — otherwise an "everything in Zero-Copy" fallback could
  // never hold a Frame-Buffer-filling working set.
  m.add_mem_group({.kind = MemKind::kSystem,
                   .count_per_node = 2,
                   .capacity_bytes = gib(84)});
  m.add_mem_group({.kind = MemKind::kZeroCopy,
                   .count_per_node = 1,
                   .capacity_bytes = gib(80)});
  m.add_mem_group({.kind = MemKind::kFrameBuffer,
                   .count_per_node = 4,
                   .capacity_bytes = gib(16)});

  // NVLink 2.0 host link (~64 GB/s per GPU) narrows the FB/ZC gap vs Shepard.
  m.set_affinity(ProcKind::kCpu, MemKind::kSystem, {gbps(220), 0.1e-6});
  m.set_affinity(ProcKind::kCpu, MemKind::kZeroCopy, {gbps(130), 0.12e-6});
  m.set_affinity(ProcKind::kGpu, MemKind::kFrameBuffer, {gbps(830), 0.4e-6});
  m.set_affinity(ProcKind::kGpu, MemKind::kZeroCopy, {gbps(55), 0.9e-6});

  m.set_channel(MemKind::kSystem, MemKind::kSystem, false, {gbps(45), 0.5e-6});
  m.set_channel(MemKind::kSystem, MemKind::kZeroCopy, false,
                {gbps(70), 0.5e-6});
  m.set_channel(MemKind::kSystem, MemKind::kFrameBuffer, false,
                {gbps(55), 4e-6});
  m.set_channel(MemKind::kZeroCopy, MemKind::kZeroCopy, false,
                {gbps(70), 0.5e-6});
  m.set_channel(MemKind::kZeroCopy, MemKind::kFrameBuffer, false,
                {gbps(55), 4e-6});
  m.set_channel(MemKind::kFrameBuffer, MemKind::kFrameBuffer, false,
                {gbps(60), 3e-6});
  m.set_cross_socket_channel({gbps(40), 0.8e-6});

  // Dual-rail EDR InfiniBand (~23 GB/s aggregate).
  const Channel ib{gbps(23), 1.5e-6};
  const Channel ib_dev{gbps(18), 6e-6};
  m.set_channel(MemKind::kSystem, MemKind::kSystem, true, ib);
  m.set_channel(MemKind::kSystem, MemKind::kZeroCopy, true, ib);
  m.set_channel(MemKind::kZeroCopy, MemKind::kZeroCopy, true, ib);
  m.set_channel(MemKind::kSystem, MemKind::kFrameBuffer, true, ib_dev);
  m.set_channel(MemKind::kZeroCopy, MemKind::kFrameBuffer, true, ib_dev);
  m.set_channel(MemKind::kFrameBuffer, MemKind::kFrameBuffer, true, ib_dev);

  m.set_runtime_overhead(50e-6);
  m.set_restart_overhead(0.05);
  m.validate();
  return m;
}

MachineModel make_cpu_cluster(int num_nodes) {
  MachineModel m("cpu-cluster", num_nodes);
  m.add_proc_group({.kind = ProcKind::kCpu,
                    .count_per_node = 48,
                    .speed = 1.0,
                    .launch_overhead_s = 10e-6,
                    .watts_busy = 6.0});
  m.add_mem_group({.kind = MemKind::kSystem,
                   .count_per_node = 2,
                   .capacity_bytes = gib(80)});
  m.add_mem_group({.kind = MemKind::kZeroCopy,
                   .count_per_node = 1,
                   .capacity_bytes = gib(32)});

  m.set_affinity(ProcKind::kCpu, MemKind::kSystem, {gbps(190), 0.1e-6});
  m.set_affinity(ProcKind::kCpu, MemKind::kZeroCopy, {gbps(110), 0.12e-6});

  m.set_channel(MemKind::kSystem, MemKind::kSystem, false, {gbps(38), 0.5e-6});
  m.set_channel(MemKind::kSystem, MemKind::kZeroCopy, false,
                {gbps(60), 0.5e-6});
  m.set_channel(MemKind::kZeroCopy, MemKind::kZeroCopy, false,
                {gbps(60), 0.5e-6});
  m.set_cross_socket_channel({gbps(34), 0.8e-6});

  const Channel ib{gbps(12), 2e-6};
  m.set_channel(MemKind::kSystem, MemKind::kSystem, true, ib);
  m.set_channel(MemKind::kSystem, MemKind::kZeroCopy, true, ib);
  m.set_channel(MemKind::kZeroCopy, MemKind::kZeroCopy, true, ib);

  m.set_runtime_overhead(50e-6);
  m.set_restart_overhead(0.05);
  m.validate();
  return m;
}

}  // namespace automap
