#include "src/automap/automap.hpp"

#include "src/runtime/mapper.hpp"
#include "src/search/coordinate_descent.hpp"
#include "src/search/ensemble_tuner.hpp"
#include "src/support/error.hpp"

namespace automap {

std::string to_string(SearchAlgorithm algorithm) {
  switch (algorithm) {
    case SearchAlgorithm::kCcd:
      return "AM-CCD";
    case SearchAlgorithm::kCd:
      return "AM-CD";
    case SearchAlgorithm::kEnsembleTuner:
      return "AM-OT";
  }
  AM_UNREACHABLE("bad SearchAlgorithm");
}

SearchResult automap_optimize(const Simulator& sim, SearchAlgorithm algorithm,
                              const SearchOptions& options) {
  switch (algorithm) {
    case SearchAlgorithm::kCcd:
      return run_ccd(sim, options);
    case SearchAlgorithm::kCd:
      return run_cd(sim, options);
    case SearchAlgorithm::kEnsembleTuner:
      return run_ensemble_tuner(sim, options);
  }
  AM_UNREACHABLE("bad SearchAlgorithm");
}

double measure_mapping(const Simulator& sim, const Mapping& mapping,
                       int repeats, std::uint64_t seed) {
  return sim.mean_total_seconds(mapping, seed, repeats);
}

OnlineResult automap_online(const Simulator& sim,
                            const OnlineOptions& options) {
  AM_REQUIRE(options.total_iterations > 0, "need a positive run length");
  const long window = sim.options().iterations;

  const SearchResult search =
      automap_optimize(sim, options.algorithm, options.search);

  OnlineResult result;
  result.best = search.best;

  // Iterations consumed by the inspector: every evaluated candidate ran
  // `repeats` windows, and the finalist protocol re-ran the top-k.
  result.search_iterations =
      static_cast<long>(search.stats.evaluated) * options.search.repeats *
          window +
      static_cast<long>(options.search.top_k) *
          options.search.final_repeats * window;
  AM_REQUIRE(result.search_iterations < options.total_iterations,
             "production run too short to amortize the online search; "
             "needs more than " +
                 std::to_string(result.search_iterations) + " iterations");

  const long remainder = options.total_iterations - result.search_iterations;
  const double best_per_iter =
      search.best_seconds / static_cast<double>(window);
  result.online_seconds =
      search.stats.search_time_s + best_per_iter * remainder;

  // Baseline: the default mapper for the whole run.
  DefaultMapper dm;
  const double default_window =
      measure_mapping(sim, dm.map_all(sim.graph(), sim.machine()),
                      options.search.repeats, options.search.seed + 1);
  result.default_seconds = default_window / window *
                           static_cast<double>(options.total_iterations);
  return result;
}

}  // namespace automap
