#pragma once

// AutoMap facade (§3, Figure 4): the driver that owns the search algorithms
// and profiles database, paired with the mapper that replays candidate
// mappings through the runtime. `automap_optimize` is the offline search
// entry point: it requires no modification to the application — only its
// lowered task graph (the "search space file" of §3.3) and a machine model.

#include <string>

#include "src/search/search.hpp"
#include "src/sim/simulator.hpp"

namespace automap {

enum class SearchAlgorithm {
  kCcd,            // constrained coordinate-wise descent (the default)
  kCd,             // plain coordinate-wise descent
  kEnsembleTuner,  // generic OpenTuner-style ensemble
};

[[nodiscard]] std::string to_string(SearchAlgorithm algorithm);

/// Runs the offline mapping search and returns the best mapping found,
/// selected by the finalist protocol (top-5 re-run 31 times, §5).
[[nodiscard]] SearchResult automap_optimize(
    const Simulator& sim, SearchAlgorithm algorithm = SearchAlgorithm::kCcd,
    const SearchOptions& options = {});

/// Mean execution time of a fixed mapping over `repeats` runs — the
/// measurement protocol used to report all Fig. 6-8 numbers. Returns
/// infinity when any run fails.
[[nodiscard]] double measure_mapping(const Simulator& sim,
                                     const Mapping& mapping, int repeats,
                                     std::uint64_t seed);

// --- inspector-executor mode (extension; §6 "Profile-Guided Optimization")

/// Online tuning of a long production run: an initial portion of the run's
/// iterations is spent executing candidate mappings (the inspector), and
/// the remainder executes under the best mapping found (the executor).
struct OnlineOptions {
  /// Length of the production run in main-loop iterations. Must exceed the
  /// iterations the search consumes.
  long total_iterations = 100000;
  SearchAlgorithm algorithm = SearchAlgorithm::kCcd;
  SearchOptions search;
};

struct OnlineResult {
  Mapping best;
  /// Main-loop iterations consumed evaluating candidates.
  long search_iterations = 0;
  /// Wall time of the tuned production run (search window + remainder at
  /// the best mapping).
  double online_seconds = 0.0;
  /// Wall time of the same run under the default mapper throughout.
  double default_seconds = 0.0;

  [[nodiscard]] double speedup() const {
    return default_seconds / online_seconds;
  }
};

/// Runs the inspector-executor model against the simulator. The simulator's
/// configured iteration count is the per-candidate evaluation window.
[[nodiscard]] OnlineResult automap_online(const Simulator& sim,
                                          const OnlineOptions& options);

}  // namespace automap
