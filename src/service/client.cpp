#include "src/service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/service/wire.hpp"
#include "src/support/error.hpp"

namespace automap {

namespace {

void read_exact_or_throw(int fd, char* out, std::size_t n,
                         const char* what) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, out + got, n - got);
    if (r < 0 && errno == EINTR) continue;
    AM_REQUIRE(r > 0, std::string("connection closed while reading ") +
                          what);
    got += static_cast<std::size_t>(r);
  }
}

}  // namespace

std::string ServiceClient::call(const std::string& request_json) const {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  AM_REQUIRE(!socket_path_.empty() &&
                 socket_path_.size() < sizeof(addr.sun_path),
             "bad socket path: " + socket_path_);
  std::strncpy(addr.sun_path, socket_path_.c_str(),
               sizeof(addr.sun_path) - 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  AM_REQUIRE(fd >= 0,
             "cannot create socket: " + std::string(std::strerror(errno)));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw Error("cannot connect to " + socket_path_ + ": " + reason +
                " (is the daemon running? start with: automap_cli serve)");
  }

  try {
    const std::string frame = encode_frame(request_json);
    std::size_t sent = 0;
    while (sent < frame.size()) {
      // MSG_NOSIGNAL: a daemon that dies mid-send becomes a clean Error
      // (EPIPE) instead of a SIGPIPE that kills the client process.
      const ssize_t w = ::send(fd, frame.data() + sent,
                               frame.size() - sent, MSG_NOSIGNAL);
      if (w < 0 && errno == EINTR) continue;
      AM_REQUIRE(w > 0, "connection closed while sending the request");
      sent += static_cast<std::size_t>(w);
    }

    char header[kFrameHeaderBytes];
    read_exact_or_throw(fd, header, sizeof(header), "the response header");
    const std::size_t length =
        *decode_frame_length({header, sizeof(header)});
    std::string response(length, '\0');
    read_exact_or_throw(fd, response.data(), length, "the response body");
    ::close(fd);
    return response;
  } catch (...) {
    ::close(fd);
    throw;
  }
}

}  // namespace automap
