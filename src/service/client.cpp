#include "src/service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/service/wire.hpp"
#include "src/support/error.hpp"
#include "src/support/json.hpp"

namespace automap {

namespace {

void read_exact_or_throw(int fd, char* out, std::size_t n,
                         const char* what) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, out + got, n - got);
    if (r < 0 && errno == EINTR) continue;
    AM_REQUIRE(r > 0, std::string("connection closed while reading ") +
                          what);
    got += static_cast<std::size_t>(r);
  }
}

}  // namespace

std::string ServiceClient::call(const std::string& request_json) const {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  AM_REQUIRE(!socket_path_.empty() &&
                 socket_path_.size() < sizeof(addr.sun_path),
             "bad socket path: " + socket_path_);
  std::strncpy(addr.sun_path, socket_path_.c_str(),
               sizeof(addr.sun_path) - 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  AM_REQUIRE(fd >= 0,
             "cannot create socket: " + std::string(std::strerror(errno)));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw Unreachable(
        "cannot connect to " + socket_path_ + ": " + reason +
        " (is the daemon running? start with: automap_cli serve)");
  }

  try {
    const std::string frame = encode_frame(request_json);
    std::size_t sent = 0;
    while (sent < frame.size()) {
      // MSG_NOSIGNAL: a daemon that dies mid-send becomes a clean Error
      // (EPIPE) instead of a SIGPIPE that kills the client process.
      const ssize_t w = ::send(fd, frame.data() + sent,
                               frame.size() - sent, MSG_NOSIGNAL);
      if (w < 0 && errno == EINTR) continue;
      AM_REQUIRE(w > 0, "connection closed while sending the request");
      sent += static_cast<std::size_t>(w);
    }

    char header[kFrameHeaderBytes];
    read_exact_or_throw(fd, header, sizeof(header), "the response header");
    const std::size_t length =
        *decode_frame_length({header, sizeof(header)});
    std::string response(length, '\0');
    read_exact_or_throw(fd, response.data(), length, "the response body");
    ::close(fd);
    return response;
  } catch (...) {
    ::close(fd);
    throw;
  }
}

namespace {

/// splitmix64 step — small, seedable, and good enough for jitter.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// True for an `{"type":"error","code":"overloaded",...}` response;
/// copies out its retry_after_ms hint. Unparseable responses are not
/// overloaded — they surface to the caller unchanged.
bool is_overloaded(const std::string& response, double* retry_after_ms) {
  // Cheap pre-filter: every daemon error starts with these exact bytes
  // (wire_error emits no whitespace), so successful responses — which
  // may carry multi-megabyte result payloads — skip the full JSON parse.
  if (response.rfind("{\"type\":\"error\"", 0) != 0) return false;
  try {
    const JsonValue value = parse_json(response);
    if (value.kind != JsonValue::Kind::kObject) return false;
    if (value.str_or("type", "") != "error") return false;
    if (value.str_or("code", "") != "overloaded") return false;
    *retry_after_ms = value.num_or("retry_after_ms", 0);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

double retry_delay_ms(const RetryPolicy& policy, int attempt,
                      std::uint64_t& rng_state) {
  double ceiling = std::max(0.0, policy.base_ms);
  for (int i = 0; i < attempt && ceiling < policy.cap_ms; ++i)
    ceiling *= 2;
  ceiling = std::min(ceiling, std::max(0.0, policy.cap_ms));
  // Full jitter: uniform in [0, ceiling). The 53-bit mantissa path keeps
  // the mapping exact and platform-independent.
  const double unit =
      static_cast<double>(splitmix64(rng_state) >> 11) / 9007199254740992.0;
  return ceiling * unit;
}

std::string ServiceClient::call_with_retry(const std::string& request_json,
                                           const RetryPolicy& policy) const {
  std::uint64_t rng_state = policy.seed;
  const int attempts = std::max(1, policy.max_attempts);
  for (int attempt = 0;; ++attempt) {
    double floor_ms = 0;
    try {
      std::string response = call(request_json);
      if (!is_overloaded(response, &floor_ms)) return response;
      // Exhausted: hand the overloaded response to the caller — it holds
      // the structured code and hint, which beats inventing an error.
      if (attempt + 1 >= attempts) return response;
    } catch (const Unreachable&) {
      if (attempt + 1 >= attempts) throw;
    }
    const double delay_ms =
        std::max(floor_ms, retry_delay_ms(policy, attempt, rng_state));
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
  }
}

}  // namespace automap
