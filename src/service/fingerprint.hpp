#pragma once

// Stable fingerprints for the service's cross-job caches.
//
// The daemon keys its result cache and evaluation-cache buckets by content
// fingerprints of the request's inputs (machine text, task-graph text,
// canonical option encodings), so two clients submitting the same search
// land on the same cache entries regardless of file paths or submission
// order. FNV-1a over the canonical text serializations is enough: the
// fingerprints name cache files and index in-memory maps; they are not
// security boundaries.

#include <cstdint>
#include <string_view>

namespace automap {

class MachineModel;
class TaskGraph;

/// FNV-1a 64-bit over raw bytes.
[[nodiscard]] std::uint64_t hash_text(std::string_view text);
/// Continues an existing FNV-1a state — chain to fingerprint a tuple of
/// texts without concatenating them.
[[nodiscard]] std::uint64_t hash_text(std::string_view text,
                                      std::uint64_t state);

/// Fingerprint of a machine model / task graph via its canonical text
/// serialization (machine_to_string / task_graph_to_string), so a model
/// loaded from a file and one sent over the wire fingerprint identically.
[[nodiscard]] std::uint64_t fingerprint_machine(const MachineModel& machine);
[[nodiscard]] std::uint64_t fingerprint_graph(const TaskGraph& graph);

}  // namespace automap
