#include "src/service/fingerprint.hpp"

#include "src/io/text_io.hpp"

namespace automap {

namespace {
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
}  // namespace

std::uint64_t hash_text(std::string_view text, std::uint64_t state) {
  for (const char c : text) {
    state ^= static_cast<unsigned char>(c);
    state *= kFnvPrime;
  }
  // A terminator byte per chunk keeps chained tuples unambiguous:
  // ("ab", "c") and ("a", "bc") hash differently.
  state ^= 0xffU;
  state *= kFnvPrime;
  return state;
}

std::uint64_t hash_text(std::string_view text) {
  return hash_text(text, kFnvOffset);
}

std::uint64_t fingerprint_machine(const MachineModel& machine) {
  return hash_text(machine_to_string(machine));
}

std::uint64_t fingerprint_graph(const TaskGraph& graph) {
  return hash_text(task_graph_to_string(graph));
}

}  // namespace automap
