#include "src/service/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>

#include "src/service/service.hpp"
#include "src/service/wire.hpp"
#include "src/support/error.hpp"

namespace automap {

namespace {

using Clock = std::chrono::steady_clock;

/// Outcome of one deadline-bounded I/O step.
enum class Io {
  kOk,
  kClosed,   ///< peer EOF/reset — normal end of a connection
  kTimeout,  ///< deadline exceeded — slow or stalled peer
  kStopped,  ///< server shutting down
};

/// True when a daemon is actually listening on `path` — i.e. a connect()
/// succeeds. A leftover socket file from a crashed daemon refuses the
/// connection and is safe to replace.
bool socket_is_live(const std::string& path, const sockaddr_un& addr) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return false;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const bool live = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                              sizeof(addr)) == 0;
  ::close(fd);
  return live;
}

}  // namespace

struct ServiceServer::Connection {
  std::thread thread;
  std::atomic<bool> done{false};
};

ServiceServer::ServiceServer(MappingService& service, std::string socket_path,
                             ServerConfig config)
    : service_(service),
      socket_path_(std::move(socket_path)),
      config_(config) {
  AM_REQUIRE(!socket_path_.empty(), "service socket path is empty");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  AM_REQUIRE(socket_path_.size() < sizeof(addr.sun_path),
             "socket path too long: " + socket_path_);
  std::strncpy(addr.sun_path, socket_path_.c_str(),
               sizeof(addr.sun_path) - 1);

  // Probe before replacing: unconditionally unlinking would let a second
  // `serve` silently hijack a running daemon's socket — existing clients
  // would keep talking to the old daemon while new ones reach the
  // usurper, each with a different job table. Only a *dead* socket file
  // (connect refused: a crashed daemon's leftover) is replaced.
  if (socket_is_live(socket_path_, addr))
    throw Error("socket " + socket_path_ +
                " is in use by a running daemon (stop it first, or pass "
                "a different --socket)");

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  AM_REQUIRE(listen_fd_ >= 0, "cannot create socket: " +
                                  std::string(std::strerror(errno)));
  ::unlink(socket_path_.c_str());  // replace the stale socket file
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("cannot bind " + socket_path_ + ": " + reason);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(socket_path_.c_str());
    throw Error("cannot listen on " + socket_path_ + ": " + reason);
  }
}

ServiceServer::~ServiceServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(socket_path_.c_str());
}

bool ServiceServer::stopping() const {
  return stop_.load() || service_.shutdown_requested();
}

void ServiceServer::serve() {
  std::vector<std::unique_ptr<Connection>> connections;
  while (!stopping()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    // Short timeout: the loop re-checks the shutdown flags ~5x/second.
    const int ready = ::poll(&pfd, 1, 200);
    // Reap finished connection threads each tick, so a long-lived daemon
    // holds threads proportional to *live* connections, not to history.
    connections.erase(
        std::remove_if(connections.begin(), connections.end(),
                       [](const std::unique_ptr<Connection>& connection) {
                         if (!connection->done.load()) return false;
                         connection->thread.join();
                         return true;
                       }),
        connections.end());
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto connection = std::make_unique<Connection>();
    Connection* raw = connection.get();
    raw->thread = std::thread([this, fd, raw] {
      handle_connection(fd);
      raw->done.store(true);
    });
    connections.push_back(std::move(connection));
  }
  for (const std::unique_ptr<Connection>& connection : connections)
    connection->thread.join();
}

void ServiceServer::handle_connection(int fd) {
  // Non-blocking plus poll-with-deadline: every read/write below returns
  // to wait_ready on EAGAIN, so a stalled peer can never park this thread
  // past its deadline (a *blocking* send could stall indefinitely against
  // a peer that stops reading).
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

  // Polls in <=200ms slices until fd is ready for `events`, the deadline
  // passes, or the server starts stopping — so idle connections wake for
  // shutdown instead of pinning serve() in its join loop.
  const auto wait_ready = [&](short events, Clock::time_point deadline) {
    for (;;) {
      if (stopping()) return Io::kStopped;
      int slice = 200;
      if (deadline != kNoDeadline) {
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - Clock::now())
                .count();
        if (left <= 0) return Io::kTimeout;
        slice = static_cast<int>(std::min<long long>(left, 200));
      }
      pollfd pfd{fd, events, 0};
      const int ready = ::poll(&pfd, 1, slice);
      if (ready < 0 && errno == EINTR) continue;
      if (ready < 0) return Io::kClosed;
      if (ready == 0) continue;
      // Readiness for reads includes HUP/ERR: the read() observes EOF and
      // reports kClosed with whatever buffered bytes remained.
      if (events == POLLIN) return Io::kOk;
      if ((pfd.revents & POLLOUT) != 0) return Io::kOk;
      return Io::kClosed;
    }
  };

  const auto read_exact = [&](char* out, std::size_t n,
                              Clock::time_point deadline) {
    std::size_t got = 0;
    while (got < n) {
      const ssize_t r = ::read(fd, out + got, n - got);
      if (r > 0) {
        got += static_cast<std::size_t>(r);
        continue;
      }
      if (r == 0) return Io::kClosed;
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) return Io::kClosed;
      if (const Io status = wait_ready(POLLIN, deadline);
          status != Io::kOk)
        return status;
    }
    return Io::kOk;
  };

  const auto write_all = [&](std::string_view data,
                             Clock::time_point deadline) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      // MSG_NOSIGNAL: a client that disconnected mid-response must
      // surface as EPIPE on this connection's thread, not as a
      // process-wide SIGPIPE that kills the daemon (and every other job
      // with it).
      const ssize_t w = ::send(fd, data.data() + sent, data.size() - sent,
                               MSG_NOSIGNAL);
      if (w > 0) {
        sent += static_cast<std::size_t>(w);
        continue;
      }
      if (w < 0 && errno == EINTR) continue;
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (const Io status = wait_ready(POLLOUT, deadline);
            status != Io::kOk)
          return status;
        continue;
      }
      return Io::kClosed;  // EPIPE/ECONNRESET: peer gone, drop frame
    }
    return Io::kOk;
  };

  // The handshake cap mirrors the service's request limit: an oversize
  // frame gets a structured error response, then the connection closes
  // (its remaining payload bytes cannot be resynchronized).
  const std::size_t max_frame = kDefaultMaxFrameBytes;
  for (;;) {
    // Idle phase: wait for the next request to *start*. A peer that holds
    // the connection open without sending is reaped after idle_timeout_ms.
    const Clock::time_point idle_deadline =
        config_.idle_timeout_ms > 0
            ? Clock::now() +
                  std::chrono::milliseconds(config_.idle_timeout_ms)
            : kNoDeadline;
    if (const Io status = wait_ready(POLLIN, idle_deadline);
        status != Io::kOk) {
      if (status == Io::kTimeout) service_.note_idle_reaped();
      break;
    }
    // Frame phase: once a request starts, its header, payload, and the
    // response write must all finish within io_timeout_ms.
    const Clock::time_point frame_deadline =
        config_.io_timeout_ms > 0
            ? Clock::now() + std::chrono::milliseconds(config_.io_timeout_ms)
            : kNoDeadline;
    char header[kFrameHeaderBytes];
    Io status = read_exact(header, sizeof(header), frame_deadline);
    if (status != Io::kOk) {
      if (status == Io::kTimeout) service_.note_io_timeout();
      break;
    }
    const std::size_t length =
        *decode_frame_length({header, sizeof(header)});
    if (length > max_frame) {
      write_all(encode_frame(wire_error(
                    "too_large",
                    "frame of " + std::to_string(length) +
                        " bytes exceeds the transport limit")),
                frame_deadline);
      break;
    }
    std::string payload(length, '\0');
    status = read_exact(payload.data(), length, frame_deadline);
    if (status != Io::kOk) {
      if (status == Io::kTimeout) service_.note_io_timeout();
      break;
    }
    status = write_all(encode_frame(service_.handle(payload)),
                       frame_deadline);
    if (status != Io::kOk) {
      if (status == Io::kTimeout) service_.note_io_timeout();
      break;
    }
    if (service_.shutdown_requested()) break;
  }
  ::close(fd);
}

}  // namespace automap
