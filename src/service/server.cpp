#include "src/service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include "src/service/service.hpp"
#include "src/service/wire.hpp"
#include "src/support/error.hpp"

namespace automap {

namespace {

/// Reads exactly n bytes; false on EOF/error.
bool read_exact(int fd, char* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, out + got, n - got);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return false;
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a client that disconnected mid-response must surface
    // as EPIPE on this connection's thread, not as a process-wide SIGPIPE
    // that kills the daemon (and every other job with it).
    const ssize_t w = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) return false;  // EPIPE/ECONNRESET: peer gone, drop frame
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

/// True when a daemon is actually listening on `path` — i.e. a connect()
/// succeeds. A leftover socket file from a crashed daemon refuses the
/// connection and is safe to replace.
bool socket_is_live(const std::string& path, const sockaddr_un& addr) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return false;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const bool live = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                              sizeof(addr)) == 0;
  ::close(fd);
  return live;
}

}  // namespace

ServiceServer::ServiceServer(MappingService& service, std::string socket_path)
    : service_(service), socket_path_(std::move(socket_path)) {
  AM_REQUIRE(!socket_path_.empty(), "service socket path is empty");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  AM_REQUIRE(socket_path_.size() < sizeof(addr.sun_path),
             "socket path too long: " + socket_path_);
  std::strncpy(addr.sun_path, socket_path_.c_str(),
               sizeof(addr.sun_path) - 1);

  // Probe before replacing: unconditionally unlinking would let a second
  // `serve` silently hijack a running daemon's socket — existing clients
  // would keep talking to the old daemon while new ones reach the
  // usurper, each with a different job table. Only a *dead* socket file
  // (connect refused: a crashed daemon's leftover) is replaced.
  if (socket_is_live(socket_path_, addr))
    throw Error("socket " + socket_path_ +
                " is in use by a running daemon (stop it first, or pass "
                "a different --socket)");

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  AM_REQUIRE(listen_fd_ >= 0, "cannot create socket: " +
                                  std::string(std::strerror(errno)));
  ::unlink(socket_path_.c_str());  // replace the stale socket file
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("cannot bind " + socket_path_ + ": " + reason);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(socket_path_.c_str());
    throw Error("cannot listen on " + socket_path_ + ": " + reason);
  }
}

ServiceServer::~ServiceServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(socket_path_.c_str());
}

void ServiceServer::serve() {
  std::vector<std::thread> connections;
  while (!stop_.load() && !service_.shutdown_requested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    // Short timeout: the loop re-checks the shutdown flags ~5x/second.
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    connections.emplace_back([this, fd] { handle_connection(fd); });
  }
  for (std::thread& connection : connections) connection.join();
}

void ServiceServer::handle_connection(int fd) {
  // The handshake cap mirrors the service's request limit: an oversize
  // frame gets a structured error response, then the connection closes
  // (its remaining payload bytes cannot be resynchronized).
  const std::size_t max_frame = kDefaultMaxFrameBytes;
  for (;;) {
    char header[kFrameHeaderBytes];
    if (!read_exact(fd, header, sizeof(header))) break;
    const std::size_t length =
        *decode_frame_length({header, sizeof(header)});
    if (length > max_frame) {
      write_all(fd, encode_frame(wire_error(
                        "too_large",
                        "frame of " + std::to_string(length) +
                            " bytes exceeds the transport limit")));
      break;
    }
    std::string payload(length, '\0');
    if (!read_exact(fd, payload.data(), length)) break;
    if (!write_all(fd, encode_frame(service_.handle(payload)))) break;
    if (service_.shutdown_requested()) break;
  }
  ::close(fd);
}

}  // namespace automap
