#pragma once

// Wire framing for the mapping service (docs/file_formats.md "Wire
// protocol").
//
// Every message — request or response — is one frame: a 4-byte big-endian
// payload length followed by exactly that many bytes of UTF-8 JSON. The
// framing layer is pure string transforms so it is testable without
// sockets; src/service/server.cpp and client.cpp move the bytes.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace automap {

/// Version of the request/response JSON vocabulary; servers reply to
/// `ping` with it so clients can detect mismatches. Bumped on any
/// incompatible schema change (the framing itself never changes).
inline constexpr int kWireVersion = 1;

/// Frame header size: 4-byte big-endian payload length.
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Default per-message size cap. Requests carry whole machine/graph texts,
/// so the cap is generous; the server rejects larger frames with a
/// structured `too_large` error instead of dropping the connection.
inline constexpr std::size_t kDefaultMaxFrameBytes = 16u << 20;

/// Encodes one payload as a frame (header + bytes). Throws Error when the
/// payload exceeds the 32-bit length field.
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Decodes the payload length from a frame header prefix; std::nullopt
/// when `buffer` holds fewer than kFrameHeaderBytes bytes.
[[nodiscard]] std::optional<std::size_t> decode_frame_length(
    std::string_view buffer);

/// Structured error payload (`{"type":"error","code":...,"message":...}`)
/// — the one response shape every failure path uses, including oversize
/// frames and malformed JSON.
[[nodiscard]] std::string wire_error(std::string_view code,
                                     std::string_view message);

/// wire_error with extra top-level fields appended verbatim — e.g.
/// `"retry_after_ms":250` for the `overloaded` admission-control error.
/// `extra_fields` must be valid `"key":value[,...]` JSON text, without
/// the surrounding braces or a leading comma.
[[nodiscard]] std::string wire_error(std::string_view code,
                                     std::string_view message,
                                     std::string_view extra_fields);

}  // namespace automap
