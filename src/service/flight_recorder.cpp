#include "src/service/flight_recorder.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <set>
#include <utility>

#include "src/report/visualize.hpp"
#include "src/support/error.hpp"
#include "src/support/json.hpp"

namespace automap {

namespace {

double steady_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string attrs_json(const std::vector<SpanAttr>& attrs) {
  std::string out;
  for (const SpanAttr& attr : attrs) {
    if (!out.empty()) out += ",";
    out += "\"" + json_escape(attr.key) + "\":" + attr.value_json;
  }
  return out;
}

/// Re-renders a parsed attribute value for restore(). Only the scalar
/// kinds the recorder itself writes round-trip; anything else restores
/// as null rather than failing the whole timeline.
std::string attr_value_json(const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kBool:
      return v.boolean ? "true" : "false";
    case JsonValue::Kind::kNumber:
      return json_double(v.number);
    case JsonValue::Kind::kString:
      return "\"" + json_escape(v.string) + "\"";
    default:
      return "null";
  }
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(std::move(options)) {
  AM_REQUIRE(options_.max_jobs > 0 && options_.max_spans_per_job > 1,
             "flight recorder bounds must allow at least one job with an "
             "anchor span plus one more");
}

double FlightRecorder::now_at_least(double floor) const {
  const double now = options_.clock_ms ? options_.clock_ms() : steady_ms();
  return std::max(now, floor);
}

double FlightRecorder::newest_ms(const Timeline& timeline) const {
  double newest = 0;
  for (const Span& span : timeline.spans)
    newest = std::max(newest, std::max(span.start_ms, span.end_ms));
  return newest;
}

FlightRecorder::Timeline& FlightRecorder::timeline_locked(
    std::uint64_t job) {
  auto it = timelines_.find(job);
  if (it == timelines_.end()) {
    while (timelines_.size() >= options_.max_jobs) {
      // Evict the least-recently-touched sealed timeline; only when every
      // timeline is still live does an active one go.
      auto victim = timelines_.end();
      for (auto cand = timelines_.begin(); cand != timelines_.end(); ++cand)
        if (cand->second.terminal &&
            (victim == timelines_.end() ||
             cand->second.touched < victim->second.touched))
          victim = cand;
      if (victim == timelines_.end())
        for (auto cand = timelines_.begin(); cand != timelines_.end();
             ++cand)
          if (victim == timelines_.end() ||
              cand->second.touched < victim->second.touched)
            victim = cand;
      timelines_.erase(victim);
    }
    it = timelines_.emplace(job, Timeline{}).first;
  }
  it->second.touched = ++touch_tick_;
  return it->second;
}

void FlightRecorder::append_locked(Timeline& timeline, Span span) {
  while (timeline.spans.size() >= options_.max_spans_per_job &&
         timeline.spans.size() > 1) {
    // Keep the first span — it anchors age_ms — and shed the oldest of
    // the rest (in practice checkpoint markers, the only unbounded part).
    timeline.spans.erase(timeline.spans.begin() + 1);
    ++timeline.dropped;
  }
  timeline.spans.push_back(std::move(span));
}

double FlightRecorder::transition(std::uint64_t job, const std::string& span,
                                  int worker, std::vector<SpanAttr> attrs) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Timeline& timeline = timeline_locked(job);
  const double now = now_at_least(newest_ms(timeline));
  double closed = 0;
  for (auto it = timeline.spans.rbegin(); it != timeline.spans.rend();
       ++it) {
    if (it->instant || it->end_ms >= 0) continue;
    it->end_ms = now;
    closed = now - it->start_ms;
    break;
  }
  timeline.terminal = false;  // a transition on a sealed timeline revives
  Span next;
  next.name = span;
  next.start_ms = now;
  next.worker = worker;
  next.attrs = std::move(attrs);
  append_locked(timeline, std::move(next));
  return closed;
}

void FlightRecorder::instant(std::uint64_t job, const std::string& name,
                             std::vector<SpanAttr> attrs) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Timeline& timeline = timeline_locked(job);
  const double now = now_at_least(newest_ms(timeline));
  Span span;
  span.name = name;
  span.start_ms = now;
  span.end_ms = now;
  span.instant = true;
  // A marker during a running span belongs to that span's worker lane.
  for (auto it = timeline.spans.rbegin(); it != timeline.spans.rend(); ++it)
    if (!it->instant && it->end_ms < 0) {
      span.worker = it->worker;
      break;
    }
  span.attrs = std::move(attrs);
  append_locked(timeline, std::move(span));
}

double FlightRecorder::terminal(std::uint64_t job, const std::string& name,
                                std::vector<SpanAttr> attrs) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Timeline& timeline = timeline_locked(job);
  const double now = now_at_least(newest_ms(timeline));
  int worker = -1;
  for (auto it = timeline.spans.rbegin(); it != timeline.spans.rend();
       ++it) {
    if (it->instant || it->end_ms >= 0) continue;
    it->end_ms = now;
    worker = it->worker;
    break;
  }
  Span last;
  last.name = name;
  last.start_ms = now;
  last.end_ms = now;
  last.worker = worker;
  last.attrs = std::move(attrs);
  append_locked(timeline, std::move(last));
  timeline.terminal = true;
  return timeline.spans.empty() ? 0
                                : now - timeline.spans.front().start_ms;
}

void FlightRecorder::service_event(const std::string& name,
                                   std::vector<SpanAttr> attrs) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ServiceEvent event;
  event.name = name;
  event.at_ms =
      now_at_least(events_.empty() ? 0.0 : events_.back().at_ms);
  event.attrs = std::move(attrs);
  events_.push_back(std::move(event));
  while (events_.size() > options_.max_service_events)
    events_.pop_front();
}

bool FlightRecorder::has(std::uint64_t job) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return timelines_.count(job) != 0;
}

std::string FlightRecorder::current_span(std::uint64_t job) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = timelines_.find(job);
  if (it == timelines_.end() || it->second.spans.empty()) return {};
  return it->second.spans.back().name;
}

double FlightRecorder::age_ms(std::uint64_t job) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = timelines_.find(job);
  if (it == timelines_.end() || it->second.spans.empty()) return 0;
  const Timeline& timeline = it->second;
  const double start = timeline.spans.front().start_ms;
  if (timeline.terminal) return newest_ms(timeline) - start;
  return now_at_least(newest_ms(timeline)) - start;
}

double FlightRecorder::queue_wait_ms(std::uint64_t job) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = timelines_.find(job);
  if (it == timelines_.end() || it->second.spans.empty()) return 0;
  const Timeline& timeline = it->second;
  const double start = timeline.spans.front().start_ms;
  for (const Span& span : timeline.spans)
    if (span.name == "running") return span.start_ms - start;
  // Never ran: the wait ended at the terminal instant, or is still
  // growing.
  if (timeline.terminal) return newest_ms(timeline) - start;
  return now_at_least(newest_ms(timeline)) - start;
}

std::uint64_t FlightRecorder::dropped_for(std::uint64_t job) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = timelines_.find(job);
  return it == timelines_.end() ? 0 : it->second.dropped;
}

std::string FlightRecorder::span_json(const Span& span) {
  std::string out = "{\"name\":\"" + json_escape(span.name) +
                    "\",\"start_ms\":" + json_double(span.start_ms) +
                    ",\"end_ms\":" +
                    (span.end_ms < 0 ? "null" : json_double(span.end_ms));
  if (span.worker >= 0) out += ",\"worker\":" + std::to_string(span.worker);
  if (span.instant) out += ",\"instant\":true";
  if (!span.attrs.empty())
    out += ",\"attrs\":{" + attrs_json(span.attrs) + "}";
  return out + "}";
}

std::string FlightRecorder::spans_array_json(std::uint64_t job) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = timelines_.find(job);
  std::string out = "[";
  if (it != timelines_.end()) {
    bool first = true;
    for (const Span& span : it->second.spans) {
      if (!first) out += ",";
      first = false;
      out += span_json(span);
    }
  }
  return out + "]";
}

std::string FlightRecorder::serialize(std::uint64_t job) const {
  std::string out = "{\"job\":" + std::to_string(job);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = timelines_.find(job);
    const bool terminal =
        it != timelines_.end() && it->second.terminal;
    out += ",\"dropped\":" +
           std::to_string(it == timelines_.end() ? 0 : it->second.dropped);
    out += ",\"terminal\":";
    out += terminal ? "true" : "false";
  }
  return out + ",\"spans\":" + spans_array_json(job) + "}";
}

void FlightRecorder::restore(std::uint64_t job, const std::string& payload) {
  const JsonValue doc = parse_json(payload);
  AM_REQUIRE(doc.kind == JsonValue::Kind::kObject,
             "spans payload must be a JSON object");
  const JsonValue* spans = doc.find("spans");
  AM_REQUIRE(spans != nullptr && spans->kind == JsonValue::Kind::kArray,
             "spans payload needs a 'spans' array");

  Timeline timeline;
  timeline.dropped =
      static_cast<std::uint64_t>(doc.num_or("dropped", 0));
  timeline.terminal = doc.bool_or("terminal", false);
  double newest = -std::numeric_limits<double>::infinity();
  for (const JsonValue& entry : spans->array) {
    AM_REQUIRE(entry.kind == JsonValue::Kind::kObject,
               "spans entries must be objects");
    Span span;
    span.name = entry.str_or("name", "");
    AM_REQUIRE(!span.name.empty(), "span entry without a name");
    span.start_ms = entry.num_or("start_ms", 0);
    const JsonValue* end = entry.find("end_ms");
    span.end_ms = (end != nullptr && end->kind == JsonValue::Kind::kNumber)
                      ? end->number
                      : -1;
    span.worker = static_cast<int>(entry.num_or("worker", -1));
    span.instant = entry.bool_or("instant", false);
    if (const JsonValue* attrs = entry.find("attrs"))
      for (const auto& [key, value] : attrs->object)
        span.attrs.push_back({key, attr_value_json(value)});
    newest = std::max(newest, std::max(span.start_ms, span.end_ms));
    timeline.spans.push_back(std::move(span));
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  if (!timeline.spans.empty()) {
    // The persisted epoch belongs to a dead process (steady clocks restart
    // at boot): shift every timestamp so the newest restored instant lands
    // at now. Durations survive, and nothing this process records can
    // predate what it restored.
    const double shift = now_at_least(0) - newest;
    for (Span& span : timeline.spans) {
      span.start_ms += shift;
      if (span.end_ms >= 0) span.end_ms += shift;
    }
  }
  timeline.touched = ++touch_tick_;
  timelines_[job] = std::move(timeline);
}

std::string FlightRecorder::chrome_trace() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  double origin = std::numeric_limits<double>::infinity();
  for (const ServiceEvent& event : events_)
    origin = std::min(origin, event.at_ms);
  for (const auto& [job, timeline] : timelines_)
    for (const Span& span : timeline.spans)
      origin = std::min(origin, span.start_ms);
  if (origin == std::numeric_limits<double>::infinity()) origin = 0;
  const double now = now_at_least(origin);

  ChromeTraceBuilder trace;
  trace.lane(0, "service");
  trace.lane(1, "queue");
  std::set<int> workers;
  for (const auto& [job, timeline] : timelines_)
    for (const Span& span : timeline.spans)
      if (span.worker >= 0) workers.insert(span.worker);
  for (const int worker : workers)
    trace.lane(2 + worker, "worker " + std::to_string(worker));

  for (const ServiceEvent& event : events_)
    trace.instant(0, event.name, (event.at_ms - origin) * 1e3,
                  attrs_json(event.attrs));
  for (const auto& [job, timeline] : timelines_) {
    for (const Span& span : timeline.spans) {
      const int tid = span.worker >= 0 ? 2 + span.worker : 1;
      std::string args = "\"job\":" + std::to_string(job);
      if (!span.attrs.empty()) args += "," + attrs_json(span.attrs);
      const std::string name =
          "j" + std::to_string(job) + " " + span.name;
      const double end =
          span.end_ms < 0 ? std::max(now, span.start_ms) : span.end_ms;
      if (span.instant || end <= span.start_ms)
        trace.instant(tid, name, (span.start_ms - origin) * 1e3, args);
      else
        trace.complete(tid, name, (span.start_ms - origin) * 1e3,
                       (end - span.start_ms) * 1e3, args);
    }
  }
  return trace.str();
}

}  // namespace automap
