#include "src/service/service.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <optional>
#include <sstream>
#include <utility>

#include "src/io/text_io.hpp"
#include "src/report/journal.hpp"
#include "src/search/algorithms.hpp"
#include "src/search/search.hpp"
#include "src/service/fingerprint.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/error.hpp"
#include "src/support/json.hpp"

namespace automap {

namespace {

namespace fs = std::filesystem;

/// Everything a submit request carries, decoded once and shared by the
/// submit handler, the job runner and store recovery.
struct SubmitSpec {
  std::string machine_text;
  std::string graph_text;
  std::string algorithm = "ccd";
  SearchOptions options;
  SimOptions sim;
  int priority = 0;
  bool want_journal = false;
  bool reuse_measurements = false;
  /// Canonical re-encodings — the fingerprint inputs, so two requests
  /// spelling the same configuration differently still collide.
  std::string options_json;
  std::string sim_json;
  std::uint64_t fingerprint = 0;
};

SubmitSpec parse_submit(const JsonValue& request) {
  SubmitSpec spec;
  const JsonValue* machine = request.find("machine");
  AM_REQUIRE(machine != nullptr &&
                 machine->kind == JsonValue::Kind::kString,
             "submit needs a 'machine' text field");
  spec.machine_text = machine->string;
  const JsonValue* graph = request.find("graph");
  AM_REQUIRE(graph != nullptr && graph->kind == JsonValue::Kind::kString,
             "submit needs a 'graph' text field");
  spec.graph_text = graph->string;
  spec.algorithm = request.str_or("algorithm", "ccd");
  if (const JsonValue* options = request.find("options"))
    spec.options = search_options_from_json(*options);
  if (const JsonValue* sim = request.find("sim"))
    spec.sim = sim_options_from_json(*sim);
  spec.priority = static_cast<int>(request.num_or("priority", 0));
  spec.want_journal = request.bool_or("journal", false);
  spec.reuse_measurements = request.bool_or("reuse_measurements", false);

  spec.options_json = search_options_to_json(spec.options);
  spec.sim_json = sim_options_to_json(spec.sim);
  std::uint64_t fp = hash_text(spec.machine_text);
  fp = hash_text(spec.graph_text, fp);
  fp = hash_text(spec.algorithm, fp);
  fp = hash_text(spec.options_json, fp);
  fp = hash_text(spec.sim_json, fp);
  fp = hash_text(spec.want_journal ? "journal" : "", fp);
  fp = hash_text(spec.reuse_measurements ? "reuse" : "", fp);
  spec.fingerprint = fp;
  return spec;
}

/// The evaluation-cache bucket key: which measurements are reusable
/// across jobs. Everything that decides an individual candidate's
/// recorded mean participates; rotation counts / budgets / top_k do not
/// (they decide which candidates get proposed, not what a measurement of
/// one is worth).
std::uint64_t bucket_key(const SubmitSpec& spec) {
  std::uint64_t key = hash_text(spec.machine_text);
  key = hash_text(spec.graph_text, key);
  key = hash_text(spec.sim_json, key);
  std::string measure = std::to_string(spec.options.seed);
  measure += "/" + std::to_string(spec.options.repeats);
  measure += spec.options.objective == Objective::kEnergy ? "/energy"
                                                          : "/time";
  measure += spec.options.memory_fallbacks ? "/fb" : "";
  measure += "/" + std::to_string(spec.options.resilience.max_retries);
  measure += "/" +
             std::to_string(spec.options.resilience.quarantine_after);
  measure += "/" + json_double(spec.options.resilience.retry_backoff_s);
  measure += "/" + std::to_string(static_cast<int>(
                       spec.options.resilience.aggregation));
  return hash_text(measure, key);
}

void save_atomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  save_text(tmp, text);
  AM_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
             "cannot move " + tmp + " into place");
}

std::optional<std::string> read_if_exists(const std::string& path) {
  std::error_code ec;
  if (!fs::exists(path, ec)) return std::nullopt;
  return load_text(path);
}

std::string require_job_field(const JsonValue& request) {
  const JsonValue* job = request.find("job");
  AM_REQUIRE(job != nullptr && job->kind == JsonValue::Kind::kNumber,
             "request needs a numeric 'job' field");
  return std::to_string(
      static_cast<std::uint64_t>(job->number));
}

}  // namespace

MappingService::MappingService(const ServiceConfig& config)
    : config_(config),
      pool_(config.eval_threads == 0 ? ThreadPool::hardware_threads()
                                     : config.eval_threads) {
  AM_REQUIRE(!config_.store_dir.empty(), "service store directory is empty");
  fs::create_directories(fs::path(config_.store_dir) / "jobs");
  fs::create_directories(fs::path(config_.store_dir) / "cache");
  // The existing up-front writability probe, applied to the store before
  // the daemon accepts anything — a read-only volume fails here with one
  // Error line instead of on the first completed job.
  require_writable_path(
      (fs::path(config_.store_dir) / ".writable-probe").string());

  m_submitted_ = metrics_.counter("automap_service_jobs_submitted_total",
                                  "Jobs accepted by submit", false);
  m_completed_ = metrics_.counter("automap_service_jobs_completed_total",
                                  "Jobs finished successfully", false);
  m_failed_ = metrics_.counter("automap_service_jobs_failed_total",
                               "Jobs that ended in an error", false);
  m_result_cache_hits_ =
      metrics_.counter("automap_service_result_cache_hits_total",
                       "Submissions answered from a completed job", false);
  m_eval_cache_seeded_ =
      metrics_.counter("automap_service_eval_cache_seeded_total",
                       "Jobs seeded from an evaluation-cache bucket", false);
  m_sim_runs_ = metrics_.counter(
      "automap_sim_runs_total",
      "Simulator runs across all jobs (includes speculative pool work)",
      false);

  recover_store();

  for (int i = 0; i < config_.job_workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

MappingService::~MappingService() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

const char* MappingService::status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued:
      return "queued";
    case JobStatus::kRunning:
      return "running";
    case JobStatus::kDone:
      return "done";
    case JobStatus::kFailed:
      return "failed";
    case JobStatus::kCancelled:
      return "cancelled";
  }
  return "?";
}

std::string MappingService::job_dir(std::uint64_t id) const {
  return (fs::path(config_.store_dir) / "jobs" / std::to_string(id))
      .string();
}

bool MappingService::shutdown_requested() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return shutdown_;
}

std::string MappingService::expose_metrics() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return metrics_.expose();
}

std::string MappingService::handle(const std::string& request_json) {
  if (request_json.size() > config_.max_request_bytes)
    return wire_error("too_large",
                      "request of " + std::to_string(request_json.size()) +
                          " bytes exceeds the " +
                          std::to_string(config_.max_request_bytes) +
                          "-byte limit");
  try {
    const JsonValue request = parse_json(request_json);
    AM_REQUIRE(request.kind == JsonValue::Kind::kObject,
               "request must be a JSON object");
    const std::string op = request.str_or("op", "");
    if (op == "ping")
      return "{\"type\":\"pong\",\"version\":" +
             std::to_string(kWireVersion) + "}";
    if (op == "submit") return handle_submit(request, request_json);
    if (op == "status") return handle_status(request);
    if (op == "result") return handle_result(request);
    if (op == "journal") return handle_journal(request);
    if (op == "cancel") return handle_cancel(request);
    if (op == "jobs") return handle_jobs();
    if (op == "stats")
      return "{\"type\":\"stats\",\"version\":" +
             std::to_string(kWireVersion) + ",\"metrics\":\"" +
             json_escape(expose_metrics()) + "\"}";
    if (op == "shutdown") {
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
      }
      return "{\"type\":\"shutdown\"}";
    }
    return wire_error("unknown_op", "unknown op '" + op + "'");
  } catch (const Error& e) {
    return wire_error("bad_request", e.what());
  } catch (const std::exception& e) {
    return wire_error("internal", e.what());
  }
}

std::string MappingService::handle_submit(const JsonValue& request,
                                          const std::string& request_json) {
  const SubmitSpec spec = parse_submit(request);
  // Validate the full configuration before accepting: a malformed machine
  // or unknown algorithm is a bad_request now, not a failed job later.
  (void)machine_from_string(spec.machine_text);
  (void)task_graph_from_string(spec.graph_text);
  AM_REQUIRE(find_search_algorithm(spec.algorithm) != nullptr,
             "unknown algorithm '" + spec.algorithm + "' (expected " +
                 std::string(search_algorithm_names()) + ")");

  std::lock_guard<std::mutex> lock(mutex_);
  // Result cache: an identical request maps onto the existing job — done
  // jobs answer instantly with zero new simulator runs; queued/running
  // ones dedupe onto the in-flight search.
  for (const auto& [id, job] : jobs_) {
    if (job.fingerprint != spec.fingerprint) continue;
    if (job.status == JobStatus::kFailed ||
        job.status == JobStatus::kCancelled)
      continue;
    const bool done = job.status == JobStatus::kDone;
    if (done) m_result_cache_hits_->inc();
    return "{\"type\":\"submitted\",\"job\":" + std::to_string(id) +
           ",\"status\":\"" + status_name(job.status) +
           "\",\"cached\":" + (done ? "true" : "false") + "}";
  }

  Job job;
  job.id = next_id_++;
  job.priority = spec.priority;
  job.request_json = request_json;
  job.fingerprint = spec.fingerprint;
  job.algorithm = spec.algorithm;
  job.want_journal = spec.want_journal;
  job.reuse_measurements = spec.reuse_measurements;
  fs::create_directories(job_dir(job.id));
  save_atomic(job_dir(job.id) + "/request.json", request_json);
  const std::uint64_t id = job.id;
  jobs_.emplace(id, std::move(job));
  m_submitted_->inc();
  work_cv_.notify_one();
  return "{\"type\":\"submitted\",\"job\":" + std::to_string(id) +
         ",\"status\":\"queued\",\"cached\":false}";
}

std::string MappingService::handle_status(const JsonValue& request) {
  const std::string id_text = require_job_field(request);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(std::stoull(id_text));
  if (it == jobs_.end())
    return wire_error("not_found", "no job " + id_text);
  std::string out = "{\"type\":\"status\",\"job\":" + id_text +
                    ",\"status\":\"" + status_name(it->second.status) +
                    "\"";
  if (!it->second.error.empty())
    out += ",\"message\":\"" + json_escape(it->second.error) + "\"";
  return out + "}";
}

std::string MappingService::handle_result(const JsonValue& request) {
  const std::string id_text = require_job_field(request);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(std::stoull(id_text));
  if (it == jobs_.end())
    return wire_error("not_found", "no job " + id_text);
  const Job& job = it->second;
  if (job.status == JobStatus::kDone) return job.result_json;
  if (job.status == JobStatus::kFailed)
    return wire_error("bad_state", "job " + id_text + " failed: " +
                                       job.error);
  return wire_error("bad_state", "job " + id_text + " is " +
                                     status_name(job.status));
}

std::string MappingService::handle_journal(const JsonValue& request) {
  const std::string id_text = require_job_field(request);
  const long long after =
      static_cast<long long>(request.num_or("after", -1));
  std::string path;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(std::stoull(id_text));
    if (it == jobs_.end())
      return wire_error("not_found", "no job " + id_text);
    if (!it->second.want_journal)
      return wire_error("bad_state",
                        "job " + id_text + " was submitted without "
                        "\"journal\":true");
    path = job_dir(it->second.id) + "/journal.jsonl";
  }
  // Poll-based streaming: return the complete lines past the client's
  // cursor, each as one escaped string (the exact JSONL line bytes, so a
  // client can reconstruct the journal file verbatim). Event `n` equals
  // the line index, so the cursor is just a line count; a mid-write
  // partial tail line is withheld until complete.
  std::string out = "{\"type\":\"journal\",\"job\":" + id_text +
                    ",\"events\":[";
  long long next = after;
  if (const std::optional<std::string> text = read_if_exists(path)) {
    long long n = 0;
    std::size_t start = 0;
    bool first = true;
    while (start < text->size()) {
      const std::size_t end = text->find('\n', start);
      if (end == std::string::npos) break;  // partial tail, not yet ours
      if (n > after) {
        if (!first) out += ",";
        first = false;
        out += "\"" + json_escape(text->substr(start, end - start)) + "\"";
        next = n;
      }
      ++n;
      start = end + 1;
    }
  }
  return out + "],\"next\":" + std::to_string(next) + "}";
}

std::string MappingService::handle_cancel(const JsonValue& request) {
  const std::string id_text = require_job_field(request);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(std::stoull(id_text));
  if (it == jobs_.end())
    return wire_error("not_found", "no job " + id_text);
  if (it->second.status != JobStatus::kQueued)
    return wire_error("bad_state",
                      "only queued jobs can be cancelled; job " + id_text +
                          " is " + status_name(it->second.status));
  it->second.status = JobStatus::kCancelled;
  std::error_code ec;
  fs::remove_all(job_dir(it->second.id), ec);  // no revival on restart
  return "{\"type\":\"cancelled\",\"job\":" + id_text + "}";
}

std::string MappingService::handle_jobs() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"type\":\"jobs\",\"jobs\":[";
  bool first = true;
  for (const auto& [id, job] : jobs_) {
    if (!first) out += ",";
    first = false;
    out += "{\"job\":" + std::to_string(id) + ",\"status\":\"" +
           status_name(job.status) + "\",\"algorithm\":\"" +
           json_escape(job.algorithm) +
           "\",\"priority\":" + std::to_string(job.priority) + "}";
  }
  return out + "]}";
}

std::uint64_t MappingService::claim_next_locked() {
  std::uint64_t best = 0;
  int best_priority = 0;
  for (auto& [id, job] : jobs_) {
    if (job.status != JobStatus::kQueued) continue;
    if (best == 0 || job.priority > best_priority) {
      best = id;  // map iteration is id-ascending: FIFO within a class
      best_priority = job.priority;
    }
  }
  if (best != 0) jobs_.at(best).status = JobStatus::kRunning;
  return best;
}

void MappingService::worker_loop() {
  for (;;) {
    std::uint64_t id = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] {
        if (stopping_) return true;
        for (const auto& [jid, job] : jobs_)
          if (job.status == JobStatus::kQueued) return true;
        return false;
      });
      if (stopping_) return;
      id = claim_next_locked();
    }
    if (id != 0) run_job(id);
  }
}

void MappingService::drain() {
  for (;;) {
    std::uint64_t id = 0;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      id = claim_next_locked();
    }
    if (id == 0) return;
    run_job(id);
  }
}

void MappingService::run_job(std::uint64_t id) {
  std::string request_json;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    request_json = jobs_.at(id).request_json;
  }

  const std::string dir = job_dir(id);
  try {
    const SubmitSpec spec = parse_submit(parse_json(request_json));
    // The simulator keeps references; the job owns machine and graph for
    // the duration of the search.
    const MachineModel machine = machine_from_string(spec.machine_text);
    const TaskGraph graph = task_graph_from_string(spec.graph_text);
    const SearchAlgorithmInfo* algorithm =
        find_search_algorithm(spec.algorithm);
    AM_REQUIRE(algorithm != nullptr,
               "unknown algorithm '" + spec.algorithm + "'");

    SearchOptions options = spec.options;
    options.shared_pool = &pool_;
    options.pool_priority = spec.priority;
    options.checkpoint_path = dir + "/checkpoint";
    // Warm restart: a checkpoint left by an interrupted run resumes the
    // search; byte-identity of the final result is the PR 4 contract.
    if (const std::optional<std::string> checkpoint =
            read_if_exists(options.checkpoint_path))
      options.resume_state = *checkpoint;

    std::optional<Journal> journal;
    if (spec.want_journal) journal.emplace(dir + "/journal.jsonl");
    MetricsRegistry job_metrics;
    options.journal = journal.has_value() ? &*journal : nullptr;
    options.metrics = &job_metrics;

    std::uint64_t bucket = 0;
    if (spec.reuse_measurements) {
      bucket = bucket_key(spec);
      options.export_profiles_db = true;
      if (const std::optional<std::string> seeded = read_if_exists(
              (fs::path(config_.store_dir) / "cache" /
               (hex_u64(bucket) + ".profiles"))
                  .string())) {
        options.profiles_seed = *seeded;
        m_eval_cache_seeded_->inc();
      }
    } else {
      options.export_profiles_db = false;
    }

    SimOptions sim_options = spec.sim;
    sim_options.metrics = &job_metrics;
    const Simulator sim(machine, graph, sim_options);
    const SearchResult result = algorithm->run(sim, options);

    // The response payload. `summary` is the CLI's summary line verbatim
    // and `mapping` the exact bytes `search -o` writes, so daemon answers
    // are byte-comparable to the one-shot path. wall-clock time is
    // excluded: responses must be byte-identical across runs.
    const SearchStats& stats = result.stats;
    std::string payload = "{\"type\":\"result\",\"job\":" +
                          std::to_string(id) + ",\"algorithm\":\"" +
                          json_escape(result.algorithm) + "\"";
    payload += ",\"summary\":\"" +
               json_escape(render_search_summary(result)) + "\"";
    payload += ",\"best\":" + json_double(result.best_seconds);
    payload += ",\"mapping\":\"" + json_escape(result.best.serialize()) +
               "\"";
    payload += ",\"describe\":\"" +
               json_escape(result.best.describe(graph)) + "\"";
    payload += ",\"stats\":{";
    payload += "\"suggested\":" + std::to_string(stats.suggested);
    payload += ",\"evaluated\":" + std::to_string(stats.evaluated);
    payload += ",\"invalid\":" + std::to_string(stats.invalid);
    payload += ",\"oom\":" + std::to_string(stats.oom);
    payload += ",\"censored\":" + std::to_string(stats.censored);
    payload += ",\"cache_hits\":" + std::to_string(stats.cache_hits);
    payload += ",\"transient_failures\":" +
               std::to_string(stats.transient_failures);
    payload += ",\"retries\":" + std::to_string(stats.retries);
    payload += ",\"quarantined\":" + std::to_string(stats.quarantined);
    payload += ",\"degraded\":";
    payload += stats.degraded ? "true" : "false";
    payload += ",\"search_time_s\":" + json_double(stats.search_time_s);
    payload += ",\"evaluation_time_s\":" +
               json_double(stats.evaluation_time_s);
    payload += "}}";

    save_atomic(dir + "/result.json", payload);
    if (spec.reuse_measurements && !result.profiles_db.empty()) {
      // The export includes imported entries, so the fresh export IS the
      // union of the bucket and this job's new measurements.
      save_atomic((fs::path(config_.store_dir) / "cache" /
                   (hex_u64(bucket) + ".profiles"))
                      .string(),
                  result.profiles_db);
    }

    const Counter* sim_runs = job_metrics.counter(
        "automap_sim_runs_total", "Simulator runs executed", false);
    const std::lock_guard<std::mutex> lock(mutex_);
    Job& job = jobs_.at(id);
    job.status = JobStatus::kDone;
    job.result_json = std::move(payload);
    by_fingerprint_[job.fingerprint] = id;
    m_completed_->inc();
    m_sim_runs_->inc(sim_runs->value());
  } catch (const std::exception& e) {
    const std::lock_guard<std::mutex> lock(mutex_);
    Job& job = jobs_.at(id);
    job.status = JobStatus::kFailed;
    job.error = e.what();
    m_failed_->inc();
  }
  work_cv_.notify_all();
}

void MappingService::recover_store() {
  const fs::path jobs_root = fs::path(config_.store_dir) / "jobs";
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(jobs_root, ec)) {
    if (!entry.is_directory()) continue;
    std::uint64_t id = 0;
    try {
      std::size_t used = 0;
      const std::string name = entry.path().filename().string();
      id = std::stoull(name, &used);
      if (used != name.size() || id == 0) continue;
    } catch (const std::exception&) {
      continue;
    }
    const std::optional<std::string> request =
        read_if_exists((entry.path() / "request.json").string());
    if (!request) continue;
    Job job;
    try {
      const SubmitSpec spec = parse_submit(parse_json(*request));
      job.id = id;
      job.priority = spec.priority;
      job.request_json = *request;
      job.fingerprint = spec.fingerprint;
      job.algorithm = spec.algorithm;
      job.want_journal = spec.want_journal;
      job.reuse_measurements = spec.reuse_measurements;
    } catch (const std::exception&) {
      continue;  // corrupt store entry; leave it on disk for inspection
    }
    if (const std::optional<std::string> result =
            read_if_exists((entry.path() / "result.json").string())) {
      job.status = JobStatus::kDone;
      job.result_json = *result;
      by_fingerprint_[job.fingerprint] = id;
    } else {
      // Interrupted: re-enqueue; run_job resumes from the checkpoint the
      // interrupted run left (if any).
      job.status = JobStatus::kQueued;
    }
    next_id_ = std::max(next_id_, id + 1);
    jobs_.emplace(id, std::move(job));
  }
}

}  // namespace automap
