#include "src/service/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "src/io/text_io.hpp"
#include "src/report/journal.hpp"
#include "src/search/algorithms.hpp"
#include "src/search/search.hpp"
#include "src/service/fingerprint.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/durable.hpp"
#include "src/support/error.hpp"
#include "src/support/json.hpp"

namespace automap {

namespace {

namespace fs = std::filesystem;

/// Everything a submit request carries, decoded once and shared by the
/// submit handler, the job runner and store recovery.
/// Largest accepted per-submit deadline (~366 days in milliseconds).
constexpr double kMaxDeadlineMs = 31622400000.0;

struct SubmitSpec {
  std::string machine_text;
  std::string graph_text;
  std::string algorithm = "ccd";
  SearchOptions options;
  SimOptions sim;
  int priority = 0;
  bool want_journal = false;
  bool reuse_measurements = false;
  /// Wall-clock deadline for the job (0 = none). Deliberately OUTSIDE the
  /// fingerprint — like `priority`, it decides how a job runs, not what
  /// it computes, so a resubmission with a different deadline still maps
  /// onto the existing job (and resumes its checkpoint byte-identically).
  double deadline_ms = 0;
  /// Canonical re-encodings — the fingerprint inputs, so two requests
  /// spelling the same configuration differently still collide.
  std::string options_json;
  std::string sim_json;
  std::uint64_t fingerprint = 0;
};

SubmitSpec parse_submit(const JsonValue& request) {
  SubmitSpec spec;
  const JsonValue* machine = request.find("machine");
  AM_REQUIRE(machine != nullptr &&
                 machine->kind == JsonValue::Kind::kString,
             "submit needs a 'machine' text field");
  spec.machine_text = machine->string;
  const JsonValue* graph = request.find("graph");
  AM_REQUIRE(graph != nullptr && graph->kind == JsonValue::Kind::kString,
             "submit needs a 'graph' text field");
  spec.graph_text = graph->string;
  spec.algorithm = request.str_or("algorithm", "ccd");
  if (const JsonValue* options = request.find("options"))
    spec.options = search_options_from_json(*options);
  if (const JsonValue* sim = request.find("sim"))
    spec.sim = sim_options_from_json(*sim);
  spec.priority = static_cast<int>(request.num_or("priority", 0));
  spec.want_journal = request.bool_or("journal", false);
  spec.reuse_measurements = request.bool_or("reuse_measurements", false);
  spec.deadline_ms = request.num_or("deadline_ms", 0);
  // The upper bound keeps the later int64 cast and steady_clock addition
  // well-defined for any wire-supplied double (1e300 is valid JSON); NaN
  // fails both comparisons. ~A year is far beyond any real deadline.
  AM_REQUIRE(spec.deadline_ms >= 0 && spec.deadline_ms <= kMaxDeadlineMs,
             "deadline_ms must be between 0 and " +
                 std::to_string(static_cast<std::int64_t>(kMaxDeadlineMs)));

  spec.options_json = search_options_to_json(spec.options);
  spec.sim_json = sim_options_to_json(spec.sim);
  std::uint64_t fp = hash_text(spec.machine_text);
  fp = hash_text(spec.graph_text, fp);
  fp = hash_text(spec.algorithm, fp);
  fp = hash_text(spec.options_json, fp);
  fp = hash_text(spec.sim_json, fp);
  fp = hash_text(spec.want_journal ? "journal" : "", fp);
  fp = hash_text(spec.reuse_measurements ? "reuse" : "", fp);
  spec.fingerprint = fp;
  return spec;
}

/// The evaluation-cache bucket key: which measurements are reusable
/// across jobs. Everything that decides an individual candidate's
/// recorded mean participates; rotation counts / budgets / top_k do not
/// (they decide which candidates get proposed, not what a measurement of
/// one is worth).
std::uint64_t bucket_key(const SubmitSpec& spec) {
  std::uint64_t key = hash_text(spec.machine_text);
  key = hash_text(spec.graph_text, key);
  key = hash_text(spec.sim_json, key);
  std::string measure = std::to_string(spec.options.seed);
  measure += "/" + std::to_string(spec.options.repeats);
  measure += spec.options.objective == Objective::kEnergy ? "/energy"
                                                          : "/time";
  measure += spec.options.memory_fallbacks ? "/fb" : "";
  measure += "/" + std::to_string(spec.options.resilience.max_retries);
  measure += "/" +
             std::to_string(spec.options.resilience.quarantine_after);
  measure += "/" + json_double(spec.options.resilience.retry_backoff_s);
  measure += "/" + std::to_string(static_cast<int>(
                       spec.options.resilience.aggregation));
  return hash_text(measure, key);
}

std::optional<std::string> read_if_exists(const std::string& path) {
  std::error_code ec;
  if (!fs::exists(path, ec)) return std::nullopt;
  return load_text(path);
}

std::string require_job_field(const JsonValue& request) {
  const JsonValue* job = request.find("job");
  AM_REQUIRE(job != nullptr && job->kind == JsonValue::Kind::kNumber,
             "request needs a numeric 'job' field");
  return std::to_string(
      static_cast<std::uint64_t>(job->number));
}

/// Bytes of regular files under `dir` (0 when absent) — the store's
/// byte-budget accounting unit.
std::size_t dir_bytes(const std::string& dir) {
  std::size_t total = 0;
  std::error_code ec;
  fs::recursive_directory_iterator it(dir, ec);
  const fs::recursive_directory_iterator end;
  while (!ec && it != end) {
    std::error_code fec;
    if (it->is_regular_file(fec) && !fec) {
      const auto size = it->file_size(fec);
      if (!fec) total += static_cast<std::size_t>(size);
    }
    it.increment(ec);
  }
  return total;
}

/// The cancellation tombstone: written into a job dir *before* any
/// destructive step so a crash mid-delete cannot revive a corrupt job on
/// restart. "purge" marks a dir whose deletion is pending (restart
/// finishes the cleanup); "keep" marks a cancelled-while-running job whose
/// checkpoint is deliberately retained for a later resume.
constexpr const char* kTombstoneName = "cancelled";

void write_tombstone(const std::string& dir, const char* mode) {
  try {
    // Durable but trailer-less: tombstones are a one-word sentinel whose
    // presence is the signal, so recovery reads them as plain text.
    save_durable(dir + "/" + kTombstoneName, std::string(mode) + "\n",
                 "tombstone");
  } catch (const std::exception&) {
    // Best effort: a missing tombstone only costs a spurious re-run after
    // a crash, never corruption.
  }
}

/// Milliseconds cast for the deadline wheel (deadline_ms is validated
/// into [0, kMaxDeadlineMs] at parse time, so the cast is exact).
std::chrono::milliseconds deadline_delay(double deadline_ms) {
  return std::chrono::milliseconds(static_cast<std::int64_t>(deadline_ms));
}

double steady_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The fixed op label set for the per-op latency histograms and error
/// counters. Unrecognized ops (and unparseable requests) land under
/// "other" so client-controlled strings can never mint new label values.
constexpr const char* kOpLabels[] = {"ping",   "submit", "status",
                                     "result", "journal", "cancel",
                                     "trace",  "jobs",   "stats",
                                     "shutdown", "other"};

}  // namespace

MappingService::MappingService(const ServiceConfig& config)
    : config_(config),
      pool_(config.eval_threads == 0 ? ThreadPool::hardware_threads()
                                     : config.eval_threads),
      recorder_([&config] {
        FlightRecorderOptions options;
        options.clock_ms = config.clock_ms;
        return options;
      }()) {
  AM_REQUIRE(!config_.store_dir.empty(), "service store directory is empty");
  clock_ms_ = config_.clock_ms ? config_.clock_ms
                               : std::function<double()>(&steady_ms);
  start_ms_ = clock_ms_();
  fs::create_directories(fs::path(config_.store_dir) / "jobs");
  fs::create_directories(fs::path(config_.store_dir) / "cache");
  // The existing up-front writability probe, applied to the store before
  // the daemon accepts anything — a read-only volume fails here with one
  // Error line instead of on the first completed job.
  require_writable_path(
      (fs::path(config_.store_dir) / ".writable-probe").string());

  m_submitted_ = metrics_.counter("automap_service_jobs_submitted_total",
                                  "Jobs accepted by submit", false);
  m_completed_ = metrics_.counter("automap_service_jobs_completed_total",
                                  "Jobs finished successfully", false);
  m_failed_ = metrics_.counter("automap_service_jobs_failed_total",
                               "Jobs that ended in an error", false);
  m_cancelled_ = metrics_.counter("automap_service_jobs_cancelled_total",
                                  "Jobs cancelled (queued or running)",
                                  false);
  m_result_cache_hits_ =
      metrics_.counter("automap_service_result_cache_hits_total",
                       "Submissions answered from a completed job", false);
  m_result_cache_misses_ = metrics_.counter(
      "automap_service_result_cache_misses_total",
      "Submissions that had to compute (no completed job matched)", false);
  m_result_cache_evictions_ = metrics_.counter(
      "automap_service_result_cache_evictions_total",
      "Completed jobs evicted from the result cache", false);
  m_result_cache_entries_ =
      metrics_.gauge("automap_service_result_cache_entries",
                     "Completed jobs indexed by fingerprint", false);
  m_eval_cache_seeded_ =
      metrics_.counter("automap_service_eval_cache_seeded_total",
                       "Jobs seeded from an evaluation-cache bucket", false);
  m_eval_cache_misses_ = metrics_.counter(
      "automap_service_eval_cache_misses_total",
      "Measurement-reuse jobs that found no bucket to seed from", false);
  m_eval_cache_evictions_ =
      metrics_.counter("automap_service_eval_cache_evictions_total",
                       "Evaluation-cache buckets evicted", false);
  m_eval_cache_entries_ =
      metrics_.gauge("automap_service_eval_cache_entries",
                     "Evaluation-cache buckets on disk", false);
  m_store_bytes_ = metrics_.gauge("automap_service_store_bytes",
                                  "Bytes under the job store", false);
  m_sim_runs_ = metrics_.counter(
      "automap_sim_runs_total",
      "Simulator runs across all jobs (includes speculative pool work)",
      false);
  m_overloaded_ = metrics_.counter(
      "automap_service_overloaded_total",
      "Submits refused by admission control (queue/inflight caps)", false);
  m_deadline_expired_ = metrics_.counter(
      "automap_service_deadline_expired_total",
      "Jobs whose per-submit deadline_ms expired", false);
  m_quarantined_ = metrics_.counter(
      "automap_service_store_quarantined_total",
      "Torn or corrupt store artifacts renamed to *.corrupt", false);
  m_io_timeouts_ = metrics_.counter(
      "automap_service_io_timeouts_total",
      "Connections dropped for exceeding the per-frame I/O deadline",
      false);
  m_idle_reaped_ = metrics_.counter(
      "automap_service_idle_reaped_total",
      "Idle connections reaped by the server", false);
  m_uptime_ = metrics_.gauge("automap_service_uptime_seconds",
                             "Seconds since the service was constructed",
                             false);
  // Job latencies span milliseconds (cache hits, tiny searches) to many
  // minutes (deep searches behind a backlog).
  const std::vector<double> job_buckets = {0.001, 0.01, 0.05, 0.25, 1,
                                           5,     30,   120,  600};
  m_queue_wait_ = metrics_.histogram(
      "automap_service_queue_wait_seconds",
      "Submit-to-running wait per job (the queued span)", job_buckets,
      false);
  m_job_duration_ = metrics_.histogram(
      "automap_service_job_duration_seconds",
      "Submit-to-terminal latency per job", job_buckets, false);
  // handle() never runs a search; its latencies are parse + persist.
  const std::vector<double> handle_buckets = {0.0005, 0.002, 0.01, 0.05,
                                              0.25,   1,     5};
  for (const char* op : kOpLabels) {
    const std::string label = std::string("{op=\"") + op + "\"}";
    op_metrics_[op] = {
        metrics_.histogram("automap_service_handle_seconds" + label,
                           "handle() latency per op", handle_buckets,
                           false),
        metrics_.counter("automap_service_op_errors_total" + label,
                         "Error responses per op", false)};
  }

  // The wheel must exist before recover_store: recovered queued jobs with
  // a deadline re-arm a fresh window.
  wheel_ = std::make_unique<DeadlineWheel>(
      [this](std::uint64_t id) { on_deadline(id); });

  {
    // The wheel thread is already live and its expiry callback locks
    // mutex_, so recovery must hold it too: an expiry racing the rebuild
    // of jobs_ would otherwise be concurrent unordered_map access.
    const std::lock_guard<std::mutex> lock(mutex_);
    recover_store_locked();
    enforce_budgets_locked();
  }

  for (int i = 0; i < config_.job_workers; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

MappingService::~MappingService() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // After the workers: an expiry callback may touch jobs_ until the last
  // worker settles, so the wheel outlives them and dies here.
  wheel_.reset();
}

const char* MappingService::status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued:
      return "queued";
    case JobStatus::kRunning:
      return "running";
    case JobStatus::kDone:
      return "done";
    case JobStatus::kFailed:
      return "failed";
    case JobStatus::kCancelled:
      return "cancelled";
  }
  return "?";
}

std::string MappingService::job_dir(std::uint64_t id) const {
  return (fs::path(config_.store_dir) / "jobs" / std::to_string(id))
      .string();
}

std::string MappingService::bucket_path(std::uint64_t bucket) const {
  return (fs::path(config_.store_dir) / "cache" /
          (hex_u64(bucket) + ".profiles"))
      .string();
}

bool MappingService::shutdown_requested() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return shutdown_;
}

std::string MappingService::expose_metrics() {
  const std::lock_guard<std::mutex> lock(mutex_);
  m_uptime_->set((clock_ms_() - start_ms_) / 1000.0);
  return metrics_.expose();
}

std::string MappingService::latency_quantiles() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return metrics_.quantiles_json();
}

std::string MappingService::render_service_trace() const {
  return recorder_.chrome_trace();
}

void MappingService::touch_locked(Job& job) {
  job.last_served = ++serve_tick_;
}

void MappingService::update_cache_gauges_locked() {
  m_result_cache_entries_->set(
      static_cast<double>(by_fingerprint_.size()));
  m_eval_cache_entries_->set(static_cast<double>(eval_buckets_.size()));
  m_store_bytes_->set(static_cast<double>(store_bytes_total_));
}

void MappingService::evict_job_locked(std::uint64_t id) {
  Job& job = jobs_.at(id);
  wheel_->disarm(id);
  const std::string dir = job_dir(id);
  // Tombstone before deleting: a crash mid-removal leaves a dir that
  // restart scanning recognizes and finishes cleaning, instead of a
  // partial job it would try to revive.
  write_tombstone(dir, "purge");
  std::error_code ec;
  fs::remove_all(dir, ec);
  store_bytes_total_ -= std::min(job.store_bytes, store_bytes_total_);
  if (const auto it = by_fingerprint_.find(job.fingerprint);
      it != by_fingerprint_.end() && it->second == id) {
    by_fingerprint_.erase(it);
    m_result_cache_evictions_->inc();
  }
  // Post-terminal marker; the recorder keeps the timeline (bounded
  // separately), so `trace` still answers for a just-evicted job.
  recorder_.instant(id, "evicted");
  recorder_.service_event("evicted", {{"job", std::to_string(id)}});
  jobs_.erase(id);
}

void MappingService::touch_bucket_locked(std::uint64_t bucket) {
  eval_buckets_[bucket] = ++serve_tick_;
}

void MappingService::enforce_budgets_locked() {
  // Result-cache entry budget: evict the least-recently-served completed
  // job (the whole job — an evicted fingerprint simply recomputes later).
  while (config_.max_result_cache > 0 &&
         by_fingerprint_.size() > config_.max_result_cache) {
    std::uint64_t victim = 0;
    std::uint64_t oldest = 0;
    for (const auto& [fp, id] : by_fingerprint_) {
      const Job& job = jobs_.at(id);
      if (victim == 0 || job.last_served < oldest) {
        victim = id;
        oldest = job.last_served;
      }
    }
    if (victim == 0) break;
    evict_job_locked(victim);
  }

  // Store byte budget: evict least-recently-served *finished* jobs
  // (done, failed or cancelled — never queued/running work) until the
  // accounted total fits.
  while (config_.max_store_bytes > 0 &&
         store_bytes_total_ > config_.max_store_bytes) {
    std::uint64_t victim = 0;
    std::uint64_t oldest = 0;
    for (const auto& [id, job] : jobs_) {
      if (job.status == JobStatus::kQueued ||
          job.status == JobStatus::kRunning)
        continue;
      if (victim == 0 || job.last_served < oldest) {
        victim = id;
        oldest = job.last_served;
      }
    }
    if (victim == 0) break;  // only active jobs left: cannot evict
    evict_job_locked(victim);
  }

  // Evaluation-cache entry budget, least-recently-served buckets first.
  while (config_.max_eval_cache > 0 &&
         eval_buckets_.size() > config_.max_eval_cache) {
    auto victim = eval_buckets_.begin();
    for (auto it = eval_buckets_.begin(); it != eval_buckets_.end(); ++it)
      if (it->second < victim->second) victim = it;
    std::error_code ec;
    fs::remove(bucket_path(victim->first), ec);
    eval_buckets_.erase(victim);
    m_eval_cache_evictions_->inc();
  }

  update_cache_gauges_locked();
}

void MappingService::note_io_timeout() { m_io_timeouts_->inc(); }

void MappingService::note_idle_reaped() { m_idle_reaped_->inc(); }

std::string MappingService::admission_error_locked() {
  std::size_t queued = 0;
  std::size_t running = 0;
  for (const auto& [id, job] : jobs_) {
    if (job.status == JobStatus::kQueued) ++queued;
    if (job.status == JobStatus::kRunning) ++running;
  }
  const std::size_t inflight = queued + running;
  const bool over_queued =
      config_.max_queued_jobs > 0 && queued >= config_.max_queued_jobs;
  const bool over_inflight =
      config_.max_inflight > 0 && inflight >= config_.max_inflight;
  if (!over_queued && !over_inflight) return {};
  m_overloaded_->inc();
  recorder_.service_event("admission_rejected",
                          {{"queued", std::to_string(queued)},
                           {"inflight", std::to_string(inflight)}});
  // Deterministic hint scaled to backlog depth; retrying clients honor it
  // as their minimum wait, so a deeper queue spreads retries out further.
  const std::size_t retry_after_ms =
      std::min<std::size_t>(5000, 100 * (inflight + 1));
  const std::string message =
      over_queued ? "queue full (" + std::to_string(queued) + "/" +
                        std::to_string(config_.max_queued_jobs) +
                        " queued jobs)"
                  : "at capacity (" + std::to_string(inflight) + "/" +
                        std::to_string(config_.max_inflight) +
                        " jobs in flight)";
  return wire_error("overloaded", message,
                    "\"retry_after_ms\":" + std::to_string(retry_after_ms));
}

void MappingService::on_deadline(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  Job& job = it->second;
  if (job.status == JobStatus::kQueued) {
    // Expire in place: the dir (request + any checkpoint) is kept under a
    // "keep" tombstone, so resubmitting the identical request revives the
    // job and resumes to the byte-identical result.
    job.status = JobStatus::kCancelled;
    if (job.cancel_reason.empty()) job.cancel_reason = "deadline";
    write_tombstone(job_dir(id), "keep");
    const double age_ms = recorder_.terminal(id, "expired", {});
    m_job_duration_->observe(age_ms / 1000.0);
    recorder_.service_event("deadline_expired",
                            {{"job", std::to_string(id)}});
    try {
      save_checksummed(job_dir(id) + "/spans.json",
                       recorder_.serialize(id), "spans");
    } catch (const std::exception&) {
    }
    const std::size_t bytes = dir_bytes(job_dir(id));
    store_bytes_total_ += bytes;
    store_bytes_total_ -= std::min(job.store_bytes, store_bytes_total_);
    job.store_bytes = bytes;
    m_cancelled_->inc();
    m_deadline_expired_->inc();
    update_cache_gauges_locked();
  } else if (job.status == JobStatus::kRunning &&
             job.cancel_reason.empty()) {
    // Same cooperative path as a client cancel: the search observes the
    // token as a budget cut at the next task boundary and run_job settles
    // the job as cancelled with its checkpoint on disk. A non-empty
    // reason means a client cancel raced ahead of the wheel's disarm —
    // that cancellation already owns the job, so neither the token nor
    // the expiry metric is touched.
    job.cancel_reason = "deadline";
    job.cancel->store(true);
    m_deadline_expired_->inc();
    recorder_.service_event("deadline_expired",
                            {{"job", std::to_string(id)}});
  }
}

bool MappingService::quarantine_path(const std::string& path) {
  std::error_code ec;
  std::string target = path + ".corrupt";
  for (int n = 1; fs::exists(target, ec); ++n)
    target = path + ".corrupt." + std::to_string(n);
  fs::rename(path, target, ec);
  if (ec) return false;
  m_quarantined_->inc();
  recorder_.service_event(
      "quarantined", {{"path", "\"" + json_escape(path) + "\""}});
  return true;
}

std::string MappingService::handle(const std::string& request_json) {
  const double start = clock_ms_();
  std::string op_label = "other";
  std::string response = dispatch(request_json, op_label);
  const double elapsed_s = (clock_ms_() - start) / 1000.0;
  const bool is_error = response.rfind("{\"type\":\"error\"", 0) == 0;
  {
    // Histogram is not thread-safe and handle() runs on concurrent
    // connection threads, so observations land under mutex_ — after the
    // handler released it, never while holding it twice.
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto& [histogram, errors] = op_metrics_.at(op_label);
    histogram->observe(elapsed_s);
    if (is_error) errors->inc();
  }
  return response;
}

std::string MappingService::dispatch(const std::string& request_json,
                                     std::string& op_label) {
  if (request_json.size() > config_.max_request_bytes)
    return wire_error("too_large",
                      "request of " + std::to_string(request_json.size()) +
                          " bytes exceeds the " +
                          std::to_string(config_.max_request_bytes) +
                          "-byte limit");
  try {
    const JsonValue request = parse_json(request_json);
    AM_REQUIRE(request.kind == JsonValue::Kind::kObject,
               "request must be a JSON object");
    const std::string op = request.str_or("op", "");
    if (op_metrics_.count(op) != 0) op_label = op;
    if (op == "ping")
      return "{\"type\":\"pong\",\"version\":" +
             std::to_string(kWireVersion) + "}";
    if (op == "submit") return handle_submit(request, request_json);
    if (op == "status") return handle_status(request);
    if (op == "result") return handle_result(request);
    if (op == "journal") return handle_journal(request);
    if (op == "cancel") return handle_cancel(request);
    if (op == "trace") return handle_trace(request);
    if (op == "jobs") return handle_jobs();
    if (op == "stats")
      return "{\"type\":\"stats\",\"version\":" +
             std::to_string(kWireVersion) + ",\"metrics\":\"" +
             json_escape(expose_metrics()) + "\",\"quantiles\":" +
             latency_quantiles() + "}";
    if (op == "shutdown") {
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
      }
      return "{\"type\":\"shutdown\"}";
    }
    return wire_error("unknown_op", "unknown op '" + op + "'");
  } catch (const Error& e) {
    return wire_error("bad_request", e.what());
  } catch (const std::exception& e) {
    return wire_error("internal", e.what());
  }
}

std::string MappingService::handle_submit(const JsonValue& request,
                                          const std::string& request_json) {
  const SubmitSpec spec = parse_submit(request);
  // Validate the full configuration before accepting: a malformed machine
  // or unknown algorithm is a bad_request now, not a failed job later.
  (void)machine_from_string(spec.machine_text);
  (void)task_graph_from_string(spec.graph_text);
  AM_REQUIRE(find_search_algorithm(spec.algorithm) != nullptr,
             "unknown algorithm '" + spec.algorithm + "' (expected " +
                 std::string(search_algorithm_names()) + ")");

  std::lock_guard<std::mutex> lock(mutex_);
  // Result cache: an identical request maps onto the existing job — done
  // jobs answer instantly with zero new simulator runs; queued/running
  // ones dedupe onto the in-flight search; a cancelled one re-enqueues
  // and resumes from whatever checkpoint its cancelled run left behind.
  for (auto& [id, job] : jobs_) {
    if (job.fingerprint != spec.fingerprint) continue;
    if (job.status == JobStatus::kFailed) continue;
    if (job.status == JobStatus::kCancelled) {
      if (std::string overloaded = admission_error_locked();
          !overloaded.empty())
        return overloaded;
      job.status = JobStatus::kQueued;
      job.cancel = std::make_shared<std::atomic<bool>>(false);
      job.error.clear();
      job.cancel_reason.clear();
      // The revival's deadline (if any) replaces the expired one — a
      // fresh window, armed below once the job is queued again. The new
      // request text also replaces the persisted one: after a crash,
      // recover_store_locked must re-arm the deadline this client was
      // told was accepted, not the stale one from the first submission.
      job.deadline_ms = spec.deadline_ms;
      job.priority = spec.priority;
      job.request_json = request_json;
      fs::create_directories(job_dir(id));
      std::error_code ec;
      fs::remove(job_dir(id) + "/" + kTombstoneName, ec);
      save_checksummed(job_dir(id) + "/request.json", job.request_json,
                       "request");
      const std::size_t bytes = dir_bytes(job_dir(id));
      store_bytes_total_ += bytes;
      store_bytes_total_ -= std::min(job.store_bytes, store_bytes_total_);
      job.store_bytes = bytes;
      m_result_cache_misses_->inc();
      m_submitted_->inc();
      update_cache_gauges_locked();
      std::size_t queued = 0;
      for (const auto& [jid, j] : jobs_)
        if (j.status == JobStatus::kQueued) ++queued;
      // Reopens the sealed timeline: the revival rides the same spans as
      // a fresh submission, flagged so traces show the job came back.
      recorder_.transition(id, "queued", -1,
                           {{"revived", "true"},
                            {"queue_depth", std::to_string(queued)}});
      if (job.deadline_ms > 0) wheel_->arm(id, deadline_delay(job.deadline_ms));
      work_cv_.notify_one();
      return "{\"type\":\"submitted\",\"job\":" + std::to_string(id) +
             ",\"status\":\"queued\",\"cached\":false}";
    }
    const bool done = job.status == JobStatus::kDone;
    if (done) {
      touch_locked(job);
      m_result_cache_hits_->inc();
    }
    return "{\"type\":\"submitted\",\"job\":" + std::to_string(id) +
           ",\"status\":\"" + status_name(job.status) +
           "\",\"cached\":" + (done ? "true" : "false") + "}";
  }

  if (std::string overloaded = admission_error_locked();
      !overloaded.empty())
    return overloaded;

  Job job;
  job.id = next_id_++;
  job.priority = spec.priority;
  job.request_json = request_json;
  job.fingerprint = spec.fingerprint;
  job.algorithm = spec.algorithm;
  job.want_journal = spec.want_journal;
  job.reuse_measurements = spec.reuse_measurements;
  job.deadline_ms = spec.deadline_ms;
  job.cancel = std::make_shared<std::atomic<bool>>(false);
  fs::create_directories(job_dir(job.id));
  save_checksummed(job_dir(job.id) + "/request.json", request_json,
                   "request");
  job.store_bytes = dir_bytes(job_dir(job.id));
  store_bytes_total_ += job.store_bytes;
  const std::uint64_t id = job.id;
  jobs_.emplace(id, std::move(job));
  m_submitted_->inc();
  m_result_cache_misses_->inc();
  enforce_budgets_locked();
  std::size_t queued = 0;
  for (const auto& [jid, j] : jobs_)
    if (j.status == JobStatus::kQueued) ++queued;
  recorder_.transition(
      id, "submitted", -1,
      {{"fingerprint", "\"" + hex_u64(spec.fingerprint) + "\""}});
  recorder_.transition(id, "queued", -1,
                       {{"queue_depth", std::to_string(queued)}});
  if (spec.deadline_ms > 0) wheel_->arm(id, deadline_delay(spec.deadline_ms));
  work_cv_.notify_one();
  return "{\"type\":\"submitted\",\"job\":" + std::to_string(id) +
         ",\"status\":\"queued\",\"cached\":false}";
}

std::string MappingService::handle_status(const JsonValue& request) {
  const std::string id_text = require_job_field(request);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(std::stoull(id_text));
  if (it == jobs_.end())
    return wire_error("not_found", "no job " + id_text);
  std::string out = "{\"type\":\"status\",\"job\":" + id_text +
                    ",\"status\":\"" + status_name(it->second.status) +
                    "\"";
  if (it->second.status == JobStatus::kCancelled &&
      !it->second.cancel_reason.empty())
    out += ",\"reason\":\"" + json_escape(it->second.cancel_reason) + "\"";
  if (!it->second.error.empty())
    out += ",\"message\":\"" + json_escape(it->second.error) + "\"";
  if (recorder_.has(it->first)) {
    out += ",\"span\":\"" +
           json_escape(recorder_.current_span(it->first)) + "\"";
    out += ",\"spans\":" + recorder_.spans_array_json(it->first);
  }
  return out + "}";
}

std::string MappingService::handle_trace(const JsonValue& request) {
  const std::string id_text = require_job_field(request);
  const std::uint64_t id = std::stoull(id_text);
  bool known = recorder_.has(id);
  if (!known) {
    const std::lock_guard<std::mutex> lock(mutex_);
    known = jobs_.count(id) != 0;
  }
  // The recorder outlives eviction (its timeline map is bounded
  // separately from jobs_), so a just-evicted job still answers here.
  if (!known) return wire_error("not_found", "no job " + id_text);
  // serialize() is {"job":N,"dropped":D,"terminal":B,"spans":[...]} —
  // splice the type on front.
  return "{\"type\":\"trace\"," + recorder_.serialize(id).substr(1);
}

std::string MappingService::handle_result(const JsonValue& request) {
  const std::string id_text = require_job_field(request);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(std::stoull(id_text));
  if (it == jobs_.end())
    return wire_error("not_found", "no job " + id_text);
  Job& job = it->second;
  if (job.status == JobStatus::kDone) {
    touch_locked(job);
    return job.result_json;
  }
  if (job.status == JobStatus::kFailed)
    return wire_error("bad_state", "job " + id_text + " failed: " +
                                       job.error);
  return wire_error("bad_state", "job " + id_text + " is " +
                                     status_name(job.status));
}

std::string MappingService::handle_journal(const JsonValue& request) {
  const std::string id_text = require_job_field(request);
  const long long after =
      static_cast<long long>(request.num_or("after", -1));
  std::string path;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(std::stoull(id_text));
    if (it == jobs_.end())
      return wire_error("not_found", "no job " + id_text);
    if (!it->second.want_journal)
      return wire_error("bad_state",
                        "job " + id_text + " was submitted without "
                        "\"journal\":true");
    path = job_dir(it->second.id) + "/journal.jsonl";
  }
  // Poll-based streaming: return the complete lines past the client's
  // cursor, each as one escaped string (the exact JSONL line bytes, so a
  // client can reconstruct the journal file verbatim). Event `n` equals
  // the line index, so the cursor is just a line count; a mid-write
  // partial tail line is withheld until complete.
  std::string out = "{\"type\":\"journal\",\"job\":" + id_text +
                    ",\"events\":[";
  long long next = after;
  if (const std::optional<std::string> text = read_if_exists(path)) {
    long long n = 0;
    std::size_t start = 0;
    bool first = true;
    while (start < text->size()) {
      const std::size_t end = text->find('\n', start);
      if (end == std::string::npos) break;  // partial tail, not yet ours
      if (n > after) {
        if (!first) out += ",";
        first = false;
        out += "\"" + json_escape(text->substr(start, end - start)) + "\"";
        next = n;
      }
      ++n;
      start = end + 1;
    }
  }
  return out + "],\"next\":" + std::to_string(next) + "}";
}

std::string MappingService::handle_cancel(const JsonValue& request) {
  const std::string id_text = require_job_field(request);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(std::stoull(id_text));
  if (it == jobs_.end())
    return wire_error("not_found", "no job " + id_text);
  Job& job = it->second;
  if (job.status == JobStatus::kQueued) {
    job.status = JobStatus::kCancelled;
    if (job.cancel_reason.empty()) job.cancel_reason = "client";
    wheel_->disarm(job.id);
    m_cancelled_->inc();
    const double age_ms =
        recorder_.terminal(job.id, "cancelled", {{"queued", "true"}});
    m_job_duration_->observe(age_ms / 1000.0);
    // Tombstone, then delete: if remove_all fails partway, restart
    // scanning finds the tombstone and finishes the cleanup instead of
    // reviving a half-deleted job.
    const std::string dir = job_dir(job.id);
    write_tombstone(dir, "purge");
    std::error_code ec;
    fs::remove_all(dir, ec);
    const std::size_t remaining = fs::exists(dir, ec) ? dir_bytes(dir) : 0;
    store_bytes_total_ += remaining;
    store_bytes_total_ -=
        std::min(job.store_bytes, store_bytes_total_);
    job.store_bytes = remaining;
    update_cache_gauges_locked();
    return "{\"type\":\"cancelled\",\"job\":" + id_text +
           ",\"status\":\"cancelled\"}";
  }
  if (job.status == JobStatus::kRunning) {
    // Cooperative: the worker's search observes the token as a budget cut
    // at its next task boundary, then marks the job cancelled. The last
    // task-boundary checkpoint stays on disk for a later resume.
    if (job.cancel_reason.empty()) job.cancel_reason = "client";
    wheel_->disarm(job.id);
    job.cancel->store(true);
    return "{\"type\":\"cancelled\",\"job\":" + id_text +
           ",\"status\":\"cancelling\"}";
  }
  return wire_error("bad_state",
                    "only queued or running jobs can be cancelled; job " +
                        id_text + " is " + status_name(job.status));
}

std::string MappingService::handle_jobs() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"type\":\"jobs\",\"jobs\":[";
  bool first = true;
  for (const auto& [id, job] : jobs_) {
    if (!first) out += ",";
    first = false;
    out += "{\"job\":" + std::to_string(id) + ",\"status\":\"" +
           status_name(job.status) + "\",\"algorithm\":\"" +
           json_escape(job.algorithm) +
           "\",\"priority\":" + std::to_string(job.priority) +
           ",\"age_ms\":" + json_double(recorder_.age_ms(id)) +
           ",\"queue_wait_ms\":" +
           json_double(recorder_.queue_wait_ms(id)) + ",\"span\":\"" +
           json_escape(recorder_.current_span(id)) + "\"}";
  }
  return out + "]}";
}

std::uint64_t MappingService::claim_next_locked() {
  std::uint64_t best = 0;
  int best_priority = 0;
  for (auto& [id, job] : jobs_) {
    if (job.status != JobStatus::kQueued) continue;
    if (best == 0 || job.priority > best_priority) {
      best = id;  // map iteration is id-ascending: FIFO within a class
      best_priority = job.priority;
    }
  }
  if (best != 0) jobs_.at(best).status = JobStatus::kRunning;
  return best;
}

void MappingService::worker_loop(int worker) {
  for (;;) {
    std::uint64_t id = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] {
        if (stopping_) return true;
        for (const auto& [jid, job] : jobs_)
          if (job.status == JobStatus::kQueued) return true;
        return false;
      });
      if (stopping_) return;
      id = claim_next_locked();
    }
    if (id != 0) run_job(id, worker);
  }
}

void MappingService::drain() {
  for (;;) {
    std::uint64_t id = 0;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      id = claim_next_locked();
    }
    if (id == 0) return;
    // drain() shares lane 0 with the first worker thread; the two never
    // run together outside tests, and lanes are cosmetic.
    run_job(id, 0);
  }
}

void MappingService::run_job(std::uint64_t id, int worker) {
  std::string request_json;
  std::shared_ptr<std::atomic<bool>> cancel;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const Job& job = jobs_.at(id);
    request_json = job.request_json;
    cancel = job.cancel;
    std::size_t queued = 0;
    for (const auto& [jid, j] : jobs_)
      if (j.status == JobStatus::kQueued) ++queued;
    // Closing the "queued" span IS the queue-wait measurement.
    const double waited_ms = recorder_.transition(
        id, "admitted", worker,
        {{"queue_depth", std::to_string(queued)}});
    m_queue_wait_->observe(waited_ms / 1000.0);
    recorder_.transition(id, "running", worker);
  }

  const std::string dir = job_dir(id);
  // Re-measures the job dir and lands the final status under the mutex;
  // shared by the done / cancelled / failed outcomes.
  const auto settle = [&](JobStatus status, const char* error,
                          std::string payload, bool index_result,
                          std::uint64_t bucket_written,
                          std::uint64_t sim_runs) {
    // Terminal span: how the job ended, finer-grained than JobStatus —
    // cancellation splits into client "cancelled" vs deadline "expired".
    const char* span_name = "finished";
    if (status == JobStatus::kFailed) span_name = "failed";
    if (status == JobStatus::kCancelled) {
      std::string reason;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        reason = jobs_.at(id).cancel_reason;
      }
      span_name = reason == "deadline" ? "expired" : "cancelled";
    }
    const double age_ms = recorder_.terminal(
        id, span_name,
        {{"store_bytes", std::to_string(dir_bytes(dir))}});
    // Persist the sealed timeline next to the job's other artifacts so a
    // restarted daemon still answers `trace`. Best-effort: observability
    // must never fail a job.
    try {
      std::error_code ec;
      if (fs::exists(dir, ec))
        save_checksummed(dir + "/spans.json", recorder_.serialize(id),
                         "spans");
    } catch (const std::exception&) {
    }
    const std::size_t bytes = dir_bytes(dir);
    const std::lock_guard<std::mutex> lock(mutex_);
    m_job_duration_->observe(age_ms / 1000.0);
    wheel_->disarm(id);
    Job& job = jobs_.at(id);
    job.status = status;
    if (error != nullptr) job.error = error;
    store_bytes_total_ += bytes;
    store_bytes_total_ -= std::min(job.store_bytes, store_bytes_total_);
    job.store_bytes = bytes;
    if (index_result) {
      job.result_json = std::move(payload);
      by_fingerprint_[job.fingerprint] = id;
      touch_locked(job);
      m_completed_->inc();
    }
    if (bucket_written != 0) touch_bucket_locked(bucket_written);
    m_sim_runs_->inc(sim_runs);
    enforce_budgets_locked();
  };

  try {
    const SubmitSpec spec = parse_submit(parse_json(request_json));
    // The simulator keeps references; the job owns machine and graph for
    // the duration of the search.
    const MachineModel machine = machine_from_string(spec.machine_text);
    const TaskGraph graph = task_graph_from_string(spec.graph_text);
    const SearchAlgorithmInfo* algorithm =
        find_search_algorithm(spec.algorithm);
    AM_REQUIRE(algorithm != nullptr,
               "unknown algorithm '" + spec.algorithm + "'");

    SearchOptions options = spec.options;
    options.shared_pool = &pool_;
    options.pool_priority = spec.priority;
    // Fair share: batches from different jobs at equal priority
    // interleave deficit-round-robin on the shared pool, keyed by job id.
    options.pool_stream = id;
    options.cancel = cancel.get();
    options.checkpoint_path = dir + "/checkpoint";
    // Checkpoint markers land as zero-length instants on the running
    // span; the recorder has its own lock, so this is safe from the
    // search thread.
    options.on_checkpoint = [this, id](int rotation, int position) {
      recorder_.instant(id, "checkpointed",
                        {{"rotation", std::to_string(rotation)},
                         {"position", std::to_string(position)}});
    };
    // Warm restart: a checkpoint left by an interrupted run resumes the
    // search; byte-identity of the final result is the PR 4 contract. A
    // torn checkpoint (bad checksum trailer) is quarantined and the
    // search starts fresh — same final bytes, just more work.
    {
      DurableLoad checkpoint = load_checksummed(options.checkpoint_path);
      if (checkpoint.status == DurableLoad::Status::kOk)
        options.resume_state = std::move(checkpoint.payload);
      else if (checkpoint.status == DurableLoad::Status::kCorrupt)
        quarantine_path(options.checkpoint_path);
    }

    std::optional<Journal> journal;
    if (spec.want_journal) journal.emplace(dir + "/journal.jsonl");
    MetricsRegistry job_metrics;
    options.journal = journal.has_value() ? &*journal : nullptr;
    options.metrics = &job_metrics;

    std::uint64_t bucket = 0;
    if (spec.reuse_measurements) {
      bucket = bucket_key(spec);
      options.export_profiles_db = true;
      DurableLoad seeded = load_checksummed(bucket_path(bucket));
      if (seeded.status == DurableLoad::Status::kOk) {
        options.profiles_seed = std::move(seeded.payload);
        const std::lock_guard<std::mutex> lock(mutex_);
        m_eval_cache_seeded_->inc();
        touch_bucket_locked(bucket);
        update_cache_gauges_locked();
      } else {
        // A torn bucket is a cache miss, never poison: quarantine it and
        // let this job rebuild the bucket from scratch.
        if (seeded.status == DurableLoad::Status::kCorrupt)
          quarantine_path(bucket_path(bucket));
        const std::lock_guard<std::mutex> lock(mutex_);
        m_eval_cache_misses_->inc();
      }
    } else {
      options.export_profiles_db = false;
    }

    SimOptions sim_options = spec.sim;
    sim_options.metrics = &job_metrics;
    const Simulator sim(machine, graph, sim_options);
    const SearchResult result = algorithm->run(sim, options);

    const Counter* sim_runs = job_metrics.counter(
        "automap_sim_runs_total", "Simulator runs executed", false);

    if (cancel->load()) {
      // Cancelled mid-run: the search cut at a task boundary and its last
      // task-boundary checkpoint is on disk. Keep the dir (tombstoned
      // "keep" so a restart recovers the job as cancelled instead of
      // re-running it) and poison nothing: no result payload, no
      // fingerprint index entry, no eval-cache bucket write.
      write_tombstone(dir, "keep");
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        m_cancelled_->inc();
      }
      settle(JobStatus::kCancelled, nullptr, {}, /*index_result=*/false,
             /*bucket_written=*/0, sim_runs->value());
      work_cv_.notify_all();
      return;
    }

    // The response payload. `summary` is the CLI's summary line verbatim
    // and `mapping` the exact bytes `search -o` writes, so daemon answers
    // are byte-comparable to the one-shot path. wall-clock time is
    // excluded: responses must be byte-identical across runs.
    const SearchStats& stats = result.stats;
    std::string payload = "{\"type\":\"result\",\"job\":" +
                          std::to_string(id) + ",\"algorithm\":\"" +
                          json_escape(result.algorithm) + "\"";
    payload += ",\"summary\":\"" +
               json_escape(render_search_summary(result)) + "\"";
    payload += ",\"best\":" + json_double(result.best_seconds);
    payload += ",\"mapping\":\"" + json_escape(result.best.serialize()) +
               "\"";
    payload += ",\"describe\":\"" +
               json_escape(result.best.describe(graph)) + "\"";
    payload += ",\"stats\":{";
    payload += "\"suggested\":" + std::to_string(stats.suggested);
    payload += ",\"evaluated\":" + std::to_string(stats.evaluated);
    payload += ",\"invalid\":" + std::to_string(stats.invalid);
    payload += ",\"oom\":" + std::to_string(stats.oom);
    payload += ",\"censored\":" + std::to_string(stats.censored);
    payload += ",\"cache_hits\":" + std::to_string(stats.cache_hits);
    payload += ",\"transient_failures\":" +
               std::to_string(stats.transient_failures);
    payload += ",\"retries\":" + std::to_string(stats.retries);
    payload += ",\"quarantined\":" + std::to_string(stats.quarantined);
    payload += ",\"degraded\":";
    payload += stats.degraded ? "true" : "false";
    payload += ",\"search_time_s\":" + json_double(stats.search_time_s);
    payload += ",\"evaluation_time_s\":" +
               json_double(stats.evaluation_time_s);
    payload += "}}";

    save_checksummed(dir + "/result.json", payload, "result");
    std::uint64_t bucket_written = 0;
    if (spec.reuse_measurements && !result.profiles_db.empty()) {
      // The export includes imported entries, so the fresh export IS the
      // union of the bucket and this job's new measurements.
      save_checksummed(bucket_path(bucket), result.profiles_db, "bucket");
      bucket_written = bucket;
    }

    settle(JobStatus::kDone, nullptr, std::move(payload),
           /*index_result=*/true, bucket_written, sim_runs->value());
  } catch (const std::exception& e) {
    if (cancel->load()) {
      // A cancel can surface as an exception (e.g. the cut left no
      // profilable finalist); the user asked for cancellation, so report
      // that, not a failure.
      write_tombstone(dir, "keep");
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        m_cancelled_->inc();
      }
      settle(JobStatus::kCancelled, nullptr, {}, /*index_result=*/false,
             /*bucket_written=*/0, /*sim_runs=*/0);
    } else {
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        m_failed_->inc();
      }
      settle(JobStatus::kFailed, e.what(), {}, /*index_result=*/false,
             /*bucket_written=*/0, /*sim_runs=*/0);
    }
  }
  work_cv_.notify_all();
}

void MappingService::recover_store_locked() {
  const fs::path jobs_root = fs::path(config_.store_dir) / "jobs";
  // Deadlines are armed only after the recovery loop finishes: arming a
  // job before (or in the same statement as) its jobs_.emplace leaves a
  // window where the expiry finds no job and is dropped forever.
  std::vector<std::pair<std::uint64_t, std::chrono::milliseconds>> arms;
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(jobs_root, ec)) {
    if (!entry.is_directory()) continue;
    std::uint64_t id = 0;
    try {
      std::size_t used = 0;
      const std::string name = entry.path().filename().string();
      id = std::stoull(name, &used);
      if (used != name.size() || id == 0) continue;
    } catch (const std::exception&) {
      continue;
    }
    // Tombstones first: a "purge" tombstone marks a deletion that did not
    // finish — complete it and skip the dir. A "keep" tombstone marks a
    // job cancelled while running; it recovers as cancelled below, with
    // its checkpoint intact for a later resubmit-and-resume.
    bool keep_cancelled = false;
    if (const std::optional<std::string> tombstone = read_if_exists(
            (entry.path() / kTombstoneName).string())) {
      if (tombstone->rfind("keep", 0) == 0) {
        keep_cancelled = true;
      } else {
        std::error_code rec;
        fs::remove_all(entry.path(), rec);
        continue;
      }
    }
    DurableLoad request =
        load_checksummed((entry.path() / "request.json").string());
    if (request.status == DurableLoad::Status::kMissing) continue;
    if (request.status == DurableLoad::Status::kCorrupt) {
      // A torn request means nothing else in the dir is attributable to a
      // known submission: quarantine the whole job dir. Startup proceeds;
      // the quarantined copy stays for inspection, outside the budget.
      quarantine_path(entry.path().string());
      continue;
    }
    Job job;
    try {
      const SubmitSpec spec = parse_submit(parse_json(request.payload));
      job.id = id;
      job.priority = spec.priority;
      job.request_json = request.payload;
      job.fingerprint = spec.fingerprint;
      job.algorithm = spec.algorithm;
      job.want_journal = spec.want_journal;
      job.reuse_measurements = spec.reuse_measurements;
      job.deadline_ms = spec.deadline_ms;
    } catch (const std::exception&) {
      // Checksum intact but not a valid submit (e.g. hand-edited):
      // quarantine rather than abort the daemon.
      quarantine_path(entry.path().string());
      continue;
    }
    job.cancel = std::make_shared<std::atomic<bool>>(false);
    if (keep_cancelled) {
      job.status = JobStatus::kCancelled;
    } else {
      DurableLoad result =
          load_checksummed((entry.path() / "result.json").string());
      if (result.status == DurableLoad::Status::kOk) {
        job.status = JobStatus::kDone;
        job.result_json = std::move(result.payload);
        by_fingerprint_[job.fingerprint] = id;
      } else {
        // Missing: interrupted before completing — re-enqueue; run_job
        // resumes from the checkpoint the interrupted run left (if any).
        // Corrupt: quarantine just the torn result and recompute the same
        // way; the checkpoint makes the re-run byte-identical and cheap.
        if (result.status == DurableLoad::Status::kCorrupt)
          quarantine_path((entry.path() / "result.json").string());
        job.status = JobStatus::kQueued;
      }
    }
    // Restore the persisted span timeline; its timestamps shift so the
    // newest restored instant lands at now (a dead process's steady
    // epoch means nothing here, but the durations do). A torn or
    // hand-mangled spans file is quarantined and the job simply starts a
    // fresh timeline — spans are observability, never job truth.
    {
      const std::string spans_path = (entry.path() / "spans.json").string();
      DurableLoad spans = load_checksummed(spans_path);
      if (spans.status == DurableLoad::Status::kOk) {
        try {
          recorder_.restore(id, spans.payload);
        } catch (const std::exception&) {
          quarantine_path(spans_path);
        }
      } else if (spans.status == DurableLoad::Status::kCorrupt) {
        quarantine_path(spans_path);
      }
    }
    if (job.status == JobStatus::kQueued)
      recorder_.transition(id, "queued", -1, {{"recovered", "true"}});
    job.store_bytes = dir_bytes(entry.path().string());
    store_bytes_total_ += job.store_bytes;
    next_id_ = std::max(next_id_, id + 1);
    // A recovered queued job re-arms a fresh deadline window from daemon
    // start — the original submission instant is gone with the crash, and
    // expiring everything immediately would punish the restart itself.
    if (job.status == JobStatus::kQueued && job.deadline_ms > 0)
      arms.emplace_back(id, deadline_delay(job.deadline_ms));
    jobs_.emplace(id, std::move(job));
  }
  for (const auto& [id, delay] : arms) wheel_->arm(id, delay);
  // Deterministic LRU seed: recovered jobs rank oldest-first by id, so
  // eviction order after a restart does not depend on directory iteration
  // order.
  for (auto& [id, job] : jobs_) job.last_served = ++serve_tick_;

  // Re-index the evaluation-cache buckets already on disk (oldest-first
  // by key — a deterministic, if arbitrary, restart order).
  const fs::path cache_root = fs::path(config_.store_dir) / "cache";
  std::error_code cec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(cache_root, cec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    try {
      std::size_t used = 0;
      const std::uint64_t key =
          std::stoull(entry.path().stem().string(), &used, 16);
      // Only files our own bucket naming produced participate in the
      // budget; anything else in cache/ is left alone.
      if (hex_u64(key) + ".profiles" != name) continue;
      eval_buckets_.emplace(key, 0);
    } catch (const std::exception&) {
      continue;
    }
  }
  for (auto& [key, tick] : eval_buckets_) tick = ++serve_tick_;
}

}  // namespace automap
