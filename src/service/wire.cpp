#include "src/service/wire.hpp"

#include <limits>

#include "src/support/error.hpp"
#include "src/support/json.hpp"

namespace automap {

std::string encode_frame(std::string_view payload) {
  AM_REQUIRE(payload.size() <= std::numeric_limits<std::uint32_t>::max(),
             "wire payload exceeds the 32-bit frame length");
  const auto n = static_cast<std::uint32_t>(payload.size());
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame.push_back(static_cast<char>((n >> 24) & 0xff));
  frame.push_back(static_cast<char>((n >> 16) & 0xff));
  frame.push_back(static_cast<char>((n >> 8) & 0xff));
  frame.push_back(static_cast<char>(n & 0xff));
  frame.append(payload);
  return frame;
}

std::optional<std::size_t> decode_frame_length(std::string_view buffer) {
  if (buffer.size() < kFrameHeaderBytes) return std::nullopt;
  const auto b = [&](std::size_t i) {
    return static_cast<std::uint32_t>(
        static_cast<unsigned char>(buffer[i]));
  };
  return static_cast<std::size_t>((b(0) << 24) | (b(1) << 16) | (b(2) << 8) |
                                  b(3));
}

std::string wire_error(std::string_view code, std::string_view message) {
  return "{\"type\":\"error\",\"code\":\"" + json_escape(code) +
         "\",\"message\":\"" + json_escape(message) + "\"}";
}

std::string wire_error(std::string_view code, std::string_view message,
                       std::string_view extra_fields) {
  std::string out = wire_error(code, message);
  out.pop_back();  // strip the closing brace
  out += ',';
  out += extra_fields;
  out += '}';
  return out;
}

}  // namespace automap
