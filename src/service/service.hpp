#pragma once

// MappingService — the daemon's transport-independent core.
//
// The service owns the job table, the one shared evaluation thread pool,
// and the two cross-job caches; the socket server (server.hpp) only moves
// frames. `handle()` maps one request JSON to one response JSON, so every
// protocol behavior — including size limits and structured errors — is
// testable without sockets.
//
// Scheduling: each accepted job runs as one search on a job worker; all
// workers' candidate batches land on the single shared ThreadPool, where
// SearchOptions::pool_priority (from the request's `priority`) decides
// which job's batch drains first when they compete — and within one
// priority class the pool runs deficit-round-robin across job ids
// (SearchOptions::pool_stream), so a huge submission cannot starve later
// equal-priority ones. Queued jobs start in priority order (FIFO within a
// class).
//
// Cancellation: a queued job cancels immediately (its store dir is
// tombstoned and purged). A *running* job cancels cooperatively — the
// worker's search observes the job's cancel token as a budget cut at the
// next task boundary, leaves the last task-boundary checkpoint on disk,
// and the job lands in `cancelled` without touching the result cache or
// the profiles-db buckets. Re-submitting the identical request re-enqueues
// the cancelled job, which resumes from that checkpoint to the
// byte-identical result.
//
// Caches, layered on the profiles-db format:
//  - Result cache: request fingerprint (machine, graph, algorithm,
//    canonical options/sim JSON, journal + reuse flags) → completed job.
//    A repeat submission is answered instantly from the finished job —
//    zero new simulator runs — and bumps
//    `automap_service_result_cache_hits_total`.
//  - Evaluation cache: per (machine fp, graph fp, sim, measurement
//    options) bucket holding a profiles database; the per-mapping-hash,
//    per-seed run reuse happens inside the evaluator exactly as with the
//    CLI's --profiles flag. Opt-in per request (`reuse_measurements`),
//    because seeding measurements changes a search's cache-hit statistics
//    versus a cold run — the default path stays byte-identical to the
//    one-shot CLI.
//
// Persistence: every job writes store/jobs/<id>/{request.json, checkpoint,
// journal.jsonl, result.json}; cache buckets live in store/cache/. On
// construction the service rescans the store — completed jobs re-enter the
// result cache, interrupted jobs re-enqueue and resume from their PR 4
// checkpoint — so a daemon restart loses nothing.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/service/flight_recorder.hpp"
#include "src/service/wire.hpp"
#include "src/support/deadline_wheel.hpp"
#include "src/support/metrics.hpp"
#include "src/support/thread_pool.hpp"

namespace automap {

struct JsonValue;

struct ServiceConfig {
  /// Job-store/cache directory (created if missing; probed with
  /// require_writable_path before the service accepts anything).
  std::string store_dir;
  /// Lanes in the shared evaluation pool (0 = hardware threads). Results
  /// are bit-identical for every value.
  int eval_threads = 0;
  /// Concurrent job workers. 0 = no worker threads: jobs run only via
  /// drain(), which tests use for deterministic scheduling.
  int job_workers = 2;
  /// Maximum accepted request payload; larger requests get a structured
  /// `too_large` error.
  std::size_t max_request_bytes = kDefaultMaxFrameBytes;
  /// Byte budget for the job store (the jobs/ tree). When the total
  /// exceeds it, finished (done/failed/cancelled) job dirs are evicted
  /// least-recently-served first; queued and running jobs are never
  /// evicted, so a budget smaller than the active working set is exceeded
  /// until those jobs finish. 0 = unbounded.
  std::size_t max_store_bytes = 0;
  /// Entry budget for the result cache (completed jobs answerable by
  /// fingerprint). Evicting an entry deletes the whole job — a later
  /// identical submission simply recomputes. 0 = unbounded.
  std::size_t max_result_cache = 0;
  /// Entry budget for the cross-job evaluation cache (profiles-db buckets
  /// under cache/), least-recently-served eviction. 0 = unbounded.
  std::size_t max_eval_cache = 0;
  /// Admission control: maximum jobs waiting in `queued`. A submit that
  /// would exceed it is answered with a structured
  /// `{"type":"error","code":"overloaded","retry_after_ms":N}` instead of
  /// silently growing the queue. 0 = unbounded.
  std::size_t max_queued_jobs = 0;
  /// Admission control: maximum queued + running jobs. Same `overloaded`
  /// answer when exceeded. 0 = unbounded.
  std::size_t max_inflight = 0;
  /// Clock for the flight recorder and the latency histograms,
  /// milliseconds on an arbitrary steady epoch. Empty =
  /// std::chrono::steady_clock; tests inject a fake for deterministic
  /// span and quantile assertions.
  std::function<double()> clock_ms;
};

class MappingService {
 public:
  explicit MappingService(const ServiceConfig& config);
  ~MappingService();

  MappingService(const MappingService&) = delete;
  MappingService& operator=(const MappingService&) = delete;

  /// Handles one request JSON and returns the response JSON. Thread-safe;
  /// never throws — every failure becomes a `{"type":"error",...}`
  /// response. Long-running work (the searches themselves) happens on job
  /// workers, not here; `handle` only enqueues and reads state.
  [[nodiscard]] std::string handle(const std::string& request_json);

  /// Runs queued jobs on the calling thread until the queue is empty.
  /// The job_workers == 0 test mode; safe alongside workers too.
  void drain();

  /// True once a `shutdown` request was accepted; the socket server polls
  /// this to exit its accept loop.
  [[nodiscard]] bool shutdown_requested() const;

  /// Service-level metrics (result-cache hits, jobs by outcome, aggregated
  /// simulator runs). Exposed over the `stats` op.
  [[nodiscard]] std::string expose_metrics();

  /// Latency quantiles ({"name":{"p50":...},...}) for every non-empty
  /// histogram — the `stats` response's "quantiles" member.
  [[nodiscard]] std::string latency_quantiles();

  /// Chrome tracing JSON of everything the flight recorder holds (job
  /// lanes per worker, a queue lane, service-event instants). Written to
  /// `--service-trace` when the daemon exits.
  [[nodiscard]] std::string render_service_trace() const;

  // Transport-side incident counters, bumped by the socket server so
  // slow-client defenses show up in `stats`.
  void note_io_timeout();
  void note_idle_reaped();

 private:
  enum class JobStatus { kQueued, kRunning, kDone, kFailed, kCancelled };

  struct Job {
    std::uint64_t id = 0;
    int priority = 0;
    JobStatus status = JobStatus::kQueued;
    /// The submit payload, kept verbatim for persistence and re-parsing.
    std::string request_json;
    /// Request fingerprint — the result-cache key.
    std::uint64_t fingerprint = 0;
    std::string algorithm;  // registry label once known, name before
    bool want_journal = false;
    bool reuse_measurements = false;
    /// Completed response payload (op=result body) or failure message.
    std::string result_json;
    std::string error;
    /// Cooperative cancel token, shared with the search running the job
    /// (SearchOptions::cancel). Fresh per enqueue — a revived cancelled
    /// job gets a new one.
    std::shared_ptr<std::atomic<bool>> cancel;
    /// Why the job was (or is being) cancelled: "client" for an explicit
    /// cancel op, "deadline" for an expired per-submit deadline_ms.
    /// Reported in the `status` response's "reason" field.
    std::string cancel_reason;
    /// Per-submit wall-clock deadline; 0 = none. Armed on the deadline
    /// wheel at enqueue (and re-armed fresh on recovery/revival).
    double deadline_ms = 0;
    /// Last tick this job's result was served (completion, result-cache
    /// hit, or result fetch) — the LRU key for eviction.
    std::uint64_t last_served = 0;
    /// Bytes this job's store dir currently holds (request, checkpoint,
    /// journal, result). Re-measured when the job finishes.
    std::size_t store_bytes = 0;
  };

  [[nodiscard]] static const char* status_name(JobStatus status);
  [[nodiscard]] std::string job_dir(std::uint64_t id) const;

  /// handle() minus the timing wrapper: dispatches one request and
  /// reports which op label it ran as (a member of the fixed label set,
  /// "other" for anything unrecognized) for the per-op latency histogram
  /// and error counter.
  [[nodiscard]] std::string dispatch(const std::string& request_json,
                                     std::string& op_label);

  // Request handlers (mutex_ held by caller where noted).
  [[nodiscard]] std::string handle_submit(const JsonValue& request,
                                          const std::string& request_json);
  [[nodiscard]] std::string handle_status(const JsonValue& request);
  [[nodiscard]] std::string handle_result(const JsonValue& request);
  [[nodiscard]] std::string handle_journal(const JsonValue& request);
  [[nodiscard]] std::string handle_cancel(const JsonValue& request);
  [[nodiscard]] std::string handle_trace(const JsonValue& request);
  [[nodiscard]] std::string handle_jobs();

  /// Runs one job to completion (no service mutex held during the search)
  /// and stores + persists its outcome. `worker` tags the job's running
  /// span with its lane in the flight recorder.
  void run_job(std::uint64_t id, int worker);
  /// Picks the highest-priority queued job (FIFO within a class) and
  /// marks it running; 0 when none. mutex_ held by caller.
  [[nodiscard]] std::uint64_t claim_next_locked();
  void worker_loop(int worker);

  /// Rescans the store directory: completed jobs re-enter the result
  /// cache, interrupted ones re-enqueue (resuming from their checkpoint),
  /// tombstoned dirs are cleaned up or recovered as cancelled. Torn or
  /// corrupt artifacts (bad checksum trailer) are quarantined — renamed
  /// to `*.corrupt`, counted — never a startup failure. mutex_ held by
  /// caller (the deadline-wheel thread is already live during recovery).
  void recover_store_locked();

  /// Admission control: when the queued/inflight caps are exceeded,
  /// returns the structured `overloaded` response; empty string when the
  /// submit may proceed. mutex_ held by caller.
  [[nodiscard]] std::string admission_error_locked();

  /// Deadline-wheel expiry callback: flips the job's cancel token (running)
  /// or lands it in `cancelled` with reason "deadline" (queued),
  /// checkpoint and store dir kept for a byte-identical resume.
  void on_deadline(std::uint64_t id);

  /// Renames a torn/corrupt file or dir to a fresh `*.corrupt[.N]` path
  /// and counts it. Returns false when the rename itself failed.
  bool quarantine_path(const std::string& path);

  /// Bumps a job's LRU clock. mutex_ held by caller.
  void touch_locked(Job& job);
  /// Deletes one finished job entirely — tombstone, dir, maps, byte
  /// accounting. mutex_ held by caller.
  void evict_job_locked(std::uint64_t id);
  /// Records that the eval-cache bucket `bucket` was just read or written
  /// and evicts over-budget buckets. mutex_ held by caller.
  void touch_bucket_locked(std::uint64_t bucket);
  /// Enforces max_result_cache and max_store_bytes by evicting
  /// least-recently-served finished jobs. mutex_ held by caller.
  void enforce_budgets_locked();
  /// Refreshes the entries gauges after any cache mutation. mutex_ held.
  void update_cache_gauges_locked();

  [[nodiscard]] std::string bucket_path(std::uint64_t bucket) const;

  ServiceConfig config_;
  ThreadPool pool_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::map<std::uint64_t, Job> jobs_;  // ordered: `jobs` lists by id
  std::uint64_t next_id_ = 1;
  /// fingerprint → completed job id (the result cache index).
  std::map<std::uint64_t, std::uint64_t> by_fingerprint_;
  /// Monotone LRU clock for jobs and eval-cache buckets.
  std::uint64_t serve_tick_ = 0;
  /// Total bytes under jobs/ per the jobs_ accounting.
  std::size_t store_bytes_total_ = 0;
  /// eval-cache bucket key → last-served tick (files under cache/).
  std::map<std::uint64_t, std::uint64_t> eval_buckets_;
  bool shutdown_ = false;
  bool stopping_ = false;

  MetricsRegistry metrics_;
  Counter* m_submitted_ = nullptr;
  Counter* m_completed_ = nullptr;
  Counter* m_failed_ = nullptr;
  Counter* m_cancelled_ = nullptr;
  Counter* m_result_cache_hits_ = nullptr;
  Counter* m_result_cache_misses_ = nullptr;
  Counter* m_result_cache_evictions_ = nullptr;
  Counter* m_eval_cache_seeded_ = nullptr;
  Counter* m_eval_cache_misses_ = nullptr;
  Counter* m_eval_cache_evictions_ = nullptr;
  Gauge* m_result_cache_entries_ = nullptr;
  Gauge* m_eval_cache_entries_ = nullptr;
  Gauge* m_store_bytes_ = nullptr;
  Counter* m_sim_runs_ = nullptr;
  Counter* m_overloaded_ = nullptr;
  Counter* m_deadline_expired_ = nullptr;
  Counter* m_quarantined_ = nullptr;
  Counter* m_io_timeouts_ = nullptr;
  Counter* m_idle_reaped_ = nullptr;
  Gauge* m_uptime_ = nullptr;
  /// Queue-wait (submit → running) and end-to-end (submit → terminal)
  /// job latencies, observed under mutex_ (Histogram is not thread-safe).
  Histogram* m_queue_wait_ = nullptr;
  Histogram* m_job_duration_ = nullptr;
  /// Per-op handle latency histogram and error counter, one pair per
  /// member of the fixed op label set (plus "other" for unknown ops —
  /// labels never come from client-controlled strings).
  std::map<std::string, std::pair<Histogram*, Counter*>> op_metrics_;

  /// Per-job lifecycle span timelines + service-event ring. Has its own
  /// mutex and never calls back into the service, so both locked and
  /// unlocked paths record directly.
  FlightRecorder recorder_;
  /// Milliseconds clock shared with the recorder (config_.clock_ms or
  /// steady_clock); start_ms_ anchors the uptime gauge.
  std::function<double()> clock_ms_;
  double start_ms_ = 0;

  /// Arms per-job deadline_ms; expiry calls on_deadline. Constructed
  /// before recover_store_locked (recovered queued jobs re-arm) and torn
  /// down after the workers join.
  std::unique_ptr<DeadlineWheel> wheel_;

  std::vector<std::thread> workers_;
};

}  // namespace automap
