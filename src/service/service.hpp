#pragma once

// MappingService — the daemon's transport-independent core.
//
// The service owns the job table, the one shared evaluation thread pool,
// and the two cross-job caches; the socket server (server.hpp) only moves
// frames. `handle()` maps one request JSON to one response JSON, so every
// protocol behavior — including size limits and structured errors — is
// testable without sockets.
//
// Scheduling: each accepted job runs as one search on a job worker; all
// workers' candidate batches land on the single shared ThreadPool, where
// SearchOptions::pool_priority (from the request's `priority`) decides
// which job's batch drains first when they compete. Queued jobs start in
// priority order (FIFO within a class).
//
// Caches, layered on the profiles-db format:
//  - Result cache: request fingerprint (machine, graph, algorithm,
//    canonical options/sim JSON, journal + reuse flags) → completed job.
//    A repeat submission is answered instantly from the finished job —
//    zero new simulator runs — and bumps
//    `automap_service_result_cache_hits_total`.
//  - Evaluation cache: per (machine fp, graph fp, sim, measurement
//    options) bucket holding a profiles database; the per-mapping-hash,
//    per-seed run reuse happens inside the evaluator exactly as with the
//    CLI's --profiles flag. Opt-in per request (`reuse_measurements`),
//    because seeding measurements changes a search's cache-hit statistics
//    versus a cold run — the default path stays byte-identical to the
//    one-shot CLI.
//
// Persistence: every job writes store/jobs/<id>/{request.json, checkpoint,
// journal.jsonl, result.json}; cache buckets live in store/cache/. On
// construction the service rescans the store — completed jobs re-enter the
// result cache, interrupted jobs re-enqueue and resume from their PR 4
// checkpoint — so a daemon restart loses nothing.

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/service/wire.hpp"
#include "src/support/metrics.hpp"
#include "src/support/thread_pool.hpp"

namespace automap {

struct JsonValue;

struct ServiceConfig {
  /// Job-store/cache directory (created if missing; probed with
  /// require_writable_path before the service accepts anything).
  std::string store_dir;
  /// Lanes in the shared evaluation pool (0 = hardware threads). Results
  /// are bit-identical for every value.
  int eval_threads = 0;
  /// Concurrent job workers. 0 = no worker threads: jobs run only via
  /// drain(), which tests use for deterministic scheduling.
  int job_workers = 2;
  /// Maximum accepted request payload; larger requests get a structured
  /// `too_large` error.
  std::size_t max_request_bytes = kDefaultMaxFrameBytes;
};

class MappingService {
 public:
  explicit MappingService(const ServiceConfig& config);
  ~MappingService();

  MappingService(const MappingService&) = delete;
  MappingService& operator=(const MappingService&) = delete;

  /// Handles one request JSON and returns the response JSON. Thread-safe;
  /// never throws — every failure becomes a `{"type":"error",...}`
  /// response. Long-running work (the searches themselves) happens on job
  /// workers, not here; `handle` only enqueues and reads state.
  [[nodiscard]] std::string handle(const std::string& request_json);

  /// Runs queued jobs on the calling thread until the queue is empty.
  /// The job_workers == 0 test mode; safe alongside workers too.
  void drain();

  /// True once a `shutdown` request was accepted; the socket server polls
  /// this to exit its accept loop.
  [[nodiscard]] bool shutdown_requested() const;

  /// Service-level metrics (result-cache hits, jobs by outcome, aggregated
  /// simulator runs). Exposed over the `stats` op.
  [[nodiscard]] std::string expose_metrics();

 private:
  enum class JobStatus { kQueued, kRunning, kDone, kFailed, kCancelled };

  struct Job {
    std::uint64_t id = 0;
    int priority = 0;
    JobStatus status = JobStatus::kQueued;
    /// The submit payload, kept verbatim for persistence and re-parsing.
    std::string request_json;
    /// Request fingerprint — the result-cache key.
    std::uint64_t fingerprint = 0;
    std::string algorithm;  // registry label once known, name before
    bool want_journal = false;
    bool reuse_measurements = false;
    /// Completed response payload (op=result body) or failure message.
    std::string result_json;
    std::string error;
  };

  [[nodiscard]] static const char* status_name(JobStatus status);
  [[nodiscard]] std::string job_dir(std::uint64_t id) const;

  // Request handlers (mutex_ held by caller where noted).
  [[nodiscard]] std::string handle_submit(const JsonValue& request,
                                          const std::string& request_json);
  [[nodiscard]] std::string handle_status(const JsonValue& request);
  [[nodiscard]] std::string handle_result(const JsonValue& request);
  [[nodiscard]] std::string handle_journal(const JsonValue& request);
  [[nodiscard]] std::string handle_cancel(const JsonValue& request);
  [[nodiscard]] std::string handle_jobs();

  /// Runs one job to completion (no service mutex held during the search)
  /// and stores + persists its outcome.
  void run_job(std::uint64_t id);
  /// Picks the highest-priority queued job (FIFO within a class) and
  /// marks it running; 0 when none. mutex_ held by caller.
  [[nodiscard]] std::uint64_t claim_next_locked();
  void worker_loop();

  /// Rescans the store directory: completed jobs re-enter the result
  /// cache, interrupted ones re-enqueue (resuming from their checkpoint).
  void recover_store();

  ServiceConfig config_;
  ThreadPool pool_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::map<std::uint64_t, Job> jobs_;  // ordered: `jobs` lists by id
  std::uint64_t next_id_ = 1;
  /// fingerprint → completed job id (the result cache index).
  std::map<std::uint64_t, std::uint64_t> by_fingerprint_;
  bool shutdown_ = false;
  bool stopping_ = false;

  MetricsRegistry metrics_;
  Counter* m_submitted_ = nullptr;
  Counter* m_completed_ = nullptr;
  Counter* m_failed_ = nullptr;
  Counter* m_result_cache_hits_ = nullptr;
  Counter* m_eval_cache_seeded_ = nullptr;
  Counter* m_sim_runs_ = nullptr;

  std::vector<std::thread> workers_;
};

}  // namespace automap
