#pragma once

// FlightRecorder — the mapping daemon's per-job lifecycle timeline
// (§ISSUE 10).
//
// Every job the service touches carries a chain of named spans
// (`submitted → queued → admitted → running → … → finished`), each with a
// steady-clock start/end in milliseconds and a small set of JSON
// attributes (queue depth at admission, revival flag, store bytes
// written). The chain is gap-free by construction: a transition closes the
// open span at instant t and opens the next one at the same t, so the
// timeline answers "where did this job's time go" without reconstruction.
// Zero-length *instant* markers (checkpoints, post-terminal evictions)
// interleave without breaking the chain, and a terminal transition
// (`finished`, `failed`, `cancelled`, `expired`) seals the timeline — a
// later transition on a sealed timeline reopens it, which is exactly the
// service's cancelled-job revival path.
//
// Bounded by design: at most `max_spans_per_job` spans per job (the
// oldest non-initial spans are dropped and counted — checkpoint markers
// are what grows, and the first span anchors the job's age), at most
// `max_jobs` timelines (least-recently-touched terminal timelines evict
// first), and a fixed ring of service-level events (admission rejections,
// deadline expiries, evictions, quarantines). The recorder has its own
// mutex and never calls back into the service, so any service path — with
// or without the service mutex held — may record safely.
//
// Timelines persist per job as `<jobdir>/spans.json` through the durable
// checksummed-write path (kind "spans") and restore across daemon
// restarts: restored timestamps are shifted so the newest one lands at
// "now", preserving every recorded duration while keeping the new
// process's clock monotone over the whole timeline.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace automap {

struct FlightRecorderOptions {
  /// Timeline budget; adding one more evicts the least-recently-touched
  /// terminal timeline (or the least-recently-touched overall when none
  /// is terminal).
  std::size_t max_jobs = 512;
  /// Span budget per timeline; exceeding it drops the oldest span after
  /// the first (the first anchors the job's age) and bumps dropped().
  std::size_t max_spans_per_job = 64;
  /// Ring size for service-level events (admission rejections, deadline
  /// expiries, evictions, quarantines).
  std::size_t max_service_events = 256;
  /// Clock returning milliseconds on an arbitrary steady epoch. Empty =
  /// std::chrono::steady_clock; tests inject a fake for deterministic
  /// span timing.
  std::function<double()> clock_ms;
};

/// One span attribute: `value_json` is spliced verbatim into JSON output,
/// so it must already be a valid JSON value ("3", "true", "\"client\"").
struct SpanAttr {
  std::string key;
  std::string value_json;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options);

  /// Closes the job's open span (if any) at now and opens `span` at the
  /// same instant — the gap-free chain step. Creates the timeline when the
  /// job is new; reopens a sealed timeline (the revival path). `worker`
  /// >= 0 tags the span with the job-worker lane that owns it. Returns
  /// the duration (ms) of the span it closed, 0 when none was open.
  double transition(std::uint64_t job, const std::string& span, int worker,
                    std::vector<SpanAttr> attrs = {});

  /// Zero-length marker at now; does not close the open span. Works on
  /// sealed timelines too (post-terminal events like "evicted").
  void instant(std::uint64_t job, const std::string& name,
               std::vector<SpanAttr> attrs = {});

  /// Closes the open span, appends the zero-length terminal span `name`
  /// and seals the timeline. Returns the job's end-to-end age in ms
  /// (terminal instant minus first span start).
  double terminal(std::uint64_t job, const std::string& name,
                  std::vector<SpanAttr> attrs = {});

  /// Service-level instant (no job timeline): admission rejections,
  /// deadline expiries, evictions, quarantines. Kept in a bounded ring.
  void service_event(const std::string& name,
                     std::vector<SpanAttr> attrs = {});

  [[nodiscard]] bool has(std::uint64_t job) const;
  /// Name of the newest span ("" for an unknown job).
  [[nodiscard]] std::string current_span(std::uint64_t job) const;
  /// Now (or the terminal instant, once sealed) minus the first span
  /// start; 0 for an unknown job.
  [[nodiscard]] double age_ms(std::uint64_t job) const;
  /// Time from the first span start until the job first reached
  /// "running" — still growing while it waits; 0 for an unknown job.
  [[nodiscard]] double queue_wait_ms(std::uint64_t job) const;
  /// Spans dropped to the per-job ring bound for this job.
  [[nodiscard]] std::uint64_t dropped_for(std::uint64_t job) const;

  /// The job's spans as a JSON array (oldest first); "[]" for an unknown
  /// job. Each element: {"name":...,"start_ms":...,"end_ms":<num|null>
  /// [,"worker":N][,"instant":true][,"attrs":{...}]}.
  [[nodiscard]] std::string spans_array_json(std::uint64_t job) const;

  /// The persisted spans.json payload:
  /// {"job":N,"dropped":D,"terminal":B,"spans":[...]}.
  [[nodiscard]] std::string serialize(std::uint64_t job) const;

  /// Rebuilds a timeline from a serialize() payload, shifting every
  /// timestamp so the newest one lands at now (durations survive, the
  /// restored past never outruns the new clock). Throws Error on
  /// malformed payloads — callers quarantine and start fresh.
  void restore(std::uint64_t job, const std::string& payload);

  /// Chrome tracing JSON of everything recorded: tid 0 = "service"
  /// (service events), tid 1 = "queue" (pre-running spans), tid 2+N =
  /// "worker N" (running spans). Zero-length spans render as instant
  /// events; timestamps are offset so the export starts at 0.
  [[nodiscard]] std::string chrome_trace() const;

 private:
  struct Span {
    std::string name;
    double start_ms = 0;
    double end_ms = -1;  // < 0 = still open
    int worker = -1;     // >= 0 = job-worker lane
    bool instant = false;
    std::vector<SpanAttr> attrs;
  };
  struct Timeline {
    std::vector<Span> spans;
    std::uint64_t dropped = 0;
    bool terminal = false;
    std::uint64_t touched = 0;  // recorder-wide LRU tick
  };
  struct ServiceEvent {
    std::string name;
    double at_ms = 0;
    std::vector<SpanAttr> attrs;
  };

  /// Clock clamped to never run behind `floor` — keeps each timeline
  /// monotone even under a misbehaving injected clock.
  [[nodiscard]] double now_at_least(double floor) const;
  [[nodiscard]] double newest_ms(const Timeline& timeline) const;
  /// Fetches or creates the job's timeline, evicting per max_jobs.
  Timeline& timeline_locked(std::uint64_t job);
  void append_locked(Timeline& timeline, Span span);
  static std::string span_json(const Span& span);

  FlightRecorderOptions options_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, Timeline> timelines_;
  std::deque<ServiceEvent> events_;
  std::uint64_t touch_tick_ = 0;
};

}  // namespace automap
