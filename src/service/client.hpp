#pragma once

// Minimal client for the mapping service: one connect per call, one
// request frame out, one response frame back. Used by `automap_client`
// and `automap_cli client ...` (the same code registers both).
//
// call() is single-shot. call_with_retry() layers a deterministic retry
// loop on top for the two transient failure shapes a well-behaved client
// should absorb: the daemon is unreachable (not up yet, restarting), or
// it answered `{"type":"error","code":"overloaded",...}` from admission
// control. Delays use exponential backoff with *full jitter* — uniform in
// [0, min(cap, base * 2^attempt)] — from a seeded RNG, so a retrying
// fleet decorrelates instead of stampeding in lockstep, while any given
// seed replays the exact same schedule (testable, reproducible). A
// server-provided `retry_after_ms` acts as the floor for that delay.

#include <cstdint>
#include <string>

#include "src/support/error.hpp"

namespace automap {

/// Thrown by call() when the daemon cannot be reached at all (connect
/// failure) — the retryable counterpart to a mid-conversation Error.
class Unreachable : public Error {
 public:
  using Error::Error;
};

struct RetryPolicy {
  /// Total attempts including the first; 1 = no retries (call()'s
  /// existing behavior).
  int max_attempts = 1;
  /// First backoff ceiling in milliseconds; doubles every attempt.
  double base_ms = 50.0;
  /// Upper bound on any single backoff delay.
  double cap_ms = 2000.0;
  /// RNG seed for the jitter; a fixed seed replays a fixed schedule.
  std::uint64_t seed = 1;
};

/// The backoff schedule primitive, exposed for tests: full-jitter delay
/// for 0-based `attempt`, advancing `rng_state` (splitmix64). Pure given
/// (policy, attempt, state) — no wall clock involved.
[[nodiscard]] double retry_delay_ms(const RetryPolicy& policy, int attempt,
                                    std::uint64_t& rng_state);

class ServiceClient {
 public:
  explicit ServiceClient(std::string socket_path)
      : socket_path_(std::move(socket_path)) {}

  /// Sends one request JSON and returns the response JSON. Throws
  /// Unreachable when the daemon cannot be connected to, Error when the
  /// connection breaks mid-frame.
  [[nodiscard]] std::string call(const std::string& request_json) const;

  /// call() plus deterministic retries on Unreachable and `overloaded`
  /// responses. Exhausted attempts surface the last outcome unchanged:
  /// the final Unreachable is rethrown, a final `overloaded` response is
  /// returned for the caller to inspect.
  [[nodiscard]] std::string call_with_retry(const std::string& request_json,
                                            const RetryPolicy& policy) const;

 private:
  std::string socket_path_;
};

}  // namespace automap
