#pragma once

// Minimal client for the mapping service: one connect per call, one
// request frame out, one response frame back. Used by `automap_client`
// and `automap_cli client ...` (the same code registers both).

#include <string>

namespace automap {

class ServiceClient {
 public:
  explicit ServiceClient(std::string socket_path)
      : socket_path_(std::move(socket_path)) {}

  /// Sends one request JSON and returns the response JSON. Throws Error
  /// when the daemon is unreachable or the connection breaks mid-frame.
  [[nodiscard]] std::string call(const std::string& request_json) const;

 private:
  std::string socket_path_;
};

}  // namespace automap
