#pragma once

// Unix-domain-socket front end for MappingService.
//
// One frame in, one frame out (wire.hpp framing), any number of frames
// per connection. The accept loop polls with a short timeout so a
// `shutdown` request — or SIGINT/SIGTERM via `stop()` — is honored within
// a fraction of a second; per-connection handler threads are joined
// before serve() returns (finished ones are reaped as the loop runs, so a
// long-lived daemon does not accumulate dead threads). Oversize frames
// are answered with a structured `too_large` error before the connection
// closes, never silently dropped.
//
// Slow-client defense: all per-connection I/O is poll-based with two
// deadlines. `io_timeout_ms` bounds each *frame* — once the first header
// byte of a request arrives, the rest of the header, the payload, and the
// response write must all complete within it, so a slow-loris peer
// dribbling one byte a minute costs one dropped connection, not a hung
// thread. `idle_timeout_ms` bounds the gap *between* frames on a kept-open
// connection; an idle peer is reaped (connection closed, counted) without
// affecting the service. Both also wake on stop/shutdown, so lingering
// idle connections never delay daemon exit.

#include <atomic>
#include <memory>
#include <string>
#include <vector>

namespace automap {

class MappingService;

struct ServerConfig {
  /// Per-frame I/O deadline in milliseconds: header-remainder + payload
  /// read + response write. 0 = unbounded (trusted-client mode).
  int io_timeout_ms = 10000;
  /// Between-frames idle deadline in milliseconds; 0 = unbounded.
  int idle_timeout_ms = 60000;
};

class ServiceServer {
 public:
  /// Binds `socket_path` (an existing stale socket file is replaced).
  /// Throws Error when the path cannot be bound.
  ServiceServer(MappingService& service, std::string socket_path,
                ServerConfig config = {});
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Accepts and serves connections until the service reports
  /// shutdown_requested() or stop() is called. Blocks.
  void serve();

  /// Signal-safe stop flag (call from a signal handler).
  void stop() { stop_.store(true); }

  [[nodiscard]] const std::string& socket_path() const {
    return socket_path_;
  }

 private:
  struct Connection;

  void handle_connection(int fd);
  /// True when the serve loop should wind down (stop() or a shutdown op).
  [[nodiscard]] bool stopping() const;

  MappingService& service_;
  std::string socket_path_;
  ServerConfig config_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
};

}  // namespace automap
