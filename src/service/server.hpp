#pragma once

// Unix-domain-socket front end for MappingService.
//
// One frame in, one frame out (wire.hpp framing), any number of frames
// per connection. The accept loop polls with a short timeout so a
// `shutdown` request — or SIGINT/SIGTERM via `stop()` — is honored within
// a fraction of a second; per-connection handler threads are joined
// before serve() returns. Oversize frames are answered with a structured
// `too_large` error before the connection closes, never silently dropped.

#include <atomic>
#include <string>

namespace automap {

class MappingService;

class ServiceServer {
 public:
  /// Binds `socket_path` (an existing stale socket file is replaced).
  /// Throws Error when the path cannot be bound.
  ServiceServer(MappingService& service, std::string socket_path);
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Accepts and serves connections until the service reports
  /// shutdown_requested() or stop() is called. Blocks.
  void serve();

  /// Signal-safe stop flag (call from a signal handler).
  void stop() { stop_.store(true); }

  [[nodiscard]] const std::string& socket_path() const {
    return socket_path_;
  }

 private:
  void handle_connection(int fd);

  MappingService& service_;
  std::string socket_path_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
};

}  // namespace automap
