#pragma once

// Structured, append-only search provenance journal (§ISSUE 5; schema in
// docs/file_formats.md). The search stack emits one JSONL record per
// decision-relevant event — candidate evaluated/censored/quarantined,
// coordinate move accepted/rejected with its makespan delta, constraint
// edges established and pruned per rotation, checkpoints, incumbent
// improvements, metric snapshots — each stamped with the simulated search
// clock and the current rotation/coordinate cursor.
//
// Ordering contract ("lock-free-ordered"): every emission site sits on the
// serial side of the search — the evaluate_batch fold loop or the
// algorithm's own single-threaded control flow — never inside pool
// workers. Events therefore carry a single monotone sequence number with
// no locking, and a journal is byte-identical at any --threads value (the
// same guarantee the SearchResult already has). A null Journal* in
// SearchOptions disables everything: emission sites are `if (journal_)`
// guards on the fold side, which is noise against a simulator run.

#include <fstream>
#include <sstream>
#include <string>
#include <string_view>

namespace automap {

/// Current schema version, written in the header record and bumped on any
/// incompatible change (see docs/file_formats.md "Versioning policy").
/// Version 2 replaced `search_begin`'s flat option fields with canonical
/// "options"/"sim" objects (search_options_to_json); readers accept both.
inline constexpr int kJournalVersion = 2;

class Journal {
 public:
  /// In-memory journal (tests, byte-identity comparisons); read back with
  /// text().
  Journal();
  /// File-backed journal. Throws Error when the path cannot be opened.
  explicit Journal(const std::string& path);

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// One pending JSONL record. Committed (rendered + appended + newline)
  /// when the builder goes out of scope; chain field setters in between.
  /// Keys must be unique per event and values are rendered exactly once,
  /// in call order — byte-identity depends on it.
  class Event {
   public:
    ~Event();
    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;

    Event& str(std::string_view key, std::string_view value);
    Event& num(std::string_view key, double value);
    Event& integer(std::string_view key, long long value);
    Event& boolean(std::string_view key, bool value);
    /// Pre-rendered JSON (arrays, objects, metric snapshots).
    Event& raw(std::string_view key, std::string_view json);

   private:
    friend class Journal;
    Event(Journal* journal, std::string_view type);

    Journal* journal_;
    std::string line_;
  };

  /// Starts a record of the given type, stamped with the next sequence
  /// number and the current rotation/coordinate cursor.
  Event event(std::string_view type);

  /// Cursor state auto-attached to subsequent events as "rot"/"pos"/"task".
  void set_rotation(int rotation);
  void set_coordinate(int position, int task);
  void clear_coordinate();
  void clear_cursor();

  /// Serialized contents of an in-memory journal (precondition: default-
  /// constructed, not file-backed).
  [[nodiscard]] std::string text() const;
  /// Path of a file-backed journal; empty for in-memory journals.
  [[nodiscard]] const std::string& path() const { return path_; }

  void flush();

 private:
  void commit(const std::string& line);

  std::string path_;
  std::ostringstream buffer_;
  std::ofstream file_;
  std::ostream* out_;
  long long next_sequence_ = 0;
  int rotation_ = -1;
  int position_ = -1;
  int task_ = -1;
};

}  // namespace automap
