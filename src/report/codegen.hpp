#pragma once

// Custom-mapper code generation.
//
// The paper notes that AutoMap "helps users discover efficient mapping
// strategies to tune their custom mappers" (§5 "Results"). This generator
// turns a discovered mapping into a compilable C++ mapper source file — a
// Mapper subclass with the decisions hard-coded per task name — so the
// tuned strategy can be reviewed, edited and shipped like any hand-written
// mapper.

#include <string>

#include "src/mapping/mapping.hpp"
#include "src/taskgraph/task_graph.hpp"

namespace automap {

/// Emits a self-contained C++ source defining `class <class_name> :
/// public Mapper` that replays `mapping` by task name (with a
/// DefaultMapper-style fallback for unknown tasks).
[[nodiscard]] std::string generate_mapper_source(
    const TaskGraph& graph, const Mapping& mapping,
    const std::string& class_name);

}  // namespace automap
