#include "src/report/explain.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "src/mapping/mapping.hpp"
#include "src/report/analysis.hpp"
#include "src/report/journal.hpp"
#include "src/search/algorithms.hpp"
#include "src/search/search.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/error.hpp"
#include "src/support/format.hpp"
#include "src/support/json.hpp"

namespace automap {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Splits journal text into parsed JSONL events and validates the header
/// (first record: type "journal" with a supported schema version) and the
/// monotone sequence numbers the byte-identity contract promises.
std::vector<JsonValue> parse_journal(const std::string& text) {
  std::vector<JsonValue> events;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    try {
      events.push_back(parse_json(line));
    } catch (const Error& e) {
      throw Error("journal line " + std::to_string(line_no) + ": " +
                  e.what());
    }
  }
  AM_REQUIRE(!events.empty(), "journal is empty");
  AM_REQUIRE(events.front().str_or("type", "") == "journal",
             "journal does not start with a header record");
  const int version =
      static_cast<int>(events.front().num_or("version", -1));
  AM_REQUIRE(version >= 1 && version <= kJournalVersion,
             "unsupported journal schema version " +
                 std::to_string(version) + " (this build reads <= " +
                 std::to_string(kJournalVersion) + ")");
  long long prev = -1;
  for (const JsonValue& ev : events) {
    const long long n = static_cast<long long>(ev.num_or("n", -1));
    AM_REQUIRE(n == prev + 1, "journal sequence broken at event n=" +
                                  std::to_string(n) + " (expected " +
                                  std::to_string(prev + 1) + ")");
    prev = n;
  }
  return events;
}

/// Why one decision holds its final value: the accepted move that set it,
/// or nothing (start default / custom start).
struct Provenance {
  long long move_n = -1;  // journal sequence of the accepted move; -1 = start
  int rotation = -1;
  bool has_delta = false;
  double delta = 0.0;
  /// Set when the decision was not the move's primary choice but a
  /// co-location consequence of it.
  bool forced = false;
  std::size_t by_task = 0;  // the primary (task, arg) that dragged it
  std::size_t by_arg = 0;
  std::string via;  // colocation | transitive | addressability | repair
};

/// One search segment: everything between a search_begin and its finalize.
/// Multi-start journals contain several.
struct Segment {
  std::string algorithm;
  Mapping current;  // start mapping, updated by the accepted-move chain
  bool custom_start = false;
  long long accepted = 0;
  long long rejected = 0;
  std::vector<Provenance> dist_prov;
  std::vector<Provenance> proc_prov;
  std::vector<std::vector<Provenance>> mem_prov;
  bool finalized = false;
  double best = kInf;
  std::string winner_serialized;
};

Segment make_segment(const TaskGraph& graph, const JsonValue& sb) {
  Segment seg;
  seg.algorithm = sb.str_or("algorithm", "?");
  seg.custom_start = sb.bool_or("custom_start", false);
  const std::string start = sb.str_or("start", "");
  AM_REQUIRE(!start.empty(), "search_begin record has no start mapping");
  seg.current = Mapping::parse(start, graph);
  seg.dist_prov.resize(graph.num_tasks());
  seg.proc_prov.resize(graph.num_tasks());
  seg.mem_prov.resize(graph.num_tasks());
  for (const GroupTask& task : graph.tasks())
    seg.mem_prov[task.id.index()].resize(task.args.size());
  return seg;
}

/// Applies one accepted `move` event to the segment's incumbent chain and
/// records provenance for every decision the move changed. Verifies the
/// recorded post-move hash against the replayed mapping.
void apply_move(Segment& seg, const JsonValue& ev, const TaskGraph& graph) {
  const long long n = static_cast<long long>(ev.num_or("n", -1));
  const int rotation = static_cast<int>(ev.num_or("rot", -1));
  const long long t = static_cast<long long>(ev.num_or("task", -1));
  AM_REQUIRE(t >= 0 && static_cast<std::size_t>(t) < graph.num_tasks(),
             "move event n=" + std::to_string(n) +
                 " has no valid task cursor");
  const TaskId task(static_cast<std::size_t>(t));
  const bool has_delta = ev.has("delta");
  const double delta = ev.num_or("delta", 0.0);
  const Provenance primary{.move_n = n,
                           .rotation = rotation,
                           .has_delta = has_delta,
                           .delta = delta};

  const std::string kind = ev.str_or("kind", "");
  if (kind == "distribution") {
    TaskMapping& tm = seg.current.at(task);
    tm.distribute = ev.bool_or("distribute", tm.distribute);
    tm.blocked = ev.bool_or("blocked", tm.blocked);
    seg.dist_prov[task.index()] = primary;
  } else if (kind == "placement") {
    const long long arg = static_cast<long long>(ev.num_or("arg", -1));
    AM_REQUIRE(arg >= 0, "placement move n=" + std::to_string(n) +
                             " has no arg field");
    const ProcKind proc = parse_proc_kind(ev.str_or("proc", ""));
    const MemKind mem = parse_mem_kind(ev.str_or("mem", ""));
    if (seg.current.at(task).proc != proc) {
      seg.current.at(task).proc = proc;
      seg.proc_prov[task.index()] = primary;
    }
    if (seg.current.primary_memory(task, static_cast<std::size_t>(arg)) !=
        mem) {
      seg.current.set_primary_memory(task, static_cast<std::size_t>(arg),
                                     mem);
      seg.mem_prov[task.index()][static_cast<std::size_t>(arg)] = primary;
    }
    if (const JsonValue* forced = ev.find("forced")) {
      for (const JsonValue& f : forced->array) {
        const auto ft = static_cast<std::size_t>(f.num_or("task", 0));
        AM_REQUIRE(ft < graph.num_tasks(),
                   "forced move task out of range at n=" +
                       std::to_string(n));
        Provenance prov = primary;
        prov.forced = true;
        prov.by_task = task.index();
        prov.by_arg = static_cast<std::size_t>(arg);
        prov.via = f.str_or("via", "?");
        if (f.has("proc")) {
          seg.current.at(TaskId(ft)).proc =
              parse_proc_kind(f.str_or("proc", ""));
          seg.proc_prov[ft] = prov;
        } else {
          const auto fa = static_cast<std::size_t>(f.num_or("arg", 0));
          AM_REQUIRE(fa < seg.mem_prov[ft].size(),
                     "forced move arg out of range at n=" +
                         std::to_string(n));
          seg.current.set_primary_memory(TaskId(ft), fa,
                                         parse_mem_kind(f.str_or("mem", "")));
          seg.mem_prov[ft][fa] = prov;
        }
      }
    }
  } else {
    throw Error("unknown move kind '" + kind + "' at journal event n=" +
                std::to_string(n));
  }

  // Integrity: the journal records the hash of the mapping each accepted
  // move produced. A mismatch means the journal was edited or the replay
  // semantics drifted from the emitting code.
  const std::string recorded = ev.str_or("hash", "");
  AM_REQUIRE(recorded == hex_u64(seg.current.hash()),
             "journal hash mismatch at event n=" + std::to_string(n) +
                 ": the accepted-move chain does not reproduce the "
                 "recorded mapping (corrupted or edited journal?)");
}

/// Walks all events into segments. Every accepted move is replayed;
/// rejected moves only count.
std::vector<Segment> build_segments(const std::vector<JsonValue>& events,
                                    const TaskGraph& graph) {
  std::vector<Segment> segments;
  for (const JsonValue& ev : events) {
    const std::string type = ev.str_or("type", "");
    if (type == "search_begin") {
      segments.push_back(make_segment(graph, ev));
      continue;
    }
    if (segments.empty()) continue;  // header / pre-search records
    Segment& seg = segments.back();
    if (type == "move") {
      if (ev.bool_or("accepted", false)) {
        ++seg.accepted;
        apply_move(seg, ev, graph);
      } else {
        ++seg.rejected;
      }
    } else if (type == "finalize") {
      seg.finalized = true;
      seg.best = ev.wide_num_or("best", kInf);
      seg.winner_serialized = ev.str_or("winner", "");
    }
  }
  AM_REQUIRE(!segments.empty(), "journal has no search_begin record");
  return segments;
}

std::string describe_delta(const Provenance& p) {
  if (!p.has_delta) return "";
  const std::string magnitude = format_seconds(std::abs(p.delta));
  return p.delta <= 0.0 ? "-" + magnitude : "+" + magnitude;
}

/// "move #41 (rotation 2, Δ -1.2ms)" or "start default".
std::string describe_provenance(const Provenance& p, const TaskGraph& graph,
                                bool custom_start) {
  if (p.move_n < 0)
    return custom_start ? "custom starting mapping" : "start default (§4.1)";
  std::ostringstream os;
  os << "move #" << p.move_n;
  if (p.rotation >= 0) os << " (rotation " << p.rotation << ")";
  const std::string delta = describe_delta(p);
  if (!delta.empty()) os << ", Δ " << delta;
  if (p.forced) {
    const GroupTask& by = graph.task(TaskId(p.by_task));
    os << " — forced by co-location with " << by.name << " arg "
       << p.by_arg << " ("
       << graph.collection(by.args[p.by_arg].collection).name << ") via "
       << p.via;
  }
  return os.str();
}

}  // namespace

std::string render_explain(const TaskGraph& graph,
                           const std::string& journal_text) {
  const std::vector<JsonValue> events = parse_journal(journal_text);
  std::vector<Segment> segments = build_segments(events, graph);

  // Multi-start journals hold one segment per restart; the overall winner
  // is the finalized segment with the best final mean.
  Segment* seg = nullptr;
  for (Segment& s : segments)
    if (s.finalized && (seg == nullptr || s.best < seg->best)) seg = &s;
  const bool unfinished = seg == nullptr;
  if (unfinished) seg = &segments.back();  // interrupted search: best effort

  std::ostringstream os;
  os << seg->algorithm << " decision provenance — " << graph.num_tasks()
     << " tasks, " << graph.num_collection_args() << " collection args, "
     << seg->accepted << " accepted / " << (seg->accepted + seg->rejected)
     << " total moves";
  if (segments.size() > 1)
    os << " (best of " << segments.size() << " starts)";
  os << "\n";
  if (unfinished)
    os << "warning: journal has no finalize record (interrupted search); "
          "explaining the last incumbent\n";

  // The finalist protocol re-measures the top-k candidates and may crown a
  // finalist other than the last incumbent. Decisions where the winner and
  // the incumbent chain agree keep their move provenance; the rest are
  // attributed to the finalist protocol.
  Mapping winner = seg->current;
  bool winner_is_incumbent = true;
  if (!seg->winner_serialized.empty()) {
    winner = Mapping::parse(seg->winner_serialized, graph);
    winner_is_incumbent = winner == seg->current;
  }
  if (seg->finalized) {
    os << "winner: " << format_seconds(seg->best)
       << (winner_is_incumbent
               ? " (the final incumbent)"
               : " (a finalist, not the final incumbent — overridden "
                 "decisions marked below)")
       << "\n";
  }

  for (const GroupTask& task : graph.tasks()) {
    const std::size_t ti = task.id.index();
    const TaskMapping& tm = winner.at(task.id);
    const TaskMapping& chain = seg->current.at(task.id);
    os << "\n" << task.name << " (task " << ti << "):\n";

    const char* dist = !tm.distribute  ? "leader-only"
                       : tm.blocked    ? "distributed blocked"
                                       : "distributed round-robin";
    os << "  distribution = " << dist << ": ";
    if (tm.distribute == chain.distribute && tm.blocked == chain.blocked)
      os << describe_provenance(seg->dist_prov[ti], graph,
                                seg->custom_start);
    else
      os << "set by the finalist protocol";
    os << "\n";

    os << "  processor = " << to_string(tm.proc) << ": ";
    if (tm.proc == chain.proc)
      os << describe_provenance(seg->proc_prov[ti], graph,
                                seg->custom_start);
    else
      os << "set by the finalist protocol";
    os << "\n";

    for (std::size_t a = 0; a < task.args.size(); ++a) {
      const MemKind mem = winner.primary_memory(task.id, a);
      os << "  arg " << a << " ("
         << graph.collection(task.args[a].collection).name
         << ") memory = " << to_string(mem) << ": ";
      if (mem == seg->current.primary_memory(task.id, a))
        os << describe_provenance(seg->mem_prov[ti][a], graph,
                                  seg->custom_start);
      else
        os << "set by the finalist protocol";
      os << "\n";
    }
  }
  return os.str();
}

ReplayOutcome replay_journal(const MachineModel& machine,
                             const TaskGraph& graph,
                             const std::string& journal_text, int threads) {
  const std::vector<JsonValue> events = parse_journal(journal_text);

  const JsonValue* sb = nullptr;
  const JsonValue* fin = nullptr;
  std::vector<std::pair<double, double>> recorded;  // (clock, best)
  long long candidates = 0;
  for (const JsonValue& ev : events) {
    const std::string type = ev.str_or("type", "");
    if (type == "search_begin") {
      AM_REQUIRE(sb == nullptr,
                 "replay requires a single-search journal; this one holds "
                 "several search_begin records (multi-start?)");
      sb = &ev;
    } else if (type == "incumbent") {
      recorded.emplace_back(ev.wide_num_or("clock", 0.0),
                            ev.wide_num_or("best", kInf));
    } else if (type == "finalize") {
      fin = &ev;
    } else if (type == "candidate") {
      ++candidates;
    }
  }
  AM_REQUIRE(sb != nullptr, "journal has no search_begin record");
  AM_REQUIRE(fin != nullptr,
             "journal has no finalize record (interrupted search cannot "
             "be replayed)");
  AM_REQUIRE(!sb->bool_or("resumed", false),
             "journal records a resumed search; replay needs the original "
             "checkpoint state it does not carry");
  AM_REQUIRE(!sb->bool_or("seeded_profiles", false),
             "journal records a search seeded from a profiles database; "
             "replay cannot reconstruct it");
  AM_REQUIRE(!sb->bool_or("custom_start", false),
             "journal records a custom starting mapping; replay only "
             "covers registry entry points");

  const std::string label = sb->str_or("algorithm", "?");
  const SearchAlgorithmInfo* info = nullptr;
  for (const SearchAlgorithmInfo& row : search_algorithms())
    if (row.label == label) info = &row;
  AM_REQUIRE(info != nullptr,
             "journal algorithm '" + label + "' is not in the registry");

  // Rebuild the recorded configuration. Every deterministic input is in
  // the search_begin record; the thread count deliberately is not (it
  // cannot change the outcome), so the caller picks it. Version 2
  // journals carry the canonical codec objects; version 1 spread the
  // options across flat fields.
  SearchOptions options;
  SimOptions sim_options;
  if (const JsonValue* opts = sb->find("options")) {
    options = search_options_from_json(*opts);
    const JsonValue* sim_obj = sb->find("sim");
    AM_REQUIRE(sim_obj != nullptr,
               "search_begin has 'options' but no 'sim' record");
    sim_options = sim_options_from_json(*sim_obj);
  } else {
    options.seed = std::stoull(sb->str_or("seed", "0"));
    options.rotations = static_cast<int>(sb->num_or("rotations", 5));
    options.repeats = static_cast<int>(sb->num_or("repeats", 7));
    options.time_budget_s = sb->wide_num_or("budget", kInf);
    options.top_k = static_cast<int>(sb->num_or("top_k", 5));
    options.final_repeats = static_cast<int>(sb->num_or("final_repeats", 31));
    options.prune_candidates = sb->bool_or("prune", true);
    options.memory_fallbacks = sb->bool_or("fallbacks", false);
    options.search_distribution_strategies =
        sb->bool_or("distribution_strategies", false);
    options.objective = sb->str_or("objective", "time") == "energy"
                            ? Objective::kEnergy
                            : Objective::kExecutionTime;
    options.resilience.max_retries =
        static_cast<int>(sb->num_or("max_retries", 2));
    options.resilience.quarantine_after =
        static_cast<int>(sb->num_or("quarantine_after", 3));
    options.resilience.retry_backoff_s = sb->num_or("retry_backoff_s", -1.0);
    const std::string aggregation = sb->str_or("aggregation", "mean");
    options.resilience.aggregation =
        aggregation == "median"         ? Aggregation::kMedian
        : aggregation == "trimmed_mean" ? Aggregation::kTrimmedMean
                                        : Aggregation::kMean;
    if (const JsonValue* frozen = sb->find("frozen"))
      for (const JsonValue& f : frozen->array)
        options.frozen_tasks.push_back(
            TaskId(static_cast<std::size_t>(f.number)));

    sim_options.iterations =
        static_cast<int>(sb->num_or("sim_iterations", 10));
    sim_options.noise_sigma = sb->num_or("noise_sigma", 0.05);
    sim_options.faults.crash_prob = sb->num_or("fault_crash", 0.0);
    sim_options.faults.straggler_prob = sb->num_or("fault_straggler", 0.0);
    sim_options.faults.straggler_factor =
        sb->num_or("fault_straggler_factor",
                   sim_options.faults.straggler_factor);
    sim_options.faults.mem_pressure_prob =
        sb->num_or("fault_mem_pressure", 0.0);
    sim_options.faults.mem_pressure_headroom =
        sb->num_or("fault_mem_headroom",
                   sim_options.faults.mem_pressure_headroom);
    sim_options.faults.copy_fault_prob = sb->num_or("fault_copy", 0.0);
  }
  options.threads = threads;
  options.export_profiles_db = false;

  const Simulator sim(machine, graph, sim_options);
  const SearchResult fresh = info->run(sim, options);

  std::ostringstream os;
  os << "replay of " << label << " journal: " << events.size()
     << " events, " << candidates << " candidate records, "
     << recorded.size() << " incumbent improvements\n";
  if (recorded.size() > 1) {
    std::vector<double> bests;
    bests.reserve(recorded.size());
    for (const auto& [clock, best] : recorded) bests.push_back(best);
    os << "recorded convergence: " << render_sparkline(bests) << " ("
       << format_seconds(bests.front()) << " -> "
       << format_seconds(bests.back()) << ")\n";
  }

  // Cross-check. Journal doubles are %.17g renderings, which round-trip
  // exactly, so the comparison is exact equality — any difference is real
  // drift between the journal and a fresh run of today's code.
  std::vector<std::string> drift;
  if (fresh.trajectory.size() != recorded.size()) {
    drift.push_back("incumbent count: recorded " +
                    std::to_string(recorded.size()) + ", fresh run " +
                    std::to_string(fresh.trajectory.size()));
  } else {
    for (std::size_t i = 0; i < recorded.size(); ++i) {
      if (fresh.trajectory[i].search_time_s != recorded[i].first ||
          fresh.trajectory[i].best_exec_s != recorded[i].second) {
        drift.push_back(
            "incumbent #" + std::to_string(i) + ": recorded (" +
            format_seconds(recorded[i].first) + ", " +
            format_seconds(recorded[i].second) + "), fresh run (" +
            format_seconds(fresh.trajectory[i].search_time_s) + ", " +
            format_seconds(fresh.trajectory[i].best_exec_s) + ")");
        break;
      }
    }
  }
  const double recorded_best = fin->wide_num_or("best", kInf);
  if (fresh.best_seconds != recorded_best) {
    drift.push_back("final best: recorded " +
                    format_seconds(recorded_best) + ", fresh run " +
                    format_seconds(fresh.best_seconds));
  }
  const std::string recorded_winner = fin->str_or("winner", "");
  if (fresh.best.serialize() != recorded_winner)
    drift.push_back("winning mapping differs from the recorded one");

  ReplayOutcome outcome;
  outcome.drift = !drift.empty();
  if (outcome.drift) {
    os << "cross-check: DRIFT DETECTED\n";
    for (const std::string& d : drift) os << "  " << d << "\n";
  } else {
    os << "cross-check: no drift — " << recorded.size()
       << " incumbents, final best and winning mapping all match the "
          "fresh run\n";
  }
  outcome.rendering = os.str();
  return outcome;
}

}  // namespace automap
