#pragma once

// Execution observability (ROADMAP: make mapping decisions explainable).
//
// The simulator's trace buffer (ExecutionReport::trace) records every task
// wave and copy leg with its resource, start and duration; this module
// digests that buffer into the quantities the paper's analysis sections
// (§5, Figs. 6-8) reason about: per-resource utilization/occupancy (proc
// pools, intra-node channels, the shared interconnect), a per-task time
// breakdown (compute vs launch overhead vs runtime overhead vs copy wait),
// and the critical path through the recorded events — the chain of
// back-to-back activities that ends at the makespan and explains why the
// run is no faster.

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/report.hpp"
#include "src/support/id.hpp"
#include "src/taskgraph/task_graph.hpp"

namespace automap {

/// Busy accounting of one trace resource row over the whole run.
struct ResourceUsage {
  /// Trace resource label ("GPU pool", "channel Sys-FB", "network").
  std::string resource;
  /// True for processor pools, false for copy channels / the interconnect.
  bool is_processor = false;
  /// Sum of event durations on this resource (seconds). Events on one
  /// resource never overlap (the simulator serializes each pool and
  /// channel), so busy_seconds <= makespan.
  double busy_seconds = 0.0;
  /// Number of events recorded on this resource.
  std::size_t events = 0;
  /// busy_seconds / makespan, in [0, 1].
  double utilization = 0.0;
  /// Bytes moved through this resource (copies only; 0 for pools).
  std::uint64_t bytes = 0;
};

/// Per-iteration time breakdown of one group task.
struct TaskTimeBreakdown {
  TaskId task;
  ProcKind proc = ProcKind::kCpu;
  /// Total pool busy time per iteration (= TaskReport::compute_seconds).
  double busy_seconds = 0.0;
  /// Pure compute + memory-access share (busy minus the overhead terms).
  double compute_seconds = 0.0;
  /// Per-wave launch overhead share.
  double launch_overhead_seconds = 0.0;
  /// Mapping-independent per-launch runtime cost share.
  double runtime_overhead_seconds = 0.0;
  /// Time blocked on incoming copies before the pool could start.
  double copy_wait_seconds = 0.0;
};

/// One step of the extracted critical path (chronological order).
struct CriticalPathStep {
  TraceEvent::Kind kind = TraceEvent::Kind::kTask;
  std::string name;
  std::string resource;
  int iteration = 0;
  double start_s = 0.0;
  double duration_s = 0.0;
};

struct ExecutionProfile {
  double makespan_s = 0.0;
  int iterations = 0;

  /// Sorted by busy time, descending.
  std::vector<ResourceUsage> resources;
  /// Sorted by busy time, descending.
  std::vector<TaskTimeBreakdown> tasks;

  /// Chain of back-to-back events ending at the makespan: each step starts
  /// exactly when its predecessor ends (the simulator's start = max(ready,
  /// busy) guarantees such a predecessor exists down to t = 0).
  std::vector<CriticalPathStep> critical_path;
  /// End-to-end span of the chain (last end - first start). When the chain
  /// reaches back to t = 0 this equals the makespan.
  double critical_path_s = 0.0;
  /// Span split by what the path was doing.
  double critical_task_s = 0.0;
  double critical_copy_s = 0.0;

  /// Injected-fault attribution (zero without fault injection): kFault
  /// annotation events in the trace and the simulated seconds they lost
  /// (crash re-execution, straggler inflation, copy re-issue). Fault events
  /// overlap the tasks/copies they annotate, so they are excluded from the
  /// busy accounting and the critical path above.
  std::size_t fault_events = 0;
  double fault_lost_s = 0.0;
};

/// Digests a traced execution report. Requires report.ok and a non-empty
/// trace (run the simulator with SimOptions::record_trace).
[[nodiscard]] ExecutionProfile compute_profile(const TaskGraph& graph,
                                               const ExecutionReport& report);

/// Human-readable rendering: utilization table, per-task breakdown of the
/// hottest tasks, and the critical path.
[[nodiscard]] std::string render_profile(const TaskGraph& graph,
                                         const ExecutionProfile& profile);

}  // namespace automap
