#pragma once

// Offline consumers of the provenance journal (docs/file_formats.md):
//
//   render_explain — per-decision provenance. Replays the accepted-move
//   chain of a journal onto the recorded starting mapping (verifying the
//   recorded mapping hashes along the way) and renders, for every task and
//   every collection argument, the final (distribution, processor, memory)
//   decision together with the accepted move that produced it — its move
//   number, rotation, makespan delta, and, for decisions that were dragged
//   along rather than chosen, the co-location constraint that forced them.
//
//   replay_journal — convergence re-render + drift cross-check. Re-renders
//   the search telemetry (counters, rotations, incumbent sparkline) purely
//   from the journal, then reconstructs the recorded search configuration,
//   reruns the search journal-free, and compares the fresh incumbent
//   trajectory, final best, and winning mapping against the recorded ones.
//   Any difference means the journal and the code have drifted apart.

#include <string>

#include "src/machine/machine.hpp"
#include "src/taskgraph/task_graph.hpp"

namespace automap {

/// Renders decision provenance for the journal's best finalized search
/// segment. Throws Error on malformed journals, schema-version mismatches,
/// or when a recorded post-move mapping hash disagrees with the replayed
/// chain (a corrupted or hand-edited journal).
[[nodiscard]] std::string render_explain(const TaskGraph& graph,
                                         const std::string& journal_text);

struct ReplayOutcome {
  /// True when the fresh run disagreed with the journal anywhere.
  bool drift = false;
  /// Human-readable re-rendered telemetry plus the cross-check verdict.
  std::string rendering;
};

/// Reruns the journal's recorded search and cross-checks it. Requires a
/// single-search journal (exactly one search_begin) that was neither
/// resumed nor seeded from a profiles database — those depend on state the
/// journal does not carry. `threads` sets the fresh run's worker count; by
/// contract it cannot change the outcome.
[[nodiscard]] ReplayOutcome replay_journal(const MachineModel& machine,
                                           const TaskGraph& graph,
                                           const std::string& journal_text,
                                           int threads = 1);

}  // namespace automap
