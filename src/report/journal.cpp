#include "src/report/journal.hpp"

#include "src/support/error.hpp"
#include "src/support/json.hpp"

namespace automap {

Journal::Journal() : out_(&buffer_) {
  event("journal").integer("version", kJournalVersion);
}

Journal::Journal(const std::string& path)
    : path_(path), file_(path, std::ios::trunc), out_(&file_) {
  AM_REQUIRE(file_.good(), "cannot open journal for writing: " + path);
  event("journal").integer("version", kJournalVersion);
}

Journal::Event::Event(Journal* journal, std::string_view type)
    : journal_(journal) {
  line_ = "{\"n\":" + std::to_string(journal_->next_sequence_++) +
          ",\"type\":\"" + std::string(type) + "\"";
  if (journal_->rotation_ >= 0) {
    line_ += ",\"rot\":" + std::to_string(journal_->rotation_);
  }
  if (journal_->position_ >= 0) {
    line_ += ",\"pos\":" + std::to_string(journal_->position_);
    line_ += ",\"task\":" + std::to_string(journal_->task_);
  }
}

Journal::Event::~Event() {
  line_ += "}";
  journal_->commit(line_);
}

Journal::Event& Journal::Event::str(std::string_view key,
                                    std::string_view value) {
  line_ += ",\"" + std::string(key) + "\":\"" + json_escape(value) + "\"";
  return *this;
}

Journal::Event& Journal::Event::num(std::string_view key, double value) {
  line_ += ",\"" + std::string(key) + "\":" + json_double(value);
  return *this;
}

Journal::Event& Journal::Event::integer(std::string_view key,
                                        long long value) {
  line_ += ",\"" + std::string(key) + "\":" + std::to_string(value);
  return *this;
}

Journal::Event& Journal::Event::boolean(std::string_view key, bool value) {
  line_ += ",\"" + std::string(key) + "\":" + (value ? "true" : "false");
  return *this;
}

Journal::Event& Journal::Event::raw(std::string_view key,
                                    std::string_view json) {
  line_ += ",\"" + std::string(key) + "\":" + std::string(json);
  return *this;
}

Journal::Event Journal::event(std::string_view type) {
  return Event(this, type);
}

void Journal::set_rotation(int rotation) { rotation_ = rotation; }

void Journal::set_coordinate(int position, int task) {
  position_ = position;
  task_ = task;
}

void Journal::clear_coordinate() {
  position_ = -1;
  task_ = -1;
}

void Journal::clear_cursor() {
  rotation_ = -1;
  clear_coordinate();
}

std::string Journal::text() const {
  AM_REQUIRE(path_.empty(), "text() is only available on in-memory journals");
  return buffer_.str();
}

void Journal::flush() { out_->flush(); }

void Journal::commit(const std::string& line) {
  *out_ << line << '\n';
}

}  // namespace automap
