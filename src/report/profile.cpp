#include "src/report/profile.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "src/sim/ready_wheel.hpp"
#include "src/support/error.hpp"
#include "src/support/format.hpp"
#include "src/support/table.hpp"

namespace automap {

namespace {

/// A resource is a processor pool iff the simulator labeled it "<kind> pool".
bool is_pool_resource(const std::string& resource) {
  return resource.size() >= 4 &&
         resource.compare(resource.size() - 4, 4, "pool") == 0;
}

/// Walks the trace backwards from the event that ends last: each step's
/// predecessor is an event ending exactly when the step starts — the
/// simulator computes every start as max(data ready, resource free), both of
/// which are some earlier event's end (or 0), so the chain is gap-free.
std::vector<CriticalPathStep> extract_critical_path(
    const std::vector<TraceEvent>& trace, double makespan) {
  // Order events by end time through the bucketed wheel: end times cluster
  // around the iteration cadence, so distributing them into ~one bucket per
  // event and stable-sorting within buckets beats a global comparison sort —
  // and the wheel's drain is guaranteed byte-identical to the
  // std::stable_sort it replaces.
  BucketedWheel wheel;
  wheel.reset(0.0, makespan, trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i)
    wheel.push(trace[i].start_s + trace[i].duration_s,
               static_cast<std::uint32_t>(i));
  std::vector<std::uint32_t> by_end;
  wheel.drain(by_end);

  const double eps = 1e-9 * std::max(makespan, 1e-12);
  auto end_of = [&](std::size_t i) {
    return trace[i].start_s + trace[i].duration_s;
  };

  std::vector<std::size_t> chain;
  if (trace.empty()) return {};
  std::size_t cur = by_end.back();
  chain.push_back(cur);
  // Each step moves strictly earlier in time, so the chain length is
  // bounded by the trace size; the guard protects against zero-duration
  // event cycles only.
  while (chain.size() <= trace.size()) {
    const double target = trace[cur].start_s;
    if (target <= eps) break;  // reached the start of the run
    // Candidates whose end falls within [target - eps, target + eps]: the
    // longest one is the binding predecessor (ties broken by trace order
    // for determinism).
    auto lo = std::lower_bound(by_end.begin(), by_end.end(), target - eps,
                               [&](std::uint32_t i, double v) {
                                 return end_of(i) < v;
                               });
    std::size_t best = trace.size();
    for (auto it = lo; it != by_end.end() && end_of(*it) <= target + eps;
         ++it) {
      if (*it == cur) continue;
      if (trace[*it].start_s >= target - eps) continue;  // no progress
      if (best == trace.size() ||
          trace[*it].duration_s > trace[best].duration_s)
        best = *it;
    }
    if (best == trace.size()) break;  // start was a plain data-ready gap
    cur = best;
    chain.push_back(cur);
  }

  std::reverse(chain.begin(), chain.end());
  std::vector<CriticalPathStep> path;
  path.reserve(chain.size());
  for (const std::size_t i : chain) {
    const TraceEvent& e = trace[i];
    path.push_back({.kind = e.kind,
                    .name = e.name,
                    .resource = e.resource,
                    .iteration = e.iteration,
                    .start_s = e.start_s,
                    .duration_s = e.duration_s});
  }
  return path;
}

}  // namespace

ExecutionProfile compute_profile(const TaskGraph& graph,
                                 const ExecutionReport& report) {
  AM_REQUIRE(report.ok, "cannot profile a failed run");
  AM_REQUIRE(!report.trace.empty(),
             "report has no trace; run the simulator with "
             "SimOptions::record_trace");
  AM_REQUIRE(report.tasks.size() == graph.num_tasks(),
             "report does not match graph");

  ExecutionProfile p;
  p.makespan_s = report.total_seconds;
  p.iterations = report.iterations;

  // Per-resource busy accounting. Events on one resource never overlap
  // (each pool/channel is a serialized busy-until state in the simulator).
  // kFault annotations overlap the task/copy they describe, so counting
  // them would double-book the resource; they feed the fault attribution
  // totals instead.
  std::map<std::string, ResourceUsage> rows;
  for (const TraceEvent& e : report.trace) {
    if (e.kind == TraceEvent::Kind::kFault) {
      ++p.fault_events;
      p.fault_lost_s += e.duration_s;
      continue;
    }
    ResourceUsage& row = rows[e.resource];
    if (row.events == 0) {
      row.resource = e.resource;
      row.is_processor = is_pool_resource(e.resource);
    }
    row.busy_seconds += e.duration_s;
    row.bytes += e.bytes;
    ++row.events;
  }
  for (auto& [name, row] : rows) {
    row.utilization =
        p.makespan_s > 0.0 ? row.busy_seconds / p.makespan_s : 0.0;
    p.resources.push_back(row);
  }
  std::stable_sort(p.resources.begin(), p.resources.end(),
                   [](const ResourceUsage& a, const ResourceUsage& b) {
                     return a.busy_seconds > b.busy_seconds;
                   });

  // Per-task breakdown from the report's per-iteration averages. The noise
  // multiplier applies to the whole duration while the overhead terms are
  // recorded un-noised, so clamp the residual at zero.
  for (const TaskReport& tr : report.tasks) {
    TaskTimeBreakdown b;
    b.task = tr.task;
    b.proc = tr.proc;
    b.busy_seconds = tr.compute_seconds;
    b.launch_overhead_seconds = tr.launch_overhead_seconds;
    b.runtime_overhead_seconds = tr.runtime_overhead_seconds;
    b.compute_seconds =
        std::max(0.0, tr.compute_seconds - tr.launch_overhead_seconds -
                          tr.runtime_overhead_seconds);
    b.copy_wait_seconds = tr.copy_wait_seconds;
    p.tasks.push_back(b);
  }
  std::stable_sort(p.tasks.begin(), p.tasks.end(),
                   [](const TaskTimeBreakdown& a, const TaskTimeBreakdown& b) {
                     return a.busy_seconds > b.busy_seconds;
                   });

  if (p.fault_events == 0) {
    p.critical_path = extract_critical_path(report.trace, p.makespan_s);
  } else {
    // Fault annotations are not schedulable work; walking through one would
    // corrupt the back-to-back chain. Filter them out first.
    std::vector<TraceEvent> timeline;
    timeline.reserve(report.trace.size() - p.fault_events);
    for (const TraceEvent& e : report.trace)
      if (e.kind != TraceEvent::Kind::kFault) timeline.push_back(e);
    p.critical_path = extract_critical_path(timeline, p.makespan_s);
  }
  if (!p.critical_path.empty()) {
    const CriticalPathStep& last = p.critical_path.back();
    p.critical_path_s =
        last.start_s + last.duration_s - p.critical_path.front().start_s;
    for (const CriticalPathStep& s : p.critical_path) {
      (s.kind == TraceEvent::Kind::kTask ? p.critical_task_s
                                         : p.critical_copy_s) += s.duration_s;
    }
  }
  return p;
}

std::string render_profile(const TaskGraph& graph,
                           const ExecutionProfile& p) {
  std::ostringstream os;
  os << "profile: makespan " << format_seconds(p.makespan_s) << " over "
     << p.iterations << " iterations\n\n";

  os << "resource utilization (busy share of makespan):\n";
  Table resources({"resource", "busy", "util", "events", "bytes"});
  for (const ResourceUsage& r : p.resources) {
    resources.add_row({r.resource, format_seconds(r.busy_seconds),
                       format_fixed(100.0 * r.utilization, 1) + "%",
                       std::to_string(r.events),
                       r.is_processor ? "-" : format_bytes(r.bytes)});
  }
  resources.print(os);

  os << "\nper-task time breakdown (per iteration):\n";
  Table tasks({"task", "proc", "busy", "compute", "launch", "runtime",
               "copy wait"});
  for (const TaskTimeBreakdown& b : p.tasks) {
    tasks.add_row({graph.task(b.task).name, std::string(to_string(b.proc)),
                   format_seconds(b.busy_seconds),
                   format_seconds(b.compute_seconds),
                   format_seconds(b.launch_overhead_seconds),
                   format_seconds(b.runtime_overhead_seconds),
                   format_seconds(b.copy_wait_seconds)});
  }
  tasks.print(os);

  os << "\ncritical path: " << format_seconds(p.critical_path_s) << " ("
     << format_seconds(p.critical_task_s) << " tasks, "
     << format_seconds(p.critical_copy_s) << " copies, "
     << p.critical_path.size() << " steps)\n";
  // The full chain repeats per iteration; show the last iteration's steps.
  const int last_iter =
      p.critical_path.empty() ? 0 : p.critical_path.back().iteration;
  for (const CriticalPathStep& s : p.critical_path) {
    if (s.iteration != last_iter) continue;
    os << "  " << format_fixed(s.start_s, 6) << "s +"
       << format_seconds(s.duration_s) << "  ["
       << (s.kind == TraceEvent::Kind::kTask   ? "task"
           : s.kind == TraceEvent::Kind::kCopy ? "copy"
                                               : "fault")
       << "] " << s.name << " on " << s.resource << "\n";
  }
  if (p.fault_events > 0) {
    os << "\ninjected faults: " << p.fault_events << " events, "
       << format_seconds(p.fault_lost_s) << " lost\n";
  }
  return os.str();
}

}  // namespace automap
