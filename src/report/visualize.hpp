#pragma once

// Mapping and execution visualization.
//
// The paper presents discovered mappings as figures (Figs. 2 and 3): each
// task tagged with its processor kind and each collection argument colored
// by memory kind, with a bar showing the collection's size relative to the
// application's largest. These helpers render the same information as
// monospace text and as Graphviz DOT, and export run timelines in the
// Chrome tracing (about://tracing / Perfetto) JSON format.

#include <string>
#include <vector>

#include "src/mapping/mapping.hpp"
#include "src/search/search.hpp"
#include "src/sim/report.hpp"
#include "src/taskgraph/task_graph.hpp"

namespace automap {

/// Fig. 3-style text rendering: one block per task with processor kind,
/// per-argument memory kind letters (S/Z/F) and relative-size bars.
[[nodiscard]] std::string render_mapping(const TaskGraph& graph,
                                         const Mapping& mapping);

/// Graphviz DOT of the dependence graph under a mapping: task nodes shaped
/// by processor kind, collection argument records colored by memory kind,
/// data edges weighted by transferred bytes (cross-iteration edges dashed).
[[nodiscard]] std::string render_mapping_dot(const TaskGraph& graph,
                                             const Mapping& mapping);

/// Chrome tracing JSON ("traceEvents" array of complete events) of an
/// execution report recorded with SimOptions::record_trace. Resources
/// become rows (tid); durations are exported in microseconds.
[[nodiscard]] std::string render_chrome_trace(const ExecutionReport& report);

/// Same, with the search's incumbent-improvement trajectory overlaid as
/// instant events on a dedicated "search" row (tid 0): each improvement
/// appears at its fraction of the search clock mapped onto the rendered
/// run's duration, tagged with the new best and the simulated search time.
/// An empty trajectory renders identically to the plain overload.
[[nodiscard]] std::string render_chrome_trace(
    const ExecutionReport& report,
    const std::vector<TrajectoryPoint>& trajectory);

}  // namespace automap
