#pragma once

// Mapping and execution visualization.
//
// The paper presents discovered mappings as figures (Figs. 2 and 3): each
// task tagged with its processor kind and each collection argument colored
// by memory kind, with a bar showing the collection's size relative to the
// application's largest. These helpers render the same information as
// monospace text and as Graphviz DOT, and export run timelines in the
// Chrome tracing (about://tracing / Perfetto) JSON format.

#include <string>
#include <vector>

#include "src/mapping/mapping.hpp"
#include "src/search/search.hpp"
#include "src/sim/report.hpp"
#include "src/taskgraph/task_graph.hpp"

namespace automap {

/// Incremental builder for Chrome tracing JSON ("traceEvents" array,
/// displayTimeUnit ms). Callers declare lanes (thread_name metadata rows),
/// then append complete ("X") and instant ("i") events in any order —
/// Perfetto sorts by timestamp. Event names are JSON-escaped by the
/// builder; `args_json` is spliced verbatim as the contents of the event's
/// "args" object, so it must already be valid JSON key/value pairs.
/// Shared by the simulator's execution-trace export and the mapping
/// service's flight-recorder export, so both load side by side.
class ChromeTraceBuilder {
 public:
  /// Names row `tid` in the viewer (emits a thread_name metadata event).
  void lane(int tid, const std::string& name);
  /// Complete event: a bar on row `tid` from ts_us lasting dur_us (µs).
  void complete(int tid, const std::string& name, double ts_us, double dur_us,
                const std::string& args_json = "");
  /// Instant event: a thread-scoped marker on row `tid` at ts_us (µs).
  void instant(int tid, const std::string& name, double ts_us,
               const std::string& args_json = "");
  /// The complete JSON document (single trailing newline).
  [[nodiscard]] std::string str() const;

 private:
  void separator();

  std::string events_;
  bool first_ = true;
};

/// Fig. 3-style text rendering: one block per task with processor kind,
/// per-argument memory kind letters (S/Z/F) and relative-size bars.
[[nodiscard]] std::string render_mapping(const TaskGraph& graph,
                                         const Mapping& mapping);

/// Graphviz DOT of the dependence graph under a mapping: task nodes shaped
/// by processor kind, collection argument records colored by memory kind,
/// data edges weighted by transferred bytes (cross-iteration edges dashed).
[[nodiscard]] std::string render_mapping_dot(const TaskGraph& graph,
                                             const Mapping& mapping);

/// Chrome tracing JSON ("traceEvents" array of complete events) of an
/// execution report recorded with SimOptions::record_trace. Resources
/// become rows (tid); durations are exported in microseconds.
[[nodiscard]] std::string render_chrome_trace(const ExecutionReport& report);

/// Same, with the search's incumbent-improvement trajectory overlaid as
/// instant events on a dedicated "search" row (tid 0): each improvement
/// appears at its fraction of the search clock mapped onto the rendered
/// run's duration, tagged with the new best and the simulated search time.
/// An empty trajectory renders identically to the plain overload.
[[nodiscard]] std::string render_chrome_trace(
    const ExecutionReport& report,
    const std::vector<TrajectoryPoint>& trajectory);

}  // namespace automap
