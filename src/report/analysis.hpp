#pragma once

// Post-run analysis: where did the time go, and why is one mapping faster
// than another? Complements the raw ExecutionReport with per-kind
// breakdowns, hottest-task rankings and the critical path through the
// dependence graph — the quantities a performance engineer (or the paper's
// Fig. 2/3 discussion) reasons about when reading a mapping.

#include <string>
#include <vector>

#include "src/mapping/mapping.hpp"
#include "src/search/evaluator.hpp"
#include "src/sim/report.hpp"
#include "src/taskgraph/task_graph.hpp"

namespace automap {

struct TaskShare {
  TaskId task;
  double seconds = 0.0;
};

struct RunAnalysis {
  double total_seconds = 0.0;
  int iterations = 0;

  /// Per-iteration pool busy time by processor kind.
  double compute_seconds_by_kind[kNumProcKinds] = {0.0, 0.0};
  /// Per-iteration time tasks spent blocked on incoming copies.
  double copy_wait_seconds = 0.0;

  /// Tasks by per-iteration compute time, descending.
  std::vector<TaskShare> hottest_tasks;
  /// Tasks by per-iteration copy wait, descending (zero entries omitted).
  std::vector<TaskShare> most_blocked_tasks;

  /// Longest compute-weighted chain through the same-iteration dependence
  /// graph, and its length — a lower bound on the iteration time no
  /// mapping can beat without changing task costs.
  std::vector<TaskId> critical_path;
  double critical_path_seconds = 0.0;

  std::uint64_t intra_node_copy_bytes = 0;
  std::uint64_t inter_node_copy_bytes = 0;
  double energy_joules = 0.0;
};

/// Digests an execution report. Requires report.ok.
[[nodiscard]] RunAnalysis analyze_run(const TaskGraph& graph,
                                      const ExecutionReport& report);

/// Human-readable rendering of an analysis.
[[nodiscard]] std::string render_analysis(const TaskGraph& graph,
                                          const RunAnalysis& analysis);

/// Explains the performance difference between two runs of the same graph
/// (e.g. default vs AutoMap's mapping): per-task compute/wait deltas and
/// copy-volume changes, largest effects first.
[[nodiscard]] std::string compare_runs(const TaskGraph& graph,
                                       const ExecutionReport& baseline,
                                       const ExecutionReport& improved);

/// Search-progress digest from a read-only evaluator view: proposal and
/// evaluation counters, cache hit rate, the simulated search clock, and the
/// best-so-far trajectory. Reporting code takes the view, never the
/// mutating Evaluator.
[[nodiscard]] std::string render_search_progress(const EvaluatorView& view);

/// Unicode block sparkline of a value series (min flat -> "▁", max ->
/// "█"); empty input renders empty. Shared by the telemetry convergence
/// line and `automap replay`'s offline re-render.
[[nodiscard]] std::string render_sparkline(const std::vector<double>& values);

/// Search telemetry digest of a finished search: counters, profiles-cache
/// hit rate, OOM count, wall vs simulated clocks, a convergence sparkline
/// of the incumbent trajectory, and per-rotation improvement deltas
/// (CCD/CD). The CLI/bench `--telemetry` output. When the search wrote a
/// provenance journal or a metrics dump, pass their paths so the digest
/// points at them.
[[nodiscard]] std::string render_search_telemetry(
    const SearchResult& result, const std::string& journal_path = "",
    const std::string& metrics_path = "");

}  // namespace automap
