#include "src/report/visualize.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "src/support/error.hpp"
#include "src/support/format.hpp"

namespace automap {

namespace {

char memory_letter(MemKind k) {
  switch (k) {
    case MemKind::kSystem:
      return 'S';
    case MemKind::kZeroCopy:
      return 'Z';
    case MemKind::kFrameBuffer:
      return 'F';
  }
  AM_UNREACHABLE("bad MemKind");
}

const char* memory_color(MemKind k) {
  // The paper's Fig. 3 palette: red = Zero-Copy, black = Frame-Buffer,
  // yellow = System.
  switch (k) {
    case MemKind::kSystem:
      return "gold";
    case MemKind::kZeroCopy:
      return "indianred1";
    case MemKind::kFrameBuffer:
      return "gray20";
  }
  AM_UNREACHABLE("bad MemKind");
}

/// Escapes a string for a DOT label.
std::string dot_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\' || c == '{' || c == '}' || c == '|' ||
        c == '<' || c == '>')
      out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Default iostream formatting (up to 6 significant digits) — the
/// formatting the trace exporter has always used for timestamps.
std::string trace_number(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

void ChromeTraceBuilder::separator() {
  if (!first_) events_ += ",";
  first_ = false;
}

void ChromeTraceBuilder::lane(int tid, const std::string& name) {
  separator();
  events_ += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
             std::to_string(tid) + ",\"args\":{\"name\":\"" +
             json_escape(name) + "\"}}";
}

void ChromeTraceBuilder::complete(int tid, const std::string& name,
                                  double ts_us, double dur_us,
                                  const std::string& args_json) {
  separator();
  events_ += "{\"name\":\"" + json_escape(name) +
             "\",\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(tid) +
             ",\"ts\":" + trace_number(ts_us) +
             ",\"dur\":" + trace_number(dur_us) + ",\"args\":{" + args_json +
             "}}";
}

void ChromeTraceBuilder::instant(int tid, const std::string& name,
                                 double ts_us,
                                 const std::string& args_json) {
  separator();
  events_ += "{\"name\":\"" + json_escape(name) +
             "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" +
             std::to_string(tid) + ",\"ts\":" + trace_number(ts_us) +
             ",\"args\":{" + args_json + "}}";
}

std::string ChromeTraceBuilder::str() const {
  return "{\"traceEvents\":[" + events_ + "],\"displayTimeUnit\":\"ms\"}\n";
}

std::string render_mapping(const TaskGraph& graph, const Mapping& mapping) {
  std::uint64_t largest = 1;
  for (const Collection& c : graph.collections())
    largest = std::max(largest, graph.collection_bytes(c.id));

  std::ostringstream os;
  os << "legend: [S]=System [Z]=ZeroCopy [F]=FrameBuffer; bar = collection "
        "size relative to the largest ("
     << format_bytes(largest) << ")\n\n";

  constexpr int kBarWidth = 24;
  for (const GroupTask& task : graph.tasks()) {
    const TaskMapping& tm = mapping.at(task.id);
    os << task.name << "  [" << to_string(tm.proc) << "]"
       << (tm.distribute ? (tm.blocked ? " blocked" : " distributed")
                         : " leader-only")
       << " x" << task.num_points << "\n";
    for (std::size_t a = 0; a < task.args.size(); ++a) {
      const Collection& col = graph.collection(task.args[a].collection);
      const std::uint64_t bytes = graph.collection_bytes(col.id);
      const int fill = std::max(
          1, static_cast<int>(static_cast<double>(bytes) /
                              static_cast<double>(largest) * kBarWidth));
      const MemKind mem = mapping.primary_memory(task.id, a);
      os << "  [" << memory_letter(mem) << "] " << col.name << " ("
         << to_string(task.args[a].privilege) << ", " << format_bytes(bytes)
         << ")\n      |" << std::string(static_cast<std::size_t>(fill), '#')
         << std::string(static_cast<std::size_t>(kBarWidth - fill), '.')
         << "|\n";
    }
  }
  return os.str();
}

std::string render_mapping_dot(const TaskGraph& graph,
                               const Mapping& mapping) {
  std::ostringstream os;
  os << "digraph mapping {\n"
     << "  rankdir=LR;\n"
     << "  node [fontname=\"monospace\"];\n";

  for (const GroupTask& task : graph.tasks()) {
    const TaskMapping& tm = mapping.at(task.id);
    const bool gpu = tm.proc == ProcKind::kGpu;
    os << "  t" << task.id.value() << " [shape=record, style=filled, "
       << "fillcolor=" << (gpu ? "palegreen" : "lightskyblue")
       << ", label=\"{" << dot_escape(task.name) << " ["
       << to_string(tm.proc) << "]";
    for (std::size_t a = 0; a < task.args.size(); ++a) {
      const Collection& col = graph.collection(task.args[a].collection);
      os << "|<a" << a << "> " << dot_escape(col.name) << " : "
         << memory_letter(mapping.primary_memory(task.id, a));
    }
    os << "}\"];\n";
  }

  // Collection legend nodes per memory kind actually used.
  for (const MemKind k : kAllMemKinds) {
    bool used = false;
    for (const GroupTask& task : graph.tasks())
      for (std::size_t a = 0; a < task.args.size(); ++a)
        if (mapping.primary_memory(task.id, a) == k) used = true;
    if (!used) continue;
    os << "  legend_" << memory_letter(k) << " [shape=box, style=filled, "
       << "fillcolor=" << memory_color(k) << ", label=\"" << to_string(k)
       << "\"];\n";
  }

  for (const DependenceEdge& e : graph.edges()) {
    if (!e.carries_data) continue;
    os << "  t" << e.producer.value() << " -> t" << e.consumer.value()
       << " [label=\"" << format_bytes(e.bytes) << "\""
       << (e.cross_iteration ? ", style=dashed" : "") << "];\n";
  }
  os << "}\n";
  return os.str();
}

std::string render_chrome_trace(const ExecutionReport& report) {
  return render_chrome_trace(report, {});
}

std::string render_chrome_trace(
    const ExecutionReport& report,
    const std::vector<TrajectoryPoint>& trajectory) {
  AM_REQUIRE(report.ok, "cannot render a trace of a failed run");
  // Stable row ids per resource.
  std::map<std::string, int> rows;
  for (const TraceEvent& e : report.trace)
    rows.emplace(e.resource, static_cast<int>(rows.size()) + 1);

  ChromeTraceBuilder trace;
  for (const auto& [resource, tid] : rows) trace.lane(tid, resource);
  for (const TraceEvent& e : report.trace) {
    std::string args = "\"iteration\":" + std::to_string(e.iteration) +
                       ",\"kind\":\"" +
                       (e.kind == TraceEvent::Kind::kTask   ? "task"
                        : e.kind == TraceEvent::Kind::kCopy ? "copy"
                                                            : "fault") +
                       "\"";
    if (e.kind == TraceEvent::Kind::kCopy)
      args += ",\"bytes\":" + std::to_string(e.bytes);
    trace.complete(rows.at(e.resource), e.name, e.start_s * 1e6,
                   e.duration_s * 1e6, args);
  }
  if (!trajectory.empty()) {
    // The search clock (simulated hours of candidate evaluation) and the
    // rendered run (one execution, milliseconds) live on different time
    // axes, so incumbent markers are placed proportionally: an improvement
    // at 40% of the search lands at 40% of the rendered run.
    trace.lane(0, "search");
    const double span = trajectory.back().search_time_s;
    for (const TrajectoryPoint& point : trajectory) {
      const double fraction = span > 0.0 ? point.search_time_s / span : 1.0;
      trace.instant(0, "incumbent " + format_seconds(point.best_exec_s),
                    fraction * report.total_seconds * 1e6,
                    "\"best_s\":" + trace_number(point.best_exec_s) +
                        ",\"search_time_s\":" +
                        trace_number(point.search_time_s));
    }
  }
  return trace.str();
}

}  // namespace automap
