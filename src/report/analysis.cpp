#include "src/report/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/support/error.hpp"
#include "src/support/format.hpp"

namespace automap {

namespace {

/// Longest compute-weighted path over the same-iteration subgraph.
/// Weights come from the report's measured per-iteration compute times.
void find_critical_path(const TaskGraph& graph,
                        const std::vector<double>& compute,
                        std::vector<TaskId>& path, double& length) {
  const auto topo = graph.topological_order();
  std::vector<double> dist(graph.num_tasks(), 0.0);
  std::vector<TaskId> pred(graph.num_tasks());

  for (const TaskId t : topo) {
    dist[t.index()] += compute[t.index()];
    for (const DependenceEdge* e : graph.outgoing(t)) {
      if (e->cross_iteration) continue;
      if (dist[t.index()] > dist[e->consumer.index()]) {
        dist[e->consumer.index()] = dist[t.index()];
        pred[e->consumer.index()] = t;
      }
    }
  }

  TaskId tail;
  length = -1.0;
  for (std::size_t i = 0; i < graph.num_tasks(); ++i) {
    if (dist[i] > length) {
      length = dist[i];
      tail = TaskId(i);
    }
  }
  path.clear();
  for (TaskId t = tail; t.valid(); t = pred[t.index()]) {
    path.push_back(t);
    if (!pred[t.index()].valid()) break;
  }
  std::reverse(path.begin(), path.end());
}

}  // namespace

RunAnalysis analyze_run(const TaskGraph& graph,
                        const ExecutionReport& report) {
  AM_REQUIRE(report.ok, "cannot analyze a failed run");
  AM_REQUIRE(report.tasks.size() == graph.num_tasks(),
             "report does not match graph");

  RunAnalysis a;
  a.total_seconds = report.total_seconds;
  a.iterations = report.iterations;
  a.intra_node_copy_bytes = report.intra_node_copy_bytes;
  a.inter_node_copy_bytes = report.inter_node_copy_bytes;
  a.energy_joules = report.energy_joules;

  std::vector<double> compute(graph.num_tasks(), 0.0);
  for (const TaskReport& tr : report.tasks) {
    compute[tr.task.index()] = tr.compute_seconds;
    a.compute_seconds_by_kind[index_of(tr.proc)] += tr.compute_seconds;
    a.copy_wait_seconds += tr.copy_wait_seconds;
    a.hottest_tasks.push_back({tr.task, tr.compute_seconds});
    if (tr.copy_wait_seconds > 0.0)
      a.most_blocked_tasks.push_back({tr.task, tr.copy_wait_seconds});
  }
  std::stable_sort(a.hottest_tasks.begin(), a.hottest_tasks.end(),
                   [](const TaskShare& x, const TaskShare& y) {
                     return x.seconds > y.seconds;
                   });
  std::stable_sort(a.most_blocked_tasks.begin(), a.most_blocked_tasks.end(),
                   [](const TaskShare& x, const TaskShare& y) {
                     return x.seconds > y.seconds;
                   });

  find_critical_path(graph, compute, a.critical_path,
                     a.critical_path_seconds);
  return a;
}

std::string render_analysis(const TaskGraph& graph,
                            const RunAnalysis& a) {
  std::ostringstream os;
  os << "total " << format_seconds(a.total_seconds) << " over "
     << a.iterations << " iterations ("
     << format_seconds(a.total_seconds / std::max(1, a.iterations))
     << "/iter)\n";
  os << "pool busy/iter: CPU "
     << format_seconds(a.compute_seconds_by_kind[index_of(ProcKind::kCpu)])
     << ", GPU "
     << format_seconds(a.compute_seconds_by_kind[index_of(ProcKind::kGpu)])
     << "\n";
  os << "copies/iter: intra-node " << format_bytes(a.intra_node_copy_bytes)
     << ", inter-node " << format_bytes(a.inter_node_copy_bytes)
     << "; copy wait " << format_seconds(a.copy_wait_seconds) << "/iter\n";
  os << "energy: " << format_fixed(a.energy_joules, 1) << " J\n";

  os << "hottest tasks (compute/iter):\n";
  const std::size_t top =
      std::min<std::size_t>(5, a.hottest_tasks.size());
  for (std::size_t i = 0; i < top; ++i) {
    os << "  " << graph.task(a.hottest_tasks[i].task).name << ": "
       << format_seconds(a.hottest_tasks[i].seconds) << "\n";
  }
  if (!a.most_blocked_tasks.empty()) {
    os << "most copy-blocked tasks (wait/iter):\n";
    const std::size_t blocked =
        std::min<std::size_t>(3, a.most_blocked_tasks.size());
    for (std::size_t i = 0; i < blocked; ++i) {
      os << "  " << graph.task(a.most_blocked_tasks[i].task).name << ": "
         << format_seconds(a.most_blocked_tasks[i].seconds) << "\n";
    }
  }
  os << "critical path (" << format_seconds(a.critical_path_seconds)
     << "/iter):";
  for (const TaskId t : a.critical_path) os << " " << graph.task(t).name;
  os << "\n";
  return os.str();
}

std::string compare_runs(const TaskGraph& graph,
                         const ExecutionReport& baseline,
                         const ExecutionReport& improved) {
  AM_REQUIRE(baseline.ok && improved.ok, "cannot compare failed runs");
  AM_REQUIRE(baseline.tasks.size() == improved.tasks.size() &&
                 baseline.tasks.size() == graph.num_tasks(),
             "reports do not match the graph");

  std::ostringstream os;
  os << "total: " << format_seconds(baseline.total_seconds) << " -> "
     << format_seconds(improved.total_seconds) << " ("
     << format_speedup(baseline.total_seconds / improved.total_seconds)
     << ")\n";

  struct Delta {
    TaskId task;
    double seconds;
  };
  std::vector<Delta> deltas;
  for (std::size_t i = 0; i < graph.num_tasks(); ++i) {
    const double d = (baseline.tasks[i].compute_seconds +
                      baseline.tasks[i].copy_wait_seconds) -
                     (improved.tasks[i].compute_seconds +
                      improved.tasks[i].copy_wait_seconds);
    deltas.push_back({TaskId(i), d});
  }
  std::stable_sort(deltas.begin(), deltas.end(),
                   [](const Delta& x, const Delta& y) {
                     return std::abs(x.seconds) > std::abs(y.seconds);
                   });
  os << "largest per-task changes (compute+wait per iter, + = faster):\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, deltas.size()); ++i) {
    if (deltas[i].seconds == 0.0) break;
    os << "  " << graph.task(deltas[i].task).name << ": "
       << (deltas[i].seconds > 0 ? "+" : "-")
       << format_seconds(std::abs(deltas[i].seconds)) << "\n";
  }

  auto copy_line = [&](const char* label, std::uint64_t before,
                       std::uint64_t after) {
    if (before == after) return;
    os << "  " << label << " copies/iter: " << format_bytes(before) << " -> "
       << format_bytes(after) << "\n";
  };
  copy_line("intra-node", baseline.intra_node_copy_bytes,
            improved.intra_node_copy_bytes);
  copy_line("inter-node", baseline.inter_node_copy_bytes,
            improved.inter_node_copy_bytes);
  return os.str();
}

std::string render_search_progress(const EvaluatorView& view) {
  const SearchStats& stats = view.stats();
  std::ostringstream os;
  os << "search progress: " << stats.suggested << " suggested / "
     << stats.evaluated << " evaluated (" << stats.invalid << " invalid, "
     << stats.oom << " oom, " << stats.cache_hits
     << " cache hits = " << format_fixed(100 * stats.cache_hit_rate(), 0)
     << "%), simulated " << format_seconds(stats.search_time_s) << " ("
     << format_fixed(100 * stats.evaluation_fraction(), 0)
     << "% evaluating)\n";
  if (view.has_best()) {
    os << "best so far: " << format_seconds(view.best_seconds()) << "\n";
  }
  if (!view.trajectory().empty()) {
    os << "trajectory:";
    for (const TrajectoryPoint& p : view.trajectory()) {
      os << " (" << format_fixed(p.search_time_s, 1) << "s, "
         << format_seconds(p.best_exec_s) << ")";
    }
    os << "\n";
  }
  return os.str();
}

std::string render_sparkline(const std::vector<double>& values) {
  static constexpr const char* kBlocks[8] = {"▁", "▂", "▃", "▄",
                                             "▅", "▆", "▇", "█"};
  std::string out;
  if (values.empty()) return out;
  double lo = values.front();
  double hi = values.front();
  for (const double v : values) {
    if (!std::isfinite(v)) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi - lo;
  for (const double v : values) {
    if (!std::isfinite(v)) {
      out += "x";  // failed/unbounded point
      continue;
    }
    const int bucket =
        span > 0.0
            ? std::min(7, static_cast<int>((v - lo) / span * 8.0))
            : 0;
    out += kBlocks[bucket];
  }
  return out;
}

std::string render_search_telemetry(const SearchResult& result,
                                    const std::string& journal_path,
                                    const std::string& metrics_path) {
  const SearchStats& s = result.stats;
  std::ostringstream os;
  os << result.algorithm << " telemetry:\n"
     << "  proposals: " << s.suggested << " suggested, " << s.evaluated
     << " evaluated, " << s.invalid << " invalid, " << s.oom << " oom, "
     << s.censored << " censored\n"
     << "  profiles cache: " << s.cache_hits << " hits / " << s.suggested
     << " lookups (" << format_fixed(100 * s.cache_hit_rate(), 1)
     << "% hit rate)\n"
     << "  clocks: simulated " << format_seconds(s.search_time_s) << " ("
     << format_fixed(100 * s.evaluation_fraction(), 0)
     << "% evaluating), wall " << format_seconds(s.wall_time_s) << "\n";
  if (s.transient_failures > 0 || s.retries > 0 || s.quarantined > 0 ||
      s.degraded) {
    os << "  resilience: " << s.transient_failures << " transient failures, "
       << s.retries << " retries, " << s.quarantined << " quarantined"
       << (s.degraded ? ", DEGRADED result" : "") << "\n";
  }
  if (result.trajectory.size() > 1) {
    // Incumbent best over the search, best-first-seen to final: a falling
    // staircase whose step positions show where the improvements happened.
    std::vector<double> bests;
    bests.reserve(result.trajectory.size());
    for (const TrajectoryPoint& p : result.trajectory)
      bests.push_back(p.best_exec_s);
    os << "  convergence: " << render_sparkline(bests) << " ("
       << bests.size() << " incumbents, "
       << format_seconds(bests.front()) << " -> "
       << format_seconds(bests.back()) << ")\n";
  }
  if (!s.rotations.empty()) {
    os << "  rotations (best before -> after, delta):\n";
    for (const RotationTelemetry& r : s.rotations) {
      os << "    #" << r.rotation << ": ";
      if (std::isinf(r.best_before_s))
        os << "(none)";
      else
        os << format_seconds(r.best_before_s);
      os << " -> " << format_seconds(r.best_after_s) << " (-"
         << format_seconds(r.improvement_s()) << "), " << r.evaluated
         << " evaluated, clock " << format_seconds(r.search_time_s) << "\n";
    }
  }
  if (!journal_path.empty())
    os << "  journal: " << journal_path
       << " (inspect with: automap_cli explain / replay)\n";
  if (!metrics_path.empty()) os << "  metrics: " << metrics_path << "\n";
  return os.str();
}

}  // namespace automap
