#pragma once

// Candidate-mapping evaluator with a profiles database and a batch
// evaluation engine.
//
// This is AutoMap's driver-side measurement machinery (§3, Figure 4): every
// candidate is executed `repeats` times and the mean is recorded; results
// are cached in the profiles database so re-suggested mappings cost nothing
// (the gap between "suggested" and "evaluated" counts in §5.3). Search time
// is accounted in *simulated* seconds — the sum of the candidate runs'
// execution times plus any per-suggestion algorithm overhead — so that the
// Fig. 9 time axis reflects what a real deployment would pay.
//
// Candidate execution dominates search cost (§5.3: 99 % for CCD/CD), and
// Simulator::run is const and seed-parameterized, so the candidates of a
// batch are embarrassingly parallel. evaluate_batch fans them out across a
// thread pool (SearchOptions::threads) and folds results back serially in
// submission order. Every run's noise seed is *derived* from (search seed,
// mapping hash, repeat index) instead of drawn from a shared sequential
// generator, so a run's result does not depend on which thread executed it
// or how many candidates preceded it — the folded statistics, trajectory,
// top-k list and profiles database are bit-identical for every thread
// count, including the serial path.
//
// Incumbent-bounded pruning (SearchOptions::prune_candidates): most
// candidates a hill-climbing search proposes are worse than the incumbent,
// and simulating them to completion only confirms that. evaluate_batch
// fixes a censor threshold T at batch submission — the larger of the
// caller's interest bound and the current k-th best finalist mean — and
// races every executed candidate against it: after k runs the candidate is
// *censored* once its running sum crosses a noise-aware confidence line
// (capped at repeats x T, at which point mean > T is proven outright), and
// each run simulates under a time bound of whatever the line leaves. A
// censored candidate folds to exactly T, is recorded in the profiles
// database with a censored flag (re-executed only if a later batch needs
// it resolved under a looser threshold), and never enters the trajectory
// or the top-k list; an uncensored candidate's mean is exact and provably
// at most T. The censoring arithmetic runs in both modes; the prune flag
// only decides whether the simulator aborts at the line or burns real time
// past it — so results stay bit-identical with pruning on or off, at any
// thread count. The search clock is charged the simulated seconds actually
// consumed up to the line (the cost a real bounded deployment would pay).

#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/mapping/mapping.hpp"
#include "src/search/search.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/thread_pool.hpp"

namespace automap {

class Counter;
class EvaluatorView;
class Gauge;
class Histogram;
class Journal;
class MetricsRegistry;

class Evaluator {
 public:
  Evaluator(const Simulator& sim, const SearchOptions& options);

  /// Proposes a mapping for evaluation. Returns its mean execution time in
  /// seconds; infinity when the mapping is invalid (constraint 1) or runs
  /// out of memory. Cached mappings return instantly without re-execution.
  /// Equivalent to a one-element evaluate_batch.
  ///
  /// `interest_bound_s` declares how slow a candidate may be and still be
  /// useful to the caller (typically the caller's incumbent mean): a
  /// candidate whose mean provably exceeds both the bound and the k-th
  /// finalist mean is censored and returns the censor threshold instead of
  /// an exact mean. Pass infinity (the default) when the exact value
  /// matters — e.g. to seed an incumbent, or for simulated annealing's
  /// acceptance probabilities.
  double evaluate(const Mapping& mapping,
                  double interest_bound_s =
                      std::numeric_limits<double>::infinity());

  /// Batch entry point: pre-executes every not-yet-cached candidate across
  /// the thread pool (one budgeted run sequence per candidate), then folds
  /// results back in submission order, replicating evaluate() exactly — a
  /// candidate sees cache entries created by earlier batch members, and
  /// folding stops once the simulated budget is exhausted (a serial loop
  /// would not have proposed the remaining candidates). The censor
  /// threshold derived from `interest_bound_s` is fixed once at submission,
  /// before any run executes, so it cannot depend on fold order or thread
  /// count. After each fold, `consume(index, mean)` is invoked; returning
  /// false stops the batch and discards the unfolded tail entirely (no
  /// statistics, cache or clock effects), which lets greedy-sequential
  /// searches speculate over candidates whose construction depends on
  /// earlier outcomes. Returns the number of candidates folded.
  std::size_t evaluate_batch(
      std::span<const Mapping> mappings,
      const std::function<bool(std::size_t, double)>& consume,
      double interest_bound_s = std::numeric_limits<double>::infinity());

  /// Convenience overload folding the whole batch (budget permitting):
  /// returns the means of the folded prefix; the result is shorter than
  /// `mappings` iff the budget ran out mid-batch.
  std::vector<double> evaluate_batch(
      std::span<const Mapping> mappings,
      double interest_bound_s = std::numeric_limits<double>::infinity());

  /// Charges algorithm-side overhead (e.g. the ensemble tuner's proposal
  /// machinery) to the search clock without touching evaluation counters.
  void charge_overhead(double seconds);

  /// Records one completed CCD/CD rotation in the telemetry: the best mean
  /// before the rotation vs now, plus the cumulative counters. Deterministic
  /// given the folded statistics, so thread-count invariance is preserved.
  void note_rotation(int rotation, double best_before_s);

  /// True once the simulated search clock passed the configured budget —
  /// or the SearchOptions::cancel token fired (cancellation is delivered
  /// as a budget cut, so every algorithm's existing budget checks double
  /// as cancellation points).
  [[nodiscard]] bool budget_exhausted() const;

  /// True iff the SearchOptions::cancel token is set and fired. Callers
  /// that must distinguish a cancel from a genuine budget cut (e.g. the
  /// service discarding a cancelled job's result) ask this directly.
  [[nodiscard]] bool cancelled() const;

  /// The finalist protocol (§5): re-runs the top-k mappings
  /// `final_repeats` times each (fanned across the pool) and returns the
  /// fastest, charging the reruns to the search clock.
  [[nodiscard]] SearchResult finalize(std::string algorithm_name);

  /// Read-only accessors (best/stats/trajectory/profiles export) live on
  /// EvaluatorView; pass a view to reporting code instead of the mutating
  /// evaluator.
  [[nodiscard]] EvaluatorView view() const;

  /// If memory_fallbacks is on, returns a copy of `mapping` whose argument
  /// priority lists are extended with the remaining addressable memory
  /// kinds in decreasing bandwidth order (§3.1). Otherwise returns the
  /// mapping unchanged.
  [[nodiscard]] Mapping with_fallbacks(const Mapping& mapping) const;

  /// Seeds the database from a previous export. Entries must match the
  /// simulator's graph shape; throws Error on malformed text. Imported
  /// entries do not count as suggested/evaluated.
  void import_profiles(const std::string& text);

  /// Marks the search result degraded (SearchStats::degraded): the caller
  /// determined the fault rate makes further progress unprofilable and is
  /// returning the best-known incumbent instead of throwing.
  void mark_degraded();

  /// Emits the journal's `search_begin` record for this search: the
  /// algorithm label, the full (options, simulator) configuration that
  /// determines the deterministic outcome — everything except the thread
  /// count, which by contract changes nothing — and the serialized starting
  /// mapping. Algorithms call this once before their first proposal; no-op
  /// when no journal is configured.
  void journal_search_begin(std::string_view label, const Mapping& start,
                            bool custom_start = false);

  /// The journal configured in SearchOptions (null when disabled) — the
  /// algorithms emit their own structural events (moves, constraint edges,
  /// rotations) through this.
  [[nodiscard]] Journal* journal() const { return journal_; }

  /// Serializes the evaluator's full mutable state — counters, clock,
  /// trajectory, top-k list, profiles database — for the checkpoint file.
  /// Deterministic (entries sorted by structural hash), so a resumed search
  /// exports a byte-identical profiles database.
  [[nodiscard]] std::string serialize_state() const;
  /// Restores state serialized by serialize_state. Must be called on a
  /// freshly constructed evaluator (before any proposal); throws Error on
  /// malformed text. The wall-clock anchor restarts at zero — wall_time_s
  /// is explicitly excluded from determinism guarantees.
  void restore_state(const std::string& text);

 private:
  friend class EvaluatorView;

  struct Entry {
    Mapping mapping;
    double mean_seconds;
    /// True when mean_seconds is a censored observation: the candidate's
    /// true mean provably exceeds the stored value (the censor threshold
    /// in force when it was recorded) but was never resolved exactly. A
    /// censored entry answers any query whose threshold is at most the
    /// stored value; a looser query re-executes and overwrites it.
    bool censored = false;
    /// True when the candidate was quarantined by the resilience policy:
    /// it failed quarantine_after consecutive repeats (retries included)
    /// and is cached as failed (mean infinity) — never re-run under this
    /// search. Mutually exclusive with censored.
    bool quarantined = false;
  };
  /// Result of one pre-executed simulated run, reduced to what folding
  /// needs (full ExecutionReports would hold per-task vectors per run).
  struct RunOutcome {
    bool ok = false;
    double objective = 0.0;
    double total_seconds = 0.0;
    /// The run's failure (ok == false) was a transient injected fault and
    /// its retry budget is exhausted — the repeat is lost, but the finalist
    /// is not excluded outright the way a deterministic failure excludes.
    bool transient = false;
    /// Simulated seconds consumed by this run *beyond* total_seconds: lost
    /// attempts, retry backoff, and failure observation cost. Charged to
    /// the search clock by the fold; zero in fault-free operation for ok
    /// runs (for failed runs it carries failure_observation_cost(), which
    /// the fold previously added at the call site).
    double charge_s = 0.0;
    int transient_failures = 0;
    int retries = 0;
  };
  /// Result of one candidate's budgeted run sequence.
  struct CandOutcome {
    bool oom = false;
    /// The candidate exhausted its simulated-seconds budget: its true mean
    /// provably exceeds the batch's censor threshold.
    bool censored = false;
    /// Every repeat was lost to transient faults (retries exhausted); the
    /// candidate folds to infinity.
    bool failed = false;
    /// failed via quarantine_after consecutive lost repeats — the candidate
    /// is additionally cached so it is never proposed for execution again.
    bool quarantined = false;
    /// Sum of the objective over the completed (uncensored) runs; unused
    /// when censored or oom.
    double objective_sum = 0.0;
    /// Simulated seconds to charge to the search clock: the full run
    /// totals, clipped at the budget, plus fault losses and retry backoff.
    /// Independent of prune_candidates by construction.
    double charge_s = 0.0;
    /// Repeats that produced a valid observation (== repeats fault-free).
    int survivors = 0;
    int transient_failures = 0;
    int retries = 0;
    /// Per-survivor objective values, recorded only under the robust
    /// aggregations (the mean needs just the sum).
    std::vector<double> objectives;
  };

  /// Deterministic per-(candidate, repeat, attempt) noise seed — the scheme
  /// that makes parallel evaluation order-independent. Attempt 0 is the
  /// original derivation; retries (attempt > 0) mix in the attempt index so
  /// each re-execution sees fresh noise and fresh fault draws.
  [[nodiscard]] std::uint64_t run_seed(std::uint64_t mapping_hash,
                                       int repeat, int attempt,
                                       std::uint64_t salt) const;
  /// Retry backoff charged for attempt `attempt` (0-based): the policy's
  /// quantum (or the machine's restart_overhead) doubled per attempt.
  [[nodiscard]] double retry_backoff(int attempt) const;
  /// Folds a candidate's surviving repeats into one recorded value per the
  /// configured Aggregation. For kMean this is objective_sum / survivors —
  /// bit-identical to the historical objective_sum / repeats when nothing
  /// was lost.
  [[nodiscard]] double aggregate_objective(const CandOutcome& out) const;
  /// Executes one unbounded finalist-protocol run (retrying transient
  /// faults under the resilience policy) and reduces it to a RunOutcome.
  [[nodiscard]] RunOutcome execute_run(const Mapping& candidate,
                                       std::uint64_t hash, int repeat,
                                       SimScratch& scratch) const;
  /// Executes one candidate's `repeats` runs as a race against the censor
  /// threshold: after k runs the candidate is censored once its running sum
  /// crosses a noise-aware confidence line (capped at repeats x threshold,
  /// the exactness bound), and run k executes under a simulated-time bound
  /// of whatever the line leaves. The censoring decision, charge and
  /// objective sum are pure functions of the unbounded run totals and the
  /// threshold, so prune (`bound_runs`) on and off produce identical
  /// outcomes — pruning only skips the simulation work past the line.
  [[nodiscard]] CandOutcome run_candidate(const Mapping& candidate,
                                          std::uint64_t key,
                                          double threshold_s,
                                          bool bound_runs,
                                          SimScratch& scratch) const;
  /// Simulated cost of observing a failed (OOM) evaluation: the runtime
  /// still performs dependence analysis and instance allocation for every
  /// task before aborting, so each failure charges one runtime-overhead
  /// quantum per task to the search clock.
  [[nodiscard]] double failure_observation_cost() const;
  /// Inserts into the top-k finalist list unless an entry with the same
  /// structural hash and mapping is already present (dedupe on import).
  void insert_top(const Mapping& mapping, double mean);
  /// Shared core of import_profiles and restore_state: parses a profiles
  /// section from the stream. When `update_top` is false the top-k list and
  /// incumbent are left untouched (restore_state rebuilds them verbatim
  /// from the checkpoint's own section to preserve tie order).
  void import_profiles_impl(std::istream& is, bool update_top);
  /// Serializes the profiles database (every measured mapping with its
  /// mean) for reuse via SearchOptions::profiles_seed.
  [[nodiscard]] std::string export_profiles() const;

  /// Emits one fold-side `candidate` journal event and updates the
  /// per-candidate metrics. `status` is one of evaluated / cached /
  /// invalid / oom / censored / quarantined. Serial fold side only.
  void journal_candidate(const char* status, double mean,
                         std::uint64_t hash);
  /// Appends a deterministic metrics snapshot to the journal when the
  /// snapshot cadence is due (or `force` is set).
  void journal_metrics_snapshot(bool force);

  const Simulator& sim_;
  SearchOptions options_;
  /// Pool owned by this evaluator (null when options_.threads == 1 or a
  /// shared pool was injected); `pool_` is the one actually used — the
  /// owned pool, the injected SearchOptions::shared_pool, or null for the
  /// zero-synchronization serial path.
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;
  /// One simulation arena per pool lane (index 0 doubles as the serial
  /// path's arena); lanes are exclusive within a parallel_for, so each
  /// arena is touched by one run at a time.
  std::vector<SimScratch> scratches_;
  std::unordered_map<std::uint64_t, Entry> profiles_;
  std::vector<Entry> top_;  // sorted ascending by mean, at most top_k
  double best_seconds_;
  SearchStats stats_;
  std::vector<TrajectoryPoint> trajectory_;
  /// Wall-clock anchor for SearchStats::wall_time_s (simulated vs real).
  std::chrono::steady_clock::time_point wall_start_;

  // Observability handles, cached at construction from SearchOptions
  // (all null when the corresponding facility is disabled). Every update
  // happens on the serial fold side, preserving thread-count invariance.
  Journal* journal_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  Counter* m_suggested_ = nullptr;
  Counter* m_evaluated_ = nullptr;
  Counter* m_invalid_ = nullptr;
  Counter* m_oom_ = nullptr;
  Counter* m_censored_ = nullptr;
  Counter* m_cache_hits_ = nullptr;
  Counter* m_quarantined_ = nullptr;
  Gauge* m_search_clock_ = nullptr;
  Gauge* m_best_seconds_ = nullptr;
  Histogram* m_candidate_mean_ = nullptr;
  /// Folds since the last journal metrics snapshot (cadence counter).
  int folds_since_snapshot_ = 0;
};

/// Read-only window onto an Evaluator for reporting and analysis code: the
/// best mapping so far, counters, the Fig. 9 trajectory and the profiles
/// database export — none of the propose/charge/finalize machinery. Cheap
/// to copy; valid as long as the evaluator it views.
class EvaluatorView {
 public:
  explicit EvaluatorView(const Evaluator& eval) : eval_(&eval) {}

  /// Best mapping so far and its (search-time) mean.
  [[nodiscard]] const Mapping& best() const;
  [[nodiscard]] double best_seconds() const { return eval_->best_seconds_; }
  [[nodiscard]] bool has_best() const { return !eval_->top_.empty(); }

  [[nodiscard]] const SearchStats& stats() const { return eval_->stats_; }
  [[nodiscard]] const std::vector<TrajectoryPoint>& trajectory() const {
    return eval_->trajectory_;
  }

  /// Serialized profiles database for SearchOptions::profiles_seed.
  [[nodiscard]] std::string export_profiles() const {
    return eval_->export_profiles();
  }

 private:
  const Evaluator* eval_;
};

inline EvaluatorView Evaluator::view() const { return EvaluatorView(*this); }

}  // namespace automap
