#pragma once

// Candidate-mapping evaluator with a profiles database.
//
// This is AutoMap's driver-side measurement machinery (§3, Figure 4): every
// candidate is executed `repeats` times and the mean is recorded; results
// are cached in the profiles database so re-suggested mappings cost nothing
// (the gap between "suggested" and "evaluated" counts in §5.3). Search time
// is accounted in *simulated* seconds — the sum of the candidate runs'
// execution times plus any per-suggestion algorithm overhead — so that the
// Fig. 9 time axis reflects what a real deployment would pay.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/mapping/mapping.hpp"
#include "src/search/search.hpp"
#include "src/sim/simulator.hpp"

namespace automap {

class Evaluator {
 public:
  Evaluator(const Simulator& sim, const SearchOptions& options);

  /// Proposes a mapping for evaluation. Returns its mean execution time in
  /// seconds; infinity when the mapping is invalid (constraint 1) or runs
  /// out of memory. Cached mappings return instantly without re-execution.
  double evaluate(const Mapping& mapping);

  /// Charges algorithm-side overhead (e.g. the ensemble tuner's proposal
  /// machinery) to the search clock without touching evaluation counters.
  void charge_overhead(double seconds);

  /// True once the simulated search clock passed the configured budget.
  [[nodiscard]] bool budget_exhausted() const;

  /// Best mapping so far and its (search-time) mean.
  [[nodiscard]] const Mapping& best() const;
  [[nodiscard]] double best_seconds() const { return best_seconds_; }
  [[nodiscard]] bool has_best() const { return !top_.empty(); }

  /// The finalist protocol (§5): re-runs the top-k mappings
  /// `final_repeats` times each and returns the fastest, charging the
  /// reruns to the search clock.
  [[nodiscard]] SearchResult finalize(std::string algorithm_name);

  [[nodiscard]] const SearchStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<TrajectoryPoint>& trajectory() const {
    return trajectory_;
  }

  /// If memory_fallbacks is on, returns a copy of `mapping` whose argument
  /// priority lists are extended with the remaining addressable memory
  /// kinds in decreasing bandwidth order (§3.1). Otherwise returns the
  /// mapping unchanged.
  [[nodiscard]] Mapping with_fallbacks(const Mapping& mapping) const;

  /// Serializes the profiles database (every measured mapping with its
  /// mean) for reuse via SearchOptions::profiles_seed.
  [[nodiscard]] std::string export_profiles() const;
  /// Seeds the database from a previous export. Entries must match the
  /// simulator's graph shape; throws Error on malformed text. Imported
  /// entries do not count as suggested/evaluated.
  void import_profiles(const std::string& text);

 private:
  struct Entry {
    Mapping mapping;
    double mean_seconds;
  };

  const Simulator& sim_;
  SearchOptions options_;
  Rng rng_;
  std::unordered_map<std::uint64_t, Entry> profiles_;
  std::vector<Entry> top_;  // sorted ascending by mean, at most top_k
  double best_seconds_;
  SearchStats stats_;
  std::vector<TrajectoryPoint> trajectory_;
};

}  // namespace automap
