#pragma once

// Additional pluggable search algorithms (§3: "the search algorithms are
// pluggable components that can be replaced"):
//
//  * random search — the classic autotuning floor: uniform valid mappings;
//  * simulated annealing — accepts cost-increasing moves with decaying
//    probability, the standard answer to the local-minimum problem that
//    §4.2 argues CCD solves with coordinated moves instead;
//  * a HEFT-style static list scheduler — representative of the
//    heterogeneous-scheduling line of work the paper contrasts with (§6):
//    it assigns each task to the processor kind minimizing its *static*
//    cost estimate and derives the data placement from the processor
//    choice (one memory per processor), i.e. it never explores the
//    task/data trade-off that motivates AutoMap.

#include "src/search/evaluator.hpp"
#include "src/search/search.hpp"
#include "src/sim/simulator.hpp"

namespace automap {

/// Uniform random sampling of *valid* mappings under a time budget.
[[nodiscard]] SearchResult run_random_search(const Simulator& sim,
                                             const SearchOptions& options);

struct AnnealingConfig {
  /// Initial acceptance temperature as a fraction of the starting cost.
  double initial_temperature = 0.2;
  /// Multiplicative cooling per proposal.
  double cooling = 0.995;
  /// Mutations per proposal.
  int mutations = 2;
};

/// Simulated annealing over the valid-mapping space.
[[nodiscard]] SearchResult run_simulated_annealing(
    const Simulator& sim, const SearchOptions& options,
    const AnnealingConfig& config = {});

/// HEFT-style static mapping: no search at all. Each task goes to the
/// processor kind with the lower static execution estimate (compute +
/// memory traffic from the kind's best memory), its collections to that
/// kind's highest-bandwidth memory. Returned as a degenerate SearchResult
/// so it can be compared alongside the search algorithms.
[[nodiscard]] SearchResult run_heft_static(const Simulator& sim,
                                           const SearchOptions& options);

/// Multi-start CCD (an "improved algorithm" in the direction the paper's
/// §7 leaves open): runs CCD from the standard §4.1 starting point plus
/// `extra_starts` random valid starting points, sharing one profiles
/// database and one finalist pool. Costs proportionally more search time;
/// can escape starting-point bias on rugged instances.
[[nodiscard]] SearchResult run_ccd_multistart(const Simulator& sim,
                                              const SearchOptions& options,
                                              int extra_starts = 2);

}  // namespace automap
