#include "src/search/coordinate_descent.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <functional>
#include <limits>
#include <set>
#include <sstream>
#include <string>

#include "src/io/text_io.hpp"
#include "src/report/journal.hpp"
#include "src/support/durable.hpp"
#include "src/support/error.hpp"
#include "src/support/json.hpp"
#include "src/support/metrics.hpp"

namespace automap {
namespace detail {

OverlapMap build_overlap_map(const TaskGraph& graph,
                             const std::vector<OverlapEdge>& edges,
                             const FrozenTaskSet* frozen) {
  // arg_refs[collection] -> all (task, arg) uses of that collection.
  std::vector<std::vector<ArgRef>> uses(graph.num_collections());
  for (const GroupTask& task : graph.tasks()) {
    if (frozen != nullptr && frozen->contains(task.id)) continue;
    for (std::size_t a = 0; a < task.args.size(); ++a)
      uses[task.args[a].collection.index()].push_back({task.id, a});
  }

  // Adjacency over collections from the active edges (a == b encodes the
  // same-collection coupling across tasks).
  std::vector<std::vector<CollectionId>> adj(graph.num_collections());
  for (const OverlapEdge& e : edges) {
    if (e.a == e.b) {
      adj[e.a.index()].push_back(e.a);
    } else {
      adj[e.a.index()].push_back(e.b);
      adj[e.b.index()].push_back(e.a);
    }
  }

  OverlapMap map(graph.num_tasks());
  for (const GroupTask& task : graph.tasks()) {
    map[task.id.index()].resize(task.args.size());
    for (std::size_t a = 0; a < task.args.size(); ++a) {
      const ArgRef self{task.id, a};
      const CollectionId c = task.args[a].collection;
      std::set<ArgRef> related;
      for (const CollectionId other : adj[c.index()]) {
        for (const ArgRef& ref : uses[other.index()]) {
          if (ref == self) continue;
          related.insert(ref);
        }
      }
      map[task.id.index()][a].assign(related.begin(), related.end());
    }
  }
  return map;
}

Mapping colocation_constraints(const Mapping& f, TaskId t, std::size_t arg,
                               ProcKind k, MemKind r,
                               const OverlapMap& overlap,
                               const TaskGraph& graph,
                               const MachineModel& machine) {
  Mapping fp = f;
  std::set<TaskId> t_check;
  std::set<ArgRef> c_check;

  // Map every argument co-located with (t, arg) to r (Algorithm 2 ll. 4-6).
  t_check.insert(t);
  for (const ArgRef& ref : overlap[t.index()][arg]) {
    fp.set_primary_memory(ref.task, ref.arg, r);
    t_check.insert(ref.task);
  }

  // Fixed point (ll. 7-26). The loop terminates because in the limit every
  // task lands on k and every collection on a k-addressable kind; the guard
  // below only protects against implementation bugs.
  int guard = static_cast<int>(graph.num_collection_args()) * 8 + 64;
  while (!t_check.empty() || !c_check.empty()) {
    AM_CHECK(--guard > 0, "co-location fixed point failed to converge");

    while (!t_check.empty()) {
      const TaskId ti = *t_check.begin();
      t_check.erase(t_check.begin());
      const GroupTask& task_i = graph.task(ti);
      // First pass: does any argument violate constraint 1 under the
      // task's current processor? If so, pull the task to k…
      bool violated = false;
      for (std::size_t ai = 0; ai < task_i.args.size(); ++ai) {
        if (!machine.addressable(fp.at(ti).proc, fp.primary_memory(ti, ai)))
          violated = true;
      }
      if (violated && ti != t) fp.at(ti).proc = k;
      // …then re-check every argument under the (possibly new) processor,
      // so a processor switch cannot orphan arguments scanned earlier.
      for (std::size_t ai = 0; ai < task_i.args.size(); ++ai) {
        if (!machine.addressable(fp.at(ti).proc, fp.primary_memory(ti, ai)))
          c_check.insert({ti, ai});
      }
    }

    while (!c_check.empty()) {
      const ArgRef ref = *c_check.begin();
      c_check.erase(c_check.begin());

      // Arguments co-located with the primary decision must stay on r
      // (Algorithm 2 ll. 17-18). A propagation from a different co-location
      // class may have overwritten them meanwhile, so re-assert r — and
      // pull the task to k when its current processor cannot address r.
      const auto& related = overlap[ref.task.index()][ref.arg];
      const bool tied_to_primary =
          (ref.task == t && ref.arg == arg) ||
          std::find(related.begin(), related.end(), ArgRef{t, arg}) !=
              related.end();
      if (tied_to_primary) {
        fp.set_primary_memory(ref.task, ref.arg, r);
        if (!machine.addressable(fp.at(ref.task).proc, r)) {
          if (ref.task != t) fp.at(ref.task).proc = k;
          t_check.insert(ref.task);
        }
        continue;
      }

      const MemKind m = machine.best_memory_for(fp.at(ref.task).proc);
      fp.set_primary_memory(ref.task, ref.arg, m);
      for (const ArgRef& other : related) {
        if (fp.primary_memory(other.task, other.arg) == m) continue;
        fp.set_primary_memory(other.task, other.arg, m);
        if (!machine.addressable(fp.at(other.task).proc, m))
          t_check.insert(other.task);
        c_check.erase(other);
      }
    }
  }
  return fp;
}

std::vector<TaskId> tasks_by_runtime(const Simulator& sim, const Mapping& f,
                                     std::uint64_t seed) {
  const TaskGraph& graph = sim.graph();
  std::vector<double> runtime(graph.num_tasks(), 0.0);
  const ExecutionReport report = sim.run(f, seed);
  if (report.ok) {
    for (const TaskReport& tr : report.tasks)
      runtime[tr.task.index()] = tr.compute_seconds;
  } else {
    // Fall back to the static CPU cost estimate when profiling fails.
    for (const GroupTask& task : graph.tasks())
      runtime[task.id.index()] =
          task.cost.cpu_seconds_per_point * task.num_points;
  }
  std::vector<TaskId> order;
  order.reserve(graph.num_tasks());
  for (const GroupTask& task : graph.tasks()) order.push_back(task.id);
  std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    return runtime[a.index()] > runtime[b.index()];
  });
  return order;
}

std::vector<ForcedMove> forced_moves(const Mapping& base,
                                     const Mapping& candidate, TaskId t,
                                     std::size_t arg,
                                     const OverlapMap* overlap,
                                     const TaskGraph& graph) {
  std::vector<ForcedMove> out;
  for (const GroupTask& task : graph.tasks()) {
    const TaskId ti = task.id;
    // The primary move sets t's processor itself; every *other* task whose
    // processor changed was pulled by the fixed point's addressability
    // repair.
    if (ti != t && candidate.at(ti).proc != base.at(ti).proc) {
      out.push_back({.task = ti,
                     .proc_change = true,
                     .proc = candidate.at(ti).proc});
    }
    for (std::size_t ai = 0; ai < task.args.size(); ++ai) {
      if (ti == t && ai == arg) continue;  // the primary decision itself
      const MemKind m = candidate.primary_memory(ti, ai);
      if (m == base.primary_memory(ti, ai)) continue;
      bool direct = false;
      if (overlap != nullptr) {
        const auto& related = (*overlap)[t.index()][arg];
        direct = std::find(related.begin(), related.end(),
                           ArgRef{ti, ai}) != related.end();
      }
      out.push_back(
          {.task = ti, .arg = ai, .mem = m, .direct = direct});
    }
  }
  return out;
}

namespace {

/// Collection-argument indices of a task, largest collection first
/// (Algorithm 1 line 14).
std::vector<std::size_t> args_by_size(const TaskGraph& graph,
                                      const GroupTask& task) {
  std::vector<std::size_t> order(task.args.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return graph.collection_bytes(task.args[a].collection) >
                            graph.collection_bytes(task.args[b].collection);
                   });
  return order;
}

/// Builds one candidate of a sweep from the current incumbent.
using CandidateGen = std::function<Mapping(const Mapping&)>;

/// What decision a sweep generator proposes — recorded alongside each
/// generator so the provenance journal can describe the move without
/// re-deriving it from a mapping diff.
struct MoveInfo {
  bool is_dist = false;  // distribution move vs placement move
  bool distribute = false;
  bool blocked = false;
  std::size_t arg = 0;
  ProcKind proc = ProcKind::kCpu;
  MemKind mem = MemKind::kSystem;
};

/// Observability instruments of one CCD/CD run (all null when disabled).
struct CcdInstruments {
  Journal* journal = nullptr;
  Counter* moves_accepted = nullptr;
  Counter* moves_rejected = nullptr;
  Counter* rotations = nullptr;
  Counter* checkpoints = nullptr;
  Gauge* edges_active = nullptr;

  [[nodiscard]] bool active() const {
    return journal != nullptr || moves_accepted != nullptr;
  }
};

/// Context a sweep needs to journal its moves: which coordinate is being
/// optimized and under which (possibly null) co-location map.
struct MoveContext {
  const CcdInstruments* ins = nullptr;
  const Evaluator* eval = nullptr;
  const std::vector<MoveInfo>* infos = nullptr;
  TaskId t;
  const OverlapMap* overlap = nullptr;  // null under plain CD
  const TaskGraph* graph = nullptr;
};

std::string render_forced(const std::vector<ForcedMove>& moves,
                          bool constrained) {
  std::string out = "[";
  for (std::size_t i = 0; i < moves.size(); ++i) {
    const ForcedMove& m = moves[i];
    if (i > 0) out += ",";
    out += "{\"task\":" + std::to_string(m.task.index());
    if (m.proc_change) {
      out += ",\"proc\":\"" + std::string(to_string(m.proc)) + "\"";
      out += ",\"via\":\"addressability\"";
    } else {
      out += ",\"arg\":" + std::to_string(m.arg);
      out += ",\"mem\":\"" + std::string(to_string(m.mem)) + "\"";
      // direct: the argument co-locates with the primary (same or
      // overlapping collection). transitive: dragged by the fixed point
      // through other co-location classes. repair: plain CD's
      // addressability fallback (no constraint graph at all).
      out += m.direct ? ",\"via\":\"colocation\""
                      : (constrained ? ",\"via\":\"transitive\""
                                     : ",\"via\":\"repair\"");
    }
    out += "}";
  }
  out += "]";
  return out;
}

/// Emits one `move` journal event (and bumps the accepted/rejected
/// counters) for the sweep candidate at generator index `g`. Runs inside
/// the serial fold, so ordering and byte-identity are free.
void emit_move(const MoveContext& mc, std::size_t g, const Mapping& base,
               const Mapping& candidate, bool accepted, double mean,
               double incumbent) {
  const CcdInstruments& ins = *mc.ins;
  if (ins.moves_accepted != nullptr) {
    (accepted ? ins.moves_accepted : ins.moves_rejected)->inc();
  }
  if (ins.journal == nullptr) return;
  const MoveInfo& info = (*mc.infos)[g];
  auto ev = ins.journal->event("move");
  ev.str("kind", info.is_dist ? "distribution" : "placement");
  if (info.is_dist) {
    ev.boolean("distribute", info.distribute)
        .boolean("blocked", info.blocked);
  } else {
    ev.integer("arg", static_cast<long long>(info.arg))
        .str("proc", to_string(info.proc))
        .str("mem", to_string(info.mem));
  }
  ev.boolean("accepted", accepted).num("mean", mean);
  if (std::isfinite(mean) && std::isfinite(incumbent)) {
    ev.num("delta", mean - incumbent);
  }
  ev.num("clock", mc.eval->view().stats().search_time_s);
  if (accepted) {
    ev.str("hash", hex_u64(candidate.hash()));
    if (!info.is_dist) {
      ev.raw("forced",
             render_forced(forced_moves(base, candidate, mc.t, info.arg,
                                        mc.overlap, *mc.graph),
                           /*constrained=*/mc.overlap != nullptr));
    }
  }
}

/// One greedy-sequential coordinate sweep (Algorithm 1 ll. 10-24), batched.
/// Semantically identical to the serial loop
///
///   for gen in gens:
///     if budget_exhausted: return
///     candidate = gen(f); pt = evaluate(candidate)
///     if pt < p: f = candidate; p = pt        // TestMapping
///
/// including bit-identical statistics: the whole not-yet-tested tail is
/// built from the current incumbent and submitted as one batch (whose
/// candidate x repeats runs the Evaluator fans across its pool), and the
/// moment a candidate improves the incumbent, folding stops — the tail was
/// speculative, built from a now-stale incumbent, so it is discarded
/// without touching any statistics and rebuilt from the new one.
/// Improvements are rare in a descent sweep, so most batches fold whole.
void batched_sweep(Evaluator& eval, const std::vector<CandidateGen>& gens,
                   Mapping& f, double& p,
                   const MoveContext* mc = nullptr) {
  std::size_t next = 0;
  while (next < gens.size()) {
    if (eval.budget_exhausted()) return;
    std::vector<Mapping> batch;
    batch.reserve(gens.size() - next);
    for (std::size_t i = next; i < gens.size(); ++i)
      batch.push_back(gens[i](f));

    std::ptrdiff_t improved = -1;
    double improved_mean = 0.0;
    // The incumbent mean is the interest bound: a candidate that cannot
    // beat p will be rejected below, so the evaluator may censor it at p
    // (pruning its simulation) without changing any acceptance decision.
    const std::size_t folded = eval.evaluate_batch(
        batch,
        [&](std::size_t i, double mean) {
          const bool accepted = mean < p;
          // Journal the move on the fold side, before the incumbent is
          // updated: `f` is still the pre-move base the forced-move diff
          // needs, and `p` the delta baseline. Discarded speculative tails
          // never reach this point, matching the serial semantics.
          if (mc != nullptr) {
            emit_move(*mc, next + i, f, batch[i], accepted, mean, p);
          }
          if (accepted) {
            improved = static_cast<std::ptrdiff_t>(i);
            improved_mean = mean;
            return false;
          }
          return true;
        },
        /*interest_bound_s=*/p);

    if (improved >= 0) {
      f = std::move(batch[static_cast<std::size_t>(improved)]);
      p = improved_mean;
      next += static_cast<std::size_t>(improved) + 1;
      continue;
    }
    if (folded < batch.size()) return;  // budget ran out mid-batch
    next = gens.size();
  }
}

/// OptimizeTask (Algorithm 1 ll. 10-19): the per-coordinate candidate
/// sweep over distribution, processor and memory kinds, expressed as a
/// generator list so batched_sweep can evaluate it in parallel.
void optimize_task(TaskId t, Mapping& f, double& p, Evaluator& eval,
                   const Simulator& sim, const OverlapMap* overlap,
                   bool search_distribution_strategies,
                   const CcdInstruments* ins = nullptr) {
  const TaskGraph& graph = sim.graph();
  const MachineModel& machine = sim.machine();
  const GroupTask& task = graph.task(t);

  std::vector<CandidateGen> gens;
  std::vector<MoveInfo> infos;  // parallel to gens, journal only

  // Distribution setting. The paper searches only distributed-vs-leader;
  // the extension also proposes a blocked decomposition.
  struct DistOption {
    bool distribute;
    bool blocked;
  };
  std::vector<DistOption> dist_options = {{true, false}, {false, false}};
  if (search_distribution_strategies)
    dist_options.insert(dist_options.begin() + 1, {true, true});
  for (const DistOption d : dist_options) {
    gens.push_back([t, d](const Mapping& base) {
      Mapping candidate = base;
      candidate.at(t).distribute = d.distribute;
      candidate.at(t).blocked = d.blocked;
      return candidate;
    });
    infos.push_back({.is_dist = true,
                     .distribute = d.distribute,
                     .blocked = d.blocked});
  }

  // Processor kind x per-collection memory kind.
  for (const ProcKind k : machine.proc_kinds()) {
    if (k == ProcKind::kGpu && !task.cost.has_gpu_variant()) continue;
    for (const std::size_t a : args_by_size(graph, task)) {
      for (const MemKind r : machine.memories_addressable_by(k)) {
        gens.push_back([t, k, a, r, overlap, &task, &graph,
                        &machine](const Mapping& base) {
          Mapping candidate = base;
          candidate.at(t).proc = k;
          candidate.set_primary_memory(t, a, r);
          if (overlap != nullptr) {
            candidate = detail::colocation_constraints(
                candidate, t, a, k, r, *overlap, graph, machine);
          } else {
            // Plain CD: repair the task's other arguments so the processor
            // switch yields an executable mapping (the runtime's fallback).
            for (std::size_t other = 0; other < task.args.size(); ++other) {
              if (other == a) continue;
              if (!machine.addressable(k,
                                       candidate.primary_memory(t, other)))
                candidate.set_primary_memory(t, other,
                                             machine.best_memory_for(k));
            }
          }
          return candidate;
        });
        infos.push_back({.arg = a, .proc = k, .mem = r});
      }
    }
  }

  if (ins != nullptr && ins->active()) {
    const MoveContext mc{.ins = ins,
                         .eval = &eval,
                         .infos = &infos,
                         .t = t,
                         .overlap = overlap,
                         .graph = &graph};
    batched_sweep(eval, gens, f, p, &mc);
  } else {
    batched_sweep(eval, gens, f, p);
  }
}

/// A parsed CCD/CD checkpoint: where the killed search stood. Checkpoints
/// are always *pre-finalize* states that an uninterrupted run passes
/// through, so resuming replays the remaining rotations and the finalist
/// protocol deterministically — the resumed SearchResult is bit-identical
/// to the uninterrupted one (wall_time_s excepted).
struct ResumePoint {
  int rotation = 0;
  std::size_t position = 0;  // index into `order`; 0 = rotation start
  double best_before = std::numeric_limits<double>::infinity();
  double incumbent_mean = std::numeric_limits<double>::infinity();
  std::vector<TaskId> order;  // the rotation's coordinate order, mid-rotation
  std::string evaluator_state;
};

/// Durably publishes a checkpoint: rotation/position cursor, the
/// rotation's coordinate order (mid-rotation), the incumbent mapping, and
/// the evaluator's full state. save_checksummed gives write-temp + fsync
/// + rename + dir fsync (the previous checkpoint survives a mid-write
/// death, even across power loss) and appends the checksum trailer that
/// lets a resuming reader tell a torn checkpoint from a complete one.
void write_checkpoint(const std::string& path, const char* algorithm,
                      int rotation, std::size_t position, double best_before,
                      double incumbent_mean,
                      const std::vector<TaskId>& order, const Mapping& f,
                      const Evaluator& eval) {
  std::ostringstream os;
  os.precision(17);
  os << "automap-checkpoint 1\n";
  os << "algorithm " << algorithm << "\n";
  os << "rotation " << rotation << "\n";
  os << "position " << position << "\n";
  os << "best_before " << best_before << "\n";
  os << "incumbent_mean " << incumbent_mean << "\n";
  os << "order " << (position > 0 ? order.size() : 0);
  if (position > 0)
    for (const TaskId t : order) os << " " << t.index();
  os << "\n";
  os << f.serialize();
  os << eval.serialize_state();
  save_checksummed(path, os.str(), "checkpoint");
}

/// Parses a checkpoint produced by write_checkpoint. The mapping is parsed
/// into `f`; the evaluator-state tail is returned verbatim for
/// Evaluator::restore_state.
ResumePoint parse_checkpoint(const std::string& text, const char* algorithm,
                             const TaskGraph& graph, Mapping& f) {
  std::istringstream is(text);
  std::string line;
  const auto field = [&is, &line](const char* head) {
    AM_REQUIRE(std::getline(is, line) &&
                   line.rfind(std::string(head) + " ", 0) == 0,
               "malformed checkpoint: expected '" + std::string(head) + "'");
    return line.substr(std::string(head).size() + 1);
  };
  const auto to_d = [](const std::string& t) -> double {
    try {
      return std::stod(t);
    } catch (const std::exception&) {
      throw Error("malformed number in checkpoint: '" + t + "'");
    }
  };
  AM_REQUIRE(field("automap-checkpoint") == "1",
             "unsupported checkpoint version");
  const std::string label = field("algorithm");
  AM_REQUIRE(label == algorithm,
             "checkpoint was written by " + label + ", cannot resume as " +
                 algorithm);
  ResumePoint rp;
  rp.rotation = static_cast<int>(to_d(field("rotation")));
  rp.position = static_cast<std::size_t>(to_d(field("position")));
  rp.best_before = to_d(field("best_before"));
  rp.incumbent_mean = to_d(field("incumbent_mean"));
  std::istringstream order_is(field("order"));
  std::size_t n_order = 0;
  AM_REQUIRE(static_cast<bool>(order_is >> n_order),
             "malformed order in checkpoint");
  for (std::size_t i = 0; i < n_order; ++i) {
    std::size_t idx = 0;
    AM_REQUIRE(static_cast<bool>(order_is >> idx),
               "truncated order in checkpoint");
    AM_REQUIRE(idx < graph.num_tasks(), "order task out of range");
    rp.order.push_back(TaskId(idx));
  }
  std::string mapping_text;
  for (std::size_t t = 0; t < graph.num_tasks(); ++t) {
    AM_REQUIRE(std::getline(is, line), "truncated mapping in checkpoint");
    mapping_text += line + "\n";
  }
  f = Mapping::parse(mapping_text, graph);
  std::ostringstream tail;
  tail << is.rdbuf();
  rp.evaluator_state = tail.str();
  return rp;
}

SearchResult run_coordinate_descent(const Simulator& sim,
                                    const SearchOptions& options,
                                    bool constrained,
                                    const Mapping* start = nullptr) {
  Evaluator eval(sim, options);
  const TaskGraph& graph = sim.graph();
  const MachineModel& machine = sim.machine();
  const char* algorithm = constrained ? "AM-CCD" : "AM-CD";

  CcdInstruments ins;
  ins.journal = options.journal;
  if (options.metrics != nullptr) {
    MetricsRegistry& m = *options.metrics;
    ins.moves_accepted = m.counter("automap_moves_accepted_total",
                                   "Coordinate moves accepted");
    ins.moves_rejected = m.counter("automap_moves_rejected_total",
                                   "Coordinate moves rejected");
    ins.rotations =
        m.counter("automap_rotations_total", "CCD/CD rotations completed");
    ins.checkpoints =
        m.counter("automap_checkpoints_total", "Checkpoint files written");
    ins.edges_active = m.gauge("automap_constraint_edges_active",
                               "Active co-location constraint edges");
  }

  Mapping f = start != nullptr ? *start
                               : search_starting_point(graph, machine);

  // Resume: restore the evaluator and the rotation cursor from a
  // checkpoint instead of starting fresh. The initial incumbent evaluation
  // is already inside the restored state, so it is skipped.
  const bool resuming = !options.resume_state.empty();
  ResumePoint rp;
  if (resuming) {
    rp = parse_checkpoint(options.resume_state, algorithm, graph, f);
    eval.restore_state(rp.evaluator_state);
  }
  eval.journal_search_begin(algorithm, f, /*custom_start=*/start != nullptr);
  double p = resuming ? rp.incumbent_mean : eval.evaluate(f);

  // The overlap graph C, including same-collection coupling edges (a == b)
  // for collections used by more than one task.
  std::vector<OverlapEdge> edges;
  if (constrained) {
    edges = graph.build_overlap_graph();
    std::vector<int> users(graph.num_collections(), 0);
    for (const GroupTask& task : graph.tasks())
      for (const CollectionUse& use : task.args)
        ++users[use.collection.index()];
    for (const Collection& c : graph.collections())
      if (users[c.id.index()] > 1)
        edges.push_back({c.id, c.id, graph.collection_bytes(c.id)});
    // Prune lightest-first: sort descending and trim the tail.
    std::stable_sort(edges.begin(), edges.end(),
                     [](const OverlapEdge& a, const OverlapEdge& b) {
                       return a.weight_bytes > b.weight_bytes;
                     });
  }
  const std::size_t original_edges = edges.size();
  if (ins.edges_active != nullptr) {
    ins.edges_active->set(static_cast<double>(edges.size()));
  }
  if (ins.journal != nullptr && constrained) {
    std::string rendered = "[";
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (i > 0) rendered += ",";
      rendered += "{\"a\":" + std::to_string(edges[i].a.index()) +
                  ",\"b\":" + std::to_string(edges[i].b.index()) +
                  ",\"bytes\":" +
                  std::to_string(static_cast<long long>(
                      edges[i].weight_bytes)) +
                  "}";
    }
    rendered += "]";
    ins.journal->event("constraint_graph")
        .integer("edges", static_cast<long long>(edges.size()))
        .raw("edge_list", rendered);
  }

  const FrozenTaskSet frozen(options.frozen_tasks, graph.num_tasks());

  const int rotations = constrained ? options.rotations : 1;
  Rng profile_rng(mix64(options.seed) ^ 0x1b873593ULL);

  // Relax the data-movement constraint: drop 1/(N-1) of the lightest
  // edges per rotation so the final rotation runs unconstrained. Resume
  // replay passes quiet=true: the dropped journal events were already
  // written by the run that produced the checkpoint.
  const auto drop_edges = [&](bool quiet) {
    if (!constrained || rotations <= 1) return;
    const std::size_t drop =
        (original_edges + static_cast<std::size_t>(rotations) - 2) /
        static_cast<std::size_t>(rotations - 1);
    const std::size_t keep = edges.size() > drop ? edges.size() - drop : 0;
    const std::size_t dropped = edges.size() - keep;
    edges.resize(keep);
    if (quiet) return;
    if (ins.edges_active != nullptr) {
      ins.edges_active->set(static_cast<double>(edges.size()));
    }
    if (ins.journal != nullptr && dropped > 0) {
      ins.journal->event("edges_pruned")
          .integer("dropped", static_cast<long long>(dropped))
          .integer("remaining", static_cast<long long>(edges.size()));
    }
  };

  // Resume replay: each completed rotation consumed one profiling-seed
  // draw and one edge-drop step; a mid-rotation checkpoint additionally
  // burned the draw of the rotation in flight (its coordinate order is
  // restored from the checkpoint instead of recomputed). Discarding the
  // same draws keeps every later rotation's order identical to the
  // uninterrupted run's.
  const int start_rotation = resuming ? rp.rotation : 0;
  if (resuming) {
    const int draws = start_rotation + (rp.position > 0 ? 1 : 0);
    for (int i = 0; i < draws; ++i) (void)profile_rng.next();
    for (int i = 0; i < start_rotation; ++i) drop_edges(/*quiet=*/true);
  }

  for (int rotation = start_rotation; rotation < rotations; ++rotation) {
    if (eval.budget_exhausted()) break;
    const bool mid_resume =
        resuming && rotation == start_rotation && rp.position > 0;
    const double best_before =
        mid_resume ? rp.best_before : eval.view().best_seconds();

    const detail::OverlapMap overlap =
        detail::build_overlap_map(graph, edges, &frozen);
    const std::vector<TaskId> order =
        mid_resume ? rp.order
                   : detail::tasks_by_runtime(sim, f, profile_rng.next());

    if (ins.journal != nullptr) {
      ins.journal->set_rotation(rotation);
      std::string order_json = "[";
      for (std::size_t i = 0; i < order.size(); ++i) {
        if (i > 0) order_json += ",";
        order_json += std::to_string(order[i].index());
      }
      order_json += "]";
      ins.journal->event("rotation_begin")
          .integer("edges", static_cast<long long>(edges.size()))
          .num("incumbent", p)
          .raw("order", order_json);
    }

    // Counters for the degraded-rotation circuit breaker below.
    const std::size_t evaluated_before = eval.view().stats().evaluated;
    const std::size_t failed_before =
        eval.view().stats().oom + eval.view().stats().quarantined;

    for (std::size_t pos = mid_resume ? rp.position : 0; pos < order.size();
         ++pos) {
      const TaskId t = order[pos];
      if (eval.budget_exhausted()) break;
      if (frozen.contains(t)) continue;  // §3.3 subset search
      if (ins.journal != nullptr) {
        ins.journal->set_coordinate(static_cast<int>(pos),
                                    static_cast<int>(t.index()));
      }
      optimize_task(t, f, p, eval, sim, constrained ? &overlap : nullptr,
                    options.search_distribution_strategies, &ins);
      // Task-boundary checkpoint: every state written here is one the
      // uninterrupted run passes through, so a kill at any moment resumes
      // onto the same trajectory. A budget-cut optimize_task folds only a
      // prefix of its batch — a state no uninterrupted run visits — so the
      // write is skipped once the budget is exhausted.
      if (!options.checkpoint_path.empty() && !eval.budget_exhausted()) {
        write_checkpoint(options.checkpoint_path, algorithm, rotation,
                         pos + 1, best_before, p, order, f, eval);
        if (ins.checkpoints != nullptr) ins.checkpoints->inc();
        if (ins.journal != nullptr) {
          ins.journal->event("checkpoint")
              .integer("at_rotation", rotation)
              .integer("at_position", static_cast<long long>(pos + 1));
        }
        if (options.on_checkpoint)
          options.on_checkpoint(rotation, static_cast<int>(pos + 1));
      }
    }
    if (ins.journal != nullptr) ins.journal->clear_coordinate();
    eval.note_rotation(rotation, best_before);
    if (ins.rotations != nullptr) ins.rotations->inc();

    drop_edges(/*quiet=*/false);

    // Skip the rotation-boundary checkpoint when the budget cut the
    // rotation short: the boundary state would record note_rotation over an
    // incomplete rotation, which an uninterrupted (larger-budget) run never
    // passes through. The last task-boundary checkpoint stays on disk and
    // resumes onto the true trajectory instead.
    if (!options.checkpoint_path.empty() && !eval.budget_exhausted()) {
      write_checkpoint(options.checkpoint_path, algorithm, rotation + 1, 0,
                       best_before, p, order, f, eval);
      if (ins.checkpoints != nullptr) ins.checkpoints->inc();
      if (ins.journal != nullptr) {
        ins.journal->event("checkpoint")
            .integer("at_rotation", rotation + 1)
            .integer("at_position", 0);
      }
      if (options.on_checkpoint) options.on_checkpoint(rotation + 1, 0);
    }

    // Graceful-degradation circuit breaker (fault injection only): when
    // every candidate executed this rotation failed (OOM or quarantined),
    // the fault rate has made rotations unprofilable — stop descending and
    // return the best-known incumbent flagged as degraded rather than
    // burning the remaining rotations on noise.
    if (sim.options().faults.enabled()) {
      const std::size_t d_eval =
          eval.view().stats().evaluated - evaluated_before;
      const std::size_t d_failed = eval.view().stats().oom +
                                   eval.view().stats().quarantined -
                                   failed_before;
      if (d_eval > 0 && d_failed == d_eval) {
        eval.mark_degraded();
        break;
      }
    }
  }

  return eval.finalize(algorithm);
}

}  // namespace
}  // namespace detail

SearchResult run_cd(const Simulator& sim, const SearchOptions& options) {
  return detail::run_coordinate_descent(sim, options, /*constrained=*/false);
}

SearchResult run_ccd(const Simulator& sim, const SearchOptions& options) {
  return detail::run_coordinate_descent(sim, options, /*constrained=*/true);
}

SearchResult run_ccd_from(const Simulator& sim, const SearchOptions& options,
                          const Mapping& start) {
  return detail::run_coordinate_descent(sim, options, /*constrained=*/true,
                                        &start);
}

}  // namespace automap
