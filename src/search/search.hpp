#pragma once

// Common search-layer types: options, statistics, results, and the starting
// point shared by the coordinate-descent algorithms (§4.1).

#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "src/machine/machine.hpp"
#include "src/mapping/mapping.hpp"
#include "src/taskgraph/task_graph.hpp"

namespace automap {

class Journal;
class MetricsRegistry;
class ThreadPool;
struct JsonValue;
struct SimOptions;

/// What the search minimizes (§3.3: execution time by default, but AutoMap
/// is suitable for other metrics such as power/energy).
enum class Objective {
  kExecutionTime,
  kEnergy,
};

/// How the surviving repeats of one candidate fold into its recorded value.
/// The mean is the paper's protocol; a straggler-polluted mean misranks
/// candidates, so under fault injection the robust alternatives resist
/// right-tail outliers. Incumbent-bounded censoring races a running *sum*
/// against the threshold, which is only meaningful for the mean, so the
/// robust aggregations disable censoring.
enum class Aggregation {
  kMean,
  kMedian,
  kTrimmedMean,  ///< Mean with the single min and max repeat dropped.
};

/// How the evaluator responds to transient faults (ExecutionReport::
/// transient): bounded retry, per-candidate quarantine, robust folding.
/// Inert when the simulator's FaultModel is disabled — transient failures
/// then never occur, and the policy's arithmetic reduces to today's exact
/// mean protocol bit for bit.
struct ResiliencePolicy {
  /// Re-attempts per repeat after a transient failure (each with a fresh
  /// derived seed). 0 = a transient failure immediately loses the repeat.
  int max_retries = 2;
  /// Consecutive lost repeats after which the candidate is quarantined:
  /// recorded as failed in the profiles database and never re-run under
  /// this search (the cache answers all later proposals). 0 disables
  /// quarantine (every repeat is still attempted).
  int quarantine_after = 3;
  /// Simulated seconds charged to the search clock per retry, doubling per
  /// attempt (budget-aware backoff, like the existing OOM observation
  /// cost). Negative = use the machine's restart_overhead().
  double retry_backoff_s = -1.0;
  Aggregation aggregation = Aggregation::kMean;
};

struct SearchOptions {
  /// CCD rotations (paper: 5; more cost time without gains, fewer reduce
  /// CCD to CD, §5).
  int rotations = 5;
  /// Runs averaged per candidate evaluation (paper: 7).
  int repeats = 7;
  /// Simulated wall-clock budget for the search; infinity = run to
  /// completion (CCD/CD terminate on their own; the ensemble tuner needs a
  /// budget).
  double time_budget_s = std::numeric_limits<double>::infinity();
  /// Seed for evaluation noise and randomized techniques.
  std::uint64_t seed = 0;
  /// Finalist protocol (§5): the top_k best mappings are re-run
  /// final_repeats times and the fastest mean wins.
  int top_k = 5;
  int final_repeats = 31;
  /// §3.1 generalization: append lower-bandwidth fallback memories to every
  /// argument's priority list so over-capacity choices demote instead of
  /// failing — used by the memory-constrained experiments (Fig. 8).
  bool memory_fallbacks = false;
  /// Metric to minimize. Search *time* accounting always uses execution
  /// time (that is what a real offline search pays), whichever objective
  /// ranks the candidates.
  Objective objective = Objective::kExecutionTime;
  /// Extension beyond the paper (its stated future work): also search the
  /// point-to-node distribution strategy (blocked vs round-robin) of each
  /// group task — the dimension whose absence lets Circuit's custom mapper
  /// win on some inputs (§5 "Results").
  bool search_distribution_strategies = false;
  /// §3.3: the search space may cover "all or a subset of tasks". Tasks
  /// listed here keep their starting-point mapping and are never touched
  /// by any algorithm — how Maestro pins its high-fidelity sample to the
  /// GPUs while only the low-fidelity ensemble is tuned (§5.1).
  std::vector<TaskId> frozen_tasks;
  /// Serialized profiles database from a previous search (Figure 4's
  /// persistent measurement store): candidates already measured return
  /// their cached means without re-execution, so an interrupted or
  /// incremental search resumes cheaply. Produced by
  /// SearchResult::profiles_db.
  std::string profiles_seed;
  /// Worker threads for batch candidate evaluation (simulated runs are
  /// independent per seed, so candidates fan out). Results are
  /// bit-identical for every value; 1 disables the pool, 0 means one lane
  /// per hardware thread.
  int threads = 1;
  /// Incumbent-bounded candidate pruning: bounded simulation aborts a
  /// candidate's runs as soon as it provably cannot beat the caller's
  /// interest bound or displace the current top-k finalists (it is then
  /// *censored* — folded to the censor threshold and cached as such). The
  /// censoring arithmetic and clock charges are applied identically with
  /// the flag off, so the search result — best mapping, counters, simulated
  /// clock, trajectory — is bit-identical either way at any thread count;
  /// the flag only controls whether the simulator skips the wall-clock work
  /// past the bound. Only effective under Objective::kExecutionTime.
  bool prune_candidates = true;
  /// Serialize the profiles database into SearchResult::profiles_db at
  /// finalize. On by default; callers that never reuse the database (e.g.
  /// one-shot benchmark searches) can turn it off — a long search
  /// accumulates tens of thousands of entries, and serializing them can
  /// rival the evaluation work itself.
  bool export_profiles_db = true;
  /// Retry / quarantine / aggregation behaviour under fault injection.
  ResiliencePolicy resilience;
  /// When non-empty, CCD/CD periodically serialize their search state
  /// (incumbent, rotation position, profiles database) to this file —
  /// atomically, so a kill mid-write leaves the previous checkpoint intact.
  std::string checkpoint_path;
  /// Contents of a checkpoint file written via checkpoint_path; when
  /// non-empty, CCD/CD resume from that state instead of starting fresh.
  std::string resume_state;
  /// Provenance journal (src/report/journal.hpp). When set, the algorithms
  /// and the evaluator append typed JSONL events for every decision; the
  /// emission sites all sit on the serial fold side, so the journal is
  /// byte-identical at any `threads` value. Null disables all emission.
  Journal* journal = nullptr;
  /// Metrics registry (src/support/metrics.hpp). When set, the evaluator
  /// and algorithms update counters/gauges/histograms; pair it with
  /// SimOptions::metrics for raw simulator run counts. Null disables.
  MetricsRegistry* metrics = nullptr;
  /// Fold-side cadence (in consumed candidates) at which the evaluator
  /// appends a deterministic metrics snapshot to the journal; rotation
  /// boundaries always snapshot too. <= 0 disables periodic snapshots.
  int journal_snapshot_every = 256;
  /// Service mode: schedule candidate batches on this externally owned
  /// pool instead of constructing a private one (`threads` is then
  /// ignored for pool sizing). Several concurrent searches may share one
  /// pool — results stay bit-identical because folding remains serial per
  /// search. The pool must outlive the search. Runtime wiring, excluded
  /// from the canonical JSON codec like journal/metrics.
  ThreadPool* shared_pool = nullptr;
  /// Priority class for batches submitted to the shared pool (higher
  /// drains first; deficit-round-robin across streams within a class).
  /// Only meaningful with shared_pool; the service maps job priority onto
  /// it.
  int pool_priority = 0;
  /// Fair-share stream id for batches submitted to the shared pool: the
  /// pool interleaves equal-priority batches from different streams
  /// deficit-round-robin instead of draining them in arrival order. The
  /// service uses the job id; 0 (the default) is fine for searches that
  /// never compete. Runtime wiring, excluded from the canonical codec.
  std::uint64_t pool_stream = 0;
  /// Cooperative cancellation token (runtime wiring, excluded from the
  /// canonical JSON codec like shared_pool). When non-null and set, the
  /// evaluator reports the budget as exhausted: the search cuts at the
  /// next fold boundary exactly like a simulated-budget cut, the CCD/CD
  /// loops skip the post-cut checkpoint (leaving the last task-boundary
  /// checkpoint on disk, from which a resume is byte-identical to an
  /// uninterrupted run), and finalize() skips the finalist reruns — the
  /// returned result is partial and meant to be discarded.
  const std::atomic<bool>* cancel = nullptr;
  /// Called right after each checkpoint write with the (rotation,
  /// position) the checkpoint resumes at. Runtime wiring, excluded from
  /// the canonical codec; the service's flight recorder hangs
  /// "checkpointed" markers on a running job's span timeline through it.
  std::function<void(int rotation, int position)> on_checkpoint;
};

/// Canonical JSON codec for the deterministic subset of SearchOptions —
/// everything that decides the search outcome (seed, rotations, repeats,
/// budget, objective, resilience, frozen tasks, …) and nothing that is
/// runtime wiring (threads, pools, journal/metrics pointers, file paths,
/// profile seeds). One encoding serves three consumers: the CLI
/// (--options / --dump-options), the journal's `search_begin` fingerprint
/// and the service wire protocol.
///
/// The rendering is deterministic: fixed field order, %.17g doubles with
/// non-finite values quoted ("inf"), the 64-bit seed as a string. Any
/// incompatible change bumps the leading "schema" field.
inline constexpr int kSearchOptionsSchema = 1;
[[nodiscard]] std::string search_options_to_json(const SearchOptions& o);
/// Strict inverse: starts from defaults, applies present members, throws
/// Error on an unknown key, a mistyped value or an unsupported schema —
/// wire requests are validated by construction.
[[nodiscard]] SearchOptions search_options_from_json(const JsonValue& v);
[[nodiscard]] SearchOptions search_options_from_json(const std::string& text);

/// Same codec for the simulator configuration that travels with a search
/// (iterations, noise, fault model). record_trace / time_bound / metrics
/// stay out: they are runtime wiring, not search identity.
[[nodiscard]] std::string sim_options_to_json(const SimOptions& o);
[[nodiscard]] SimOptions sim_options_from_json(const JsonValue& v);
[[nodiscard]] SimOptions sim_options_from_json(const std::string& text);

/// Indexed frozen-task lookup (§3.3 subset search), built once per search.
/// SearchOptions::frozen_tasks is a plain list; scanning it for every task
/// on every coordinate visit made the membership test O(frozen) on the
/// search's hottest loop, so algorithms build one of these instead.
class FrozenTaskSet {
 public:
  FrozenTaskSet() = default;
  /// Validates that every id is < num_tasks (throws Error otherwise).
  FrozenTaskSet(const std::vector<TaskId>& tasks, std::size_t num_tasks);

  [[nodiscard]] bool contains(TaskId task) const {
    return task.index() < mask_.size() && mask_[task.index()];
  }
  [[nodiscard]] bool empty() const { return count_ == 0; }

 private:
  std::vector<bool> mask_;
  std::size_t count_ = 0;
};

/// One point of the Fig. 9 search-progress curves.
struct TrajectoryPoint {
  double search_time_s = 0.0;
  double best_exec_s = 0.0;
};

/// Telemetry of one CCD/CD rotation: what the rotation started from, what
/// it reached, and what it cost — the per-rotation improvement deltas of
/// the observability layer. Deterministic (derived from folded statistics),
/// so thread-count invariance extends to it.
struct RotationTelemetry {
  int rotation = 0;
  /// Best mean before/after the rotation (infinity before any success).
  double best_before_s = std::numeric_limits<double>::infinity();
  double best_after_s = std::numeric_limits<double>::infinity();
  /// Cumulative evaluated count and simulated clock at rotation end.
  std::size_t evaluated = 0;
  double search_time_s = 0.0;

  [[nodiscard]] double improvement_s() const {
    if (std::isinf(best_before_s) || std::isinf(best_after_s)) return 0.0;
    return best_before_s - best_after_s;
  }
};

struct SearchStats {
  /// Mappings proposed by the algorithm (§5.3: CCD 1941, CD 389, OT 157k).
  std::size_t suggested = 0;
  /// Distinct mappings actually executed (§5.3: 460 / 226 / 273).
  std::size_t evaluated = 0;
  /// Proposals rejected without execution: constraint-1 violations.
  std::size_t invalid = 0;
  /// Executions that failed with an out-of-memory error.
  std::size_t oom = 0;
  /// Executions censored at the batch's censor threshold: the candidate
  /// provably could not beat the incumbent or enter the top-k, so its runs
  /// were cut off at the budget (identical count with pruning on or off —
  /// the flag only decides whether the cut saves wall-clock time).
  std::size_t censored = 0;
  /// Proposals answered from the profiles database without execution (the
  /// "suggested minus evaluated" gap of §5.3, counted directly).
  std::size_t cache_hits = 0;
  /// Injected transient faults observed across all runs (crash / memory
  /// pressure); zero when the FaultModel is disabled.
  std::size_t transient_failures = 0;
  /// Re-attempts issued by the resilience policy (each charged backoff).
  std::size_t retries = 0;
  /// Candidates quarantined after consecutive lost repeats; cached as
  /// failed and never re-run under this search.
  std::size_t quarantined = 0;
  /// The finalist protocol could not profile any finalist (fault rate made
  /// every rotation unprofilable); the result carries the best-known
  /// incumbent instead of a finalist-verified winner.
  bool degraded = false;
  /// Total simulated search time and the share spent executing candidates
  /// (§5.3: 99 % for CCD/CD, 13-45 % for OpenTuner).
  double search_time_s = 0.0;
  double evaluation_time_s = 0.0;
  /// Real (wall-clock) seconds the search took, as opposed to the simulated
  /// clock above. Not deterministic; excluded from invariance checks.
  double wall_time_s = 0.0;
  /// Per-rotation improvement deltas (CCD/CD only; empty otherwise).
  std::vector<RotationTelemetry> rotations;

  [[nodiscard]] double evaluation_fraction() const {
    return search_time_s > 0.0 ? evaluation_time_s / search_time_s : 0.0;
  }
  [[nodiscard]] double cache_hit_rate() const {
    return suggested > 0
               ? static_cast<double>(cache_hits) /
                     static_cast<double>(suggested)
               : 0.0;
  }
};

struct SearchResult {
  std::string algorithm;
  Mapping best;
  /// Mean objective value (seconds, or joules under Objective::kEnergy) of
  /// the winning mapping under the finalist protocol.
  double best_seconds = std::numeric_limits<double>::infinity();
  SearchStats stats;
  std::vector<TrajectoryPoint> trajectory;
  /// Serialized profiles database accumulated by this search; feed it back
  /// via SearchOptions::profiles_seed to resume or refine.
  std::string profiles_db;
};

/// The one-line search summary the CLI prints ("AM-CCD: best mapping …
/// (99% evaluating)"). Shared verbatim by the service result payload so a
/// daemon response is byte-comparable to the one-shot CLI output.
[[nodiscard]] std::string render_search_summary(const SearchResult& result);

/// The §4.1 starting point: group tasks distributed across all nodes, every
/// task with a GPU variant on the GPU, collections in the chosen
/// processor's highest-bandwidth memory (Frame-Buffer for GPU tasks).
[[nodiscard]] Mapping search_starting_point(const TaskGraph& graph,
                                            const MachineModel& machine);

/// Size of the kind-level search space, log2 (the Fig. 5 "Search Space
/// Size" column): distribution x processor kinds per task, memory kinds
/// per collection argument.
[[nodiscard]] double search_space_log2(const TaskGraph& graph,
                                       const MachineModel& machine);

}  // namespace automap
