#include "src/search/ensemble_tuner.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "src/report/journal.hpp"
#include "src/support/error.hpp"

namespace automap {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Uniformly random value of one mapping dimension, ignoring constraints —
/// the tuner has no notion of addressability.
MemKind random_mem(Rng& rng) {
  return kAllMemKinds[rng.uniform_index(kNumMemKinds)];
}
ProcKind random_proc(Rng& rng) {
  return kAllProcKinds[rng.uniform_index(kNumProcKinds)];
}

/// Overwrites `m` (already graph-shaped) with a uniformly random mapping.
/// In-place so the proposal loop reuses one candidate buffer instead of
/// constructing a fresh Mapping per suggestion.
void random_mapping_into(Mapping& m, const TaskGraph& graph, Rng& rng) {
  for (const GroupTask& task : graph.tasks()) {
    TaskMapping& tm = m.at(task.id);
    tm.distribute = rng.bernoulli(0.5);
    tm.blocked = false;
    tm.proc = random_proc(rng);
    for (auto& mem : tm.arg_memories) mem.assign(1, random_mem(rng));
  }
}

/// Mutates `count` random dimensions of a mapping in place.
void mutate(Mapping& m, const TaskGraph& graph, Rng& rng, int count) {
  for (int i = 0; i < count; ++i) {
    const TaskId t(rng.uniform_index(graph.num_tasks()));
    TaskMapping& tm = m.at(t);
    const std::size_t dims = 2 + tm.arg_memories.size();
    const std::size_t dim = rng.uniform_index(dims);
    if (dim == 0) {
      tm.distribute = !tm.distribute;
    } else if (dim == 1) {
      tm.proc = random_proc(rng);
    } else {
      tm.arg_memories[dim - 2] = {random_mem(rng)};
    }
  }
}

/// Uniform crossover of two parents into `child` (assignment reuses the
/// child's existing buffers).
void crossover_into(Mapping& child, const Mapping& a, const Mapping& b,
                    const TaskGraph& graph, Rng& rng) {
  child = a;
  for (const GroupTask& task : graph.tasks()) {
    if (rng.bernoulli(0.5)) child.at(task.id) = b.at(task.id);
  }
}

enum Technique : std::size_t {
  kRandom = 0,
  kHillClimb = 1,
  kGenetic = 2,
  kNumTechniques = 3,
};

/// AUC-bandit technique selector: exploit recent improvement rate, explore
/// proportionally to 1/sqrt(trials).
struct Bandit {
  std::array<double, kNumTechniques> score{};
  std::array<double, kNumTechniques> trials{};

  std::size_t pick(Rng& rng) {
    std::size_t best = 0;
    double best_value = -kInf;
    for (std::size_t i = 0; i < kNumTechniques; ++i) {
      const double exploit =
          trials[i] > 0 ? score[i] / trials[i] : 1.0;
      const double explore = std::sqrt(1.0 / (1.0 + trials[i]));
      const double value = exploit + explore + 0.01 * rng.uniform();
      if (value > best_value) {
        best_value = value;
        best = i;
      }
    }
    return best;
  }

  void reward(std::size_t technique, bool improved) {
    trials[technique] += 1.0;
    if (improved) score[technique] += 1.0;
    // Exponential decay keeps the allocator adaptive.
    for (auto& s : score) s *= 0.995;
  }
};

}  // namespace

SearchResult run_ensemble_tuner(const Simulator& sim,
                                const SearchOptions& options,
                                const EnsembleTunerConfig& config) {
  AM_REQUIRE(config.overhead_per_suggestion_s >= 0.0, "negative overhead");
  Evaluator eval(sim, options);
  const TaskGraph& graph = sim.graph();
  const MachineModel& machine = sim.machine();
  Rng rng(mix64(options.seed) ^ 0x9e2a5cb1d3f7e846ULL);
  Bandit bandit;

  // Elite pool for hill climbing and crossover, seeded with the default
  // starting point so the tuner has at least one valid incumbent.
  std::vector<Mapping> elites;
  elites.push_back(search_starting_point(graph, machine));
  eval.journal_search_begin("AM-OT", elites.front());
  double best = eval.evaluate(elites.front());

  // §3.3 subset search: frozen tasks keep the starting-point decisions.
  // (Copied: the elite pool reallocates as the search progresses.)
  const Mapping start = elites.front();
  auto restore_frozen = [&](Mapping& m) {
    for (const TaskId t : options.frozen_tasks) m.at(t) = start.at(t);
  };

  std::size_t suggestions = 1;
  // Reused proposal buffer: every technique overwrites it fully, and
  // assignment recycles its heap blocks instead of reallocating per
  // suggestion.
  Mapping candidate = elites.front();
  while (!eval.budget_exhausted() &&
         suggestions < config.max_suggestions &&
         eval.view().stats().evaluated < config.max_evaluations) {
    // OpenTuner-style allocation: half the proposals follow the bandit's
    // exploit choice, half are uniform exploration across the ensemble.
    // Exploration keeps feeding the pure-random technique, whose proposals
    // in a constrained space are almost always invalid or duplicates —
    // the source of the paper's 157k-suggested vs 273-evaluated gap.
    const std::size_t technique = rng.bernoulli(0.5)
                                      ? rng.uniform_index(kNumTechniques)
                                      : bandit.pick(rng);

    switch (technique) {
      case kRandom:
        random_mapping_into(candidate, graph, rng);
        break;
      case kHillClimb: {
        candidate = elites[rng.uniform_index(elites.size())];
        mutate(candidate, graph, rng,
               1 + static_cast<int>(rng.uniform_index(3)));
        break;
      }
      case kGenetic: {
        const Mapping& a = elites[rng.uniform_index(elites.size())];
        const Mapping& b = elites[rng.uniform_index(elites.size())];
        crossover_into(candidate, a, b, graph, rng);
        mutate(candidate, graph, rng, 1);
        break;
      }
      default:
        AM_UNREACHABLE("bad technique");
    }

    restore_frozen(candidate);
    ++suggestions;
    eval.charge_overhead(config.overhead_per_suggestion_s);
    // Candidates worse than the tuner's incumbent only need to be known as
    // such: pass `best` as the interest bound so they may be censored. A
    // censored value folds to the censor threshold (>= best), which takes
    // the same not-improved branch below an exact mean would.
    const double value = eval.evaluate(candidate, best);

    const bool improved = value < best;
    if (improved) {
      best = value;
      elites.insert(elites.begin(), candidate);
      if (elites.size() > 8) elites.pop_back();
    } else if (value < kInf && elites.size() < 8) {
      elites.push_back(candidate);
    }
    bandit.reward(technique, improved);
    if (options.journal != nullptr) {
      static constexpr const char* kTechniqueNames[kNumTechniques] = {
          "random", "hill_climb", "genetic"};
      options.journal->event("tune")
          .str("technique", kTechniqueNames[technique])
          .boolean("improved", improved)
          .num("value", value);
    }
  }

  return eval.finalize("AM-OT");
}

}  // namespace automap
