#pragma once

// Coordinate-wise descent (CD, §4.1) and constrained coordinate-wise
// descent (CCD, §4.2; Algorithms 1 and 2 of the paper).
//
// Both optimize one mapping decision at a time — distribution flag, then
// processor kind, then the memory kind of each collection argument — over
// tasks ordered by measured runtime and collections ordered by size. CCD
// additionally runs N rotations of full CD under *co-location constraints*:
// whenever it moves a collection argument to a memory kind, every
// overlapping collection (and every other use of the same collection) moves
// with it, and tasks whose arguments became unaddressable are pulled to the
// new processor kind, iterating to a fixed point (Algorithm 2). After each
// rotation a fraction of the lightest overlap edges is pruned, so the final
// rotation is plain CD. The constraints let CCD make the coordinated
// multi-collection moves that strictly-improving local search cannot (§4.2).

#include "src/search/evaluator.hpp"
#include "src/search/search.hpp"
#include "src/sim/simulator.hpp"

namespace automap {

/// Plain coordinate-wise descent (Algorithm 1 without line 17).
[[nodiscard]] SearchResult run_cd(const Simulator& sim,
                                  const SearchOptions& options);

/// Constrained coordinate-wise descent (Algorithm 1 + Algorithm 2).
[[nodiscard]] SearchResult run_ccd(const Simulator& sim,
                                   const SearchOptions& options);

/// CCD from an explicit starting mapping instead of the §4.1 default
/// (building block for multi-start variants).
[[nodiscard]] SearchResult run_ccd_from(const Simulator& sim,
                                        const SearchOptions& options,
                                        const Mapping& start);

namespace detail {

/// A collection argument of a task: the unit the co-location map indexes.
struct ArgRef {
  TaskId task;
  std::size_t arg = 0;

  bool operator==(const ArgRef&) const = default;
  auto operator<=>(const ArgRef&) const = default;
};

/// The co-location map O (Algorithm 1 line 5): for every collection
/// argument, the arguments it must move together with under the current
/// (partially pruned) overlap graph — other uses of the same collection and
/// uses of overlapping collections.
using OverlapMap = std::vector<std::vector<std::vector<ArgRef>>>;

/// Builds O from the still-active overlap edges. `edges` uses collection
/// ids; same-collection coupling is expressed as an edge with a == b.
/// Arguments of tasks in `frozen` (§3.3 subset search) are excluded from
/// every co-location class — they never co-move.
[[nodiscard]] OverlapMap build_overlap_map(
    const TaskGraph& graph, const std::vector<OverlapEdge>& edges,
    const FrozenTaskSet* frozen = nullptr);

/// Algorithm 2: returns f' = f with (t, arg) mapped to (k, r) and the
/// co-location constraints re-established by fixed-point iteration.
[[nodiscard]] Mapping colocation_constraints(
    const Mapping& f, TaskId t, std::size_t arg, ProcKind k, MemKind r,
    const OverlapMap& overlap, const TaskGraph& graph,
    const MachineModel& machine);

/// Tasks ordered by decreasing measured runtime under mapping `f`
/// (Algorithm 1 line 6); ties and failed profiling runs fall back to the
/// static cost estimate.
[[nodiscard]] std::vector<TaskId> tasks_by_runtime(const Simulator& sim,
                                                   const Mapping& f,
                                                   std::uint64_t seed);

/// One decision an accepted placement move changed *beyond* its primary
/// (t, arg) -> (proc, mem) decision: a co-located argument dragged to the
/// same memory, or a task pulled to the new processor kind because the
/// fixed point left it unable to address its arguments. The provenance
/// journal attaches these to every accepted placement move, and `automap
/// explain` renders them as "forced by co-location with ...".
struct ForcedMove {
  TaskId task;
  /// True: the task's processor changed to `proc` (addressability pull).
  /// False: argument `arg`'s primary memory changed to `mem`.
  bool proc_change = false;
  std::size_t arg = 0;
  ProcKind proc = ProcKind::kCpu;
  MemKind mem = MemKind::kSystem;
  /// The changed argument overlaps the primary (t, arg) directly (same
  /// collection or an overlapping one) — versus a transitive fixed-point
  /// consequence or, under plain CD, an addressability repair.
  bool direct = false;
};

/// Complete diff of an accepted placement move against the pre-move
/// incumbent, the primary decision itself excluded. Deterministic
/// task-major order. `overlap` is the active co-location map (null under
/// plain CD, where every change is an addressability repair).
[[nodiscard]] std::vector<ForcedMove> forced_moves(const Mapping& base,
                                                   const Mapping& candidate,
                                                   TaskId t, std::size_t arg,
                                                   const OverlapMap* overlap,
                                                   const TaskGraph& graph);

}  // namespace detail
}  // namespace automap
