#include "src/search/search.hpp"

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>

#include "src/sim/simulator.hpp"
#include "src/support/error.hpp"
#include "src/support/format.hpp"
#include "src/support/json.hpp"

namespace automap {

FrozenTaskSet::FrozenTaskSet(const std::vector<TaskId>& tasks,
                             std::size_t num_tasks)
    : mask_(num_tasks, false) {
  for (const TaskId t : tasks) {
    AM_REQUIRE(t.index() < num_tasks, "frozen task id out of range");
    if (!mask_[t.index()]) {
      mask_[t.index()] = true;
      ++count_;
    }
  }
}

Mapping search_starting_point(const TaskGraph& graph,
                              const MachineModel& machine) {
  Mapping m(graph);
  for (const GroupTask& task : graph.tasks()) {
    TaskMapping& tm = m.at(task.id);
    tm.distribute = true;
    const bool gpu =
        task.cost.has_gpu_variant() && machine.has_proc_kind(ProcKind::kGpu);
    tm.proc = gpu ? ProcKind::kGpu : ProcKind::kCpu;
    tm.arg_memories.assign(task.args.size(),
                           {machine.best_memory_for(tm.proc)});
  }
  return m;
}

namespace {

const char* aggregation_name(Aggregation a) {
  switch (a) {
    case Aggregation::kMean:
      return "mean";
    case Aggregation::kMedian:
      return "median";
    case Aggregation::kTrimmedMean:
      return "trimmed_mean";
  }
  return "mean";
}

Aggregation parse_aggregation(const std::string& name) {
  if (name == "mean") return Aggregation::kMean;
  if (name == "median") return Aggregation::kMedian;
  if (name == "trimmed_mean") return Aggregation::kTrimmedMean;
  throw Error("unknown aggregation '" + name +
              "' (expected mean|median|trimmed_mean)");
}

/// Strict member decoders: wire requests and journal fingerprints must
/// fail loudly on mistyped values, not silently fall back to defaults.
int json_int(const JsonValue& v, const std::string& key) {
  AM_REQUIRE(v.kind == JsonValue::Kind::kNumber,
             "field '" + key + "' must be a number");
  return static_cast<int>(v.number);
}

bool json_bool(const JsonValue& v, const std::string& key) {
  AM_REQUIRE(v.kind == JsonValue::Kind::kBool,
             "field '" + key + "' must be a boolean");
  return v.boolean;
}

std::string json_str(const JsonValue& v, const std::string& key) {
  AM_REQUIRE(v.kind == JsonValue::Kind::kString,
             "field '" + key + "' must be a string");
  return v.string;
}

/// Doubles that may be non-finite travel as the quoted strings the
/// journal writes ("inf"/"-inf"/"nan"); accept both shapes.
double json_wide(const JsonValue& v, const std::string& key) {
  if (v.kind == JsonValue::Kind::kNumber) return v.number;
  if (v.kind == JsonValue::Kind::kString) {
    if (v.string == "inf") return std::numeric_limits<double>::infinity();
    if (v.string == "-inf") return -std::numeric_limits<double>::infinity();
    if (v.string == "nan") return std::numeric_limits<double>::quiet_NaN();
  }
  throw Error("field '" + key + "' must be a number or \"inf\"/\"-inf\"");
}

std::uint64_t json_u64(const JsonValue& v, const std::string& key) {
  // 64-bit values are written as strings (JSON numbers lose precision past
  // 2^53) but hand-written requests may use plain numbers.
  if (v.kind == JsonValue::Kind::kNumber)
    return static_cast<std::uint64_t>(v.number);
  if (v.kind == JsonValue::Kind::kString) {
    try {
      std::size_t used = 0;
      const std::uint64_t parsed = std::stoull(v.string, &used);
      if (used == v.string.size()) return parsed;
    } catch (const std::exception&) {
    }
  }
  throw Error("field '" + key + "' must be a 64-bit value");
}

void check_schema(const JsonValue& v, const char* what) {
  AM_REQUIRE(v.kind == JsonValue::Kind::kObject,
             std::string(what) + " must be a JSON object");
  const JsonValue* schema = v.find("schema");
  AM_REQUIRE(schema != nullptr, std::string(what) + " is missing 'schema'");
  const int version = json_int(*schema, "schema");
  AM_REQUIRE(version == kSearchOptionsSchema,
             "unsupported " + std::string(what) + " schema " +
                 std::to_string(version) + " (this build speaks " +
                 std::to_string(kSearchOptionsSchema) + ")");
}

}  // namespace

std::string search_options_to_json(const SearchOptions& o) {
  std::string out = "{\"schema\":" + std::to_string(kSearchOptionsSchema);
  out += ",\"seed\":\"" + std::to_string(o.seed) + "\"";
  out += ",\"rotations\":" + std::to_string(o.rotations);
  out += ",\"repeats\":" + std::to_string(o.repeats);
  out += ",\"budget\":" + json_double(o.time_budget_s);
  out += ",\"top_k\":" + std::to_string(o.top_k);
  out += ",\"final_repeats\":" + std::to_string(o.final_repeats);
  out += ",\"objective\":\"";
  out += o.objective == Objective::kEnergy ? "energy" : "time";
  out += "\"";
  out += ",\"fallbacks\":";
  out += o.memory_fallbacks ? "true" : "false";
  out += ",\"distribution_strategies\":";
  out += o.search_distribution_strategies ? "true" : "false";
  out += ",\"prune\":";
  out += o.prune_candidates ? "true" : "false";
  out += ",\"frozen\":[";
  for (std::size_t i = 0; i < o.frozen_tasks.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(o.frozen_tasks[i].index());
  }
  out += "]";
  out += ",\"max_retries\":" + std::to_string(o.resilience.max_retries);
  out += ",\"quarantine_after\":" +
         std::to_string(o.resilience.quarantine_after);
  out += ",\"retry_backoff_s\":" + json_double(o.resilience.retry_backoff_s);
  out += ",\"aggregation\":\"";
  out += aggregation_name(o.resilience.aggregation);
  out += "\"";
  out += ",\"snapshot_every\":" + std::to_string(o.journal_snapshot_every);
  out += "}";
  return out;
}

SearchOptions search_options_from_json(const JsonValue& v) {
  check_schema(v, "SearchOptions");
  SearchOptions o;
  for (const auto& [key, value] : v.object) {
    if (key == "schema") {
      continue;  // validated above
    } else if (key == "seed") {
      o.seed = json_u64(value, key);
    } else if (key == "rotations") {
      o.rotations = json_int(value, key);
    } else if (key == "repeats") {
      o.repeats = json_int(value, key);
    } else if (key == "budget") {
      o.time_budget_s = json_wide(value, key);
    } else if (key == "top_k") {
      o.top_k = json_int(value, key);
    } else if (key == "final_repeats") {
      o.final_repeats = json_int(value, key);
    } else if (key == "objective") {
      const std::string name = json_str(value, key);
      if (name == "time") {
        o.objective = Objective::kExecutionTime;
      } else if (name == "energy") {
        o.objective = Objective::kEnergy;
      } else {
        throw Error("unknown objective '" + name +
                    "' (expected time|energy)");
      }
    } else if (key == "fallbacks") {
      o.memory_fallbacks = json_bool(value, key);
    } else if (key == "distribution_strategies") {
      o.search_distribution_strategies = json_bool(value, key);
    } else if (key == "prune") {
      o.prune_candidates = json_bool(value, key);
    } else if (key == "frozen") {
      AM_REQUIRE(value.kind == JsonValue::Kind::kArray,
                 "field 'frozen' must be an array");
      for (const JsonValue& f : value.array) {
        AM_REQUIRE(f.kind == JsonValue::Kind::kNumber,
                   "field 'frozen' must hold task indices");
        o.frozen_tasks.push_back(TaskId(static_cast<std::size_t>(f.number)));
      }
    } else if (key == "max_retries") {
      o.resilience.max_retries = json_int(value, key);
    } else if (key == "quarantine_after") {
      o.resilience.quarantine_after = json_int(value, key);
    } else if (key == "retry_backoff_s") {
      o.resilience.retry_backoff_s = json_wide(value, key);
    } else if (key == "aggregation") {
      o.resilience.aggregation = parse_aggregation(json_str(value, key));
    } else if (key == "snapshot_every") {
      o.journal_snapshot_every = json_int(value, key);
    } else {
      throw Error("unknown SearchOptions field '" + key + "'");
    }
  }
  return o;
}

SearchOptions search_options_from_json(const std::string& text) {
  return search_options_from_json(parse_json(text));
}

std::string sim_options_to_json(const SimOptions& o) {
  std::string out = "{\"schema\":" + std::to_string(kSearchOptionsSchema);
  out += ",\"iterations\":" + std::to_string(o.iterations);
  out += ",\"noise_sigma\":" + json_double(o.noise_sigma);
  out += ",\"fault_crash\":" + json_double(o.faults.crash_prob);
  out += ",\"fault_straggler\":" + json_double(o.faults.straggler_prob);
  out += ",\"fault_straggler_factor\":" +
         json_double(o.faults.straggler_factor);
  out += ",\"fault_mem_pressure\":" + json_double(o.faults.mem_pressure_prob);
  out += ",\"fault_mem_headroom\":" +
         json_double(o.faults.mem_pressure_headroom);
  out += ",\"fault_copy\":" + json_double(o.faults.copy_fault_prob);
  out += "}";
  return out;
}

SimOptions sim_options_from_json(const JsonValue& v) {
  check_schema(v, "SimOptions");
  SimOptions o;
  for (const auto& [key, value] : v.object) {
    if (key == "schema") {
      continue;
    } else if (key == "iterations") {
      o.iterations = json_int(value, key);
    } else if (key == "noise_sigma") {
      o.noise_sigma = json_wide(value, key);
    } else if (key == "fault_crash") {
      o.faults.crash_prob = json_wide(value, key);
    } else if (key == "fault_straggler") {
      o.faults.straggler_prob = json_wide(value, key);
    } else if (key == "fault_straggler_factor") {
      o.faults.straggler_factor = json_wide(value, key);
    } else if (key == "fault_mem_pressure") {
      o.faults.mem_pressure_prob = json_wide(value, key);
    } else if (key == "fault_mem_headroom") {
      o.faults.mem_pressure_headroom = json_wide(value, key);
    } else if (key == "fault_copy") {
      o.faults.copy_fault_prob = json_wide(value, key);
    } else {
      throw Error("unknown SimOptions field '" + key + "'");
    }
  }
  return o;
}

SimOptions sim_options_from_json(const std::string& text) {
  return sim_options_from_json(parse_json(text));
}

std::string render_search_summary(const SearchResult& result) {
  std::ostringstream os;
  os << result.algorithm << ": best mapping "
     << format_seconds(result.best_seconds) << " after "
     << result.stats.suggested << " suggested / " << result.stats.evaluated
     << " evaluated mappings, simulated "
     << format_seconds(result.stats.search_time_s) << " of search ("
     << format_fixed(100 * result.stats.evaluation_fraction(), 0)
     << "% evaluating)";
  return os.str();
}

double search_space_log2(const TaskGraph& graph, const MachineModel& machine) {
  // The paper's §3.2 estimate P^T * M^C under its simplifying assumption
  // (every task can run on every processor kind, M memories addressable
  // per kind — M = 2 on the machines considered). This reproduces Fig. 5's
  // exponents exactly: 2^(T + C) with two processor kinds.
  const double proc_kinds = static_cast<double>(machine.proc_kinds().size());

  // M: the smallest per-processor-kind addressable-memory count (>= 2 on
  // all machines the paper considers).
  double mems = static_cast<double>(machine.mem_kinds().size());
  for (const ProcKind k : machine.proc_kinds()) {
    mems = std::min(
        mems, static_cast<double>(machine.memories_addressable_by(k).size()));
  }

  return static_cast<double>(graph.num_tasks()) * std::log2(proc_kinds) +
         static_cast<double>(graph.num_collection_args()) * std::log2(mems);
}

}  // namespace automap
