#include "src/search/search.hpp"

#include <cmath>

#include "src/support/error.hpp"

namespace automap {

FrozenTaskSet::FrozenTaskSet(const std::vector<TaskId>& tasks,
                             std::size_t num_tasks)
    : mask_(num_tasks, false) {
  for (const TaskId t : tasks) {
    AM_REQUIRE(t.index() < num_tasks, "frozen task id out of range");
    if (!mask_[t.index()]) {
      mask_[t.index()] = true;
      ++count_;
    }
  }
}

Mapping search_starting_point(const TaskGraph& graph,
                              const MachineModel& machine) {
  Mapping m(graph);
  for (const GroupTask& task : graph.tasks()) {
    TaskMapping& tm = m.at(task.id);
    tm.distribute = true;
    const bool gpu =
        task.cost.has_gpu_variant() && machine.has_proc_kind(ProcKind::kGpu);
    tm.proc = gpu ? ProcKind::kGpu : ProcKind::kCpu;
    tm.arg_memories.assign(task.args.size(),
                           {machine.best_memory_for(tm.proc)});
  }
  return m;
}

double search_space_log2(const TaskGraph& graph, const MachineModel& machine) {
  // The paper's §3.2 estimate P^T * M^C under its simplifying assumption
  // (every task can run on every processor kind, M memories addressable
  // per kind — M = 2 on the machines considered). This reproduces Fig. 5's
  // exponents exactly: 2^(T + C) with two processor kinds.
  const double proc_kinds = static_cast<double>(machine.proc_kinds().size());

  // M: the smallest per-processor-kind addressable-memory count (>= 2 on
  // all machines the paper considers).
  double mems = static_cast<double>(machine.mem_kinds().size());
  for (const ProcKind k : machine.proc_kinds()) {
    mems = std::min(
        mems, static_cast<double>(machine.memories_addressable_by(k).size()));
  }

  return static_cast<double>(graph.num_tasks()) * std::log2(proc_kinds) +
         static_cast<double>(graph.num_collection_args()) * std::log2(mems);
}

}  // namespace automap
