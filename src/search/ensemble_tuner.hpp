#pragma once

// Ensemble tuner — the OpenTuner stand-in (§4.3).
//
// A generic autotuner in the OpenTuner mold: an ensemble of search
// techniques (pure random, hill climbing on the incumbent, genetic
// crossover of elites) run under a multi-armed-bandit budget allocator that
// shifts proposals toward whichever technique has recently produced
// improvements. Crucially — and this is the paper's point — the tuner
// cannot express the *constrained* structure of the mapping space: it
// proposes processor/memory combinations independently, so most proposals
// are invalid (a CPU task with a Frame-Buffer argument) or duplicates, and
// AutoMap answers those with a penalty value without executing them. That
// is why OpenTuner suggests orders of magnitude more mappings than it
// evaluates and spends only 13-45 % of its time executing candidates
// (§5.3), while CCD/CD spend 99 %.

#include "src/search/evaluator.hpp"
#include "src/search/search.hpp"
#include "src/sim/simulator.hpp"

namespace automap {

struct EnsembleTunerConfig {
  /// Simulated cost of the tuner's own proposal machinery per suggestion
  /// (OpenTuner's Python search/results-database stack costs tens of
  /// milliseconds per proposal — the reason the paper measures it spending
  /// only 13-45 % of the search budget on actual evaluations).
  double overhead_per_suggestion_s = 120e-3;
  /// Hard caps so an unbudgeted run still terminates.
  std::size_t max_suggestions = 200000;
  std::size_t max_evaluations = 2000;
};

[[nodiscard]] SearchResult run_ensemble_tuner(
    const Simulator& sim, const SearchOptions& options,
    const EnsembleTunerConfig& config = {});

}  // namespace automap
