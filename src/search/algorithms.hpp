#pragma once

// Search-algorithm registry: the one table mapping algorithm names to
// entry points. The CLI driver and the bench targets dispatch through it
// instead of maintaining their own if/else chains, so adding an algorithm
// means adding one registry row (§3: "the search algorithms are pluggable
// components that can be replaced").

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/search/search.hpp"
#include "src/sim/simulator.hpp"

namespace automap {

struct SearchAlgorithmInfo {
  /// Registry key, e.g. "ccd" — what --algorithm accepts.
  std::string name;
  /// SearchResult::algorithm label, e.g. "AM-CCD".
  std::string label;
  /// One-line description for usage/help output.
  std::string summary;
  std::function<SearchResult(const Simulator&, const SearchOptions&)> run;
};

/// All registered algorithms, in presentation order (the paper's trio
/// first, then the extensions).
[[nodiscard]] const std::vector<SearchAlgorithmInfo>& search_algorithms();

/// Looks up an algorithm by registry name; nullptr when unknown.
[[nodiscard]] const SearchAlgorithmInfo* find_search_algorithm(
    std::string_view name);

/// "ccd|cd|ot|..." — the names joined for usage strings.
[[nodiscard]] std::string search_algorithm_names();

}  // namespace automap
