#include "src/search/evaluator.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "src/support/error.hpp"

namespace automap {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

Evaluator::Evaluator(const Simulator& sim, const SearchOptions& options)
    : sim_(sim),
      options_(options),
      rng_(mix64(options.seed) ^ 0x5bf03635f0a5a1edULL),
      best_seconds_(kInf) {
  AM_REQUIRE(options_.repeats > 0, "repeats must be positive");
  AM_REQUIRE(options_.rotations > 0, "rotations must be positive");
  AM_REQUIRE(options_.top_k > 0, "top_k must be positive");
  if (!options_.profiles_seed.empty())
    import_profiles(options_.profiles_seed);
}

std::string Evaluator::export_profiles() const {
  std::ostringstream os;
  os.precision(17);
  os << "profiles " << profiles_.size() << "\n";
  for (const auto& [hash, entry] : profiles_) {
    os << "entry " << entry.mean_seconds << "\n"
       << entry.mapping.serialize();
  }
  return os.str();
}

void Evaluator::import_profiles(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  AM_REQUIRE(std::getline(is, line) && line.rfind("profiles ", 0) == 0,
             "malformed profiles database header");
  const TaskGraph& graph = sim_.graph();
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    AM_REQUIRE(line.rfind("entry ", 0) == 0,
               "expected an 'entry' line in the profiles database");
    const double mean = std::stod(line.substr(6));
    std::string mapping_text;
    for (std::size_t i = 0; i < graph.num_tasks(); ++i) {
      std::string task_line;
      AM_REQUIRE(std::getline(is, task_line),
                 "truncated mapping in the profiles database");
      mapping_text += task_line + "\n";
    }
    Mapping mapping = Mapping::parse(mapping_text, graph);
    const std::uint64_t key = mapping.hash();
    if (mean < kInf) {
      const auto pos = std::lower_bound(
          top_.begin(), top_.end(), mean,
          [](const Entry& e, double v) { return e.mean_seconds < v; });
      top_.insert(pos, Entry{mapping, mean});
      if (top_.size() > static_cast<std::size_t>(options_.top_k))
        top_.pop_back();
      best_seconds_ = std::min(best_seconds_, mean);
    }
    profiles_.insert_or_assign(key, Entry{std::move(mapping), mean});
  }
}

Mapping Evaluator::with_fallbacks(const Mapping& mapping) const {
  if (!options_.memory_fallbacks) return mapping;
  Mapping out = mapping;
  const MachineModel& machine = sim_.machine();
  for (const GroupTask& task : sim_.graph().tasks()) {
    TaskMapping& tm = out.at(task.id);
    // Addressable kinds from this task's processor, best bandwidth first.
    std::vector<MemKind> order = machine.memories_addressable_by(tm.proc);
    std::sort(order.begin(), order.end(), [&](MemKind a, MemKind b) {
      return machine.affinity(tm.proc, a).bandwidth_bytes_per_s >
             machine.affinity(tm.proc, b).bandwidth_bytes_per_s;
    });
    for (auto& priority : tm.arg_memories) {
      if (priority.empty()) continue;
      const MemKind primary = priority.front();
      priority.assign(1, primary);
      for (const MemKind k : order)
        if (k != primary) priority.push_back(k);
    }
  }
  return out;
}

double Evaluator::evaluate(const Mapping& mapping) {
  ++stats_.suggested;

  const std::uint64_t key = mapping.hash();
  if (auto it = profiles_.find(key);
      it != profiles_.end() && it->second.mapping == mapping) {
    return it->second.mean_seconds;  // profiles-database hit: free
  }

  const Mapping candidate = with_fallbacks(mapping);
  if (!candidate.valid(sim_.graph(), sim_.machine())) {
    ++stats_.invalid;
    profiles_.insert_or_assign(key, Entry{mapping, kInf});
    return kInf;
  }

  // Execute `repeats` runs; each costs its own simulated duration
  // (whatever the ranking objective, the search pays wall time).
  double sum = 0.0;
  bool failed = false;
  for (int r = 0; r < options_.repeats; ++r) {
    const ExecutionReport report = sim_.run(candidate, rng_.next());
    if (!report.ok) {
      // An OOM surfaces on the first run; it still costs some time to
      // observe (the runtime aborts during instance allocation).
      ++stats_.oom;
      failed = true;
      break;
    }
    sum += options_.objective == Objective::kEnergy ? report.energy_joules
                                                    : report.total_seconds;
    stats_.search_time_s += report.total_seconds;
    stats_.evaluation_time_s += report.total_seconds;
  }
  ++stats_.evaluated;

  const double mean = failed ? kInf : sum / options_.repeats;
  profiles_.insert_or_assign(key, Entry{mapping, mean});

  if (mean < best_seconds_) {
    best_seconds_ = mean;
    trajectory_.push_back({stats_.search_time_s, mean});
  }
  if (mean < kInf) {
    // Maintain the top-k list for the finalist protocol.
    const auto pos = std::lower_bound(
        top_.begin(), top_.end(), mean,
        [](const Entry& e, double v) { return e.mean_seconds < v; });
    top_.insert(pos, Entry{mapping, mean});
    if (top_.size() > static_cast<std::size_t>(options_.top_k))
      top_.pop_back();
  }
  return mean;
}

void Evaluator::charge_overhead(double seconds) {
  AM_REQUIRE(seconds >= 0.0, "negative overhead");
  stats_.search_time_s += seconds;
}

bool Evaluator::budget_exhausted() const {
  return stats_.search_time_s >= options_.time_budget_s;
}

const Mapping& Evaluator::best() const {
  AM_REQUIRE(!top_.empty(), "no successful evaluation yet");
  return top_.front().mapping;
}

SearchResult Evaluator::finalize(std::string algorithm_name) {
  SearchResult result;
  result.algorithm = std::move(algorithm_name);

  double best_final = kInf;
  for (const Entry& entry : top_) {
    const Mapping candidate = with_fallbacks(entry.mapping);
    double sum = 0.0;
    int ok_runs = 0;
    for (int r = 0; r < options_.final_repeats; ++r) {
      const ExecutionReport report = sim_.run(candidate, rng_.next());
      if (!report.ok) break;
      sum += options_.objective == Objective::kEnergy
                 ? report.energy_joules
                 : report.total_seconds;
      stats_.search_time_s += report.total_seconds;
      stats_.evaluation_time_s += report.total_seconds;
      ++ok_runs;
    }
    if (ok_runs == options_.final_repeats) {
      const double mean = sum / ok_runs;
      if (mean < best_final) {
        best_final = mean;
        result.best = entry.mapping;
      }
    }
  }
  AM_CHECK(best_final < kInf,
           "finalist protocol found no executable mapping");
  result.best_seconds = best_final;
  result.stats = stats_;
  result.trajectory = trajectory_;
  result.profiles_db = export_profiles();
  return result;
}

}  // namespace automap
