#include "src/search/evaluator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <limits>
#include <sstream>
#include <string>
#include <unordered_map>

#include "src/support/error.hpp"
#include "src/support/rng.hpp"

namespace automap {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Domain-separation salts: search-time evaluation runs and finalist-protocol
// reruns of the same mapping must see independent noise streams.
constexpr std::uint64_t kEvalSalt = 0x5bf03635f0a5a1edULL;
constexpr std::uint64_t kFinalSalt = 0xa0761d6478bd642fULL;
}  // namespace

Evaluator::Evaluator(const Simulator& sim, const SearchOptions& options)
    : sim_(sim), options_(options), best_seconds_(kInf),
      wall_start_(std::chrono::steady_clock::now()) {
  AM_REQUIRE(options_.repeats > 0, "repeats must be positive");
  AM_REQUIRE(options_.rotations > 0, "rotations must be positive");
  AM_REQUIRE(options_.top_k > 0, "top_k must be positive");
  AM_REQUIRE(options_.threads >= 0, "threads must be >= 0");
  const int threads = options_.threads == 0 ? ThreadPool::hardware_threads()
                                            : options_.threads;
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  // One reusable simulation arena per pool lane (lane 0 doubles as the
  // serial path's arena), so steady-state evaluation allocates nothing.
  scratches_.resize(
      pool_ ? static_cast<std::size_t>(pool_->thread_count()) : 1);
  if (!options_.profiles_seed.empty())
    import_profiles(options_.profiles_seed);
}

std::uint64_t Evaluator::run_seed(std::uint64_t mapping_hash, int repeat,
                                  std::uint64_t salt) const {
  // Order-independent derivation: a run's noise depends only on the search
  // seed, the candidate's structural hash and the repeat index — never on
  // how many candidates were evaluated before it or on which thread it ran.
  std::uint64_t s = mix64(options_.seed ^ salt);
  s = mix64(s ^ mapping_hash);
  return mix64(s +
               0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(repeat + 1));
}

Evaluator::RunOutcome Evaluator::execute_run(const Mapping& candidate,
                                             std::uint64_t seed,
                                             SimScratch& scratch) const {
  // Finalist reruns are never bounded: the protocol's whole point is an
  // exact mean over the top-k, and top-k entries are never censored.
  const ExecutionReport& report = sim_.run(candidate, seed, scratch, kInf);
  if (!report.ok) return {};
  return {.ok = true,
          .objective = options_.objective == Objective::kEnergy
                           ? report.energy_joules
                           : report.total_seconds,
          .total_seconds = report.total_seconds};
}

Evaluator::CandOutcome Evaluator::run_candidate(const Mapping& candidate,
                                                std::uint64_t key,
                                                double threshold_s,
                                                bool bound_runs,
                                                SimScratch& scratch) const {
  // Racing schedule against the censor threshold T: after k completed runs
  // the candidate is censored when its running sum exceeds
  //
  //   B_k = min(k*T*(1 + 3*sigma/sqrt(k)),  repeats*T)
  //
  // The first term is a confidence line — a candidate whose true mean is
  // at most T crosses it with probability ~Phi(-3) per prefix under the
  // simulator's log-normal per-run noise, so real improvements survive
  // while a candidate 2x worse than the incumbent is cut after a single
  // run instead of burning its full repeat budget. The second term is the
  // exactness cap: sum > repeats*T alone already proves mean > T, and
  // because B_repeats equals the cap, an *uncensored* candidate always has
  // a provably exact mean <= T (no false accepts at the last run). With
  // sigma = 0 the line collapses to k*T and the race is exact.
  //
  // Run r executes under a simulated-time bound of B_{r+1} - sum, so with
  // pruning on the simulator abandons the run the moment the verdict is
  // determined and the trailing repeats are skipped. With pruning off the
  // runs execute unbounded but the same verdict and charge are computed
  // from their totals (a post-censor run charges and contributes nothing),
  // so both modes produce the same CandOutcome bit for bit.
  CandOutcome out;
  // One validation + memory resolution serves every repeat: placement is
  // noise-independent, so begin_runs hoists it out of the repeat loop. A
  // failure here is an OOM (constraint-1 validity was already checked at
  // plan time).
  if (!sim_.begin_runs(candidate, scratch)) {
    out.oom = true;
    return out;
  }
  const double repeats_d = static_cast<double>(options_.repeats);
  const double slack = 3.0 * sim_.options().noise_sigma;
  double sum = 0.0;
  for (int r = 0; r < options_.repeats; ++r) {
    double allowance = kInf;  // what this run may add before censoring
    if (out.censored) {
      allowance = 0.0;
    } else if (std::isfinite(threshold_s)) {
      const double k = static_cast<double>(r + 1);
      const double line =
          std::min(k * threshold_s * (1.0 + slack / std::sqrt(k)),
                   repeats_d * threshold_s);
      allowance = line - sum;  // >= 0: the schedule is nondecreasing
    }
    const ExecutionReport& report =
        sim_.run_prepared(candidate, run_seed(key, r, kEvalSalt), scratch,
                          bound_runs ? allowance : kInf);
    if (!report.ok) {
      out.oom = true;
      return out;
    }
    if (report.censored || report.total_seconds > allowance) {
      out.charge_s += allowance;
      out.censored = true;
      if (bound_runs) return out;
    } else {
      out.objective_sum += options_.objective == Objective::kEnergy
                               ? report.energy_joules
                               : report.total_seconds;
      out.charge_s += report.total_seconds;
      sum += report.total_seconds;
    }
  }
  return out;
}

std::string Evaluator::export_profiles() const {
  std::ostringstream os;
  os.precision(17);
  os << "profiles " << profiles_.size() << "\n";
  for (const auto& [hash, entry] : profiles_) {
    os << "entry " << entry.mean_seconds;
    if (entry.censored) os << " censored";
    os << "\n" << entry.mapping.serialize();
  }
  return os.str();
}

void Evaluator::import_profiles(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  AM_REQUIRE(std::getline(is, line) && line.rfind("profiles ", 0) == 0,
             "malformed profiles database header");
  const TaskGraph& graph = sim_.graph();
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    AM_REQUIRE(line.rfind("entry ", 0) == 0,
               "expected an 'entry' line in the profiles database");
    // Validate the mean ourselves: bare std::stod would leak
    // std::invalid_argument past the Error-based diagnostics every other
    // malformed-input path produces.
    double mean = 0.0;
    std::size_t parsed = 0;
    try {
      mean = std::stod(line.substr(6), &parsed);
    } catch (const std::exception&) {
      parsed = 0;
    }
    // After the mean the line may carry the optional "censored" marker: the
    // stored value is then a bound the candidate's true mean exceeds, not
    // an exact measurement.
    bool censored = false;
    bool well_formed = parsed > 0;
    if (well_formed) {
      const std::size_t tail = line.find_first_not_of(" \t", 6 + parsed);
      if (tail != std::string::npos) {
        censored = line.substr(tail) == "censored";
        well_formed = censored;
      }
    }
    AM_REQUIRE(well_formed,
               "malformed mean in profiles database entry: '" + line + "'");
    std::string mapping_text;
    for (std::size_t i = 0; i < graph.num_tasks(); ++i) {
      std::string task_line;
      AM_REQUIRE(std::getline(is, task_line),
                 "truncated mapping in the profiles database");
      mapping_text += task_line + "\n";
    }
    Mapping mapping = Mapping::parse(mapping_text, graph);
    const std::uint64_t key = mapping.hash();
    if (mean < kInf && !censored) {
      // insert_top dedupes by hash, so importing the same database twice
      // (or re-importing after a search) does not stack duplicate
      // finalists. Censored entries stay out of the finalist list and the
      // incumbent — their stored value is a bound, not a mean.
      insert_top(mapping, mean);
      best_seconds_ = std::min(best_seconds_, mean);
    }
    profiles_.insert_or_assign(key, Entry{std::move(mapping), mean, censored});
  }
}

void Evaluator::insert_top(const Mapping& mapping, double mean) {
  const std::uint64_t key = mapping.hash();
  for (const Entry& e : top_)
    if (e.mapping.hash() == key && e.mapping == mapping) return;
  const auto pos = std::lower_bound(
      top_.begin(), top_.end(), mean,
      [](const Entry& e, double v) { return e.mean_seconds < v; });
  top_.insert(pos, Entry{mapping, mean});
  if (top_.size() > static_cast<std::size_t>(options_.top_k))
    top_.pop_back();
}

Mapping Evaluator::with_fallbacks(const Mapping& mapping) const {
  if (!options_.memory_fallbacks) return mapping;
  Mapping out = mapping;
  const MachineModel& machine = sim_.machine();
  for (const GroupTask& task : sim_.graph().tasks()) {
    TaskMapping& tm = out.at(task.id);
    // Addressable kinds from this task's processor, best bandwidth first.
    std::vector<MemKind> order = machine.memories_addressable_by(tm.proc);
    std::sort(order.begin(), order.end(), [&](MemKind a, MemKind b) {
      return machine.affinity(tm.proc, a).bandwidth_bytes_per_s >
             machine.affinity(tm.proc, b).bandwidth_bytes_per_s;
    });
    for (auto& priority : tm.arg_memories) {
      if (priority.empty()) continue;
      const MemKind primary = priority.front();
      priority.assign(1, primary);
      for (const MemKind k : order)
        if (k != primary) priority.push_back(k);
    }
  }
  return out;
}

double Evaluator::evaluate(const Mapping& mapping, double interest_bound_s) {
  double mean = kInf;
  (void)evaluate_batch(
      std::span<const Mapping>(&mapping, 1),
      [&](std::size_t, double value) {
        mean = value;
        return true;
      },
      interest_bound_s);
  return mean;
}

std::vector<double> Evaluator::evaluate_batch(
    std::span<const Mapping> mappings, double interest_bound_s) {
  std::vector<double> means;
  means.reserve(mappings.size());
  (void)evaluate_batch(
      mappings,
      [&](std::size_t, double value) {
        means.push_back(value);
        return true;
      },
      interest_bound_s);
  return means;
}

std::size_t Evaluator::evaluate_batch(
    std::span<const Mapping> mappings,
    const std::function<bool(std::size_t, double)>& consume,
    double interest_bound_s) {
  // Censor threshold, fixed once at submission so it cannot depend on fold
  // order or thread count: a candidate is only worth resolving exactly if
  // its mean could still beat the caller's interest bound *or* displace the
  // k-th finalist (run_ccd_multistart re-imports the database across
  // passes, so finalist-grade means must stay exact even when the caller's
  // incumbent is tighter). The threshold — not the prune flag — drives the
  // censoring arithmetic; prune only decides whether the simulator actually
  // stops at the budget.
  double threshold = kInf;
  if (options_.objective == Objective::kExecutionTime) {
    const double top_guard =
        top_.size() >= static_cast<std::size_t>(options_.top_k)
            ? top_.back().mean_seconds
            : kInf;
    threshold = std::max(interest_bound_s, top_guard);
  }
  const bool bound_runs =
      options_.prune_candidates && std::isfinite(threshold);

  // Per-candidate plan. Exactly one of three shapes:
  //  * deferred-to-cache: a usable profiles entry (or an earlier batch
  //    member equal to this mapping, which will have inserted its entry by
  //    the time this one folds) already answers it;
  //  * invalid: fails constraint 1, folds to infinity without execution;
  //  * execute: one budgeted run sequence with derived seeds.
  struct Plan {
    std::uint64_t key = 0;
    bool invalid = false;
    bool execute = false;
    /// Candidate to execute: points at the submitted mapping, or at
    /// `storage` when memory fallbacks extended it. Stable because `plans`
    /// is sized once up front.
    const Mapping* cand = nullptr;
    Mapping storage;          // owns the fallback-extended copy, when any
    std::size_t outcome = 0;  // index into exec_plans/outcomes, when execute
  };

  std::vector<Plan> plans(mappings.size());
  std::vector<std::size_t> exec_plans;  // batch indices of execute plans
  // key -> batch member that will own the profiles entry for that hash at
  // fold time (serial insertion order: the latest scheduled one wins).
  std::unordered_map<std::uint64_t, std::size_t> planned;

  for (std::size_t j = 0; j < mappings.size(); ++j) {
    const Mapping& mapping = mappings[j];
    Plan& plan = plans[j];
    plan.key = mapping.hash();

    if (const auto pit = planned.find(plan.key);
        pit != planned.end() && mappings[pit->second] == mapping) {
      continue;  // deferred: an earlier batch member folds this entry
    }
    // A cached entry answers the query unless it is censored at a bound
    // tighter than this batch's threshold — then the caller needs the mean
    // resolved further and the candidate re-executes (overwriting the
    // entry at fold time).
    if (const auto it = profiles_.find(plan.key);
        planned.find(plan.key) == planned.end() && it != profiles_.end() &&
        it->second.mapping == mapping &&
        (!it->second.censored || it->second.mean_seconds >= threshold)) {
      continue;  // deferred: usable profiles-database hit
    }

    planned[plan.key] = j;
    const Mapping* candidate = &mapping;
    if (options_.memory_fallbacks) {
      plan.storage = with_fallbacks(mapping);
      candidate = &plan.storage;
    }
    if (!candidate->valid(sim_.graph(), sim_.machine())) {
      plan.invalid = true;
      continue;
    }
    plan.execute = true;
    plan.cand = candidate;
    plan.outcome = exec_plans.size();
    exec_plans.push_back(j);
  }

  // Pre-execute every scheduled candidate across the pool, one lane-owned
  // scratch arena per lane. Without a pool the fold below runs lazily
  // instead (avoiding speculative work past a consume() stop).
  std::vector<CandOutcome> outcomes;
  const bool pre_executed = pool_ != nullptr && exec_plans.size() > 1;
  if (pre_executed) {
    outcomes.resize(exec_plans.size());
    pool_->parallel_for(
        exec_plans.size(), [&](std::size_t lane, std::size_t i) {
          const Plan& plan = plans[exec_plans[i]];
          outcomes[i] = run_candidate(*plan.cand, plan.key, threshold,
                                      bound_runs, scratches_[lane]);
        });
  }

  // Fold serially in submission order; this is the exact serial evaluate()
  // logic with run_candidate replaced by the pre-executed outcomes, so
  // every statistic, cache entry and trajectory point lands in the same
  // order with the same values regardless of thread count. Dispatch on the
  // plan's shape, not on a fresh cache probe: an execute plan may exist
  // precisely because the cached entry was censored too tightly, and must
  // overwrite it rather than read it back.
  std::size_t folded = 0;
  for (std::size_t j = 0; j < mappings.size(); ++j) {
    if (j > 0 && budget_exhausted()) break;
    const Mapping& mapping = mappings[j];
    const Plan& plan = plans[j];
    ++stats_.suggested;

    double mean;
    if (plan.invalid) {
      ++stats_.invalid;
      profiles_.insert_or_assign(plan.key, Entry{mapping, kInf});
      mean = kInf;
    } else if (plan.execute) {
      const CandOutcome out =
          pre_executed ? outcomes[plan.outcome]
                       : run_candidate(*plan.cand, plan.key, threshold,
                                       bound_runs, scratches_[0]);
      ++stats_.evaluated;
      if (out.oom) {
        // An OOM surfaces before the event loop (placement is mapping-
        // deterministic), so censoring never masks it. It still costs some
        // time to observe (the runtime aborts during instance allocation),
        // so charge the machine-derived observation cost to the search
        // clock. This fold-side charge is shared by the serial and batched
        // paths, preserving thread-count invariance.
        ++stats_.oom;
        stats_.search_time_s += failure_observation_cost();
        stats_.evaluation_time_s += failure_observation_cost();
        profiles_.insert_or_assign(plan.key, Entry{mapping, kInf});
        mean = kInf;
      } else {
        stats_.search_time_s += out.charge_s;
        stats_.evaluation_time_s += out.charge_s;
        if (out.censored) {
          // Fold to exactly the threshold (not budget/repeats, whose
          // rounding could land one ulp below it and leak past a caller's
          // `mean < bound` acceptance test). Censored candidates never
          // update the incumbent, trajectory or finalist list.
          ++stats_.censored;
          mean = threshold;
          profiles_.insert_or_assign(
              plan.key, Entry{mapping, mean, /*censored=*/true});
        } else {
          mean = out.objective_sum / options_.repeats;
          profiles_.insert_or_assign(plan.key, Entry{mapping, mean});
          if (mean < best_seconds_) {
            best_seconds_ = mean;
            trajectory_.push_back({stats_.search_time_s, mean});
          }
          // Maintain the top-k list for the finalist protocol.
          if (mean < kInf) insert_top(mapping, mean);
        }
      }
    } else {
      // Deferred: answered by the profiles database — an import, an earlier
      // search, or an earlier batch member that folded before us.
      const auto it = profiles_.find(plan.key);
      AM_CHECK(it != profiles_.end() && it->second.mapping == mapping,
               "deferred batch member lost its profiles entry");
      mean = it->second.mean_seconds;
      ++stats_.cache_hits;
    }

    ++folded;
    if (!consume(j, mean)) break;
  }
  return folded;
}

void Evaluator::charge_overhead(double seconds) {
  AM_REQUIRE(seconds >= 0.0, "negative overhead");
  stats_.search_time_s += seconds;
}

double Evaluator::failure_observation_cost() const {
  // The runtime walks every task's dependence analysis and instance
  // allocation before the OOM aborts the run — one runtime-overhead
  // quantum per task, independent of how far the allocation pass got.
  return sim_.machine().runtime_overhead() *
         static_cast<double>(sim_.graph().num_tasks());
}

void Evaluator::note_rotation(int rotation, double best_before_s) {
  stats_.rotations.push_back({.rotation = rotation,
                              .best_before_s = best_before_s,
                              .best_after_s = best_seconds_,
                              .evaluated = stats_.evaluated,
                              .search_time_s = stats_.search_time_s});
}

bool Evaluator::budget_exhausted() const {
  return stats_.search_time_s >= options_.time_budget_s;
}

const Mapping& EvaluatorView::best() const {
  AM_REQUIRE(!eval_->top_.empty(), "no successful evaluation yet");
  return eval_->top_.front().mapping;
}

SearchResult Evaluator::finalize(std::string algorithm_name) {
  SearchResult result;
  result.algorithm = std::move(algorithm_name);

  // All (finalist, repeat) reruns are independent under derived seeds, so
  // they fan out across the pool as one batch and fold back in top-k order.
  const int repeats = options_.final_repeats;
  const std::size_t runs_per = static_cast<std::size_t>(repeats);
  std::vector<Mapping> candidates;
  std::vector<std::uint64_t> hashes;
  candidates.reserve(top_.size());
  hashes.reserve(top_.size());
  for (const Entry& entry : top_) {
    candidates.push_back(with_fallbacks(entry.mapping));
    hashes.push_back(entry.mapping.hash());
  }

  std::vector<RunOutcome> outcomes;
  const bool pre_executed =
      pool_ != nullptr && candidates.size() * runs_per > 1;
  if (pre_executed) {
    outcomes.resize(candidates.size() * runs_per);
    pool_->parallel_for(
        outcomes.size(), [&](std::size_t lane, std::size_t i) {
          const std::size_t e = i / runs_per;
          const int r = static_cast<int>(i % runs_per);
          outcomes[i] = execute_run(
              candidates[e], run_seed(hashes[e], r, kFinalSalt),
              scratches_[lane]);
        });
  }

  double best_final = kInf;
  for (std::size_t e = 0; e < candidates.size(); ++e) {
    double sum = 0.0;
    int ok_runs = 0;
    for (int r = 0; r < repeats; ++r) {
      const RunOutcome out =
          pre_executed
              ? outcomes[e * runs_per + static_cast<std::size_t>(r)]
              : execute_run(candidates[e],
                            run_seed(hashes[e], r, kFinalSalt),
                            scratches_[0]);
      if (!out.ok) {
        // Same accounting as the search loop: a failed rerun still costs
        // observation time.
        stats_.search_time_s += failure_observation_cost();
        stats_.evaluation_time_s += failure_observation_cost();
        break;
      }
      sum += out.objective;
      stats_.search_time_s += out.total_seconds;
      stats_.evaluation_time_s += out.total_seconds;
      ++ok_runs;
    }
    if (ok_runs == repeats) {
      const double mean = sum / ok_runs;
      if (mean < best_final) {
        best_final = mean;
        result.best = top_[e].mapping;
      }
    }
  }
  AM_CHECK(best_final < kInf,
           "finalist protocol found no executable mapping");
  result.best_seconds = best_final;
  stats_.wall_time_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - wall_start_)
                           .count();
  result.stats = stats_;
  result.trajectory = trajectory_;
  if (options_.export_profiles_db) result.profiles_db = export_profiles();
  return result;
}

}  // namespace automap
