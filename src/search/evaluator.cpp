#include "src/search/evaluator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <limits>
#include <sstream>
#include <string>
#include <unordered_map>

#include "src/report/journal.hpp"
#include "src/support/error.hpp"
#include "src/support/json.hpp"
#include "src/support/metrics.hpp"
#include "src/support/rng.hpp"

namespace automap {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Domain-separation salts: search-time evaluation runs and finalist-protocol
// reruns of the same mapping must see independent noise streams.
constexpr std::uint64_t kEvalSalt = 0x5bf03635f0a5a1edULL;
constexpr std::uint64_t kFinalSalt = 0xa0761d6478bd642fULL;
}  // namespace

Evaluator::Evaluator(const Simulator& sim, const SearchOptions& options)
    : sim_(sim), options_(options), best_seconds_(kInf),
      wall_start_(std::chrono::steady_clock::now()) {
  AM_REQUIRE(options_.repeats > 0, "repeats must be positive");
  AM_REQUIRE(options_.rotations > 0, "rotations must be positive");
  AM_REQUIRE(options_.top_k > 0, "top_k must be positive");
  AM_REQUIRE(options_.threads >= 0, "threads must be >= 0");
  AM_REQUIRE(options_.resilience.max_retries >= 0,
             "max_retries must be >= 0");
  AM_REQUIRE(options_.resilience.quarantine_after >= 0,
             "quarantine_after must be >= 0");
  if (options_.shared_pool != nullptr) {
    // Service mode: batches ride an externally owned pool shared with
    // other concurrent searches; `threads` is ignored for pool sizing.
    if (options_.shared_pool->thread_count() > 1)
      pool_ = options_.shared_pool;
  } else {
    const int threads = options_.threads == 0
                            ? ThreadPool::hardware_threads()
                            : options_.threads;
    if (threads > 1) {
      owned_pool_ = std::make_unique<ThreadPool>(threads);
      pool_ = owned_pool_.get();
    }
  }
  // One reusable simulation arena per pool lane (lane 0 doubles as the
  // serial path's arena), so steady-state evaluation allocates nothing.
  scratches_.resize(
      pool_ ? static_cast<std::size_t>(pool_->thread_count()) : 1);
  if (!options_.profiles_seed.empty())
    import_profiles(options_.profiles_seed);

  // Observability handles. All instruments below are updated exclusively
  // on the serial fold side, so they are deterministic (thread-count
  // invariant) and eligible for journal snapshots.
  journal_ = options_.journal;
  metrics_ = options_.metrics;
  if (metrics_) {
    m_suggested_ = metrics_->counter("automap_candidates_suggested_total",
                                     "Candidate mappings proposed");
    m_evaluated_ = metrics_->counter("automap_candidates_evaluated_total",
                                     "Candidate mappings executed");
    m_invalid_ = metrics_->counter("automap_candidates_invalid_total",
                                   "Candidates rejected as invalid");
    m_oom_ = metrics_->counter("automap_candidates_oom_total",
                               "Candidates that ran out of memory");
    m_censored_ =
        metrics_->counter("automap_candidates_censored_total",
                          "Candidates censored at the batch threshold");
    m_cache_hits_ = metrics_->counter(
        "automap_candidates_cache_hits_total",
        "Candidates answered from the profiles database");
    m_quarantined_ =
        metrics_->counter("automap_candidates_quarantined_total",
                          "Candidates quarantined by the resilience policy");
    m_search_clock_ = metrics_->gauge("automap_search_clock_seconds",
                                      "Simulated search clock");
    m_best_seconds_ = metrics_->gauge("automap_best_seconds",
                                      "Incumbent objective value");
    m_candidate_mean_ = metrics_->histogram(
        "automap_candidate_mean_seconds",
        "Recorded candidate objective values (seconds)",
        {0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0,
         300.0, 1000.0});
  }
}

std::uint64_t Evaluator::run_seed(std::uint64_t mapping_hash, int repeat,
                                  int attempt, std::uint64_t salt) const {
  // Order-independent derivation: a run's noise depends only on the search
  // seed, the candidate's structural hash, the repeat index and the retry
  // attempt — never on how many candidates were evaluated before it or on
  // which thread it ran. Attempt 0 reproduces the historical derivation
  // exactly, so fault-free searches are bit-identical to builds that
  // predate the retry machinery.
  std::uint64_t s = mix64(options_.seed ^ salt);
  s = mix64(s ^ mapping_hash);
  if (attempt > 0)
    s = mix64(s ^
              (0x94d049bb133111ebULL * static_cast<std::uint64_t>(attempt)));
  return mix64(s +
               0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(repeat + 1));
}

double Evaluator::retry_backoff(int attempt) const {
  // Budget-aware backoff: each re-attempt charges the restart quantum,
  // doubled per attempt — a real fault-tolerant driver pays process respawn
  // and runtime re-initialization before every relaunch.
  const double quantum = options_.resilience.retry_backoff_s >= 0.0
                             ? options_.resilience.retry_backoff_s
                             : sim_.machine().restart_overhead();
  return quantum * static_cast<double>(1ULL << std::min(attempt, 62));
}

double Evaluator::aggregate_objective(const CandOutcome& out) const {
  AM_CHECK(out.survivors > 0, "aggregating a candidate with no survivors");
  const double n = static_cast<double>(out.survivors);
  switch (options_.resilience.aggregation) {
    case Aggregation::kMean:
      return out.objective_sum / n;
    case Aggregation::kMedian: {
      std::vector<double> v = out.objectives;
      std::sort(v.begin(), v.end());
      const std::size_t m = v.size() / 2;
      return v.size() % 2 == 1 ? v[m] : 0.5 * (v[m - 1] + v[m]);
    }
    case Aggregation::kTrimmedMean: {
      // Drop the single min and max; degenerates to the mean below three
      // survivors (nothing left to trim).
      if (out.survivors < 3) return out.objective_sum / n;
      const auto [lo, hi] =
          std::minmax_element(out.objectives.begin(), out.objectives.end());
      return (out.objective_sum - *lo - *hi) / (n - 2.0);
    }
  }
  AM_CHECK(false, "unknown aggregation");
  return kInf;
}

Evaluator::RunOutcome Evaluator::execute_run(const Mapping& candidate,
                                             std::uint64_t hash, int repeat,
                                             SimScratch& scratch) const {
  // Finalist reruns are never bounded: the protocol's whole point is an
  // exact mean over the top-k, and top-k entries are never censored.
  // Transient faults retry under the same policy as search-time evaluation;
  // all clock costs beyond a successful run's own time ride in charge_s so
  // the fold stays a pure accumulation.
  RunOutcome out;
  for (int attempt = 0;; ++attempt) {
    const ExecutionReport& report = sim_.run(
        candidate, run_seed(hash, repeat, attempt, kFinalSalt), scratch,
        kInf);
    if (report.ok) {
      out.ok = true;
      out.objective = options_.objective == Objective::kEnergy
                          ? report.energy_joules
                          : report.total_seconds;
      out.total_seconds = report.total_seconds;
      return out;
    }
    if (!report.transient) {
      // Deterministic failure (OOM): one observation cost, same as the
      // search loop charges.
      out.charge_s += failure_observation_cost();
      return out;
    }
    // Injected transient fault: the clock paid for the partial run and the
    // abort observation.
    ++out.transient_failures;
    out.charge_s += report.total_seconds + failure_observation_cost();
    if (attempt >= options_.resilience.max_retries) {
      out.transient = true;  // repeat lost, retry budget exhausted
      return out;
    }
    ++out.retries;
    out.charge_s += retry_backoff(attempt);
  }
}

Evaluator::CandOutcome Evaluator::run_candidate(const Mapping& candidate,
                                                std::uint64_t key,
                                                double threshold_s,
                                                bool bound_runs,
                                                SimScratch& scratch) const {
  // Racing schedule against the censor threshold T: after k completed runs
  // the candidate is censored when its running sum exceeds
  //
  //   B_k = min(k*T*(1 + 3*sigma/sqrt(k)),  repeats*T)
  //
  // The first term is a confidence line — a candidate whose true mean is
  // at most T crosses it with probability ~Phi(-3) per prefix under the
  // simulator's log-normal per-run noise, so real improvements survive
  // while a candidate 2x worse than the incumbent is cut after a single
  // run instead of burning its full repeat budget. The second term is the
  // exactness cap: sum > repeats*T alone already proves mean > T, and
  // because B_repeats equals the cap, an *uncensored* candidate always has
  // a provably exact mean <= T (no false accepts at the last run). With
  // sigma = 0 the line collapses to k*T and the race is exact.
  //
  // Run r executes under a simulated-time bound of B_{r+1} - sum, so with
  // pruning on the simulator abandons the run the moment the verdict is
  // determined and the trailing repeats are skipped. With pruning off the
  // runs execute unbounded but the same verdict and charge are computed
  // from their totals (a post-censor run charges and contributes nothing),
  // so both modes produce the same CandOutcome bit for bit.
  CandOutcome out;
  // One validation + memory resolution serves every repeat: placement is
  // noise-independent, so begin_runs hoists it out of the repeat loop. A
  // failure here is an OOM (constraint-1 validity was already checked at
  // plan time).
  if (!sim_.begin_runs(candidate, scratch)) {
    out.oom = true;
    return out;
  }
  const ResiliencePolicy& policy = options_.resilience;
  const bool inject = sim_.options().faults.enabled();
  const bool robust = policy.aggregation != Aggregation::kMean;
  // The censoring race bounds the running *sum*, which only the mean can
  // interpret; the robust aggregations need every survivor's value, so
  // censoring is disabled for them (every repeat runs to completion).
  const double race_threshold_s = robust ? kInf : threshold_s;
  if (!inject && !std::isfinite(race_threshold_s)) {
    // Batch-interleaved fast path: with faults off and censoring disabled
    // (robust aggregation, or no finite threshold yet) every repeat is an
    // independent unbounded run that always succeeds — OOM already surfaced
    // at begin_runs and nothing transient can occur. The racing fold then
    // degenerates to plain accumulation in repeat order, which is exactly
    // what folding run_repeats' lane reports reproduces bit for bit, while
    // the simulator walks the graph once instead of once per repeat.
    std::vector<std::uint64_t>& seeds = scratch.seed_buffer();
    seeds.resize(static_cast<std::size_t>(options_.repeats));
    for (int r = 0; r < options_.repeats; ++r)
      seeds[static_cast<std::size_t>(r)] = run_seed(key, r, 0, kEvalSalt);
    for (const ExecutionReport& report :
         sim_.run_repeats(candidate, seeds, scratch, kInf)) {
      const double objective = options_.objective == Objective::kEnergy
                                   ? report.energy_joules
                                   : report.total_seconds;
      out.objective_sum += objective;
      out.charge_s += report.total_seconds;
      ++out.survivors;
      if (robust) out.objectives.push_back(objective);
    }
    if (out.survivors == 0) out.failed = true;
    return out;
  }
  const double repeats_d = static_cast<double>(options_.repeats);
  const double slack = 3.0 * sim_.options().noise_sigma;
  double sum = 0.0;
  int consecutive_lost = 0;
  for (int r = 0; r < options_.repeats; ++r) {
    double allowance = kInf;  // what this run may add before censoring
    if (std::isfinite(race_threshold_s)) {
      const double k = static_cast<double>(r + 1);
      const double line =
          std::min(k * race_threshold_s * (1.0 + slack / std::sqrt(k)),
                   repeats_d * race_threshold_s);
      allowance = line - sum;  // >= 0: the schedule is nondecreasing
    }
    bool repeat_lost = false;
    for (int attempt = 0;; ++attempt) {
      // Under fault injection every run executes unbounded: a bounded
      // abort at the censor line would mask a crash draw the fault stream
      // scheduled past it, making prune on/off observably different. The
      // censor verdict is still computed from the totals below.
      const ExecutionReport& report = sim_.run_prepared(
          candidate, run_seed(key, r, attempt, kEvalSalt), scratch,
          (bound_runs && !inject) ? allowance : kInf);
      if (report.ok) {
        if (report.censored || report.total_seconds > allowance) {
          // Censor verdict: charge what the line allowed and stop. Every
          // remaining repeat would see a zero allowance and contribute
          // nothing, so the historical post-censor loop folds away.
          out.charge_s += allowance;
          out.censored = true;
          return out;
        }
        const double objective = options_.objective == Objective::kEnergy
                                     ? report.energy_joules
                                     : report.total_seconds;
        out.objective_sum += objective;
        out.charge_s += report.total_seconds;
        sum += report.total_seconds;
        ++out.survivors;
        if (robust) out.objectives.push_back(objective);
        break;
      }
      if (!report.transient) {
        out.oom = true;
        return out;
      }
      // Injected transient fault: the clock paid for the partial run and
      // the abort observation.
      ++out.transient_failures;
      out.charge_s += report.total_seconds + failure_observation_cost();
      if (attempt >= policy.max_retries) {
        repeat_lost = true;  // retry budget exhausted
        break;
      }
      ++out.retries;
      out.charge_s += retry_backoff(attempt);
    }
    if (repeat_lost) {
      ++consecutive_lost;
      if (policy.quarantine_after > 0 &&
          consecutive_lost >= policy.quarantine_after) {
        // Quarantine: the candidate keeps failing under its whole retry
        // budget; stop wasting repeats and cache it as failed.
        out.failed = true;
        out.quarantined = true;
        return out;
      }
    } else {
      consecutive_lost = 0;
    }
  }
  if (out.survivors == 0) out.failed = true;
  return out;
}

std::string Evaluator::export_profiles() const {
  // Canonical order (sorted by structural hash): unordered_map iteration
  // varies between runs and library versions, and checkpoint/resume
  // bit-identity needs the exported bytes to be a pure function of the
  // database contents.
  std::vector<std::pair<std::uint64_t, const Entry*>> order;
  order.reserve(profiles_.size());
  for (const auto& [hash, entry] : profiles_) order.emplace_back(hash, &entry);
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::ostringstream os;
  os.precision(17);
  os << "profiles " << profiles_.size() << "\n";
  for (const auto& [hash, entry] : order) {
    os << "entry " << entry->mean_seconds;
    if (entry->censored) os << " censored";
    if (entry->quarantined) os << " quarantined";
    os << "\n" << entry->mapping.serialize();
  }
  return os.str();
}

void Evaluator::import_profiles(const std::string& text) {
  std::istringstream is(text);
  import_profiles_impl(is, /*update_top=*/true);
}

void Evaluator::import_profiles_impl(std::istream& is, bool update_top) {
  std::string line;
  AM_REQUIRE(std::getline(is, line) && line.rfind("profiles ", 0) == 0,
             "malformed profiles database header");
  const TaskGraph& graph = sim_.graph();
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    AM_REQUIRE(line.rfind("entry ", 0) == 0,
               "expected an 'entry' line in the profiles database");
    // Validate the mean ourselves: bare std::stod would leak
    // std::invalid_argument past the Error-based diagnostics every other
    // malformed-input path produces.
    double mean = 0.0;
    std::size_t parsed = 0;
    try {
      mean = std::stod(line.substr(6), &parsed);
    } catch (const std::exception&) {
      parsed = 0;
    }
    // After the mean the line may carry an optional marker: "censored"
    // (the stored value is a bound the true mean exceeds) or "quarantined"
    // (the candidate failed its whole retry budget and is cached as
    // permanently failed).
    bool censored = false;
    bool quarantined = false;
    bool well_formed = parsed > 0;
    if (well_formed) {
      const std::size_t tail = line.find_first_not_of(" \t", 6 + parsed);
      if (tail != std::string::npos) {
        const std::string marker = line.substr(tail);
        censored = marker == "censored";
        quarantined = marker == "quarantined";
        well_formed = censored || quarantined;
      }
    }
    AM_REQUIRE(well_formed,
               "malformed mean in profiles database entry: '" + line + "'");
    std::string mapping_text;
    for (std::size_t i = 0; i < graph.num_tasks(); ++i) {
      std::string task_line;
      AM_REQUIRE(std::getline(is, task_line),
                 "truncated mapping in the profiles database");
      mapping_text += task_line + "\n";
    }
    Mapping mapping = Mapping::parse(mapping_text, graph);
    const std::uint64_t key = mapping.hash();
    if (update_top && mean < kInf && !censored) {
      // insert_top dedupes by hash, so importing the same database twice
      // (or re-importing after a search) does not stack duplicate
      // finalists. Censored entries stay out of the finalist list and the
      // incumbent — their stored value is a bound, not a mean. (During a
      // checkpoint restore the top-k list is restored verbatim from its
      // own section instead — re-deriving it here could break mean ties in
      // a different order than the original chronological insertions.)
      insert_top(mapping, mean);
      best_seconds_ = std::min(best_seconds_, mean);
    }
    profiles_.insert_or_assign(
        key, Entry{std::move(mapping), mean, censored, quarantined});
  }
}

void Evaluator::insert_top(const Mapping& mapping, double mean) {
  const std::uint64_t key = mapping.hash();
  for (const Entry& e : top_)
    if (e.mapping.hash() == key && e.mapping == mapping) return;
  const auto pos = std::lower_bound(
      top_.begin(), top_.end(), mean,
      [](const Entry& e, double v) { return e.mean_seconds < v; });
  top_.insert(pos, Entry{mapping, mean});
  if (top_.size() > static_cast<std::size_t>(options_.top_k))
    top_.pop_back();
}

Mapping Evaluator::with_fallbacks(const Mapping& mapping) const {
  if (!options_.memory_fallbacks) return mapping;
  Mapping out = mapping;
  const MachineModel& machine = sim_.machine();
  for (const GroupTask& task : sim_.graph().tasks()) {
    TaskMapping& tm = out.at(task.id);
    // Addressable kinds from this task's processor, best bandwidth first.
    std::vector<MemKind> order = machine.memories_addressable_by(tm.proc);
    std::sort(order.begin(), order.end(), [&](MemKind a, MemKind b) {
      return machine.affinity(tm.proc, a).bandwidth_bytes_per_s >
             machine.affinity(tm.proc, b).bandwidth_bytes_per_s;
    });
    for (auto& priority : tm.arg_memories) {
      if (priority.empty()) continue;
      const MemKind primary = priority.front();
      priority.assign(1, primary);
      for (const MemKind k : order)
        if (k != primary) priority.push_back(k);
    }
  }
  return out;
}

double Evaluator::evaluate(const Mapping& mapping, double interest_bound_s) {
  double mean = kInf;
  (void)evaluate_batch(
      std::span<const Mapping>(&mapping, 1),
      [&](std::size_t, double value) {
        mean = value;
        return true;
      },
      interest_bound_s);
  return mean;
}

std::vector<double> Evaluator::evaluate_batch(
    std::span<const Mapping> mappings, double interest_bound_s) {
  std::vector<double> means;
  means.reserve(mappings.size());
  (void)evaluate_batch(
      mappings,
      [&](std::size_t, double value) {
        means.push_back(value);
        return true;
      },
      interest_bound_s);
  return means;
}

std::size_t Evaluator::evaluate_batch(
    std::span<const Mapping> mappings,
    const std::function<bool(std::size_t, double)>& consume,
    double interest_bound_s) {
  // Censor threshold, fixed once at submission so it cannot depend on fold
  // order or thread count: a candidate is only worth resolving exactly if
  // its mean could still beat the caller's interest bound *or* displace the
  // k-th finalist (run_ccd_multistart re-imports the database across
  // passes, so finalist-grade means must stay exact even when the caller's
  // incumbent is tighter). The threshold — not the prune flag — drives the
  // censoring arithmetic; prune only decides whether the simulator actually
  // stops at the budget.
  double threshold = kInf;
  if (options_.objective == Objective::kExecutionTime) {
    const double top_guard =
        top_.size() >= static_cast<std::size_t>(options_.top_k)
            ? top_.back().mean_seconds
            : kInf;
    threshold = std::max(interest_bound_s, top_guard);
  }
  const bool bound_runs =
      options_.prune_candidates && std::isfinite(threshold);

  // Per-candidate plan. Exactly one of three shapes:
  //  * deferred-to-cache: a usable profiles entry (or an earlier batch
  //    member equal to this mapping, which will have inserted its entry by
  //    the time this one folds) already answers it;
  //  * invalid: fails constraint 1, folds to infinity without execution;
  //  * execute: one budgeted run sequence with derived seeds.
  struct Plan {
    std::uint64_t key = 0;
    bool invalid = false;
    bool execute = false;
    /// Candidate to execute: points at the submitted mapping, or at
    /// `storage` when memory fallbacks extended it. Stable because `plans`
    /// is sized once up front.
    const Mapping* cand = nullptr;
    Mapping storage;          // owns the fallback-extended copy, when any
    std::size_t outcome = 0;  // index into exec_plans/outcomes, when execute
  };

  std::vector<Plan> plans(mappings.size());
  std::vector<std::size_t> exec_plans;  // batch indices of execute plans
  // key -> batch member that will own the profiles entry for that hash at
  // fold time (serial insertion order: the latest scheduled one wins).
  std::unordered_map<std::uint64_t, std::size_t> planned;

  for (std::size_t j = 0; j < mappings.size(); ++j) {
    const Mapping& mapping = mappings[j];
    Plan& plan = plans[j];
    plan.key = mapping.hash();

    if (const auto pit = planned.find(plan.key);
        pit != planned.end() && mappings[pit->second] == mapping) {
      continue;  // deferred: an earlier batch member folds this entry
    }
    // A cached entry answers the query unless it is censored at a bound
    // tighter than this batch's threshold — then the caller needs the mean
    // resolved further and the candidate re-executes (overwriting the
    // entry at fold time).
    if (const auto it = profiles_.find(plan.key);
        planned.find(plan.key) == planned.end() && it != profiles_.end() &&
        it->second.mapping == mapping &&
        (!it->second.censored || it->second.mean_seconds >= threshold)) {
      continue;  // deferred: usable profiles-database hit
    }

    planned[plan.key] = j;
    const Mapping* candidate = &mapping;
    if (options_.memory_fallbacks) {
      plan.storage = with_fallbacks(mapping);
      candidate = &plan.storage;
    }
    if (!candidate->valid(sim_.graph(), sim_.machine())) {
      plan.invalid = true;
      continue;
    }
    plan.execute = true;
    plan.cand = candidate;
    plan.outcome = exec_plans.size();
    exec_plans.push_back(j);
  }

  // Pre-execute every scheduled candidate across the pool, one lane-owned
  // scratch arena per lane. Without a pool the fold below runs lazily
  // instead (avoiding speculative work past a consume() stop).
  std::vector<CandOutcome> outcomes;
  const bool pre_executed = pool_ != nullptr && exec_plans.size() > 1;
  if (pre_executed) {
    outcomes.resize(exec_plans.size());
    pool_->parallel_for(
        exec_plans.size(),
        [&](std::size_t lane, std::size_t i) {
          const Plan& plan = plans[exec_plans[i]];
          outcomes[i] = run_candidate(*plan.cand, plan.key, threshold,
                                      bound_runs, scratches_[lane]);
        },
        options_.pool_priority, options_.pool_stream);
  }

  // Fold serially in submission order; this is the exact serial evaluate()
  // logic with run_candidate replaced by the pre-executed outcomes, so
  // every statistic, cache entry and trajectory point lands in the same
  // order with the same values regardless of thread count. Dispatch on the
  // plan's shape, not on a fresh cache probe: an execute plan may exist
  // precisely because the cached entry was censored too tightly, and must
  // overwrite it rather than read it back.
  std::size_t folded = 0;
  for (std::size_t j = 0; j < mappings.size(); ++j) {
    if (j > 0 && budget_exhausted()) break;
    const Mapping& mapping = mappings[j];
    const Plan& plan = plans[j];
    ++stats_.suggested;

    double mean;
    const char* status;
    if (plan.invalid) {
      ++stats_.invalid;
      profiles_.insert_or_assign(plan.key, Entry{mapping, kInf});
      mean = kInf;
      status = "invalid";
    } else if (plan.execute) {
      const CandOutcome out =
          pre_executed ? outcomes[plan.outcome]
                       : run_candidate(*plan.cand, plan.key, threshold,
                                       bound_runs, scratches_[0]);
      ++stats_.evaluated;
      stats_.transient_failures +=
          static_cast<std::size_t>(out.transient_failures);
      stats_.retries += static_cast<std::size_t>(out.retries);
      if (out.oom) {
        // An OOM surfaces before the event loop (placement is mapping-
        // deterministic), so censoring never masks it. It still costs some
        // time to observe (the runtime aborts during instance allocation),
        // so charge the machine-derived observation cost to the search
        // clock, plus whatever transient attempts preceded the verdict
        // (zero in fault-free operation). This fold-side charge is shared
        // by the serial and batched paths, preserving thread-count
        // invariance.
        ++stats_.oom;
        stats_.search_time_s += failure_observation_cost() + out.charge_s;
        stats_.evaluation_time_s += failure_observation_cost() + out.charge_s;
        profiles_.insert_or_assign(plan.key, Entry{mapping, kInf});
        mean = kInf;
        status = "oom";
      } else if (out.failed) {
        // Every repeat was lost to transient faults. Cache the candidate
        // as quarantined whether or not the consecutive-loss cutoff fired
        // early: fault draws come from a derived stream, so re-executing
        // under the same policy would lose the same way — the cache answer
        // is the honest one.
        ++stats_.quarantined;
        stats_.search_time_s += out.charge_s;
        stats_.evaluation_time_s += out.charge_s;
        profiles_.insert_or_assign(
            plan.key, Entry{mapping, kInf, /*censored=*/false,
                            /*quarantined=*/true});
        mean = kInf;
        status = "quarantined";
      } else {
        stats_.search_time_s += out.charge_s;
        stats_.evaluation_time_s += out.charge_s;
        if (out.censored) {
          // Fold to exactly the threshold (not budget/repeats, whose
          // rounding could land one ulp below it and leak past a caller's
          // `mean < bound` acceptance test). Censored candidates never
          // update the incumbent, trajectory or finalist list.
          ++stats_.censored;
          mean = threshold;
          profiles_.insert_or_assign(
              plan.key, Entry{mapping, mean, /*censored=*/true});
          status = "censored";
        } else {
          mean = aggregate_objective(out);
          profiles_.insert_or_assign(plan.key, Entry{mapping, mean});
          if (mean < best_seconds_) {
            best_seconds_ = mean;
            trajectory_.push_back({stats_.search_time_s, mean});
            if (journal_) {
              // 1:1 with trajectory points — the replay drift check and
              // the Chrome-trace search row both reconstruct the Fig. 9
              // curve from these.
              journal_->event("incumbent")
                  .num("clock", stats_.search_time_s)
                  .num("best", mean)
                  .integer("seq",
                           static_cast<long long>(stats_.suggested));
            }
          }
          // Maintain the top-k list for the finalist protocol.
          if (mean < kInf) insert_top(mapping, mean);
          status = "evaluated";
        }
      }
    } else {
      // Deferred: answered by the profiles database — an import, an earlier
      // search, or an earlier batch member that folded before us.
      const auto it = profiles_.find(plan.key);
      AM_CHECK(it != profiles_.end() && it->second.mapping == mapping,
               "deferred batch member lost its profiles entry");
      mean = it->second.mean_seconds;
      ++stats_.cache_hits;
      status = "cached";
    }

    if (journal_ || metrics_) journal_candidate(status, mean, plan.key);
    ++folded;
    if (!consume(j, mean)) break;
  }
  return folded;
}

void Evaluator::journal_candidate(const char* status, double mean,
                                  std::uint64_t hash) {
  const std::string_view s(status);
  if (metrics_) {
    m_suggested_->inc();
    if (s == "cached") {
      m_cache_hits_->inc();
    } else if (s == "invalid") {
      m_invalid_->inc();
    } else {
      m_evaluated_->inc();
      if (s == "oom") {
        m_oom_->inc();
      } else if (s == "censored") {
        m_censored_->inc();
      } else if (s == "quarantined") {
        m_quarantined_->inc();
      }
    }
    m_search_clock_->set(stats_.search_time_s);
    if (std::isfinite(best_seconds_)) m_best_seconds_->set(best_seconds_);
    if (std::isfinite(mean)) m_candidate_mean_->observe(mean);
  }
  if (journal_) {
    journal_->event("candidate")
        .integer("seq", static_cast<long long>(stats_.suggested))
        .str("status", s)
        .num("mean", mean)
        .num("clock", stats_.search_time_s)
        .str("hash", hex_u64(hash));
    journal_metrics_snapshot(/*force=*/false);
  }
}

void Evaluator::journal_metrics_snapshot(bool force) {
  if (!journal_ || !metrics_) return;
  if (!force) {
    if (options_.journal_snapshot_every <= 0) return;
    if (++folds_since_snapshot_ < options_.journal_snapshot_every) return;
  }
  folds_since_snapshot_ = 0;
  // Only deterministic instruments appear in the snapshot — raw simulator
  // run counts include speculative pool work and would break the journal's
  // thread-count byte-identity.
  journal_->event("metrics")
      .num("clock", stats_.search_time_s)
      .raw("values", metrics_->snapshot_json());
}

void Evaluator::journal_search_begin(std::string_view label,
                                     const Mapping& start,
                                     bool custom_start) {
  if (!journal_) return;
  // Everything that determines the deterministic outcome is recorded via
  // the canonical codec — the same encoding the CLI's --options file and
  // the service wire protocol speak — except the thread count, which by
  // contract changes nothing (and would break journal byte-identity
  // across --threads values).
  journal_->event("search_begin")
      .str("algorithm", label)
      .raw("options", search_options_to_json(options_))
      .raw("sim", sim_options_to_json(sim_.options()))
      .str("start", start.serialize())
      .boolean("custom_start", custom_start)
      .boolean("resumed", !options_.resume_state.empty())
      .boolean("seeded_profiles", !options_.profiles_seed.empty());
}

void Evaluator::charge_overhead(double seconds) {
  AM_REQUIRE(seconds >= 0.0, "negative overhead");
  stats_.search_time_s += seconds;
}

double Evaluator::failure_observation_cost() const {
  // The runtime walks every task's dependence analysis and instance
  // allocation before the OOM aborts the run — one runtime-overhead
  // quantum per task, independent of how far the allocation pass got.
  return sim_.machine().runtime_overhead() *
         static_cast<double>(sim_.graph().num_tasks());
}

void Evaluator::note_rotation(int rotation, double best_before_s) {
  stats_.rotations.push_back({.rotation = rotation,
                              .best_before_s = best_before_s,
                              .best_after_s = best_seconds_,
                              .evaluated = stats_.evaluated,
                              .search_time_s = stats_.search_time_s});
  if (journal_) {
    journal_->event("rotation_end")
        .num("before", best_before_s)
        .num("after", best_seconds_)
        .integer("evaluated", static_cast<long long>(stats_.evaluated))
        .num("clock", stats_.search_time_s);
    journal_metrics_snapshot(/*force=*/true);
  }
}

bool Evaluator::budget_exhausted() const {
  return cancelled() || stats_.search_time_s >= options_.time_budget_s;
}

bool Evaluator::cancelled() const {
  return options_.cancel != nullptr &&
         options_.cancel->load(std::memory_order_relaxed);
}

void Evaluator::mark_degraded() {
  stats_.degraded = true;
  if (journal_) journal_->event("degraded");
}

std::string Evaluator::serialize_state() const {
  // Text format (version 1), all doubles at precision 17 so a restored
  // state reproduces the original bit for bit:
  //
  //   evaluator-state 1
  //   best_seconds <v>
  //   counters <suggested> <evaluated> <invalid> <oom> <censored>
  //            <cache_hits> <transient_failures> <retries> <quarantined>
  //            <degraded-0/1>                        (one line, ten fields)
  //   clocks <search_time_s> <evaluation_time_s>
  //   rotations <n> / rotation <r> <before> <after> <evaluated> <time> ...
  //   trajectory <n> / point <time> <value> ...
  //   top <n> / finalist <mean> + serialized mapping ...
  //   <profiles database export>
  //
  // wall_time_s is deliberately not stored: it is real time, excluded from
  // every determinism guarantee.
  std::ostringstream os;
  os.precision(17);
  os << "evaluator-state 1\n";
  os << "best_seconds " << best_seconds_ << "\n";
  os << "counters " << stats_.suggested << " " << stats_.evaluated << " "
     << stats_.invalid << " " << stats_.oom << " " << stats_.censored << " "
     << stats_.cache_hits << " " << stats_.transient_failures << " "
     << stats_.retries << " " << stats_.quarantined << " "
     << (stats_.degraded ? 1 : 0) << "\n";
  os << "clocks " << stats_.search_time_s << " " << stats_.evaluation_time_s
     << "\n";
  os << "rotations " << stats_.rotations.size() << "\n";
  for (const RotationTelemetry& rt : stats_.rotations)
    os << "rotation " << rt.rotation << " " << rt.best_before_s << " "
       << rt.best_after_s << " " << rt.evaluated << " " << rt.search_time_s
       << "\n";
  os << "trajectory " << trajectory_.size() << "\n";
  for (const TrajectoryPoint& p : trajectory_)
    os << "point " << p.search_time_s << " " << p.best_exec_s << "\n";
  // The top-k list is serialized in its exact order: re-deriving it from
  // the profiles database could break mean ties in a different order than
  // the original chronological insertions, and finalize() resolves ties by
  // position.
  os << "top " << top_.size() << "\n";
  for (const Entry& e : top_)
    os << "finalist " << e.mean_seconds << "\n" << e.mapping.serialize();
  os << export_profiles();
  return os.str();
}

void Evaluator::restore_state(const std::string& text) {
  AM_REQUIRE(profiles_.empty() && top_.empty() && stats_.suggested == 0,
             "restore_state requires a freshly constructed evaluator");
  std::istringstream is(text);
  std::string line;
  // stod/stoull handle "inf" and report malformed input; stream extraction
  // of doubles would reject "inf" outright on common standard libraries.
  const auto to_d = [](const std::string& t) -> double {
    try {
      return std::stod(t);
    } catch (const std::exception&) {
      throw Error("malformed number in evaluator state: '" + t + "'");
    }
  };
  const auto to_u = [](const std::string& t) -> std::size_t {
    try {
      return static_cast<std::size_t>(std::stoull(t));
    } catch (const std::exception&) {
      throw Error("malformed count in evaluator state: '" + t + "'");
    }
  };
  // Reads the next line, asserts its leading tag, returns the remaining
  // whitespace-separated fields.
  const auto split = [&is, &line](const char* head) {
    AM_REQUIRE(std::getline(is, line), "truncated evaluator state");
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    AM_REQUIRE(tag == head, "malformed evaluator state: expected '" +
                                std::string(head) + "', got '" + tag + "'");
    std::vector<std::string> fields;
    std::string t;
    while (ls >> t) fields.push_back(t);
    return fields;
  };

  const auto header = split("evaluator-state");
  AM_REQUIRE(header.size() == 1 && header[0] == "1",
             "unsupported evaluator state version");
  const auto best = split("best_seconds");
  AM_REQUIRE(best.size() == 1, "malformed best_seconds in evaluator state");
  best_seconds_ = to_d(best[0]);
  const auto counters = split("counters");
  AM_REQUIRE(counters.size() == 10, "malformed counters in evaluator state");
  stats_.suggested = to_u(counters[0]);
  stats_.evaluated = to_u(counters[1]);
  stats_.invalid = to_u(counters[2]);
  stats_.oom = to_u(counters[3]);
  stats_.censored = to_u(counters[4]);
  stats_.cache_hits = to_u(counters[5]);
  stats_.transient_failures = to_u(counters[6]);
  stats_.retries = to_u(counters[7]);
  stats_.quarantined = to_u(counters[8]);
  stats_.degraded = counters[9] == "1";
  const auto clocks = split("clocks");
  AM_REQUIRE(clocks.size() == 2, "malformed clocks in evaluator state");
  stats_.search_time_s = to_d(clocks[0]);
  stats_.evaluation_time_s = to_d(clocks[1]);
  const auto nrot = split("rotations");
  AM_REQUIRE(nrot.size() == 1, "malformed rotations header");
  for (std::size_t i = 0, n = to_u(nrot[0]); i < n; ++i) {
    const auto f = split("rotation");
    AM_REQUIRE(f.size() == 5, "malformed rotation in evaluator state");
    stats_.rotations.push_back({.rotation = static_cast<int>(to_u(f[0])),
                                .best_before_s = to_d(f[1]),
                                .best_after_s = to_d(f[2]),
                                .evaluated = to_u(f[3]),
                                .search_time_s = to_d(f[4])});
  }
  const auto ntraj = split("trajectory");
  AM_REQUIRE(ntraj.size() == 1, "malformed trajectory header");
  for (std::size_t i = 0, n = to_u(ntraj[0]); i < n; ++i) {
    const auto f = split("point");
    AM_REQUIRE(f.size() == 2, "malformed trajectory point");
    trajectory_.push_back({to_d(f[0]), to_d(f[1])});
  }
  const auto ntop = split("top");
  AM_REQUIRE(ntop.size() == 1, "malformed top header");
  const TaskGraph& graph = sim_.graph();
  for (std::size_t i = 0, n = to_u(ntop[0]); i < n; ++i) {
    const auto f = split("finalist");
    AM_REQUIRE(f.size() == 1, "malformed finalist in evaluator state");
    const double mean = to_d(f[0]);
    std::string mapping_text;
    for (std::size_t t = 0; t < graph.num_tasks(); ++t) {
      std::string task_line;
      AM_REQUIRE(std::getline(is, task_line),
                 "truncated finalist mapping in evaluator state");
      mapping_text += task_line + "\n";
    }
    top_.push_back(Entry{Mapping::parse(mapping_text, graph), mean});
  }
  // The profiles section is a verbatim database export; the top-k list and
  // incumbent were restored above, so the import must not rebuild them.
  import_profiles_impl(is, /*update_top=*/false);
}

const Mapping& EvaluatorView::best() const {
  AM_REQUIRE(!eval_->top_.empty(), "no successful evaluation yet");
  return eval_->top_.front().mapping;
}

SearchResult Evaluator::finalize(std::string algorithm_name) {
  SearchResult result;
  result.algorithm = std::move(algorithm_name);
  // The finalist protocol runs outside any rotation/coordinate scope.
  if (journal_) journal_->clear_cursor();

  // Cancellation cuts the finalist protocol too: the caller is about to
  // discard the result, so rerunning top-k x final_repeats would only
  // delay the cancel landing. The incumbent (when any) comes back as a
  // partial result with no finalize journal record. Budget exhaustion
  // alone does NOT take this path — a budget-cut search still verifies
  // its finalists exactly as before, preserving byte-identity.
  if (cancelled()) {
    if (!top_.empty()) {
      result.best = top_.front().mapping;
      result.best_seconds = top_.front().mean_seconds;
    }
    stats_.wall_time_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - wall_start_)
                             .count();
    result.stats = stats_;
    result.trajectory = trajectory_;
    if (journal_) journal_->flush();
    return result;
  }

  // All (finalist, repeat) reruns are independent under derived seeds, so
  // they fan out across the pool as one batch and fold back in top-k order.
  const int repeats = options_.final_repeats;
  const std::size_t runs_per = static_cast<std::size_t>(repeats);
  std::vector<Mapping> candidates;
  std::vector<std::uint64_t> hashes;
  candidates.reserve(top_.size());
  hashes.reserve(top_.size());
  for (const Entry& entry : top_) {
    candidates.push_back(with_fallbacks(entry.mapping));
    hashes.push_back(entry.mapping.hash());
  }

  std::vector<RunOutcome> outcomes;
  const bool pre_executed =
      pool_ != nullptr && candidates.size() * runs_per > 1;
  if (pre_executed) {
    outcomes.resize(candidates.size() * runs_per);
    pool_->parallel_for(
        outcomes.size(),
        [&](std::size_t lane, std::size_t i) {
          const std::size_t e = i / runs_per;
          const int r = static_cast<int>(i % runs_per);
          outcomes[i] =
              execute_run(candidates[e], hashes[e], r, scratches_[lane]);
        },
        options_.pool_priority, options_.pool_stream);
  }

  const bool robust = options_.resilience.aggregation != Aggregation::kMean;
  double best_final = kInf;
  for (std::size_t e = 0; e < candidates.size(); ++e) {
    double sum = 0.0;
    int ok_runs = 0;
    bool excluded = false;
    std::vector<double> values;  // per-survivor, robust aggregations only
    for (int r = 0; r < repeats; ++r) {
      const RunOutcome out =
          pre_executed
              ? outcomes[e * runs_per + static_cast<std::size_t>(r)]
              : execute_run(candidates[e], hashes[e], r, scratches_[0]);
      // charge_s carries lost attempts, retry backoff and failure
      // observation costs (zero for a fault-free success), so the fold is
      // one accumulation for every outcome shape.
      stats_.search_time_s += out.charge_s;
      stats_.evaluation_time_s += out.charge_s;
      stats_.transient_failures +=
          static_cast<std::size_t>(out.transient_failures);
      stats_.retries += static_cast<std::size_t>(out.retries);
      if (!out.ok) {
        if (!out.transient) {
          // Deterministic failure (OOM): the finalist can never complete,
          // so stop rerunning it — the historical exclusion rule.
          excluded = true;
          break;
        }
        continue;  // transient-exhausted repeat: lost, keep folding
      }
      sum += out.objective;
      stats_.search_time_s += out.total_seconds;
      stats_.evaluation_time_s += out.total_seconds;
      ++ok_runs;
      if (robust) values.push_back(out.objective);
    }
    // A finalist scores when a strict majority of its repeats survived —
    // fault-free that is all of them, reproducing the historical
    // ok_runs == repeats rule bit for bit.
    double final_mean = kInf;
    if (!excluded && ok_runs * 2 > repeats) {
      CandOutcome agg;
      agg.objective_sum = sum;
      agg.survivors = ok_runs;
      agg.objectives = std::move(values);
      final_mean = aggregate_objective(agg);
      if (final_mean < best_final) {
        best_final = final_mean;
        result.best = top_[e].mapping;
      }
    }
    if (journal_) {
      journal_->event("finalist")
          .integer("rank", static_cast<long long>(e))
          .str("hash", hex_u64(hashes[e]))
          .boolean("excluded", excluded)
          .integer("ok_runs", ok_runs)
          .num("mean", final_mean)
          .num("clock", stats_.search_time_s);
    }
  }
  if (best_final < kInf) {
    result.best_seconds = best_final;
  } else {
    // Graceful degradation: the fault rate left every finalist
    // unprofilable. Return the best-known incumbent with the degraded flag
    // instead of throwing away the whole search.
    AM_CHECK(!top_.empty(),
             "finalist protocol found no executable mapping");
    stats_.degraded = true;
    result.best = top_.front().mapping;
    result.best_seconds = top_.front().mean_seconds;
  }
  stats_.wall_time_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - wall_start_)
                           .count();
  result.stats = stats_;
  result.trajectory = trajectory_;
  if (options_.export_profiles_db) result.profiles_db = export_profiles();
  if (metrics_) {
    m_search_clock_->set(stats_.search_time_s);
    if (std::isfinite(result.best_seconds))
      m_best_seconds_->set(result.best_seconds);
  }
  if (journal_) {
    journal_metrics_snapshot(/*force=*/true);
    journal_->event("finalize")
        .str("algorithm", result.algorithm)
        .num("best", result.best_seconds)
        .boolean("degraded", stats_.degraded)
        .integer("suggested", static_cast<long long>(stats_.suggested))
        .integer("evaluated", static_cast<long long>(stats_.evaluated))
        .integer("censored", static_cast<long long>(stats_.censored))
        .num("clock", stats_.search_time_s)
        .str("winner", result.best.serialize());
    journal_->flush();
  }
  return result;
}

}  // namespace automap
