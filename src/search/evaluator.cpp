#include "src/search/evaluator.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <limits>
#include <sstream>
#include <string>
#include <unordered_map>

#include "src/support/error.hpp"
#include "src/support/rng.hpp"

namespace automap {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Domain-separation salts: search-time evaluation runs and finalist-protocol
// reruns of the same mapping must see independent noise streams.
constexpr std::uint64_t kEvalSalt = 0x5bf03635f0a5a1edULL;
constexpr std::uint64_t kFinalSalt = 0xa0761d6478bd642fULL;
}  // namespace

Evaluator::Evaluator(const Simulator& sim, const SearchOptions& options)
    : sim_(sim), options_(options), best_seconds_(kInf),
      wall_start_(std::chrono::steady_clock::now()) {
  AM_REQUIRE(options_.repeats > 0, "repeats must be positive");
  AM_REQUIRE(options_.rotations > 0, "rotations must be positive");
  AM_REQUIRE(options_.top_k > 0, "top_k must be positive");
  AM_REQUIRE(options_.threads >= 0, "threads must be >= 0");
  const int threads = options_.threads == 0 ? ThreadPool::hardware_threads()
                                            : options_.threads;
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  if (!options_.profiles_seed.empty())
    import_profiles(options_.profiles_seed);
}

std::uint64_t Evaluator::run_seed(std::uint64_t mapping_hash, int repeat,
                                  std::uint64_t salt) const {
  // Order-independent derivation: a run's noise depends only on the search
  // seed, the candidate's structural hash and the repeat index — never on
  // how many candidates were evaluated before it or on which thread it ran.
  std::uint64_t s = mix64(options_.seed ^ salt);
  s = mix64(s ^ mapping_hash);
  return mix64(s +
               0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(repeat + 1));
}

Evaluator::RunOutcome Evaluator::execute_run(const Mapping& candidate,
                                             std::uint64_t seed) const {
  const ExecutionReport report = sim_.run(candidate, seed);
  if (!report.ok) return {};
  return {.ok = true,
          .objective = options_.objective == Objective::kEnergy
                           ? report.energy_joules
                           : report.total_seconds,
          .total_seconds = report.total_seconds};
}

std::string Evaluator::export_profiles() const {
  std::ostringstream os;
  os.precision(17);
  os << "profiles " << profiles_.size() << "\n";
  for (const auto& [hash, entry] : profiles_) {
    os << "entry " << entry.mean_seconds << "\n"
       << entry.mapping.serialize();
  }
  return os.str();
}

void Evaluator::import_profiles(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  AM_REQUIRE(std::getline(is, line) && line.rfind("profiles ", 0) == 0,
             "malformed profiles database header");
  const TaskGraph& graph = sim_.graph();
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    AM_REQUIRE(line.rfind("entry ", 0) == 0,
               "expected an 'entry' line in the profiles database");
    // Validate the mean ourselves: bare std::stod would leak
    // std::invalid_argument past the Error-based diagnostics every other
    // malformed-input path produces.
    double mean = 0.0;
    std::size_t parsed = 0;
    try {
      mean = std::stod(line.substr(6), &parsed);
    } catch (const std::exception&) {
      parsed = 0;
    }
    AM_REQUIRE(parsed > 0 &&
                   line.find_first_not_of(" \t", 6 + parsed) ==
                       std::string::npos,
               "malformed mean in profiles database entry: '" + line + "'");
    std::string mapping_text;
    for (std::size_t i = 0; i < graph.num_tasks(); ++i) {
      std::string task_line;
      AM_REQUIRE(std::getline(is, task_line),
                 "truncated mapping in the profiles database");
      mapping_text += task_line + "\n";
    }
    Mapping mapping = Mapping::parse(mapping_text, graph);
    const std::uint64_t key = mapping.hash();
    if (mean < kInf) {
      // insert_top dedupes by hash, so importing the same database twice
      // (or re-importing after a search) does not stack duplicate
      // finalists.
      insert_top(mapping, mean);
      best_seconds_ = std::min(best_seconds_, mean);
    }
    profiles_.insert_or_assign(key, Entry{std::move(mapping), mean});
  }
}

void Evaluator::insert_top(const Mapping& mapping, double mean) {
  const std::uint64_t key = mapping.hash();
  for (const Entry& e : top_)
    if (e.mapping.hash() == key && e.mapping == mapping) return;
  const auto pos = std::lower_bound(
      top_.begin(), top_.end(), mean,
      [](const Entry& e, double v) { return e.mean_seconds < v; });
  top_.insert(pos, Entry{mapping, mean});
  if (top_.size() > static_cast<std::size_t>(options_.top_k))
    top_.pop_back();
}

Mapping Evaluator::with_fallbacks(const Mapping& mapping) const {
  if (!options_.memory_fallbacks) return mapping;
  Mapping out = mapping;
  const MachineModel& machine = sim_.machine();
  for (const GroupTask& task : sim_.graph().tasks()) {
    TaskMapping& tm = out.at(task.id);
    // Addressable kinds from this task's processor, best bandwidth first.
    std::vector<MemKind> order = machine.memories_addressable_by(tm.proc);
    std::sort(order.begin(), order.end(), [&](MemKind a, MemKind b) {
      return machine.affinity(tm.proc, a).bandwidth_bytes_per_s >
             machine.affinity(tm.proc, b).bandwidth_bytes_per_s;
    });
    for (auto& priority : tm.arg_memories) {
      if (priority.empty()) continue;
      const MemKind primary = priority.front();
      priority.assign(1, primary);
      for (const MemKind k : order)
        if (k != primary) priority.push_back(k);
    }
  }
  return out;
}

double Evaluator::evaluate(const Mapping& mapping) {
  double mean = kInf;
  (void)evaluate_batch(
      std::span<const Mapping>(&mapping, 1),
      [&](std::size_t, double value) {
        mean = value;
        return true;
      });
  return mean;
}

std::vector<double> Evaluator::evaluate_batch(
    std::span<const Mapping> mappings) {
  std::vector<double> means;
  means.reserve(mappings.size());
  (void)evaluate_batch(mappings, [&](std::size_t, double value) {
    means.push_back(value);
    return true;
  });
  return means;
}

std::size_t Evaluator::evaluate_batch(
    std::span<const Mapping> mappings,
    const std::function<bool(std::size_t, double)>& consume) {
  // Per-candidate plan. Exactly one of three shapes:
  //  * deferred-to-cache: the profiles database (or an earlier batch member
  //    equal to this mapping, which will have inserted its entry by the
  //    time this one folds) already answers it;
  //  * invalid: fails constraint 1, folds to infinity without execution;
  //  * execute: `repeats` pre-executable runs with derived seeds.
  struct Plan {
    std::uint64_t key = 0;
    bool invalid = false;
    bool execute = false;
    Mapping candidate;          // fallback-extended, when execute
    std::size_t first_run = 0;  // index into the job/outcome arrays
  };
  struct RunJob {
    std::size_t plan = 0;
    std::uint64_t seed = 0;
  };

  std::vector<Plan> plans(mappings.size());
  std::vector<RunJob> jobs;
  // key -> batch member that will own the profiles entry for that hash at
  // fold time (serial insertion order: the latest scheduled one wins).
  std::unordered_map<std::uint64_t, std::size_t> planned;

  for (std::size_t j = 0; j < mappings.size(); ++j) {
    const Mapping& mapping = mappings[j];
    Plan& plan = plans[j];
    plan.key = mapping.hash();

    if (const auto pit = planned.find(plan.key);
        pit != planned.end() && mappings[pit->second] == mapping) {
      continue;  // deferred: an earlier batch member folds this entry
    }
    if (const auto it = profiles_.find(plan.key);
        planned.find(plan.key) == planned.end() && it != profiles_.end() &&
        it->second.mapping == mapping) {
      continue;  // deferred: profiles-database hit
    }

    planned[plan.key] = j;
    Mapping candidate = with_fallbacks(mapping);
    if (!candidate.valid(sim_.graph(), sim_.machine())) {
      plan.invalid = true;
      continue;
    }
    plan.execute = true;
    plan.candidate = std::move(candidate);
    plan.first_run = jobs.size();
    for (int r = 0; r < options_.repeats; ++r)
      jobs.push_back({j, run_seed(plan.key, r, kEvalSalt)});
  }

  // Pre-execute every scheduled run across the pool. Without a pool the
  // fold below runs lazily instead (preserving the serial path's early
  // break on OOM and avoiding speculative work past a consume() stop).
  std::vector<RunOutcome> outcomes;
  const bool pre_executed = pool_ != nullptr && jobs.size() > 1;
  if (pre_executed) {
    outcomes.resize(jobs.size());
    pool_->parallel_for(jobs.size(), [&](std::size_t i) {
      outcomes[i] =
          execute_run(plans[jobs[i].plan].candidate, jobs[i].seed);
    });
  }

  // Fold serially in submission order; this is the exact serial evaluate()
  // logic with sim_.run replaced by the pre-executed outcomes, so every
  // statistic, cache entry and trajectory point lands in the same order
  // with the same values regardless of thread count.
  std::size_t folded = 0;
  for (std::size_t j = 0; j < mappings.size(); ++j) {
    if (j > 0 && budget_exhausted()) break;
    const Mapping& mapping = mappings[j];
    const Plan& plan = plans[j];
    ++stats_.suggested;

    double mean;
    if (const auto it = profiles_.find(plan.key);
        it != profiles_.end() && it->second.mapping == mapping) {
      mean = it->second.mean_seconds;  // profiles-database hit: free
      ++stats_.cache_hits;
    } else if (plan.invalid) {
      ++stats_.invalid;
      profiles_.insert_or_assign(plan.key, Entry{mapping, kInf});
      mean = kInf;
    } else {
      double sum = 0.0;
      bool failed = false;
      for (int r = 0; r < options_.repeats; ++r) {
        const RunOutcome out =
            pre_executed
                ? outcomes[plan.first_run + static_cast<std::size_t>(r)]
                : execute_run(plan.candidate,
                              run_seed(plan.key, r, kEvalSalt));
        if (!out.ok) {
          // An OOM surfaces on the first run; it still costs some time to
          // observe (the runtime aborts during instance allocation), so
          // charge the machine-derived observation cost to the search
          // clock. This fold-side charge is shared by the serial and
          // batched paths, preserving thread-count invariance.
          ++stats_.oom;
          stats_.search_time_s += failure_observation_cost();
          stats_.evaluation_time_s += failure_observation_cost();
          failed = true;
          break;
        }
        sum += out.objective;
        stats_.search_time_s += out.total_seconds;
        stats_.evaluation_time_s += out.total_seconds;
      }
      ++stats_.evaluated;

      mean = failed ? kInf : sum / options_.repeats;
      profiles_.insert_or_assign(plan.key, Entry{mapping, mean});

      if (mean < best_seconds_) {
        best_seconds_ = mean;
        trajectory_.push_back({stats_.search_time_s, mean});
      }
      // Maintain the top-k list for the finalist protocol.
      if (mean < kInf) insert_top(mapping, mean);
    }

    ++folded;
    if (!consume(j, mean)) break;
  }
  return folded;
}

void Evaluator::charge_overhead(double seconds) {
  AM_REQUIRE(seconds >= 0.0, "negative overhead");
  stats_.search_time_s += seconds;
}

double Evaluator::failure_observation_cost() const {
  // The runtime walks every task's dependence analysis and instance
  // allocation before the OOM aborts the run — one runtime-overhead
  // quantum per task, independent of how far the allocation pass got.
  return sim_.machine().runtime_overhead() *
         static_cast<double>(sim_.graph().num_tasks());
}

void Evaluator::note_rotation(int rotation, double best_before_s) {
  stats_.rotations.push_back({.rotation = rotation,
                              .best_before_s = best_before_s,
                              .best_after_s = best_seconds_,
                              .evaluated = stats_.evaluated,
                              .search_time_s = stats_.search_time_s});
}

bool Evaluator::budget_exhausted() const {
  return stats_.search_time_s >= options_.time_budget_s;
}

const Mapping& EvaluatorView::best() const {
  AM_REQUIRE(!eval_->top_.empty(), "no successful evaluation yet");
  return eval_->top_.front().mapping;
}

SearchResult Evaluator::finalize(std::string algorithm_name) {
  SearchResult result;
  result.algorithm = std::move(algorithm_name);

  // All (finalist, repeat) reruns are independent under derived seeds, so
  // they fan out across the pool as one batch and fold back in top-k order.
  const int repeats = options_.final_repeats;
  const std::size_t runs_per = static_cast<std::size_t>(repeats);
  std::vector<Mapping> candidates;
  std::vector<std::uint64_t> hashes;
  candidates.reserve(top_.size());
  hashes.reserve(top_.size());
  for (const Entry& entry : top_) {
    candidates.push_back(with_fallbacks(entry.mapping));
    hashes.push_back(entry.mapping.hash());
  }

  std::vector<RunOutcome> outcomes;
  const bool pre_executed =
      pool_ != nullptr && candidates.size() * runs_per > 1;
  if (pre_executed) {
    outcomes.resize(candidates.size() * runs_per);
    pool_->parallel_for(outcomes.size(), [&](std::size_t i) {
      const std::size_t e = i / runs_per;
      const int r = static_cast<int>(i % runs_per);
      outcomes[i] =
          execute_run(candidates[e], run_seed(hashes[e], r, kFinalSalt));
    });
  }

  double best_final = kInf;
  for (std::size_t e = 0; e < candidates.size(); ++e) {
    double sum = 0.0;
    int ok_runs = 0;
    for (int r = 0; r < repeats; ++r) {
      const RunOutcome out =
          pre_executed
              ? outcomes[e * runs_per + static_cast<std::size_t>(r)]
              : execute_run(candidates[e],
                            run_seed(hashes[e], r, kFinalSalt));
      if (!out.ok) {
        // Same accounting as the search loop: a failed rerun still costs
        // observation time.
        stats_.search_time_s += failure_observation_cost();
        stats_.evaluation_time_s += failure_observation_cost();
        break;
      }
      sum += out.objective;
      stats_.search_time_s += out.total_seconds;
      stats_.evaluation_time_s += out.total_seconds;
      ++ok_runs;
    }
    if (ok_runs == repeats) {
      const double mean = sum / ok_runs;
      if (mean < best_final) {
        best_final = mean;
        result.best = top_[e].mapping;
      }
    }
  }
  AM_CHECK(best_final < kInf,
           "finalist protocol found no executable mapping");
  result.best_seconds = best_final;
  stats_.wall_time_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - wall_start_)
                           .count();
  result.stats = stats_;
  result.trajectory = trajectory_;
  result.profiles_db = export_profiles();
  return result;
}

}  // namespace automap
