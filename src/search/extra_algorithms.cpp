#include "src/search/extra_algorithms.hpp"

#include <algorithm>
#include <cmath>

#include "src/search/coordinate_descent.hpp"
#include "src/support/error.hpp"

namespace automap {

namespace {

/// Uniform valid mapping: processor among the task's variants, memory among
/// the kinds addressable from that processor.
Mapping random_valid_mapping(const TaskGraph& graph,
                             const MachineModel& machine, Rng& rng) {
  Mapping mapping(graph);
  for (const GroupTask& task : graph.tasks()) {
    TaskMapping& tm = mapping.at(task.id);
    tm.distribute = rng.bernoulli(0.5);
    tm.proc = (task.cost.has_gpu_variant() &&
               machine.has_proc_kind(ProcKind::kGpu) && rng.bernoulli(0.5))
                  ? ProcKind::kGpu
                  : ProcKind::kCpu;
    const auto mems = machine.memories_addressable_by(tm.proc);
    for (auto& priority : tm.arg_memories)
      priority = {mems[rng.uniform_index(mems.size())]};
  }
  return mapping;
}

/// Mutates `count` dimensions, keeping the mapping valid (memory choices
/// follow the processor's addressability; a processor flip re-homes
/// now-unaddressable arguments).
void mutate_valid(Mapping& mapping, const TaskGraph& graph,
                  const MachineModel& machine, Rng& rng, int count) {
  for (int i = 0; i < count; ++i) {
    const TaskId t(rng.uniform_index(graph.num_tasks()));
    const GroupTask& task = graph.task(t);
    TaskMapping& tm = mapping.at(t);
    const std::size_t dims = 2 + tm.arg_memories.size();
    const std::size_t dim = rng.uniform_index(dims);
    if (dim == 0) {
      tm.distribute = !tm.distribute;
      if (!tm.distribute) tm.blocked = false;
    } else if (dim == 1) {
      const ProcKind other =
          tm.proc == ProcKind::kCpu ? ProcKind::kGpu : ProcKind::kCpu;
      if (other == ProcKind::kGpu &&
          (!task.cost.has_gpu_variant() ||
           !machine.has_proc_kind(ProcKind::kGpu)))
        continue;
      tm.proc = other;
      for (auto& priority : tm.arg_memories) {
        if (!priority.empty() &&
            !machine.addressable(tm.proc, priority.front()))
          priority = {machine.best_memory_for(tm.proc)};
      }
    } else {
      const auto mems = machine.memories_addressable_by(tm.proc);
      tm.arg_memories[dim - 2] = {mems[rng.uniform_index(mems.size())]};
    }
  }
}

}  // namespace

SearchResult run_random_search(const Simulator& sim,
                               const SearchOptions& options) {
  Evaluator eval(sim, options);
  Rng rng(mix64(options.seed) ^ 0x2545f4914f6cdd1dULL);
  const Mapping start = search_starting_point(sim.graph(), sim.machine());
  eval.journal_search_begin("AM-Random", start);
  (void)eval.evaluate(start);
  // Random search has no natural end; without a budget, sample as many
  // candidates as a five-rotation CCD would propose.
  const std::size_t cap = std::isfinite(options.time_budget_s)
                              ? std::size_t{1} << 20
                              : 2500;
  // Proposals are independent of evaluation results, so random search is
  // the ideal batch customer: draw a block of candidates, submit it whole.
  // evaluate_batch folds with the same per-candidate budget checks the
  // serial loop made, so results are bit-identical to one-at-a-time
  // evaluation for every block size and thread count.
  constexpr std::size_t kBlock = 64;
  for (std::size_t i = 0; i < cap && !eval.budget_exhausted();) {
    const std::size_t block = std::min(kBlock, cap - i);
    std::vector<Mapping> batch;
    batch.reserve(block);
    for (std::size_t b = 0; b < block; ++b) {
      Mapping candidate =
          random_valid_mapping(sim.graph(), sim.machine(), rng);
      for (const TaskId t : options.frozen_tasks)
        candidate.at(t) = start.at(t);
      batch.push_back(std::move(candidate));
    }
    // Random search never compares candidates against each other — only
    // the finalist list matters — so the interest bound is zero and the
    // evaluator censors at the k-th finalist mean.
    const std::size_t folded =
        eval.evaluate_batch(batch, /*interest_bound_s=*/0.0).size();
    if (folded < batch.size()) break;  // budget ran out mid-block
    i += folded;
  }
  return eval.finalize("AM-Random");
}

SearchResult run_simulated_annealing(const Simulator& sim,
                                     const SearchOptions& options,
                                     const AnnealingConfig& config) {
  AM_REQUIRE(config.initial_temperature > 0.0, "temperature must be > 0");
  AM_REQUIRE(config.cooling > 0.0 && config.cooling < 1.0,
             "cooling must be in (0, 1)");
  Evaluator eval(sim, options);
  Rng rng(mix64(options.seed) ^ 0x94d049bb133111ebULL);

  Mapping current = search_starting_point(sim.graph(), sim.machine());
  eval.journal_search_begin("AM-Anneal", current);
  double current_cost = eval.evaluate(current);
  AM_CHECK(std::isfinite(current_cost), "starting point failed to execute");

  double temperature = config.initial_temperature * current_cost;
  const std::size_t cap = std::isfinite(options.time_budget_s)
                              ? std::size_t{1} << 20
                              : 2500;
  for (std::size_t i = 0; i < cap && !eval.budget_exhausted(); ++i) {
    Mapping candidate = current;
    mutate_valid(candidate, sim.graph(), sim.machine(), rng,
                 config.mutations);
    for (const TaskId t : options.frozen_tasks)
      candidate.at(t) = current.at(t);
    const double cost = eval.evaluate(candidate);
    const bool accept =
        cost < current_cost ||
        (std::isfinite(cost) &&
         rng.uniform() < std::exp((current_cost - cost) / temperature));
    if (accept) {
      current = std::move(candidate);
      current_cost = cost;
    }
    temperature *= config.cooling;
  }
  return eval.finalize("AM-Anneal");
}

SearchResult run_heft_static(const Simulator& sim,
                             const SearchOptions& options) {
  Evaluator eval(sim, options);
  const TaskGraph& graph = sim.graph();
  const MachineModel& machine = sim.machine();

  Mapping mapping = search_starting_point(graph, machine);
  const FrozenTaskSet frozen(options.frozen_tasks, graph.num_tasks());
  for (const GroupTask& task : graph.tasks()) {
    if (frozen.contains(task.id)) continue;
    TaskMapping& tm = mapping.at(task.id);
    tm.distribute = true;

    // Static per-kind estimate: wave-compute plus memory traffic from the
    // kind's single (best) memory — precisely the "one memory per
    // processor" model of HEFT-era schedulers (§6).
    double best_estimate = std::numeric_limits<double>::infinity();
    for (const ProcKind k : machine.proc_kinds()) {
      if (k == ProcKind::kGpu && !task.cost.has_gpu_variant()) continue;
      const ProcGroup& pg = machine.proc_group(k);
      const double per_point = k == ProcKind::kGpu
                                   ? task.cost.gpu_seconds_per_point
                                   : task.cost.cpu_seconds_per_point;
      const double waves = std::ceil(static_cast<double>(task.num_points) /
                                     pg.count_per_node);
      double estimate =
          waves * (pg.launch_overhead_s + per_point / pg.speed);
      const MemKind mem = machine.best_memory_for(k);
      for (const CollectionUse& use : task.args) {
        estimate += static_cast<double>(graph.collection_bytes(
                        use.collection)) *
                    use.access_fraction /
                    machine.affinity(k, mem).bandwidth_bytes_per_s;
      }
      if (estimate < best_estimate) {
        best_estimate = estimate;
        tm.proc = k;
      }
    }
    tm.arg_memories.assign(task.args.size(),
                           {machine.best_memory_for(tm.proc)});
  }

  eval.journal_search_begin("HEFT-static", mapping);
  (void)eval.evaluate(mapping);
  return eval.finalize("HEFT-static");
}

SearchResult run_ccd_multistart(const Simulator& sim,
                                const SearchOptions& options,
                                int extra_starts) {
  AM_REQUIRE(extra_starts >= 0, "negative extra start count");
  Rng rng(mix64(options.seed) ^ 0xd6e8feb86659fd93ULL);

  // First pass from the §4.1 starting point; each further pass begins from
  // a random valid mapping and inherits the accumulated profiles database,
  // so re-proposed candidates are free and the finalist pool spans every
  // pass. The passes always export their database (that is the chaining
  // mechanism), whatever the caller asked for the final result.
  SearchOptions chained = options;
  chained.export_profiles_db = true;
  SearchResult result = run_ccd(sim, chained);
  SearchStats combined = result.stats;

  for (int s = 0; s < extra_starts; ++s) {
    if (std::isfinite(options.time_budget_s) &&
        combined.search_time_s >= options.time_budget_s)
      break;
    SearchOptions next = chained;
    next.seed = rng.next();
    next.profiles_seed = result.profiles_db;
    if (std::isfinite(options.time_budget_s))
      next.time_budget_s = options.time_budget_s - combined.search_time_s;
    const Mapping start =
        random_valid_mapping(sim.graph(), sim.machine(), rng);
    result = run_ccd_from(sim, next, start);
    combined.suggested += result.stats.suggested;
    combined.evaluated += result.stats.evaluated;
    combined.invalid += result.stats.invalid;
    combined.oom += result.stats.oom;
    combined.search_time_s += result.stats.search_time_s;
    combined.evaluation_time_s += result.stats.evaluation_time_s;
  }

  result.algorithm = "AM-CCD-multistart";
  result.stats = combined;
  if (!options.export_profiles_db) result.profiles_db.clear();
  return result;
}

}  // namespace automap
