#include "src/search/algorithms.hpp"

#include "src/search/coordinate_descent.hpp"
#include "src/search/ensemble_tuner.hpp"
#include "src/search/extra_algorithms.hpp"

namespace automap {

const std::vector<SearchAlgorithmInfo>& search_algorithms() {
  static const std::vector<SearchAlgorithmInfo> registry = {
      {"ccd", "AM-CCD",
       "constrained coordinate-wise descent (paper default)",
       [](const Simulator& sim, const SearchOptions& options) {
         return run_ccd(sim, options);
       }},
      {"cd", "AM-CD", "plain coordinate-wise descent",
       [](const Simulator& sim, const SearchOptions& options) {
         return run_cd(sim, options);
       }},
      {"ot", "AM-OT", "OpenTuner-style ensemble tuner",
       [](const Simulator& sim, const SearchOptions& options) {
         return run_ensemble_tuner(sim, options);
       }},
      {"random", "AM-Random", "uniform random sampling of valid mappings",
       [](const Simulator& sim, const SearchOptions& options) {
         return run_random_search(sim, options);
       }},
      {"anneal", "AM-Anneal", "simulated annealing over valid mappings",
       [](const Simulator& sim, const SearchOptions& options) {
         return run_simulated_annealing(sim, options);
       }},
      {"heft", "HEFT-static", "HEFT-style static list scheduler (no search)",
       [](const Simulator& sim, const SearchOptions& options) {
         return run_heft_static(sim, options);
       }},
      {"multistart", "AM-CCD-multistart",
       "CCD from the default plus random starting points",
       [](const Simulator& sim, const SearchOptions& options) {
         return run_ccd_multistart(sim, options);
       }},
  };
  return registry;
}

const SearchAlgorithmInfo* find_search_algorithm(std::string_view name) {
  for (const SearchAlgorithmInfo& info : search_algorithms())
    if (info.name == name) return &info;
  return nullptr;
}

std::string search_algorithm_names() {
  std::string names;
  for (const SearchAlgorithmInfo& info : search_algorithms()) {
    if (!names.empty()) names += '|';
    names += info.name;
  }
  return names;
}

}  // namespace automap
