#pragma once

// Stencil: 2D structured 9-point star stencil from the Parallel Research
// Kernels (Fig. 5: 2 tasks, 12 collection args). Per time step:
//
//   stencil(out, in, halos, weights) — applies the star to the interior,
//     reading four halo strips owned by neighboring blocks;
//   increment(in, boundaries)        — bumps the input array, rewriting the
//     boundary strips the neighbors read as halos next iteration.
//
// The boundary and halo strips of the `in` region overlap — the halo
// exchange — giving CCD its co-location structure, and making the
// System-vs-ZeroCopy placement distinction matter for CPU mappings
// (Zero-Copy is one allocation, System is one per socket; §5).

#include "src/apps/app.hpp"

namespace automap {

struct StencilConfig {
  /// Grid extent (the paper's labels, e.g. 2000x2000).
  long grid_x = 500;
  long grid_y = 500;
  int num_nodes = 1;
  int iterations = 10;
  double noise_sigma = 0.05;
};

/// Fig. 6b weak-scaled series: step 0..10 selects the grid size; node-count
/// doublings double x then y alternately (500x500 -> 1000x500 -> 1000x1000
/// -> 2000x1000).
[[nodiscard]] StencilConfig stencil_config_for(int num_nodes, int step);

/// "2000x2000"-style label.
[[nodiscard]] std::string stencil_input_label(const StencilConfig& config);

[[nodiscard]] BenchmarkApp make_stencil(const StencilConfig& config);

}  // namespace automap
