#include "src/apps/pennant.hpp"

#include <array>
#include <map>

#include "src/runtime/program.hpp"
#include "src/support/error.hpp"

namespace automap {

namespace {
constexpr int kPiecesPerNode = 4;
constexpr std::uint64_t kElem = 8;

/// Cost classes, per zone on a reference core / a whole GPU. "Heavy" tasks
/// (QCS, force evaluation) dominate; "light" ones are pointwise sweeps;
/// "scalar" tasks (dt reductions) are nearly free and overhead-bound.
enum class CostClass { kHeavy, kMedium, kLight, kScalar };

struct ClassCost {
  double cpu;
  double gpu;
};

ClassCost class_cost(CostClass c) {
  // Pennant is memory bound (unstructured gathers/scatters, ~1 byte/flop),
  // so compute costs are low and most of a task's time comes from the
  // simulator's bandwidth model — which is why demoting collections to
  // Zero-Copy is so expensive for GPU mappings (Fig. 8).
  switch (c) {
    case CostClass::kHeavy:
      return {0.050e-6, 1.00e-9};
    case CostClass::kMedium:
      return {0.025e-6, 0.50e-9};
    case CostClass::kLight:
      return {0.012e-6, 0.25e-9};
    case CostClass::kScalar:
      return {2e-6, 2e-6};  // per *piece*, not per zone
  }
  AM_UNREACHABLE("bad CostClass");
}

/// Collection identifiers used by the task table.
enum Col : int {
  // zone fields
  kZRho, kZEnergy, kZPressure, kZVol, kZVol0, kZArea, kZMass, kZWrate,
  kZUc, kZDvel, kZEtot,
  // point fields (force accumulation splits into private/master/ghost)
  kPX, kPX0, kPXhalf, kPU, kPU0, kPAccel, kPMass, kPFPrv, kPFMst, kPFGst,
  // side fields
  kSArea, kSVol, kSSurfp, kSMass, kSForce, kSLen, kSQdiv, kSQcn,
  // misc
  kMeshTopo, kDt, kDtHydro, kOutBuf,
  kNumCols,
};

struct ArgSpec {
  Col col;
  Privilege priv;
  double fraction;
};

struct TaskSpec {
  const char* name;
  CostClass cost;
  std::vector<ArgSpec> args;
};

/// The 31-task PENNANT cycle. Argument totals sum to 97 (checked below).
std::vector<TaskSpec> task_table() {
  const double kF = 1.0;   // full sweep
  const double kH = 0.5;   // partial sweep
  return {
      {"adv_pos_half", CostClass::kLight,
       {{kPX0, Privilege::kReadOnly, kF},
        {kPU0, Privilege::kReadOnly, kF},
        {kPXhalf, Privilege::kWriteOnly, kF}}},
      {"calc_ctrs_half", CostClass::kMedium,
       {{kPXhalf, Privilege::kReadOnly, kF},
        {kMeshTopo, Privilege::kReadOnly, kH},
        {kSArea, Privilege::kWriteOnly, kF}}},
      {"calc_vols_half", CostClass::kMedium,
       {{kPXhalf, Privilege::kReadOnly, kF},
        {kZVol, Privilege::kWriteOnly, kF},
        {kSVol, Privilege::kWriteOnly, kF}}},
      {"calc_surf_vecs", CostClass::kLight,
       {{kSArea, Privilege::kReadOnly, kF},
        {kSSurfp, Privilege::kWriteOnly, kF}}},
      {"calc_edge_len", CostClass::kLight,
       {{kPXhalf, Privilege::kReadOnly, kF},
        {kSArea, Privilege::kReadOnly, kH},
        {kSLen, Privilege::kWriteOnly, kF}}},
      {"calc_char_len", CostClass::kLight,
       {{kSLen, Privilege::kReadOnly, kF},
        {kZArea, Privilege::kWriteOnly, kF}}},
      {"calc_rho_half", CostClass::kLight,
       {{kZMass, Privilege::kReadOnly, kF},
        {kZVol, Privilege::kReadOnly, kF},
        {kZRho, Privilege::kWriteOnly, kF}}},
      {"calc_crnr_mass", CostClass::kMedium,
       {{kZRho, Privilege::kReadOnly, kF},
        {kZArea, Privilege::kReadOnly, kF},
        {kSMass, Privilege::kWriteOnly, kF},
        {kPFMst, Privilege::kReduce, kH}}},
      {"calc_state_half", CostClass::kHeavy,
       {{kZPressure, Privilege::kReadWrite, kF},
        {kZEnergy, Privilege::kReadOnly, kF},
        {kZRho, Privilege::kReadOnly, kF},
        {kDt, Privilege::kReadOnly, kF},
        {kZWrate, Privilege::kWriteOnly, kF}}},
      {"calc_force_pgas", CostClass::kMedium,
       {{kZPressure, Privilege::kReadOnly, kF},
        {kSSurfp, Privilege::kReadOnly, kF},
        {kSForce, Privilege::kWriteOnly, kF}}},
      {"calc_force_tts", CostClass::kMedium,
       {{kZArea, Privilege::kReadOnly, kF},
        {kZRho, Privilege::kReadOnly, kF},
        {kSForce, Privilege::kReadWrite, kF}}},
      {"qcs_zone_center_velocity", CostClass::kMedium,
       {{kPU, Privilege::kReadOnly, kF},
        {kMeshTopo, Privilege::kReadOnly, kH},
        {kZUc, Privilege::kWriteOnly, kF}}},
      {"qcs_corner_divergence", CostClass::kHeavy,
       {{kPU, Privilege::kReadOnly, kF},
        {kPXhalf, Privilege::kReadOnly, kF},
        {kZUc, Privilege::kReadOnly, kF},
        {kSQdiv, Privilege::kWriteOnly, kF}}},
      {"qcs_qcn_force", CostClass::kHeavy,
       {{kSQdiv, Privilege::kReadOnly, kF},
        {kZRho, Privilege::kReadOnly, kF},
        {kSQcn, Privilege::kWriteOnly, kF}}},
      {"qcs_force", CostClass::kMedium,
       {{kSQcn, Privilege::kReadOnly, kF},
        {kSForce, Privilege::kReadWrite, kF}}},
      {"qcs_vel_diff", CostClass::kMedium,
       {{kPU, Privilege::kReadOnly, kF},
        {kPXhalf, Privilege::kReadOnly, kH},
        {kZDvel, Privilege::kWriteOnly, kF}}},
      {"sum_crnr_force", CostClass::kMedium,
       {{kSForce, Privilege::kReadOnly, kF},
        {kPFPrv, Privilege::kReduce, kF},
        {kPFMst, Privilege::kReduce, kF},
        {kPFGst, Privilege::kReduce, kF}}},
      {"apply_fixed_bc", CostClass::kLight,
       {{kPFMst, Privilege::kReadWrite, kH},
        {kPU0, Privilege::kReadWrite, kH}}},
      {"calc_accel", CostClass::kLight,
       {{kPFPrv, Privilege::kReadOnly, kF},
        {kPFMst, Privilege::kReadOnly, kF},
        {kPMass, Privilege::kReadOnly, kF},
        {kPAccel, Privilege::kWriteOnly, kF}}},
      {"adv_pos_full", CostClass::kLight,
       {{kPX0, Privilege::kReadOnly, kF},
        {kPU0, Privilege::kReadOnly, kF},
        {kPAccel, Privilege::kReadOnly, kF},
        {kPX, Privilege::kWriteOnly, kF},
        {kPU, Privilege::kWriteOnly, kF}}},
      {"calc_ctrs_full", CostClass::kMedium,
       {{kPX, Privilege::kReadOnly, kF},
        {kMeshTopo, Privilege::kReadOnly, kH},
        {kSArea, Privilege::kReadWrite, kF}}},
      {"calc_vols_full", CostClass::kMedium,
       {{kPX, Privilege::kReadOnly, kF},
        {kZVol, Privilege::kReadWrite, kF},
        {kSVol, Privilege::kReadWrite, kF}}},
      {"calc_work", CostClass::kHeavy,
       {{kSForce, Privilege::kReadOnly, kF},
        {kPU0, Privilege::kReadOnly, kF},
        {kPU, Privilege::kReadOnly, kF},
        {kPXhalf, Privilege::kReadOnly, kF},
        {kZEnergy, Privilege::kReadWrite, kF}}},
      {"calc_work_rate", CostClass::kLight,
       {{kZVol, Privilege::kReadOnly, kF},
        {kZPressure, Privilege::kReadOnly, kF},
        {kZWrate, Privilege::kReadWrite, kF},
        {kDt, Privilege::kReadOnly, kF}}},
      {"calc_energy", CostClass::kLight,
       {{kZEnergy, Privilege::kReadOnly, kF},
        {kZMass, Privilege::kReadOnly, kF},
        {kZEtot, Privilege::kWriteOnly, kF}}},
      {"calc_rho_full", CostClass::kLight,
       {{kZMass, Privilege::kReadOnly, kF},
        {kZVol, Privilege::kReadOnly, kF},
        {kZRho, Privilege::kReadWrite, kF}}},
      {"calc_dt_courant", CostClass::kMedium,
       {{kZDvel, Privilege::kReadOnly, kF},
        {kZArea, Privilege::kReadOnly, kF},
        {kDtHydro, Privilege::kWriteOnly, kF}}},
      {"calc_dt_volume", CostClass::kLight,
       {{kZVol, Privilege::kReadOnly, kF},
        {kZVol0, Privilege::kReadWrite, kF},
        {kDtHydro, Privilege::kReadWrite, kF}}},
      {"calc_dt_hydro", CostClass::kScalar,
       {{kDtHydro, Privilege::kReadOnly, kF},
        {kDt, Privilege::kReadWrite, kF}}},
      {"global_sum_dt", CostClass::kScalar,
       {{kDt, Privilege::kReadWrite, kF}}},
      {"write_output", CostClass::kLight,
       {{kPX, Privilege::kReadOnly, kH},
        {kZRho, Privilege::kReadOnly, kH},
        {kOutBuf, Privilege::kWriteOnly, kF}}},
  };
}
}  // namespace

PennantConfig pennant_config_for(int num_nodes, int step) {
  AM_REQUIRE(num_nodes >= 1, "need at least one node");
  AM_REQUIRE(step >= 0 && step < 7, "the Fig. 6c series has 7 inputs");
  PennantConfig c;
  c.num_nodes = num_nodes;
  c.zones_x = 320;
  c.zones_y = 90L * (1L << step) * num_nodes;
  return c;
}

std::string pennant_input_label(const PennantConfig& config) {
  return std::to_string(config.zones_x) + "x" +
         std::to_string(config.zones_y);
}

namespace {

/// Builds the Program; factored out so the footprint estimator can share
/// geometry constants with the graph builder.
struct Geometry {
  long nz;  // zones
  long np;  // points (~zones for a quad mesh)
  long ns;  // sides (4 per zone)
};

Geometry geometry(const PennantConfig& c) {
  const long nz = c.zones_x * c.zones_y;
  return {.nz = nz, .np = nz, .ns = 4 * nz};
}

/// Length (elements) of one collection given the geometry.
long col_elems(Col col, const Geometry& g) {
  switch (col) {
    case kZRho: case kZEnergy: case kZPressure: case kZVol: case kZVol0:
    case kZArea: case kZMass: case kZWrate: case kZUc: case kZDvel:
    case kZEtot:
      return g.nz;
    case kPX: case kPX0: case kPXhalf: case kPU: case kPU0: case kPAccel:
    case kPMass:
      return 2 * g.np;  // 2-D vectors
    case kPFPrv:
      return (3 * 2 * g.np) / 4;
    case kPFMst: case kPFGst:
      return (2 * g.np) / 4;
    case kSArea: case kSVol: case kSSurfp: case kSMass: case kSForce:
    case kSLen: case kSQdiv: case kSQcn:
      return 2 * g.ns;  // 2-D vectors per side
    case kMeshTopo:
      return g.ns;  // connectivity
    case kDt: case kDtHydro:
      return 64;  // per-piece scalars
    case kOutBuf:
      return g.nz / 8;
    case kNumCols:
      break;
  }
  AM_UNREACHABLE("bad Col");
}

}  // namespace

std::uint64_t pennant_total_bytes(const PennantConfig& config) {
  const Geometry g = geometry(config);
  std::uint64_t total = 0;
  for (int c = 0; c < kNumCols; ++c)
    total += static_cast<std::uint64_t>(col_elems(static_cast<Col>(c), g)) *
             kElem;
  return total;
}

long pennant_max_fb_zones_y(std::uint64_t fb_capacity_bytes, int num_nodes,
                            int gpus_per_node) {
  // Footprint is linear in zones_y; solve by scaling from a reference.
  PennantConfig ref;
  ref.zones_x = 320;
  ref.zones_y = 1024;
  const double ref_bytes = static_cast<double>(pennant_total_bytes(ref));
  const double budget = static_cast<double>(fb_capacity_bytes) *
                        static_cast<double>(num_nodes) *
                        static_cast<double>(gpus_per_node);
  return static_cast<long>(static_cast<double>(ref.zones_y) * budget /
                           ref_bytes);
}

BenchmarkApp make_pennant(const PennantConfig& config) {
  const Geometry g = geometry(config);
  const int pieces = kPiecesPerNode * config.num_nodes;

  Program p;

  // One region per mesh entity class; fields live in disjoint slices so
  // that different fields never falsely alias, while the master and ghost
  // force sets genuinely overlap (ghosts are neighbours' masters).
  long zone_extent = 0, point_extent = 0, side_extent = 0, misc_extent = 0;
  std::array<long, kNumCols> offset{};
  auto region_of = [&](Col c) -> int {
    if (c <= kZEtot) return 0;
    if (c <= kPFGst) return 1;
    if (c <= kSQcn) return 2;
    return 3;
  };
  for (int c = 0; c < kNumCols; ++c) {
    long* extent = nullptr;
    switch (region_of(static_cast<Col>(c))) {
      case 0: extent = &zone_extent; break;
      case 1: extent = &point_extent; break;
      case 2: extent = &side_extent; break;
      default: extent = &misc_extent; break;
    }
    offset[c] = *extent;
    *extent += col_elems(static_cast<Col>(c), g);
  }
  // Overlap: the ghost force set covers the tail 80 % of the master set
  // (most master points are some neighbour's ghost).
  const long mst_len = col_elems(kPFMst, g);
  offset[kPFGst] = offset[kPFMst] + mst_len / 5;
  point_extent = std::max(point_extent,
                          offset[kPFGst] + col_elems(kPFGst, g));

  const RegionId zones = p.add_region("zones", Rect::line(0, zone_extent - 1),
                                      kElem);
  const RegionId points =
      p.add_region("points", Rect::line(0, point_extent - 1), kElem);
  const RegionId sides =
      p.add_region("sides", Rect::line(0, side_extent - 1), kElem);
  const RegionId misc =
      p.add_region("misc", Rect::line(0, misc_extent - 1), kElem);

  static constexpr const char* kColNames[kNumCols] = {
      "z_rho", "z_energy", "z_pressure", "z_vol", "z_vol0", "z_area",
      "z_mass", "z_wrate", "z_uc", "z_dvel", "z_etot",
      "p_x", "p_x0", "p_xhalf", "p_u", "p_u0", "p_accel", "p_mass",
      "p_f_private", "p_f_master", "p_f_ghost",
      "s_area", "s_vol", "s_surfp", "s_mass", "s_force", "s_len", "s_qdiv",
      "s_qcn", "mesh_topo", "dt", "dt_hydro", "out_buf"};

  std::array<CollectionId, kNumCols> cols{};
  for (int c = 0; c < kNumCols; ++c) {
    const RegionId region =
        region_of(static_cast<Col>(c)) == 0   ? zones
        : region_of(static_cast<Col>(c)) == 1 ? points
        : region_of(static_cast<Col>(c)) == 2 ? sides
                                              : misc;
    cols[c] = p.add_collection(
        region, kColNames[c],
        Rect::line(offset[c], offset[c] + col_elems(static_cast<Col>(c), g) -
                                  1));
  }

  const double zones_per_piece =
      static_cast<double>(g.nz) / static_cast<double>(pieces);

  for (const TaskSpec& spec : task_table()) {
    const ClassCost cc = class_cost(spec.cost);
    double cpu, gpu;
    if (spec.cost == CostClass::kScalar) {
      cpu = cc.cpu;
      gpu = cc.gpu;
    } else {
      cpu = cc.cpu * zones_per_piece;
      gpu = cc.gpu * zones_per_piece;
    }
    std::vector<CollectionUse> args;
    args.reserve(spec.args.size());
    for (const ArgSpec& a : spec.args)
      args.push_back({cols[a.col], a.priv, a.fraction});
    p.launch(spec.name, pieces,
             {.cpu_seconds_per_point = cpu, .gpu_seconds_per_point = gpu},
             std::move(args));
  }

  BenchmarkApp app;
  app.name = "pennant";
  app.input = pennant_input_label(config);
  app.num_nodes = config.num_nodes;
  app.graph = p.lower();
  app.sim = {.iterations = config.iterations,
             .noise_sigma = config.noise_sigma};

  AM_CHECK(app.graph.num_tasks() == 31, "pennant has 31 tasks (Fig. 5)");
  AM_CHECK(app.graph.num_collection_args() == 97,
           "pennant has 97 collection arguments (Fig. 5)");
  return app;
}

}  // namespace automap
