#pragma once

// Circuit: distributed electrical circuit simulation (Bauer et al., SC'12) —
// the original Legion demonstration application. The circuit is a graph of
// nodes and wires partitioned into pieces; per-piece node sets split into
// *private* (only this piece), *shared* (read by neighbors) and *ghost*
// (neighbors' shared nodes), so the shared and ghost collections overlap —
// the structure CCD's co-location constraints act on.
//
// Three group tasks per time step (Fig. 5: 3 tasks, 15 collection args):
//   calc_new_currents (CNC) — iterative wire-current solve, compute heavy;
//   distribute_charge (DC)  — scatter/reduce charge into nodes;
//   update_voltages   (UV)  — pointwise voltage update.

#include "src/apps/app.hpp"

namespace automap {

struct CircuitConfig {
  /// Circuit nodes and wires per *piece* (the paper's input labels are the
  /// totals: label n50w200 with default pieces on 1 node = 50/200 per piece).
  int nodes_per_piece = 2;
  int wires_per_piece = 8;
  /// Total circuit nodes / wires (defines the input label and data sizes).
  long total_nodes = 50;
  long total_wires = 200;
  int num_nodes = 1;
  int iterations = 10;
  double noise_sigma = 0.05;
};

/// Builds the weak-scaled input series of Fig. 6a: on `num_nodes` nodes the
/// series starts at 50*2^(log2(num_nodes)) nodes... concretely the paper
/// runs {n50w200 ... n12800w51200} on 1 node and shifts the window upward
/// per node count. `step` indexes into that per-node-count series.
[[nodiscard]] CircuitConfig circuit_config_for(int num_nodes, int step);

/// Input label in the paper's format, e.g. "n800w3200".
[[nodiscard]] std::string circuit_input_label(const CircuitConfig& config);

/// Builds the application task graph.
[[nodiscard]] BenchmarkApp make_circuit(const CircuitConfig& config);

}  // namespace automap
