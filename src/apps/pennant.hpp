#pragma once

// Pennant: Lagrangian staggered-grid hydrodynamics on an unstructured mesh
// (Ferenbaugh 2014), the most complex benchmark in the suite (Fig. 5: 31
// tasks, 97 collection arguments). The mesh has zones, points and sides
// (zone corners); per-piece point sets split into private / master / ghost,
// where ghost points are other pieces' master points, so the master and
// ghost force-accumulation collections overlap (the halo structure CCD's
// co-location constraints act on).
//
// The task table below follows PENNANT's cycle structure: half-step
// position advance, geometry (centers/volumes/characteristic lengths),
// state and force evaluation (pressure, TTS, QCS artificial viscosity),
// corner-force reduction and ghost exchange, acceleration, full-step
// advance, work/energy updates and the dt reductions.

#include "src/apps/app.hpp"

namespace automap {

struct PennantConfig {
  /// Mesh extent: the paper's labels are zones_x x zones_y (e.g. 320x90).
  long zones_x = 320;
  long zones_y = 90;
  int num_nodes = 1;
  int iterations = 10;
  double noise_sigma = 0.05;
};

/// Fig. 6c weak-scaled series (step 0..6): zones_y doubles per step and per
/// node-count doubling; zones_x stays 320.
[[nodiscard]] PennantConfig pennant_config_for(int num_nodes, int step);

/// "320x90"-style label.
[[nodiscard]] std::string pennant_input_label(const PennantConfig& config);

[[nodiscard]] BenchmarkApp make_pennant(const PennantConfig& config);

/// Total bytes of all Pennant collections for a config — used by the
/// memory-constrained experiment (Fig. 8) to size inputs relative to the
/// Frame-Buffer capacity.
[[nodiscard]] std::uint64_t pennant_total_bytes(const PennantConfig& config);

/// Largest zones_y (for zones_x = 320) whose per-GPU footprint still fits
/// in `fb_capacity_bytes` on `num_nodes` nodes with `gpus_per_node` GPUs.
[[nodiscard]] long pennant_max_fb_zones_y(std::uint64_t fb_capacity_bytes,
                                          int num_nodes, int gpus_per_node);

}  // namespace automap
