#include "src/apps/maestro.hpp"

#include "src/runtime/program.hpp"
#include "src/support/error.hpp"

namespace automap {

namespace {
// Per-cell LF solver costs (reference core / whole GPU) — an explicit
// finite-difference compressible Navier-Stokes step. The scalar CPU path
// of the multi-species solver is slow per core (as in HTR's chemistry), so
// a large ensemble can outgrow the CPU pool's shadow behind the HF sample —
// that is what creates the Fig. 7 crossover between the two strategies.
constexpr double kFluxCpu = 0.80e-6, kFluxGpu = 2.0e-9;
constexpr double kLightCpu = 0.30e-6, kLightGpu = 0.5e-9;
// HF solver per-cell costs; the HF sample is large enough that its GPU
// time dominates an iteration.
constexpr double kHfCpu = 1.0e-6, kHfGpu = 8.0e-9;
}  // namespace

std::string maestro_input_label(const MaestroConfig& config) {
  return "lf" + std::to_string(config.num_lf_samples) + "@" +
         std::to_string(config.lf_resolution) + "^3";
}

BenchmarkApp make_maestro(const MaestroConfig& config) {
  AM_REQUIRE(config.num_lf_samples >= 0, "negative LF sample count");
  AM_REQUIRE(config.lf_resolution >= 4, "LF resolution too small");
  AM_REQUIRE(config.hf_resolution >= 8, "HF resolution too small");

  Program p;

  // --- high-fidelity sample: fills the Frame-Buffer of each node ----------
  // One point per node, weak-scaled; state + flux at 640 B/cell reach
  // ~14 GiB per node at the default 224^3 resolution.
  const long hf = config.hf_resolution;
  const long hf_cells_per_node = hf * hf * hf;
  const long hf_cells = hf_cells_per_node * config.num_nodes;
  const RegionId hf_region =
      p.add_region("hf_region", Rect::line(0, 2 * hf_cells - 1), 640);
  const CollectionId hf_state =
      p.add_collection(hf_region, "hf_state", Rect::line(0, hf_cells - 1));
  const CollectionId hf_flux = p.add_collection(
      hf_region, "hf_flux", Rect::line(hf_cells, 2 * hf_cells - 1));
  const RegionId hf_misc = p.add_region("hf_misc", Rect::line(0, 1023), 8);
  const CollectionId hf_stats =
      p.add_collection(hf_misc, "hf_stats", Rect::line(0, 1023));

  const double hf_pp = static_cast<double>(hf_cells_per_node);
  p.launch("hf_solve", config.num_nodes,
           {.cpu_seconds_per_point = kHfCpu * hf_pp,
            .gpu_seconds_per_point = kHfGpu * hf_pp},
           {{hf_state, Privilege::kReadWrite, 1.0},
            {hf_flux, Privilege::kReadWrite, 1.0}});
  p.launch("hf_statistics", config.num_nodes,
           {.cpu_seconds_per_point = kLightCpu * hf_pp * 0.05,
            .gpu_seconds_per_point = kLightGpu * hf_pp * 0.05},
           {{hf_state, Privilege::kReadOnly, 0.2},
            {hf_stats, Privilege::kReduce, 1.0}});

  // --- low-fidelity ensemble ----------------------------------------------
  // Group tasks with one point per LF sample; each sample is an independent
  // small volume, stacked into shared ensemble collections.
  const int samples = std::max(config.num_lf_samples, 0);
  if (samples > 0) {
    const long res = config.lf_resolution;
    const long cells = res * res * res;
    const long total = cells * samples;

    auto lf_field = [&](const char* name, std::uint64_t elem_bytes) {
      const RegionId r = p.add_region(std::string(name) + "_region",
                                      Rect::line(0, total - 1), elem_bytes);
      return p.add_collection(r, name, Rect::line(0, total - 1));
    };
    const CollectionId cons = lf_field("lf_conserved", 96);
    const CollectionId cons_old = lf_field("lf_conserved_old", 96);
    const CollectionId prim = lf_field("lf_primitive", 96);
    const CollectionId rhs = lf_field("lf_rhs", 96);
    const CollectionId mu = lf_field("lf_viscosity", 8);
    const RegionId lf_misc = p.add_region("lf_misc", Rect::line(0, 4095), 8);
    const CollectionId dt = p.add_collection(lf_misc, "lf_dt",
                                             Rect::line(0, 255));
    const CollectionId stats = p.add_collection(lf_misc, "lf_stats",
                                                Rect::line(256, 2047));
    const CollectionId sample_buf = p.add_collection(
        lf_misc, "lf_sample_buf", Rect::line(2048, 4031));
    const CollectionId qoi =
        p.add_collection(lf_misc, "lf_qoi", Rect::line(4032, 4095));

    const double pp = static_cast<double>(cells);
    const TaskCost flux{kFluxCpu * pp, kFluxGpu * pp};
    const TaskCost light{kLightCpu * pp, kLightGpu * pp};

    // The 13 LF tasks of Fig. 5, 30 collection arguments in total.
    for (const char* dir : {"lf_flux_x", "lf_flux_y", "lf_flux_z"}) {
      p.launch(dir, samples, flux,
               {{cons, Privilege::kReadOnly, 1.0},
                {prim, Privilege::kReadOnly, 1.0},
                {rhs, Privilege::kReduce, 1.0}});
    }
    p.launch("lf_viscous", samples, flux,
             {{prim, Privilege::kReadOnly, 1.0},
              {mu, Privilege::kReadOnly, 1.0},
              {rhs, Privilege::kReduce, 1.0}});
    p.launch("lf_transport", samples, light,
             {{prim, Privilege::kReadOnly, 1.0},
              {mu, Privilege::kWriteOnly, 1.0}});
    p.launch("lf_boundary", samples, light,
             {{prim, Privilege::kReadWrite, 0.2}});
    p.launch("lf_rk_substep", samples, light,
             {{cons, Privilege::kReadWrite, 1.0},
              {rhs, Privilege::kReadOnly, 1.0},
              {cons_old, Privilege::kReadOnly, 1.0}});
    p.launch("lf_rk_final", samples, light,
             {{cons, Privilege::kReadWrite, 1.0},
              {cons_old, Privilege::kReadWrite, 1.0}});
    p.launch("lf_primitives", samples, light,
             {{cons, Privilege::kReadOnly, 1.0},
              {prim, Privilege::kWriteOnly, 1.0}});
    p.launch("lf_dt", samples, light,
             {{prim, Privilege::kReadOnly, 0.5},
              {dt, Privilege::kWriteOnly, 1.0}});
    p.launch("lf_statistics", samples, light,
             {{prim, Privilege::kReadOnly, 0.5},
              {stats, Privilege::kReduce, 1.0}});
    p.launch("lf_sample_update", samples, light,
             {{cons, Privilege::kReadOnly, 0.2},
              {sample_buf, Privilege::kWriteOnly, 1.0}});
    p.launch("lf_reduce_qoi", samples, light,
             {{sample_buf, Privilege::kReadOnly, 1.0},
              {qoi, Privilege::kReduce, 1.0}});
  }

  BenchmarkApp app;
  app.name = "maestro";
  app.input = maestro_input_label(config);
  app.num_nodes = config.num_nodes;
  app.graph = p.lower();
  app.sim = {.iterations = config.iterations,
             .noise_sigma = config.noise_sigma};

  if (samples > 0) {
    AM_CHECK(maestro_lf_tasks(app).size() == 13,
             "maestro has 13 LF tasks (Fig. 5)");
    std::size_t lf_args = 0;
    for (const TaskId t : maestro_lf_tasks(app))
      lf_args += app.graph.task(t).args.size();
    AM_CHECK(lf_args == 30, "maestro has 30 LF collection args (Fig. 5)");
  }
  return app;
}

std::vector<TaskId> maestro_hf_tasks(const BenchmarkApp& app) {
  std::vector<TaskId> out;
  for (const GroupTask& t : app.graph.tasks())
    if (t.name.rfind("hf_", 0) == 0) out.push_back(t.id);
  return out;
}

std::vector<TaskId> maestro_lf_tasks(const BenchmarkApp& app) {
  std::vector<TaskId> out;
  for (const GroupTask& t : app.graph.tasks())
    if (t.name.rfind("lf_", 0) == 0) out.push_back(t.id);
  return out;
}

}  // namespace automap
