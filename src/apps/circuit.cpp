#include "src/apps/circuit.hpp"

#include <cmath>

#include "src/runtime/program.hpp"
#include "src/support/error.hpp"

namespace automap {

namespace {
/// Pieces per node: a modest over-decomposition, as the Legion circuit app
/// uses (enough pieces to spread over nodes, few enough that a single GPU's
/// per-point launch overhead stays visible at small inputs).
constexpr int kPiecesPerNode = 4;

// Per-element cost profile (reference processors; the machine's speed
// factor rescales). The wire-current solve iterates a dense per-wire
// update, so it is compute-heavy and strongly GPU-favoured; charge
// distribution and voltage update are light, memory-bound sweeps.
constexpr double kCncCpuPerWire = 1.5e-6;
constexpr double kCncGpuPerWire = 15e-9;
constexpr double kDcCpuPerWire = 0.30e-6;
constexpr double kDcGpuPerWire = 4e-9;
constexpr double kUvCpuPerNode = 0.30e-6;
constexpr double kUvGpuPerNode = 4e-9;

constexpr std::uint64_t kNodeStateBytes = 64;  // voltage, charge, caps, ...
constexpr std::uint64_t kWireStateBytes = 128;  // currents, RLC attributes
constexpr std::uint64_t kMetaBytes = 16;        // piece assignment entries
}  // namespace

CircuitConfig circuit_config_for(int num_nodes, int step) {
  AM_REQUIRE(num_nodes >= 1, "need at least one node");
  AM_REQUIRE(step >= 0 && step < 8, "the Fig. 6a series has 8 inputs");
  // Fig. 6a base series on one node; each node-count doubling shifts the
  // window up one doubling (weak scaling).
  static constexpr long kBaseNodes[8] = {50,   100,  200,   400,
                                         800,  1600, 6400, 12800};
  CircuitConfig c;
  c.num_nodes = num_nodes;
  c.total_nodes = kBaseNodes[step] * num_nodes;
  c.total_wires = 4 * c.total_nodes;
  const int pieces = kPiecesPerNode * num_nodes;
  c.nodes_per_piece = static_cast<int>(
      (c.total_nodes + pieces - 1) / pieces);
  c.wires_per_piece = static_cast<int>(
      (c.total_wires + pieces - 1) / pieces);
  return c;
}

std::string circuit_input_label(const CircuitConfig& config) {
  return "n" + std::to_string(config.total_nodes) + "w" +
         std::to_string(config.total_wires);
}

BenchmarkApp make_circuit(const CircuitConfig& config) {
  AM_REQUIRE(config.total_nodes > 0 && config.total_wires > 0,
             "circuit sizes must be positive");
  const int pieces = kPiecesPerNode * config.num_nodes;

  Program p;

  // Node region, split into private / shared / ghost views. Ghost nodes
  // *are* (a subset of) other pieces' shared nodes, so the ghost and shared
  // collections overlap — the co-location structure CCD exploits.
  const long n = config.total_nodes;
  const long shared_lo = (3 * n) / 4;   // last quarter of nodes is shared
  const long ghost_lo = shared_lo + n / 20;  // ghosts: most of the shared set
  const RegionId nodes =
      p.add_region("nodes", Rect::line(0, n - 1), kNodeStateBytes);
  const CollectionId priv =
      p.add_collection(nodes, "node_state_private",
                       Rect::line(0, shared_lo - 1));
  const CollectionId shared =
      p.add_collection(nodes, "node_state_shared",
                       Rect::line(shared_lo, n - 1));
  const CollectionId ghost =
      p.add_collection(nodes, "node_state_ghost",
                       Rect::line(ghost_lo, n - 1));
  // Attribute fields live in their own regions: they are distinct fields of
  // the node/wire structures, not aliases of the state, so they must not
  // alias the state collections in the dependence analysis.
  const RegionId node_attr_region =
      p.add_region("node_attrs", Rect::line(0, n - 1), 32);
  const CollectionId node_attrs =
      p.add_collection(node_attr_region, "node_attrs", Rect::line(0, n - 1));

  const RegionId wires =
      p.add_region("wires", Rect::line(0, config.total_wires - 1),
                   kWireStateBytes);
  const CollectionId wire_state =
      p.add_collection(wires, "wire_state",
                       Rect::line(0, config.total_wires - 1));
  const RegionId wire_attr_region = p.add_region(
      "wire_attrs", Rect::line(0, config.total_wires - 1), 48);
  const CollectionId wire_attrs =
      p.add_collection(wire_attr_region, "wire_attrs",
                       Rect::line(0, config.total_wires - 1));

  const RegionId meta =
      p.add_region("meta", Rect::line(0, pieces - 1), kMetaBytes);
  const CollectionId piece_meta =
      p.add_collection(meta, "piece_meta", Rect::line(0, pieces - 1));

  const double wpp = static_cast<double>(config.wires_per_piece);
  const double npp = static_cast<double>(config.nodes_per_piece);

  // calc_new_currents: iterative wire solve. Reads the voltages at both
  // endpoints of every wire (private, shared and ghost views), updates wire
  // currents. 6 collection arguments.
  p.launch("calc_new_currents", pieces,
           {.cpu_seconds_per_point = kCncCpuPerWire * wpp,
            .gpu_seconds_per_point = kCncGpuPerWire * wpp},
           {{wire_state, Privilege::kReadWrite, 1.0},
            {wire_attrs, Privilege::kReadOnly, 0.5},
            {priv, Privilege::kReadOnly, 0.5},
            {shared, Privilege::kReadOnly, 1.0},
            {ghost, Privilege::kReadOnly, 1.0},
            {piece_meta, Privilege::kReadOnly, 1.0}});

  // distribute_charge: scatter wire currents into node charges, reducing
  // into private, shared and ghost nodes. 5 collection arguments.
  p.launch("distribute_charge", pieces,
           {.cpu_seconds_per_point = kDcCpuPerWire * wpp,
            .gpu_seconds_per_point = kDcGpuPerWire * wpp},
           {{wire_state, Privilege::kReadOnly, 0.5},
            {priv, Privilege::kReduce, 0.5},
            {shared, Privilege::kReduce, 1.0},
            {ghost, Privilege::kReduce, 1.0},
            {piece_meta, Privilege::kReadOnly, 1.0}});

  // update_voltages: pointwise RC update of node voltages from charges.
  // 4 collection arguments.
  p.launch("update_voltages", pieces,
           {.cpu_seconds_per_point = kUvCpuPerNode * npp,
            .gpu_seconds_per_point = kUvGpuPerNode * npp},
           {{priv, Privilege::kReadWrite, 1.0},
            {shared, Privilege::kReadWrite, 1.0},
            {node_attrs, Privilege::kReadOnly, 0.5},
            {piece_meta, Privilege::kReadOnly, 1.0}});

  BenchmarkApp app;
  app.name = "circuit";
  app.input = circuit_input_label(config);
  app.num_nodes = config.num_nodes;
  app.graph = p.lower();
  app.sim = {.iterations = config.iterations,
             .noise_sigma = config.noise_sigma};

  AM_CHECK(app.graph.num_tasks() == 3, "circuit has 3 tasks (Fig. 5)");
  AM_CHECK(app.graph.num_collection_args() == 15,
           "circuit has 15 collection arguments (Fig. 5)");
  return app;
}

}  // namespace automap
