#include "src/apps/htr.hpp"

#include <array>
#include <cmath>

#include "src/runtime/program.hpp"
#include "src/support/error.hpp"

namespace automap {

namespace {
constexpr int kPiecesPerNode = 4;

// Per-cell costs on a reference core / a whole GPU. Finite-rate chemistry
// is the compute-dense phase (dozens of species, stiff source terms) and is
// strongly GPU-favoured; flux sweeps are memory bound.
constexpr double kFluxCpu = 0.20e-6, kFluxGpu = 2.0e-9;
constexpr double kChemCpu = 1.0e-6, kChemGpu = 8.0e-9;
constexpr double kViscCpu = 0.15e-6, kViscGpu = 1.5e-9;
constexpr double kFilterCpu = 0.10e-6, kFilterGpu = 1.0e-9;
constexpr double kLightCpu = 0.03e-6, kLightGpu = 0.4e-9;
constexpr double kBcCpu = 0.05e-6, kBcGpu = 0.6e-9;  // per face cell
}  // namespace

HtrConfig htr_config_for(int num_nodes, int step) {
  AM_REQUIRE(num_nodes >= 1, "need at least one node");
  AM_REQUIRE(step >= 0 && step < 5, "the Fig. 6d series has 5 inputs");
  HtrConfig c;
  c.num_nodes = num_nodes;
  c.cells_x = 8L << step;
  c.cells_y = (8L << step) * num_nodes;
  c.cells_z = 9L << step;
  return c;
}

std::string htr_input_label(const HtrConfig& config) {
  return std::to_string(config.cells_x) + "x" + std::to_string(config.cells_y) +
         "y" + std::to_string(config.cells_z) + "z";
}

BenchmarkApp make_htr(const HtrConfig& config) {
  const long cx = config.cells_x, cy = config.cells_y, cz = config.cells_z;
  AM_REQUIRE(cx >= 4 && cy >= 4 && cz >= 4, "HTR grid too small");
  const int pieces = kPiecesPerNode * config.num_nodes;
  const double cells = static_cast<double>(cx) * cy * cz;
  const double per_piece = cells / pieces;

  Program p;

  auto field = [&](const char* name, std::uint64_t elem_bytes) {
    const RegionId r = p.add_region(std::string(name) + "_region",
                                    Rect::box(0, cx - 1, 0, cy - 1, 0, cz - 1),
                                    elem_bytes);
    return p.add_collection(r, name, Rect::box(0, cx - 1, 0, cy - 1,
                                               0, cz - 1));
  };

  // Conserved and primitive state (5 flow variables + species mass
  // fractions, ~12 doubles per cell).
  const CollectionId cons = field("conserved", 96);
  const CollectionId cons_old = field("conserved_old", 96);
  const CollectionId rhs = field("rhs", 96);
  const CollectionId rates = field("chem_rates", 64);
  const CollectionId flux_x = field("flux_x", 96);
  const CollectionId flux_y = field("flux_y", 96);
  const CollectionId flux_z = field("flux_z", 96);
  const CollectionId vflux_x = field("visc_flux_x", 96);
  const CollectionId vflux_y = field("visc_flux_y", 96);
  const CollectionId vflux_z = field("visc_flux_z", 96);
  const CollectionId mu = field("viscosity", 8);
  const CollectionId kappa = field("conductivity", 8);
  const CollectionId sensor = field("shock_sensor", 8);
  const CollectionId metrics = field("grid_metrics", 24);

  // Primitive field region with six face-halo views: the halos overlap the
  // interior-adjacent boundary slabs of `prim`, so boundary-condition tasks
  // reading a neighbour's halo depend on compute_prim through the overlap.
  const RegionId prim_region = p.add_region(
      "primitive_region", Rect::box(0, cx - 1, 0, cy - 1, 0, cz - 1), 96);
  const CollectionId prim = p.add_collection(
      prim_region, "primitive", Rect::box(0, cx - 1, 0, cy - 1, 0, cz - 1));
  const long hx = std::max<long>(1, cx / 16);
  const long hy = std::max<long>(1, cy / 16);
  const long hz = std::max<long>(1, cz / 16);
  const std::array<CollectionId, 6> halos = {
      p.add_collection(prim_region, "halo_xlo",
                       Rect::box(0, hx - 1, 0, cy - 1, 0, cz - 1)),
      p.add_collection(prim_region, "halo_xhi",
                       Rect::box(cx - hx, cx - 1, 0, cy - 1, 0, cz - 1)),
      p.add_collection(prim_region, "halo_ylo",
                       Rect::box(0, cx - 1, 0, hy - 1, 0, cz - 1)),
      p.add_collection(prim_region, "halo_yhi",
                       Rect::box(0, cx - 1, cy - hy, cy - 1, 0, cz - 1)),
      p.add_collection(prim_region, "halo_zlo",
                       Rect::box(0, cx - 1, 0, cy - 1, 0, hz - 1)),
      p.add_collection(prim_region, "halo_zhi",
                       Rect::box(0, cx - 1, 0, cy - 1, cz - hz, cz - 1)),
  };

  // Small auxiliary data.
  const RegionId misc_region = p.add_region("misc", Rect::line(0, 1023), 8);
  const CollectionId dt = p.add_collection(misc_region, "dt",
                                           Rect::line(0, 63));
  const CollectionId stats = p.add_collection(misc_region, "stats",
                                              Rect::line(64, 511));
  const CollectionId filt_coef = p.add_collection(misc_region, "filter_coef",
                                                  Rect::line(512, 575));
  const CollectionId source = p.add_collection(misc_region, "injection_src",
                                               Rect::line(576, 1023));

  TaskCost flux_cost{kFluxCpu * per_piece, kFluxGpu * per_piece};
  TaskCost chem_cost{kChemCpu * per_piece, kChemGpu * per_piece};
  TaskCost visc_cost{kViscCpu * per_piece, kViscGpu * per_piece};
  TaskCost filter_cost{kFilterCpu * per_piece, kFilterGpu * per_piece};
  TaskCost light_cost{kLightCpu * per_piece, kLightGpu * per_piece};

  // --- convective fluxes (4 args each) -----------------------------------
  const struct {
    const char* name;
    CollectionId out;
  } conv[3] = {{"flux_div_x", flux_x}, {"flux_div_y", flux_y},
               {"flux_div_z", flux_z}};
  for (const auto& dir : conv) {
    p.launch(dir.name, pieces, flux_cost,
             {{cons, Privilege::kReadOnly, 1.0},
              {prim, Privilege::kReadOnly, 1.0},
              {metrics, Privilege::kReadOnly, 0.5},
              {dir.out, Privilege::kWriteOnly, 1.0}});
  }
  p.launch("update_rhs_convective", pieces, light_cost,
           {{flux_x, Privilege::kReadOnly, 1.0},
            {flux_y, Privilege::kReadOnly, 1.0},
            {flux_z, Privilege::kReadOnly, 1.0},
            {rhs, Privilege::kWriteOnly, 1.0}});

  // --- chemistry (compute dense) ------------------------------------------
  p.launch("chemistry_source", pieces, chem_cost,
           {{prim, Privilege::kReadOnly, 1.0},
            {rates, Privilege::kWriteOnly, 1.0}});
  p.launch("update_rhs_chemistry", pieces, light_cost,
           {{rates, Privilege::kReadOnly, 1.0},
            {rhs, Privilege::kReadWrite, 1.0}});

  // --- boundary conditions on the six face halos (2 args each) ------------
  const double face_cells[6] = {
      static_cast<double>(hx) * cy * cz, static_cast<double>(hx) * cy * cz,
      static_cast<double>(cx) * hy * cz, static_cast<double>(cx) * hy * cz,
      static_cast<double>(cx) * cy * hz, static_cast<double>(cx) * cy * hz};
  const char* bc_names[6] = {"bc_xlo", "bc_xhi", "bc_ylo",
                             "bc_yhi", "bc_zlo", "bc_zhi"};
  for (int f = 0; f < 6; ++f) {
    const double fc = face_cells[f] / pieces;
    p.launch(bc_names[f], pieces, {kBcCpu * fc, kBcGpu * fc},
             {{prim, Privilege::kReadWrite, 0.1},
              {halos[static_cast<std::size_t>(f)], Privilege::kReadOnly,
               1.0}});
  }

  // --- transport & viscous fluxes -----------------------------------------
  p.launch("transport_properties", pieces, light_cost,
           {{prim, Privilege::kReadOnly, 1.0},
            {mu, Privilege::kWriteOnly, 1.0},
            {kappa, Privilege::kWriteOnly, 1.0}});
  const struct {
    const char* name;
    CollectionId out;
  } visc[3] = {{"viscous_flux_x", vflux_x}, {"viscous_flux_y", vflux_y},
               {"viscous_flux_z", vflux_z}};
  for (const auto& dir : visc) {
    p.launch(dir.name, pieces, visc_cost,
             {{prim, Privilege::kReadOnly, 1.0},
              {mu, Privilege::kReadOnly, 1.0},
              {dir.out, Privilege::kWriteOnly, 1.0}});
  }
  p.launch("update_rhs_viscous", pieces, light_cost,
           {{vflux_x, Privilege::kReadOnly, 1.0},
            {vflux_y, Privilege::kReadOnly, 1.0},
            {vflux_z, Privilege::kReadOnly, 1.0},
            {rhs, Privilege::kReadWrite, 1.0}});

  // --- shock capturing & filters ------------------------------------------
  p.launch("shock_sensor", pieces, light_cost,
           {{prim, Privilege::kReadOnly, 1.0},
            {sensor, Privilege::kWriteOnly, 1.0}});
  for (const char* name : {"filter_x", "filter_y", "filter_z"}) {
    p.launch(name, pieces, filter_cost,
             {{cons, Privilege::kReadWrite, 1.0},
              {filt_coef, Privilege::kReadOnly, 1.0}});
  }
  p.launch("sponge_layer", pieces, light_cost,
           {{prim, Privilege::kReadWrite, 0.2}});
  p.launch("injection", pieces, light_cost,
           {{cons, Privilege::kReadWrite, 0.1},
            {source, Privilege::kReadOnly, 1.0}});

  // --- time integration -----------------------------------------------------
  p.launch("rk_substep", pieces, light_cost,
           {{cons, Privilege::kReadWrite, 1.0},
            {rhs, Privilege::kReadOnly, 1.0},
            {cons_old, Privilege::kReadOnly, 1.0},
            {dt, Privilege::kReadOnly, 1.0}});
  p.launch("rk_final", pieces, light_cost,
           {{cons, Privilege::kReadWrite, 1.0},
            {cons_old, Privilege::kReadWrite, 1.0}});
  p.launch("compute_primitives", pieces, light_cost,
           {{cons, Privilege::kReadOnly, 1.0},
            {prim, Privilege::kWriteOnly, 1.0}});
  p.launch("calc_dt", pieces, light_cost,
           {{prim, Privilege::kReadOnly, 1.0},
            {mu, Privilege::kReadOnly, 1.0},
            {dt, Privilege::kWriteOnly, 1.0}});
  p.launch("average_statistics", pieces, light_cost,
           {{prim, Privilege::kReadOnly, 0.5},
            {stats, Privilege::kReduce, 1.0}});

  BenchmarkApp app;
  app.name = "htr";
  app.input = htr_input_label(config);
  app.num_nodes = config.num_nodes;
  app.graph = p.lower();
  app.sim = {.iterations = config.iterations,
             .noise_sigma = config.noise_sigma};

  AM_CHECK(app.graph.num_tasks() == 28, "HTR has 28 tasks (Fig. 5)");
  AM_CHECK(app.graph.num_collection_args() == 72,
           "HTR has 72 collection arguments (Fig. 5)");
  return app;
}

}  // namespace automap
