#pragma once

// HTR: the Hypersonic Task-based Research solver (Di Renzo, Fu, Urzay 2020)
// — an exascale-oriented multi-physics (reacting compressible Navier-Stokes)
// code and the paper's flagship production application (Fig. 5: 28 tasks, 72
// collection arguments; Figs. 2 and 3 visualize its mappings).
//
// The cycle below follows HTR's structure: per-direction convective fluxes
// over a 3D structured grid, finite-rate chemistry (very compute-dense,
// strongly GPU-favoured), transport properties and per-direction viscous
// fluxes, boundary-condition tasks on six face halos (which overlap the
// primitive-variable field — CCD's co-location structure), shock sensors and
// filters, and Runge-Kutta time integration.

#include "src/apps/app.hpp"

namespace automap {

struct HtrConfig {
  /// Grid cells per dimension (the paper's labels, e.g. 64x64y72z).
  long cells_x = 8;
  long cells_y = 8;
  long cells_z = 9;
  int num_nodes = 1;
  int iterations = 10;
  double noise_sigma = 0.05;
};

/// Fig. 6d weak-scaled series (step 0..4): all dimensions double per step;
/// y doubles per node-count doubling (8x8y9z -> 8x16y9z on 2 nodes).
[[nodiscard]] HtrConfig htr_config_for(int num_nodes, int step);

/// "8x8y9z"-style label.
[[nodiscard]] std::string htr_input_label(const HtrConfig& config);

[[nodiscard]] BenchmarkApp make_htr(const HtrConfig& config);

}  // namespace automap
