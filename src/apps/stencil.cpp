#include "src/apps/stencil.hpp"

#include "src/runtime/program.hpp"
#include "src/support/error.hpp"

namespace automap {

namespace {
// The PRK stencil tiles finer than the other apps so CPU pools can engage
// more cores.
constexpr int kPiecesPerNode = 8;
constexpr int kRadius = 2;              // star stencil radius
constexpr std::uint64_t kElem = 8;      // double

// The stencil is ~18 flops/element, fully vectorizable and memory bound;
// increment is 1 flop/element. Costs per element on a reference core / a
// whole GPU.
constexpr double kStencilCpuPerElem = 0.9e-9;
constexpr double kStencilGpuPerElem = 0.02e-9;
constexpr double kIncrementCpuPerElem = 0.4e-9;
constexpr double kIncrementGpuPerElem = 0.008e-9;
}  // namespace

StencilConfig stencil_config_for(int num_nodes, int step) {
  AM_REQUIRE(num_nodes >= 1, "need at least one node");
  AM_REQUIRE(step >= 0 && step < 11, "the Fig. 6b series has 11 inputs");
  StencilConfig c;
  c.num_nodes = num_nodes;
  const long base = 500 * (step + 1);
  c.grid_x = base;
  c.grid_y = base;
  // Weak scaling: each node-count doubling doubles one dimension,
  // alternating x, y (500x500 -> 1000x500 -> 1000x1000 -> 2000x1000).
  int doublings = 0;
  for (int n = num_nodes; n > 1; n /= 2) ++doublings;
  for (int d = 0; d < doublings; ++d) {
    if (d % 2 == 0) {
      c.grid_x *= 2;
    } else {
      c.grid_y *= 2;
    }
  }
  return c;
}

std::string stencil_input_label(const StencilConfig& config) {
  return std::to_string(config.grid_x) + "x" + std::to_string(config.grid_y);
}

BenchmarkApp make_stencil(const StencilConfig& config) {
  AM_REQUIRE(config.grid_x > 4 * kRadius && config.grid_y > 4 * kRadius,
             "grid too small for the stencil radius");
  const int pieces = kPiecesPerNode * config.num_nodes;
  const long x = config.grid_x;
  const long y = config.grid_y;
  const double elems = static_cast<double>(x) * static_cast<double>(y);

  Program p;

  // `in` region: interior plus boundary strips written by increment and
  // halo strips read by stencil. A halo strip is a neighbour's boundary
  // strip, so the two overlap by kRadius columns/rows.
  const RegionId in_region =
      p.add_region("in", Rect::plane(0, x - 1, 0, y - 1), kElem);
  const CollectionId in_all =
      p.add_collection(in_region, "in", Rect::plane(0, x - 1, 0, y - 1));
  const CollectionId bnd_xm = p.add_collection(
      in_region, "boundary_xm", Rect::plane(0, kRadius - 1, 0, y - 1));
  const CollectionId bnd_xp = p.add_collection(
      in_region, "boundary_xp", Rect::plane(x - kRadius, x - 1, 0, y - 1));
  const CollectionId bnd_ym = p.add_collection(
      in_region, "boundary_ym", Rect::plane(0, x - 1, 0, kRadius - 1));
  const CollectionId bnd_yp = p.add_collection(
      in_region, "boundary_yp", Rect::plane(0, x - 1, y - kRadius, y - 1));
  const CollectionId halo_xm = p.add_collection(
      in_region, "halo_xm", Rect::plane(0, 2 * kRadius - 1, 0, y - 1));
  const CollectionId halo_xp = p.add_collection(
      in_region, "halo_xp", Rect::plane(x - 2 * kRadius, x - 1, 0, y - 1));
  const CollectionId halo_ym = p.add_collection(
      in_region, "halo_ym", Rect::plane(0, x - 1, 0, 2 * kRadius - 1));
  const CollectionId halo_yp = p.add_collection(
      in_region, "halo_yp", Rect::plane(0, x - 1, y - 2 * kRadius, y - 1));

  const RegionId out_region =
      p.add_region("out", Rect::plane(0, x - 1, 0, y - 1), kElem);
  const CollectionId out_all =
      p.add_collection(out_region, "out", Rect::plane(0, x - 1, 0, y - 1));

  const RegionId weights_region =
      p.add_region("weights", Rect::line(0, 31), kElem);
  const CollectionId weights =
      p.add_collection(weights_region, "weights", Rect::line(0, 31));

  const double per_piece = elems / static_cast<double>(pieces);

  // stencil: 7 collection arguments.
  p.launch("stencil", pieces,
           {.cpu_seconds_per_point = kStencilCpuPerElem * per_piece,
            .gpu_seconds_per_point = kStencilGpuPerElem * per_piece},
           {{out_all, Privilege::kWriteOnly, 1.0},
            {in_all, Privilege::kReadOnly, 1.0},
            {halo_xm, Privilege::kReadOnly, 1.0},
            {halo_xp, Privilege::kReadOnly, 1.0},
            {halo_ym, Privilege::kReadOnly, 1.0},
            {halo_yp, Privilege::kReadOnly, 1.0},
            {weights, Privilege::kReadOnly, 1.0}});

  // increment: 5 collection arguments. Writes the boundary strips that the
  // neighbours' stencil reads as halos next iteration (loop-carried
  // cross-collection dependences through the overlaps).
  p.launch("increment", pieces,
           {.cpu_seconds_per_point = kIncrementCpuPerElem * per_piece,
            .gpu_seconds_per_point = kIncrementGpuPerElem * per_piece},
           {{in_all, Privilege::kReadWrite, 1.0},
            {bnd_xm, Privilege::kWriteOnly, 1.0},
            {bnd_xp, Privilege::kWriteOnly, 1.0},
            {bnd_ym, Privilege::kWriteOnly, 1.0},
            {bnd_yp, Privilege::kWriteOnly, 1.0}});

  BenchmarkApp app;
  app.name = "stencil";
  app.input = stencil_input_label(config);
  app.num_nodes = config.num_nodes;
  app.graph = p.lower();
  app.sim = {.iterations = config.iterations,
             .noise_sigma = config.noise_sigma};

  AM_CHECK(app.graph.num_tasks() == 2, "stencil has 2 tasks (Fig. 5)");
  AM_CHECK(app.graph.num_collection_args() == 12,
           "stencil has 12 collection arguments (Fig. 5)");
  return app;
}

}  // namespace automap
