#include "src/apps/registry.hpp"

#include "src/apps/circuit.hpp"
#include "src/apps/htr.hpp"
#include "src/apps/maestro.hpp"
#include "src/apps/pennant.hpp"
#include "src/apps/stencil.hpp"
#include "src/support/error.hpp"

namespace automap {

const std::vector<std::string>& app_names() {
  static const std::vector<std::string> kNames = {
      "circuit", "stencil", "pennant", "htr", "maestro"};
  return kNames;
}

bool is_app_name(const std::string& name) {
  for (const std::string& n : app_names())
    if (n == name) return true;
  return false;
}

int app_num_steps(const std::string& name) {
  if (name == "circuit") return 8;
  if (name == "stencil") return 11;
  if (name == "pennant") return 7;
  if (name == "htr") return 5;
  if (name == "maestro") return 4;  // 8, 16, 32, 64 LF samples
  AM_REQUIRE(false, "unknown application: " + name);
  AM_UNREACHABLE("");
}

BenchmarkApp make_app_by_name(const std::string& name, int num_nodes,
                              int step) {
  AM_REQUIRE(step >= 0 && step < app_num_steps(name),
             "step out of range for " + name);
  if (name == "circuit")
    return make_circuit(circuit_config_for(num_nodes, step));
  if (name == "stencil")
    return make_stencil(stencil_config_for(num_nodes, step));
  if (name == "pennant")
    return make_pennant(pennant_config_for(num_nodes, step));
  if (name == "htr") return make_htr(htr_config_for(num_nodes, step));
  MaestroConfig c;
  c.num_lf_samples = 8 << step;
  c.num_nodes = num_nodes;
  return make_maestro(c);
}

}  // namespace automap
