#pragma once

// Name-based registry over the five benchmark applications, so tools,
// tests and benches can construct any app from strings ("pennant", nodes,
// weak-scaling step) without repeating the factory dispatch.

#include <string>
#include <vector>

#include "src/apps/app.hpp"

namespace automap {

/// Names of all registered applications, in Fig. 5 order.
[[nodiscard]] const std::vector<std::string>& app_names();

/// True when `name` identifies a registered application.
[[nodiscard]] bool is_app_name(const std::string& name);

/// Number of weak-scaling steps in the app's Fig. 6 input series
/// (Maestro has no weak-scaled series; its "steps" select the LF sample
/// count: 8 << step).
[[nodiscard]] int app_num_steps(const std::string& name);

/// Builds an application by name at a node count and series step. Throws
/// Error for unknown names or out-of-range steps.
[[nodiscard]] BenchmarkApp make_app_by_name(const std::string& name,
                                            int num_nodes, int step);

}  // namespace automap
