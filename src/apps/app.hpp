#pragma once

// Common shape of the five benchmark applications (paper Fig. 5).
//
// Each generator builds a mini-Legion Program with the published task and
// collection-argument counts and a realistic dependence/overlap structure,
// then lowers it to the TaskGraph the simulator executes. Input sizes follow
// the weak-scaled series of Fig. 6.

#include <string>
#include <vector>

#include "src/sim/simulator.hpp"
#include "src/taskgraph/task_graph.hpp"

namespace automap {

struct BenchmarkApp {
  /// "circuit", "stencil", "pennant", "htr", "maestro".
  std::string name;
  /// Input label as the paper prints it, e.g. "n800w3200" or "2000x2000".
  std::string input;
  /// Node count the graph was generated for (weak scaling: per-node work is
  /// roughly constant along each Fig. 6 series).
  int num_nodes = 1;
  TaskGraph graph;
  /// Simulation parameters (main-loop iterations, noise).
  SimOptions sim;
};

}  // namespace automap
