#pragma once

// Maestro: multi-fidelity ensemble CFD (Fig. 5: 13 tasks — the low-fidelity
// solver phases — and 30 collection args; §5.1). One expensive high-fidelity
// (HF) sample is pinned to the GPUs with its collections filling the
// Frame-Buffer, while an ensemble of cheap low-fidelity (LF) samples runs
// alongside. The mapping question is where to put the LF work — CPUs +
// System, GPUs + Zero-Copy, or a mix — such that the HF simulation is
// disturbed as little as possible (Fig. 7 reports HF slowdown vs running
// the HF alone).

#include "src/apps/app.hpp"

namespace automap {

struct MaestroConfig {
  /// Low-fidelity samples in the ensemble (0 = HF alone baseline).
  int num_lf_samples = 16;
  /// LF resolution per dimension (the paper sweeps 16 and 32, i.e. 16^3 and
  /// 32^3 volumes).
  int lf_resolution = 16;
  /// HF resolution per dimension; sized so the HF collections nearly fill
  /// the Frame-Buffer of one GPU per node.
  int hf_resolution = 224;
  int num_nodes = 1;
  int iterations = 10;
  double noise_sigma = 0.05;
};

/// "lf16@16^3"-style label.
[[nodiscard]] std::string maestro_input_label(const MaestroConfig& config);

[[nodiscard]] BenchmarkApp make_maestro(const MaestroConfig& config);

/// Ids of the HF tasks inside the generated graph (the Fig. 7 strategies
/// pin these to GPU + FrameBuffer and only vary the LF mapping).
[[nodiscard]] std::vector<TaskId> maestro_hf_tasks(const BenchmarkApp& app);
/// Ids of the LF tasks (everything the paper's search actually optimizes).
[[nodiscard]] std::vector<TaskId> maestro_lf_tasks(const BenchmarkApp& app);

}  // namespace automap
