#pragma once

// Hand-written custom mappers for the five benchmark applications (§5
// "Baselines"): the application-specific strategies a domain expert would
// implement after days of experimentation. They follow the pattern the
// paper describes — mostly the default GPU + Frame-Buffer placement, but
// with large or shared collections demoted to Zero-Copy and, where it pays,
// a blocked group-task decomposition that keeps neighbour exchanges local
// (the dimension AutoMap's runtime logic does not search, §5 "Results").

#include <memory>

#include "src/apps/app.hpp"
#include "src/runtime/mapper.hpp"

namespace automap {

/// Returns the custom mapper for a benchmark application. Throws Error for
/// app names without a custom mapper.
[[nodiscard]] std::unique_ptr<Mapper> make_custom_mapper(
    const std::string& app_name);

}  // namespace automap
