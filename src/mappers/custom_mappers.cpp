#include "src/mappers/custom_mappers.hpp"

#include <functional>

#include "src/support/error.hpp"

namespace automap {

namespace {

/// Shared implementation: GPU-first with a per-collection Zero-Copy demotion
/// predicate and an optional blocked decomposition.
class HeuristicCustomMapper final : public Mapper {
 public:
  using DemoteToZeroCopy = std::function<bool(const std::string&)>;
  using SendToCpu = std::function<bool(const std::string&)>;

  HeuristicCustomMapper(std::string name, bool blocked,
                        DemoteToZeroCopy demote, SendToCpu to_cpu)
      : name_(std::move(name)),
        blocked_(blocked),
        demote_(std::move(demote)),
        to_cpu_(std::move(to_cpu)) {}

  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] TaskMapping map_task(const GroupTask& task,
                                     const TaskGraph& graph,
                                     const MachineModel& machine) override {
    TaskMapping tm;
    tm.distribute = true;
    tm.blocked = blocked_;
    const bool cpu = (to_cpu_ && to_cpu_(task.name)) ||
                     !task.cost.has_gpu_variant() ||
                     !machine.has_proc_kind(ProcKind::kGpu);
    tm.proc = cpu ? ProcKind::kCpu : ProcKind::kGpu;
    const MemKind fast = machine.best_memory_for(tm.proc);
    tm.arg_memories.reserve(task.args.size());
    for (const CollectionUse& use : task.args) {
      const std::string& col = graph.collection(use.collection).name;
      const bool zc = demote_ && demote_(col) &&
                      machine.addressable(tm.proc, MemKind::kZeroCopy);
      tm.arg_memories.push_back({zc ? MemKind::kZeroCopy : fast});
    }
    return tm;
  }

 private:
  std::string name_;
  bool blocked_;
  DemoteToZeroCopy demote_;
  SendToCpu to_cpu_;
};

bool contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

}  // namespace

std::unique_ptr<Mapper> make_custom_mapper(const std::string& app_name) {
  if (app_name == "circuit") {
    // Blocked decomposition (the custom mapper's edge over AutoMap's
    // round-robin, §5) and the node sets shared between pieces in
    // Zero-Copy to cut ghost-exchange copies.
    return std::make_unique<HeuristicCustomMapper>(
        "circuit-custom", /*blocked=*/true,
        [](const std::string& col) {
          return contains(col, "shared") || contains(col, "ghost");
        },
        nullptr);
  }
  if (app_name == "stencil") {
    // The PRK stencil's custom mapper matches the default strategy apart
    // from a blocked decomposition; the paper measures it at ~1.0x.
    return std::make_unique<HeuristicCustomMapper>(
        "stencil-custom", /*blocked=*/true, nullptr, nullptr);
  }
  if (app_name == "pennant") {
    // Ghost/master point-force sets in Zero-Copy; geometry stays in FB.
    return std::make_unique<HeuristicCustomMapper>(
        "pennant-custom", /*blocked=*/true,
        [](const std::string& col) {
          return contains(col, "p_f_master") || contains(col, "p_f_ghost");
        },
        nullptr);
  }
  if (app_name == "htr") {
    // Face halos shared across tiles in Zero-Copy.
    return std::make_unique<HeuristicCustomMapper>(
        "htr-custom", /*blocked=*/true,
        [](const std::string& col) { return contains(col, "halo_"); },
        nullptr);
  }
  if (app_name == "maestro") {
    // The Maestro developers' standard strategy: the low-fidelity ensemble
    // on the CPUs with its data in System memory, keeping the GPUs free
    // for the high-fidelity sample (§5.1, strategy 1).
    return std::make_unique<HeuristicCustomMapper>(
        "maestro-custom", /*blocked=*/false, nullptr,
        [](const std::string& task) { return task.rfind("lf_", 0) == 0; });
  }
  AM_REQUIRE(false, "no custom mapper for app: " + app_name);
  AM_UNREACHABLE("");
}

}  // namespace automap
