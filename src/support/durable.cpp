#include "src/support/durable.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/support/crash_points.hpp"
#include "src/support/error.hpp"

namespace automap {

namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Trailer line head; the full line is
/// "#automap-checksum 1 <len> <16-hex fnv>\n" preceded by one '\n' that
/// separates it from the payload (which may or may not end in a newline
/// of its own — the separator is always added, so stripping is exact).
constexpr std::string_view kTrailerHead = "#automap-checksum 1 ";

[[nodiscard]] std::string hex16(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xf];
    value >>= 4;
  }
  return out;
}

void write_and_fsync(const std::string& path, const std::string& text,
                     const char* kind) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  AM_REQUIRE(fd >= 0, "cannot open for writing: " + path + ": " +
                          std::strerror(errno));
  std::size_t written = 0;
  while (written < text.size()) {
    const ssize_t w =
        ::write(fd, text.data() + written, text.size() - written);
    if (w < 0 && errno == EINTR) continue;
    if (w < 0) {
      const std::string reason = std::strerror(errno);
      ::close(fd);
      throw Error("write failed: " + path + ": " + reason);
    }
    written += static_cast<std::size_t>(w);
  }
  crash_point(kind, "tmp_written");
  if (::fsync(fd) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw Error("fsync failed: " + path + ": " + reason);
  }
  ::close(fd);
}

/// fsync the directory containing `path` so the rename itself is durable.
/// Best effort on filesystems that refuse O_RDONLY dir fsync (the rename
/// is still atomic; only the power-loss window narrows).
void fsync_parent_dir(const std::string& path) {
  const std::string dir = fs::path(path).parent_path().string();
  const int fd =
      ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t state = kFnvOffset;
  for (const char c : bytes) {
    state ^= static_cast<unsigned char>(c);
    state *= kFnvPrime;
  }
  return state;
}

std::string with_checksum_trailer(std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 64);
  out.append(payload);
  out += '\n';
  out += kTrailerHead;
  out += std::to_string(payload.size());
  out += ' ';
  out += hex16(fnv1a64(payload));
  out += '\n';
  return out;
}

void save_durable(const std::string& path, const std::string& text,
                  const char* kind) {
  crash_point(kind, "begin");
  const std::string tmp = path + ".tmp";
  write_and_fsync(tmp, text, kind);
  crash_point(kind, "tmp_synced");
  AM_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
             "cannot move " + tmp + " into place: " + std::strerror(errno));
  crash_point(kind, "renamed");
  fsync_parent_dir(path);
  crash_point(kind, "dir_synced");
}

void save_checksummed(const std::string& path, const std::string& payload,
                      const char* kind) {
  save_durable(path, with_checksum_trailer(payload), kind);
}

DurableLoad load_checksummed(const std::string& path) {
  DurableLoad result;
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return result;  // kMissing
  std::ostringstream os;
  os << is.rdbuf();
  const std::string stored = os.str();
  result.status = DurableLoad::Status::kCorrupt;

  // The trailer is the final line; locate its separator newline. Using
  // the *last* occurrence makes payloads containing the trailer head
  // harmless.
  const std::string needle = "\n" + std::string(kTrailerHead);
  const std::size_t sep = stored.rfind(needle);
  if (sep == std::string::npos) return result;
  const std::size_t line = sep + needle.size();
  // Parse "<len> <16 hex>\n" strictly.
  std::size_t pos = line;
  std::uint64_t length = 0;
  bool any_digit = false;
  while (pos < stored.size() && stored[pos] >= '0' && stored[pos] <= '9') {
    length = length * 10 + static_cast<std::uint64_t>(stored[pos] - '0');
    ++pos;
    any_digit = true;
  }
  if (!any_digit || pos + 18 != stored.size() || stored[pos] != ' ' ||
      stored.back() != '\n')
    return result;
  std::uint64_t sum = 0;
  for (std::size_t i = pos + 1; i < pos + 17; ++i) {
    const char c = stored[i];
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9')
      digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    else
      return result;
    sum = (sum << 4) | digit;
  }
  if (length != sep) return result;  // truncated or padded payload
  const std::string_view payload(stored.data(), sep);
  if (fnv1a64(payload) != sum) return result;
  result.status = DurableLoad::Status::kOk;
  result.payload = std::string(payload);
  return result;
}

}  // namespace automap
