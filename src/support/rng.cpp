#include "src/support/rng.hpp"

#include <cmath>

#include "src/support/error.hpp"

namespace automap {

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

double Rng::uniform(double lo, double hi) {
  AM_REQUIRE(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t bound) {
  AM_REQUIRE(bound > 0, "uniform_index requires a positive bound");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::normal(double mean, double stddev) {
  AM_REQUIRE(stddev >= 0.0, "normal requires non-negative stddev");
  return mean + stddev * normal();
}

double Rng::lognormal_factor_slow(double sigma) {
  AM_REQUIRE(sigma >= 0.0, "lognormal_factor requires non-negative sigma");
  return std::exp(sigma * normal());
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::fork() { return Rng(next() ^ 0xa0761d6478bd642fULL); }

}  // namespace automap
