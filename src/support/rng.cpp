#include "src/support/rng.hpp"

#include <cmath>
#include <numbers>

#include "src/support/error.hpp"

namespace automap {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t value) {
  std::uint64_t state = value;
  return splitmix64(state);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  AM_REQUIRE(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t bound) {
  AM_REQUIRE(bound > 0, "uniform_index requires a positive bound");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller: two uniforms -> two independent standard normals.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  AM_REQUIRE(stddev >= 0.0, "normal requires non-negative stddev");
  return mean + stddev * normal();
}

double Rng::lognormal_factor(double sigma) {
  AM_REQUIRE(sigma >= 0.0, "lognormal_factor requires non-negative sigma");
  if (sigma == 0.0) return 1.0;
  return std::exp(sigma * normal());
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::fork() { return Rng(next() ^ 0xa0761d6478bd642fULL); }

}  // namespace automap
