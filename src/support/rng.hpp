#pragma once

// Deterministic random number generation.
//
// All stochastic behaviour in the library (execution-time noise, randomized
// search techniques) flows through Rng so that every experiment is exactly
// reproducible from a seed. The generator is xoshiro256**, seeded via
// SplitMix64, following the reference implementations by Blackman & Vigna.

#include <array>
#include <cstdint>
#include <cstddef>

namespace automap {

/// SplitMix64 step; used for seeding and for cheap hash mixing.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// Mixes a value through one SplitMix64 round (stateless convenience).
[[nodiscard]] std::uint64_t mix64(std::uint64_t value);

/// xoshiro256** PRNG with distribution helpers. Satisfies the
/// UniformRandomBitGenerator requirements so it can drive <random> if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t uniform_index(std::uint64_t bound);

  /// Standard normal via Box–Muller (cached second sample).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal multiplicative factor with median 1 and shape sigma:
  /// exp(sigma * N(0,1)). Models run-to-run execution-time variation.
  double lognormal_factor(double sigma);

  /// True with probability p.
  bool bernoulli(double p);

  /// Derives an independent child generator (for parallel replicas).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace automap
