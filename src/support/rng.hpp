#pragma once

// Deterministic random number generation.
//
// All stochastic behaviour in the library (execution-time noise, randomized
// search techniques) flows through Rng so that every experiment is exactly
// reproducible from a seed. The generator is xoshiro256**, seeded via
// SplitMix64, following the reference implementations by Blackman & Vigna.

#include <array>
#include <cmath>
#include <cstdint>
#include <cstddef>
#include <numbers>

namespace automap {

// The seed-derivation and noise-draw helpers below are defined inline: the
// simulator draws one noise factor per task per iteration per run, so they
// run tens of millions of times per search.

/// SplitMix64 step; used for seeding and for cheap hash mixing.
[[nodiscard]] inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mixes a value through one SplitMix64 round (stateless convenience).
[[nodiscard]] inline std::uint64_t mix64(std::uint64_t value) {
  std::uint64_t state = value;
  return splitmix64(state);
}

/// xoshiro256** PRNG with distribution helpers. Satisfies the
/// UniformRandomBitGenerator requirements so it can drive <random> if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t uniform_index(std::uint64_t bound);

  /// Standard normal via Box–Muller (cached second sample).
  double normal() {
    if (has_cached_normal_) {
      has_cached_normal_ = false;
      return cached_normal_;
    }
    // Box–Muller: two uniforms -> two independent standard normals.
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    cached_normal_ = radius * std::sin(angle);
    has_cached_normal_ = true;
    return radius * std::cos(angle);
  }

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal multiplicative factor with median 1 and shape sigma:
  /// exp(sigma * N(0,1)). Models run-to-run execution-time variation.
  /// Requires sigma >= 0 (checked in the out-of-line slow path).
  double lognormal_factor(double sigma) {
    if (sigma == 0.0) return 1.0;
    return lognormal_factor_slow(sigma);
  }

  /// True with probability p.
  bool bernoulli(double p);

  /// Derives an independent child generator (for parallel replicas).
  Rng fork();

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  double lognormal_factor_slow(double sigma);

  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace automap
