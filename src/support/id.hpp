#pragma once

// Strongly-typed integer identifiers.
//
// Machine/task-graph entities are referenced by dense indices into owner
// containers. Wrapping the index in a tag-parameterized type prevents mixing
// a TaskId with a CollectionId at compile time.

#include <compare>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <functional>
#include <limits>
#include <ostream>

namespace automap {

template <typename Tag>
class Id {
 public:
  using underlying_type = std::uint32_t;
  static constexpr underlying_type kInvalid =
      std::numeric_limits<underlying_type>::max();

  constexpr Id() = default;
  /// Accepts any integral index; stored narrowed to 32 bits.
  template <typename Int>
    requires std::is_integral_v<Int>
  constexpr explicit Id(Int value)
      : value_(static_cast<underlying_type>(value)) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr std::size_t index() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  constexpr auto operator<=>(const Id&) const = default;

 private:
  underlying_type value_ = kInvalid;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, Id<Tag> id) {
  if (!id.valid()) return os << "<invalid>";
  return os << id.value();
}

struct TaskTag {};
struct CollectionTag {};
struct RegionTag {};
struct ProcTag {};
struct MemTag {};
struct NodeTag {};

using TaskId = Id<TaskTag>;
using CollectionId = Id<CollectionTag>;
using RegionId = Id<RegionTag>;
using ProcId = Id<ProcTag>;
using MemId = Id<MemTag>;
using NodeId = Id<NodeTag>;

}  // namespace automap

namespace std {
template <typename Tag>
struct hash<automap::Id<Tag>> {
  size_t operator()(automap::Id<Tag> id) const noexcept {
    return std::hash<typename automap::Id<Tag>::underlying_type>{}(id.value());
  }
};
}  // namespace std
