#include "src/support/deadline_wheel.hpp"

#include <utility>
#include <vector>

namespace automap {

DeadlineWheel::DeadlineWheel(std::function<void(std::uint64_t)> on_expire)
    : on_expire_(std::move(on_expire)), thread_([this] { loop(); }) {}

DeadlineWheel::~DeadlineWheel() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void DeadlineWheel::arm(std::uint64_t id, std::chrono::milliseconds delay) {
  const Clock::time_point when = Clock::now() + delay;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = by_id_.find(id); it != by_id_.end()) {
      queue_.erase(it->second);
      by_id_.erase(it);
    }
    by_id_.emplace(id, queue_.emplace(when, id));
  }
  cv_.notify_all();
}

void DeadlineWheel::disarm(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = by_id_.find(id); it != by_id_.end()) {
    queue_.erase(it->second);
    by_id_.erase(it);
  }
}

std::size_t DeadlineWheel::armed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void DeadlineWheel::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stopping_) return;
    if (queue_.empty()) {
      cv_.wait(lock);
      continue;
    }
    const Clock::time_point next = queue_.begin()->first;
    if (Clock::now() < next) {
      cv_.wait_until(lock, next);
      continue;
    }
    // Collect everything due, release the lock, then fire: the callback
    // may take the caller's locks, and the caller may call arm/disarm
    // concurrently (the wheel lock is never held across foreign code).
    std::vector<std::uint64_t> due;
    const Clock::time_point now = Clock::now();
    while (!queue_.empty() && queue_.begin()->first <= now) {
      due.push_back(queue_.begin()->second);
      by_id_.erase(queue_.begin()->second);
      queue_.erase(queue_.begin());
    }
    lock.unlock();
    for (const std::uint64_t id : due) on_expire_(id);
    lock.lock();
  }
}

}  // namespace automap
