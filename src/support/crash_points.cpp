#include "src/support/crash_points.hpp"

#include <unistd.h>

#include <cstdlib>
#include <cstring>

namespace automap {

namespace detail {

const char* armed_crash_point() {
  static const char* armed = [] {
    const char* value = std::getenv("AUTOMAP_CRASH_POINT");
    return (value != nullptr && value[0] != '\0') ? value : nullptr;
  }();
  return armed;
}

}  // namespace detail

namespace {

// The durable-save step sequence (src/support/durable.cpp) and the
// artifact kinds routed through it. crash_point_names() is the cross
// product; a kind/step pair not listed here will never fire.
constexpr const char* kKinds[] = {"request", "result", "checkpoint",
                                  "bucket", "tombstone", "spans"};
constexpr const char* kSteps[] = {"begin", "tmp_written", "tmp_synced",
                                  "renamed", "dir_synced"};

}  // namespace

void crash_point(const char* kind, const char* step) {
  const char* armed = detail::armed_crash_point();
  if (armed == nullptr) return;
  // Compose lazily: the composition cost is only paid when a crash point
  // is armed, i.e. under the chaos harness.
  std::string name = "save.";
  name += kind;
  name += '.';
  name += step;
  if (name == armed) ::_exit(kCrashExitCode);
}

const std::vector<std::string>& crash_point_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> all;
    for (const char* kind : kKinds)
      for (const char* step : kSteps)
        all.push_back(std::string("save.") + kind + "." + step);
    return all;
  }();
  return names;
}

}  // namespace automap
