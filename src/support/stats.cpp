#include "src/support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "src/support/error.hpp"

namespace automap {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::mean() const { return mean_; }

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const {
  AM_REQUIRE(count_ > 0, "min of empty accumulator");
  return min_;
}

double OnlineStats::max() const {
  AM_REQUIRE(count_ > 0, "max of empty accumulator");
  return max_;
}

double OnlineStats::ci95_halfwidth() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

SampleSummary summarize(std::span<const double> samples) {
  SampleSummary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  OnlineStats acc;
  for (double x : samples) acc.add(x);
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.median = percentile(samples, 50.0);
  return s;
}

double percentile(std::span<const double> samples, double p) {
  AM_REQUIRE(!samples.empty(), "percentile of empty sample set");
  AM_REQUIRE(p >= 0.0 && p <= 100.0, "percentile requires p in [0, 100]");
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double geometric_mean(std::span<const double> samples) {
  AM_REQUIRE(!samples.empty(), "geometric_mean of empty sample set");
  double log_sum = 0.0;
  for (double x : samples) {
    AM_REQUIRE(x > 0.0, "geometric_mean requires positive samples");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(samples.size()));
}

}  // namespace automap
