#pragma once

// Durable, checksummed file writes for crash consistency.
//
// A plain write-temp-then-rename keeps a file *atomic* against crashes of
// this process, but not against power loss: without fsync the rename can
// be journaled before the temp file's data blocks reach disk, surfacing a
// complete-looking file full of zeros (or a truncated tail) after the
// machine comes back. save_durable closes that window — temp write,
// fsync(temp), rename, fsync(parent dir) — and brackets every step with a
// named crash point (src/support/crash_points.hpp) so the chaos harness
// can kill the process at each instant and prove recovery works.
//
// On top of that, save_checksummed appends a trailer line
//
//   \n#automap-checksum 1 <payload bytes> <fnv1a-64 hex>\n
//
// so readers can tell a complete artifact from a torn or bit-rotted one
// without parsing it. load_checksummed verifies and strips the trailer;
// anything that fails verification reports kCorrupt and the caller
// quarantines the file instead of trusting it. The trailer format is
// documented in docs/file_formats.md ("Checksum trailer").

#include <cstdint>
#include <string>
#include <string_view>

namespace automap {

/// Plain FNV-1a 64-bit over raw bytes (no chunk terminator — this is the
/// checksum primitive, distinct from the chained tuple fingerprints in
/// src/service/fingerprint.hpp).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

/// `payload` plus the checksum trailer line.
[[nodiscard]] std::string with_checksum_trailer(std::string_view payload);

/// Atomic + durable publish of `text` at `path`: write `path + ".tmp"`,
/// fsync it, rename over `path`, fsync the parent directory. `kind` names
/// the crash-point family fired at each step ("request", "result",
/// "checkpoint", "bucket", "tombstone", "spans"). Throws Error on I/O
/// failure.
void save_durable(const std::string& path, const std::string& text,
                  const char* kind);

/// save_durable of `payload` + checksum trailer.
void save_checksummed(const std::string& path, const std::string& payload,
                      const char* kind);

struct DurableLoad {
  enum class Status {
    kOk,       ///< trailer present and verified; `payload` is the content
    kMissing,  ///< no file at `path`
    kCorrupt,  ///< torn, truncated, bit-rotted, or trailer-less file
  };
  Status status = Status::kMissing;
  std::string payload;
};

/// Reads `path` and verifies + strips the checksum trailer. Never throws
/// on bad content — a corrupt store file is an input to recovery, not a
/// programming error.
[[nodiscard]] DurableLoad load_checksummed(const std::string& path);

}  // namespace automap
