#include "src/support/format.hpp"

#include <array>
#include <cstdio>

namespace automap {

std::string format_bytes(std::uint64_t bytes) {
  constexpr std::array<const char*, 5> kUnits = {"B", "KiB", "MiB", "GiB",
                                                 "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kUnits.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string format_seconds(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  }
  return buf;
}

std::string format_fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string format_speedup(double ratio) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2fx", ratio);
  return buf;
}

}  // namespace automap
