#pragma once

// Plain-text table renderer used by the bench harnesses to print the rows of
// each paper table/figure in a uniform format.

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace automap {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_columns() const { return headers_.size(); }

  /// Renders with column alignment and a header separator.
  void print(std::ostream& os) const;

  /// Renders as CSV (no quoting of separators; callers keep cells simple).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace automap
