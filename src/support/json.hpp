#pragma once

// Minimal JSON support for the provenance journal (docs/file_formats.md).
//
// The journal is JSONL — one object per line — written with deterministic
// formatting so journals are byte-comparable across runs and thread counts,
// and read back by the `explain`/`replay` tooling. This header provides
// both directions: escape/format helpers for the writer and a small
// recursive-descent parser for the readers. It is deliberately not a
// general-purpose JSON library: no streaming, no comments, objects keep
// insertion order (journal events are small and key order matters for
// byte-identity checks).

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace automap {

/// A parsed JSON value. Exactly one of the payload members is meaningful,
/// selected by `kind`; the others stay default-constructed.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Members in source order (journal schema checks rely on ordering).
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const {
    return find(key) != nullptr;
  }
  /// Convenience accessors with fallbacks for absent/mistyped members.
  [[nodiscard]] double num_or(std::string_view key, double fallback) const;
  [[nodiscard]] std::string str_or(std::string_view key,
                                   const std::string& fallback) const;
  [[nodiscard]] bool bool_or(std::string_view key, bool fallback) const;
  /// Doubles the journal wrote as quoted "inf"/"-inf"/"nan" (JSON has no
  /// non-finite literals) read back through this: accepts both a number
  /// and one of those strings.
  [[nodiscard]] double wide_num_or(std::string_view key,
                                   double fallback) const;
};

/// Parses one JSON document (throws Error on malformed input, with an
/// offset in the message). Trailing whitespace is allowed; trailing
/// content is an error.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Escapes a string for embedding between JSON quotes (handles quote,
/// backslash and control characters; multi-byte UTF-8 passes through).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Deterministic JSON rendering of a double: finite values via %.17g
/// (shortest round-trippable form is locale-independent here), non-finite
/// values as the quoted strings "inf"/"-inf"/"nan" since JSON has no
/// literals for them.
[[nodiscard]] std::string json_double(double value);

/// Lower-case hex rendering of a 64-bit value (mapping hashes exceed
/// JSON's exactly-representable integer range, so they travel as strings).
[[nodiscard]] std::string hex_u64(std::uint64_t value);

}  // namespace automap
