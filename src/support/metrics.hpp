#pragma once

// Lightweight metrics registry (§ISSUE 5): counters, gauges and
// fixed-bucket histograms threaded through the evaluator, simulator and
// search loops. Instruments are registered once by name and then updated
// through cached pointers, so the per-event cost is one guarded increment
// and a disabled registry (null pointer in SearchOptions/SimOptions) costs
// nothing on the hot path.
//
// Determinism contract: instruments marked `deterministic` depend only on
// (seed, options), never on the thread count or wall clock — all evaluator
// and search counters qualify because they are updated on the serial fold
// side of evaluate_batch. Raw simulator run counts do NOT qualify (the
// thread pool pre-executes speculative tails), so those instruments are
// registered with deterministic=false: they are excluded from journal
// snapshots (which must be byte-identical at any --threads value) and only
// appear in the final --metrics-out exposition.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace automap {

/// Monotone counter. Atomic so simulator threads may bump it from the
/// pool; everything else in the registry is serial-only.
class Counter {
 public:
  void inc(std::uint64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value gauge. Updated only from the serial search loop.
class Gauge {
 public:
  void set(double value) { value_ = value; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram with cumulative Prometheus semantics.
/// Updated only from the serial search loop.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return upper_bounds_;
  }
  /// Count of observations <= upper_bounds()[i] (cumulative).
  [[nodiscard]] std::uint64_t cumulative(std::size_t i) const;
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Bucket-interpolated quantile estimate for q in [0, 1] — the same
  /// linear-within-bucket model as Prometheus' histogram_quantile, with
  /// the first bucket's lower edge taken as 0 (the instrument records
  /// non-negative durations/sizes). Observations landing in the +Inf
  /// overflow bucket clamp to the highest finite bound. NaN when empty.
  [[nodiscard]] double quantile(double q) const;

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::uint64_t> buckets_;  // per-bucket, non-cumulative
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// "p50=<v> p95=<v> p99=<v>" with deterministic json_double formatting —
/// the human-readable quantile line `stats` and `top` print per latency
/// histogram. Empty histograms render "p50=- p95=- p99=-".
[[nodiscard]] std::string render_quantiles(const Histogram& histogram);

/// Insertion-ordered registry. Registration is idempotent by name (the
/// evaluator and CCD both run per search; re-registering returns the
/// existing instrument), lookups during search go through cached pointers.
///
/// Labeled series: a name may carry an inline Prometheus label set, e.g.
/// `automap_service_handle_seconds{op="submit"}`. Each labeled name is its
/// own instrument; expose() renders the shared base name once per # HELP /
/// # TYPE block and splices histogram suffixes before the label set
/// (`base_bucket{op="submit",le="0.1"}`), so the text stays valid
/// exposition format.
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name, const std::string& help,
                   bool deterministic = true);
  Gauge* gauge(const std::string& name, const std::string& help,
               bool deterministic = true);
  Histogram* histogram(const std::string& name, const std::string& help,
                       std::vector<double> upper_bounds,
                       bool deterministic = true);

  /// Full Prometheus text exposition (# HELP / # TYPE / samples), all
  /// instruments, insertion order. Written to --metrics-out.
  [[nodiscard]] std::string expose() const;

  /// JSON object fragment ({"name":value,...}) with deterministic
  /// counters and gauges only — embedded in journal `metrics` events,
  /// which must stay byte-identical across thread counts. Histograms and
  /// nondeterministic instruments are excluded.
  [[nodiscard]] std::string snapshot_json() const;

  /// JSON object of bucket-interpolated latency quantiles for every
  /// non-empty histogram, insertion order:
  /// {"name":{"p50":v,"p95":v,"p99":v,"count":n},...}. Served in the
  /// mapping service's `stats` response and rendered by `automap_client
  /// top`.
  [[nodiscard]] std::string quantiles_json() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    std::string help;
    Kind kind;
    bool deterministic;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* find(const std::string& name);

  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace automap
