#pragma once

// Error handling primitives used across the library.
//
// Programming errors (violated preconditions, internal invariants) throw
// automap::Error via the AM_CHECK / AM_REQUIRE macros; recoverable conditions
// (an unmappable candidate, an out-of-memory mapping) are reported through
// return values, never exceptions.

#include <stdexcept>
#include <string>
#include <string_view>

namespace automap {

/// Exception thrown on violated invariants and preconditions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void fail(std::string_view kind, std::string_view cond,
                       std::string_view file, int line, std::string_view msg);
}  // namespace detail

/// Internal invariant check. Active in all build types: the library is a
/// research artifact where silent corruption is worse than the (negligible)
/// branch cost.
#define AM_CHECK(cond, ...)                                        \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::automap::detail::fail("invariant", #cond, __FILE__,        \
                              __LINE__, ::std::string{__VA_ARGS__}); \
    }                                                              \
  } while (false)

/// Precondition check on public API entry points.
#define AM_REQUIRE(cond, ...)                                      \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::automap::detail::fail("precondition", #cond, __FILE__,     \
                              __LINE__, ::std::string{__VA_ARGS__}); \
    }                                                              \
  } while (false)

/// Marks unreachable control flow.
#define AM_UNREACHABLE(msg)                                                  \
  ::automap::detail::fail("unreachable", "", __FILE__, __LINE__, (msg))

}  // namespace automap
