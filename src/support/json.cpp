#include "src/support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "src/support/error.hpp"

namespace automap {
namespace {

// Recursive-descent parser over a string_view. Offsets are byte offsets
// into the original text, reported on error for debuggability.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default:
        return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    v.boolean = b;
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // The journal writer only emits \u00XX for control bytes, so a
          // Latin-1 style decode covers round-tripping our own output;
          // other BMP code points get a minimal UTF-8 encoding.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("bad number '" + token + "'");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = value;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::num_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return (v && v->kind == Kind::kNumber) ? v->number : fallback;
}

std::string JsonValue::str_or(std::string_view key,
                              const std::string& fallback) const {
  const JsonValue* v = find(key);
  return (v && v->kind == Kind::kString) ? v->string : fallback;
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return (v && v->kind == Kind::kBool) ? v->boolean : fallback;
}

double JsonValue::wide_num_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  if (!v) return fallback;
  if (v->kind == Kind::kNumber) return v->number;
  if (v->kind == Kind::kString) {
    if (v->string == "inf") return std::numeric_limits<double>::infinity();
    if (v->string == "-inf") return -std::numeric_limits<double>::infinity();
    if (v->string == "nan") {
      return std::numeric_limits<double>::quiet_NaN();
    }
  }
  return fallback;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_double(double value) {
  if (std::isnan(value)) return "\"nan\"";
  if (std::isinf(value)) return value > 0 ? "\"inf\"" : "\"-inf\"";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string hex_u64(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace automap
