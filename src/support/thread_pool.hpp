#pragma once

// Fixed-size worker pool for batch candidate evaluation.
//
// The search layer's unit of parallelism is one simulated run of one
// candidate mapping — Simulator::run is const and seed-parameterized, so
// runs are embarrassingly parallel. The pool exposes exactly the primitive
// the Evaluator needs: parallel_for over an index space, with the calling
// thread participating so a pool of size N uses N lanes, not N+1, and a
// pool of size 1 degenerates to an inline loop with zero synchronization.
//
// Scheduling: tasks queue per (priority class, stream). Priority classes
// are strict — the highest class always drains first. *Within* a class the
// pool runs deficit-round-robin across streams (one deficit quantum per
// visit, one task per quantum), so two jobs submitting batches at equal
// priority interleave their work instead of the earlier, larger submission
// occupying every worker until it finishes. A stream is any caller-chosen
// id — the mapping service uses the job id — and stream 0 is the default
// for callers that never compete.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <condition_variable>
#include <deque>
#include <list>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace automap {

class ThreadPool {
 public:
  /// A pool with `threads` total lanes (including the caller of
  /// parallel_for); spawns `threads - 1` workers. threads < 1 is clamped
  /// to 1 (inline execution, no workers).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes, including the calling thread.
  [[nodiscard]] int thread_count() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Runs body(0) .. body(n-1), each exactly once, across the pool plus
  /// the calling thread. Indices are claimed dynamically, so per-index
  /// runtimes may vary freely. Blocks until every index completed. The
  /// first exception thrown by any body is rethrown on the caller (the
  /// remaining indices still run to completion). Not reentrant: bodies
  /// must not call parallel_for on the same pool. Concurrent calls from
  /// *different* threads are safe and share the workers; `priority` picks
  /// which call's helpers drain first when they compete (higher first,
  /// deficit-round-robin across `stream` ids within a class). The caller
  /// always participates regardless of priority, so a low-priority call
  /// makes progress even under a steady stream of high-priority work.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body,
                    int priority = 0, std::uint64_t stream = 0);

  /// Lane-indexed variant: body(lane, index) where `lane` identifies the
  /// execution lane running the index — 0 for the calling thread, 1..k for
  /// the helpers of this call. Lanes are exclusive within one parallel_for
  /// (two indices with the same lane never run concurrently) and lane ids
  /// stay below thread_count(), so callers can hand each lane its own
  /// mutable scratch state without synchronization.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t lane,
                                             std::size_t index)>& body,
                    int priority = 0, std::uint64_t stream = 0);

  /// Fire-and-forget: enqueues one task into (priority, stream) for the
  /// workers to run. No completion signal — callers that need one build it
  /// into the task. Pending tasks still run during destruction (workers
  /// drain the queue before joining). With no workers the task runs
  /// inline.
  void post(std::function<void()> task, int priority = 0,
            std::uint64_t stream = 0);

  /// The machine's hardware concurrency, with a floor of 1.
  [[nodiscard]] static int hardware_threads();

 private:
  /// One stream's backlog within a priority class, plus its DRR deficit.
  struct StreamQueue {
    std::uint64_t stream = 0;
    std::deque<std::function<void()>> tasks;
    /// Deficit counter in task units. Each rotation visit deposits one
    /// quantum; a task costs one unit. With today's uniform task costs the
    /// rotation serves exactly one task per visit; the counter is kept so
    /// weighted quanta slot in without changing the pop protocol.
    std::size_t deficit = 0;
  };
  /// One priority class: its streams in round-robin rotation order. New
  /// streams join at the back of the rotation; an emptied stream leaves it
  /// (and forfeits any residual deficit).
  struct ClassQueue {
    std::list<StreamQueue> rotation;
  };

  void post_locked(std::function<void()>&& task, int priority,
                   std::uint64_t stream);
  /// Pops the next task per policy: highest priority class, then
  /// deficit-round-robin across that class's streams. Queue must be
  /// non-empty; mutex held by caller.
  [[nodiscard]] std::function<void()> pop_locked();
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  /// Priority classes, highest first; DRR across streams within a class.
  /// Emptied classes are erased so the common single-class case stays one
  /// rotation list.
  std::map<int, ClassQueue, std::greater<int>> queue_;
  bool stop_ = false;
};

}  // namespace automap
