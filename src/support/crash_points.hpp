#pragma once

// Deterministic crash-point registry for crash-consistency testing.
//
// Every durable store write (src/support/durable.hpp) is bracketed by
// named crash points: when the AUTOMAP_CRASH_POINT environment variable
// names one of them, the process calls _exit(kCrashExitCode) the first
// time execution reaches that point — simulating a power loss at exactly
// that instant, with no destructors, no flushes, no atexit handlers.
// tools/chaos_soak.py iterates the full matrix (every name returned by
// crash_point_names()) and asserts that a kill → restart → resubmit cycle
// lands on a result byte-identical to an uninterrupted run.
//
// With the variable unset the cost is one cached getenv per process and
// one pointer compare per site, so crash points stay compiled in
// unconditionally.

#include <string>
#include <vector>

namespace automap {

/// Exit code used by fired crash points, distinct from ordinary failure
/// exits so harnesses can tell "crashed on purpose" from "crashed".
inline constexpr int kCrashExitCode = 42;

namespace detail {
/// Cached AUTOMAP_CRASH_POINT value; nullptr when unset.
[[nodiscard]] const char* armed_crash_point();
}  // namespace detail

/// Fires (_exit) when AUTOMAP_CRASH_POINT equals "save.<kind>.<step>".
/// `kind` names the artifact family ("request", "result", "checkpoint",
/// "bucket", "tombstone"); `step` the position inside the durable-save
/// sequence ("begin", "tmp_written", "tmp_synced", "renamed",
/// "dir_synced").
void crash_point(const char* kind, const char* step);

/// Every crash-point name the store write path can reach — the chaos
/// matrix. Printed by `automap_cli crash-points` for tools/chaos_soak.py.
[[nodiscard]] const std::vector<std::string>& crash_point_names();

}  // namespace automap
