#pragma once

// Human-readable formatting helpers for reports and benches.

#include <cstdint>
#include <string>

namespace automap {

/// "16.0 GiB", "512.0 MiB", "1.2 KiB", "17 B".
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

/// "1.234 s", "12.3 ms", "456 us".
[[nodiscard]] std::string format_seconds(double seconds);

/// Fixed-precision decimal, e.g. format_fixed(1.5, 2) == "1.50".
[[nodiscard]] std::string format_fixed(double value, int precision);

/// "1.23x" speedup notation.
[[nodiscard]] std::string format_speedup(double ratio);

}  // namespace automap
