#pragma once

// Streaming and batch statistics.
//
// AutoMap evaluates each candidate mapping several times (the paper uses 7
// during search and 30/31 for finalists) because run-to-run variance is
// significant; these helpers compute the summary statistics the driver uses
// to compare candidates.

#include <cstddef>
#include <span>
#include <vector>

namespace automap {

/// Welford online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Half-width of an approximate 95 % confidence interval of the mean
  /// (normal approximation; adequate for the 7..31 sample counts used here).
  [[nodiscard]] double ci95_halfwidth() const;

  /// Merges another accumulator (parallel reduction friendly).
  void merge(const OnlineStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Summary of a batch of samples.
struct SampleSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

[[nodiscard]] SampleSummary summarize(std::span<const double> samples);

/// p-th percentile (p in [0, 100]) by linear interpolation; requires a
/// non-empty sample set.
[[nodiscard]] double percentile(std::span<const double> samples, double p);

/// Geometric mean of strictly positive samples.
[[nodiscard]] double geometric_mean(std::span<const double> samples);

}  // namespace automap
