#include "src/support/table.hpp"

#include <algorithm>

#include "src/support/error.hpp"

namespace automap {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  AM_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  AM_REQUIRE(cells.size() == headers_.size(),
             "row width must match header width");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };

  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace automap
