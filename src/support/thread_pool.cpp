#include "src/support/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <memory>
#include <utility>

namespace automap {

namespace {

/// Shared state of one parallel_for call. Helpers and the caller claim
/// indices from `next`; `remaining_helpers` gates the caller's exit.
struct ForState {
  std::size_t n = 0;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t remaining_helpers = 0;
  std::exception_ptr error;
  /// Item index whose exception is stored in `error`. Keeping the *lowest*
  /// index (not whichever throw won the lock race) makes the rethrown
  /// exception deterministic at any thread count: it is always the one a
  /// serial loop would have hit first.
  std::size_t error_index = 0;

  /// `lane` is fixed per drainer (0 = caller, 1..k = helper closures), so
  /// two indices with the same lane never run concurrently even if one
  /// worker thread happens to execute several helper closures.
  void drain(std::size_t lane) {
    for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      try {
        (*body)(lane, i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex);
        if (!error || i < error_index) {
          error = std::current_exception();
          error_index = i;
        }
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::post_locked(std::function<void()>&& task, int priority,
                             std::uint64_t stream) {
  ClassQueue& cls = queue_[priority];
  for (StreamQueue& sq : cls.rotation) {
    if (sq.stream == stream) {
      sq.tasks.push_back(std::move(task));
      return;
    }
  }
  StreamQueue sq;
  sq.stream = stream;
  sq.tasks.push_back(std::move(task));
  cls.rotation.push_back(std::move(sq));
}

std::function<void()> ThreadPool::pop_locked() {
  // Deficit-round-robin within the highest priority class: each pop visits
  // the front stream, deposits one quantum, serves one unit-cost task, and
  // rotates the stream to the back once its deficit runs dry — so
  // concurrent equal-priority streams alternate instead of draining in
  // arrival order. An emptied stream leaves the rotation and forfeits any
  // residual deficit (DRR's no-credit-while-idle rule).
  constexpr std::size_t kQuantum = 1;  // task units deposited per visit
  constexpr std::size_t kTaskCost = 1;
  const auto bucket = queue_.begin();  // highest priority class
  ClassQueue& cls = bucket->second;
  StreamQueue& sq = cls.rotation.front();
  sq.deficit += kQuantum;
  std::function<void()> task = std::move(sq.tasks.front());
  sq.tasks.pop_front();
  sq.deficit -= kTaskCost;
  if (sq.tasks.empty()) {
    cls.rotation.pop_front();
  } else if (sq.deficit < kTaskCost && cls.rotation.size() > 1) {
    sq.deficit = 0;
    cls.rotation.splice(cls.rotation.end(), cls.rotation,
                        cls.rotation.begin());
  }
  if (cls.rotation.empty()) queue_.erase(bucket);
  return task;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      job = pop_locked();
    }
    job();
  }
}

void ThreadPool::post(std::function<void()> task, int priority,
                      std::uint64_t stream) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    post_locked(std::move(task), priority, stream);
  }
  work_cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body,
                              int priority, std::uint64_t stream) {
  parallel_for(n, [&body](std::size_t, std::size_t index) { body(index); },
               priority, stream);
}

void ThreadPool::parallel_for(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body,
    int priority, std::uint64_t stream) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(0, i);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->n = n;
  state->body = &body;
  // No more helpers than indices: a helper with nothing to claim would
  // only add wake-up latency.
  const std::size_t helpers = std::min(workers_.size(), n - 1);
  state->remaining_helpers = helpers;

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t h = 0; h < helpers; ++h) {
      post_locked(
          [state, lane = h + 1] {
            state->drain(lane);
            {
              const std::lock_guard<std::mutex> state_lock(state->mutex);
              --state->remaining_helpers;
            }
            state->done_cv.notify_one();
          },
          priority, stream);
    }
  }
  work_cv_.notify_all();

  state->drain(0);
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done_cv.wait(lock,
                        [&] { return state->remaining_helpers == 0; });
    if (state->error) std::rethrow_exception(state->error);
  }
}

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? static_cast<int>(n) : 1;
}

}  // namespace automap
