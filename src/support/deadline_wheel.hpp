#pragma once

// Deadline wheel: arms per-job wall-clock deadlines and fires a callback
// when one expires.
//
// One timer thread sleeps until the earliest armed deadline (or until a
// new arm/disarm changes the horizon) and invokes the expiry callback
// *outside* the wheel's own lock — so a callback is free to take the
// caller's locks, and the caller is free to arm/disarm while holding them
// (the wheel's lock is a leaf: it is never held across foreign code).
//
// The mapping service uses this for per-submit `deadline_ms`: expiry flips
// the job's cooperative cancel token, so an expired search cuts at its
// next task boundary exactly like a client cancel — checkpoint kept,
// resubmission resumes byte-identically (docs/file_formats.md,
// "Deadlines").
//
// At service scale (thousands of armed deadlines) an ordered multimap is
// the degenerate single-rung wheel and is already O(log n) per operation;
// the bucketed rungs of a classical timing wheel would only matter at
// millions of timers.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace automap {

class DeadlineWheel {
 public:
  /// `on_expire` runs on the wheel's timer thread with no wheel lock
  /// held. It must not call back into arm/disarm for the same id it is
  /// being fired for (the entry is already removed) — other ids are fine.
  explicit DeadlineWheel(std::function<void(std::uint64_t)> on_expire);

  /// Stops the timer thread; armed-but-unexpired deadlines never fire.
  ~DeadlineWheel();

  DeadlineWheel(const DeadlineWheel&) = delete;
  DeadlineWheel& operator=(const DeadlineWheel&) = delete;

  /// Arms (or re-arms) `id` to expire `delay` from now.
  void arm(std::uint64_t id, std::chrono::milliseconds delay);

  /// Disarms `id`; a no-op when it is not armed (already fired or never
  /// armed).
  void disarm(std::uint64_t id);

  /// Armed-and-unexpired entries (test/introspection hook).
  [[nodiscard]] std::size_t armed() const;

 private:
  using Clock = std::chrono::steady_clock;

  void loop();

  std::function<void(std::uint64_t)> on_expire_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::multimap<Clock::time_point, std::uint64_t> queue_;
  std::unordered_map<std::uint64_t,
                     std::multimap<Clock::time_point, std::uint64_t>::iterator>
      by_id_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace automap
