#include "src/support/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "src/support/error.hpp"
#include "src/support/json.hpp"

namespace automap {
namespace {

// Prometheus sample values: integers print without an exponent, other
// finite values reuse the deterministic %.17g form (unquoted), non-finite
// values use the exposition-format spellings.
std::string sample_value(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  std::string s = json_double(v);
  return s;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)) {
  AM_REQUIRE(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()),
             "histogram bucket bounds must be sorted");
  buckets_.assign(upper_bounds_.size() + 1, 0);  // last = overflow (+Inf)
}

void Histogram::observe(double value) {
  std::size_t i = 0;
  while (i < upper_bounds_.size() && value > upper_bounds_[i]) ++i;
  ++buckets_[i];
  ++count_;
  sum_ += value;
}

std::uint64_t Histogram::cumulative(std::size_t i) const {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= i && b < buckets_.size(); ++b) {
    total += buckets_[b];
  }
  return total;
}

MetricsRegistry::Entry* MetricsRegistry::find(const std::string& name) {
  for (auto& e : entries_) {
    if (e->name == name) return e.get();
  }
  return nullptr;
}

Counter* MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  bool deterministic) {
  if (Entry* e = find(name)) {
    AM_REQUIRE(e->kind == Kind::kCounter,
               "metric re-registered with a different kind: " + name);
    return e->counter.get();
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->help = help;
  e->kind = Kind::kCounter;
  e->deterministic = deterministic;
  e->counter = std::make_unique<Counter>();
  Counter* out = e->counter.get();
  entries_.push_back(std::move(e));
  return out;
}

Gauge* MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              bool deterministic) {
  if (Entry* e = find(name)) {
    AM_REQUIRE(e->kind == Kind::kGauge,
               "metric re-registered with a different kind: " + name);
    return e->gauge.get();
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->help = help;
  e->kind = Kind::kGauge;
  e->deterministic = deterministic;
  e->gauge = std::make_unique<Gauge>();
  Gauge* out = e->gauge.get();
  entries_.push_back(std::move(e));
  return out;
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> upper_bounds,
                                      bool deterministic) {
  if (Entry* e = find(name)) {
    AM_REQUIRE(e->kind == Kind::kHistogram,
               "metric re-registered with a different kind: " + name);
    return e->histogram.get();
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->help = help;
  e->kind = Kind::kHistogram;
  e->deterministic = deterministic;
  e->histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  Histogram* out = e->histogram.get();
  entries_.push_back(std::move(e));
  return out;
}

std::string MetricsRegistry::expose() const {
  std::string out;
  for (const auto& e : entries_) {
    out += "# HELP " + e->name + " " + e->help + "\n";
    switch (e->kind) {
      case Kind::kCounter:
        out += "# TYPE " + e->name + " counter\n";
        out += e->name + " " + std::to_string(e->counter->value()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + e->name + " gauge\n";
        out += e->name + " " + sample_value(e->gauge->value()) + "\n";
        break;
      case Kind::kHistogram: {
        out += "# TYPE " + e->name + " histogram\n";
        const Histogram& h = *e->histogram;
        for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
          out += e->name + "_bucket{le=\"" +
                 sample_value(h.upper_bounds()[i]) + "\"} " +
                 std::to_string(h.cumulative(i)) + "\n";
        }
        out += e->name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count()) +
               "\n";
        out += e->name + "_sum " + sample_value(h.sum()) + "\n";
        out += e->name + "_count " + std::to_string(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::snapshot_json() const {
  std::string out = "{";
  bool first = true;
  for (const auto& e : entries_) {
    if (!e->deterministic || e->kind == Kind::kHistogram) continue;
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(e->name) + "\":";
    if (e->kind == Kind::kCounter) {
      out += std::to_string(e->counter->value());
    } else {
      out += json_double(e->gauge->value());
    }
  }
  out += "}";
  return out;
}

}  // namespace automap
