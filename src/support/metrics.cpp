#include "src/support/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "src/support/error.hpp"
#include "src/support/json.hpp"

namespace automap {
namespace {

// Prometheus sample values: integers print without an exponent, other
// finite values reuse the deterministic %.17g form (unquoted), non-finite
// values use the exposition-format spellings.
std::string sample_value(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  std::string s = json_double(v);
  return s;
}

/// Splits `name{labels}` into (name, labels); labels is empty for a plain
/// name. The split is syntactic — a '{' anywhere marks the label set.
std::pair<std::string, std::string> split_labels(const std::string& name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') return {name, ""};
  return {name.substr(0, brace),
          name.substr(brace + 1, name.size() - brace - 2)};
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)) {
  AM_REQUIRE(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()),
             "histogram bucket bounds must be sorted");
  buckets_.assign(upper_bounds_.size() + 1, 0);  // last = overflow (+Inf)
}

void Histogram::observe(double value) {
  std::size_t i = 0;
  while (i < upper_bounds_.size() && value > upper_bounds_[i]) ++i;
  ++buckets_[i];
  ++count_;
  sum_ += value;
}

std::uint64_t Histogram::cumulative(std::size_t i) const {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= i && b < buckets_.size(); ++b) {
    total += buckets_[b];
  }
  return total;
}

double Histogram::quantile(double q) const {
  AM_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  if (count_ == 0) return std::nan("");
  if (upper_bounds_.empty()) return sum_ / static_cast<double>(count_);
  // Target rank within the cumulative distribution; the first bucket whose
  // cumulative count reaches it holds the quantile.
  const double rank = q * static_cast<double>(count_);
  std::uint64_t before = 0;
  for (std::size_t i = 0; i < upper_bounds_.size(); ++i) {
    const std::uint64_t in_bucket = buckets_[i];
    const std::uint64_t through = before + in_bucket;
    if (static_cast<double>(through) >= rank && in_bucket > 0) {
      const double lo = i == 0 ? 0.0 : upper_bounds_[i - 1];
      const double hi = upper_bounds_[i];
      const double into =
          (rank - static_cast<double>(before)) / static_cast<double>(in_bucket);
      // rank <= before (q == 0 or empty leading buckets) clamps to the
      // bucket's lower edge.
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, into));
    }
    before = through;
  }
  // Quantile falls in the +Inf overflow bucket: the honest answer is
  // "beyond the highest finite bound" — clamp there.
  return upper_bounds_.back();
}

std::string render_quantiles(const Histogram& histogram) {
  if (histogram.count() == 0) return "p50=- p95=- p99=-";
  return "p50=" + json_double(histogram.quantile(0.50)) +
         " p95=" + json_double(histogram.quantile(0.95)) +
         " p99=" + json_double(histogram.quantile(0.99));
}

MetricsRegistry::Entry* MetricsRegistry::find(const std::string& name) {
  for (auto& e : entries_) {
    if (e->name == name) return e.get();
  }
  return nullptr;
}

Counter* MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  bool deterministic) {
  if (Entry* e = find(name)) {
    AM_REQUIRE(e->kind == Kind::kCounter,
               "metric re-registered with a different kind: " + name);
    return e->counter.get();
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->help = help;
  e->kind = Kind::kCounter;
  e->deterministic = deterministic;
  e->counter = std::make_unique<Counter>();
  Counter* out = e->counter.get();
  entries_.push_back(std::move(e));
  return out;
}

Gauge* MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              bool deterministic) {
  if (Entry* e = find(name)) {
    AM_REQUIRE(e->kind == Kind::kGauge,
               "metric re-registered with a different kind: " + name);
    return e->gauge.get();
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->help = help;
  e->kind = Kind::kGauge;
  e->deterministic = deterministic;
  e->gauge = std::make_unique<Gauge>();
  Gauge* out = e->gauge.get();
  entries_.push_back(std::move(e));
  return out;
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> upper_bounds,
                                      bool deterministic) {
  if (Entry* e = find(name)) {
    AM_REQUIRE(e->kind == Kind::kHistogram,
               "metric re-registered with a different kind: " + name);
    return e->histogram.get();
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->help = help;
  e->kind = Kind::kHistogram;
  e->deterministic = deterministic;
  e->histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  Histogram* out = e->histogram.get();
  entries_.push_back(std::move(e));
  return out;
}

std::string MetricsRegistry::expose() const {
  std::string out;
  std::string prev_base;
  for (const auto& e : entries_) {
    const auto [base, labels] = split_labels(e->name);
    // Consecutive entries sharing a base name (labeled series of one
    // instrument family) share a single # HELP / # TYPE block.
    if (base != prev_base) {
      out += "# HELP " + base + " " + e->help + "\n";
      switch (e->kind) {
        case Kind::kCounter:
          out += "# TYPE " + base + " counter\n";
          break;
        case Kind::kGauge:
          out += "# TYPE " + base + " gauge\n";
          break;
        case Kind::kHistogram:
          out += "# TYPE " + base + " histogram\n";
          break;
      }
      prev_base = base;
    }
    const std::string plain =
        labels.empty() ? base : base + "{" + labels + "}";
    switch (e->kind) {
      case Kind::kCounter:
        out += plain + " " + std::to_string(e->counter->value()) + "\n";
        break;
      case Kind::kGauge:
        out += plain + " " + sample_value(e->gauge->value()) + "\n";
        break;
      case Kind::kHistogram: {
        // Histogram suffixes splice before the label set so the `le`
        // label lands inside the same braces as the instrument's own.
        const std::string le_prefix =
            labels.empty() ? "{le=\"" : "{" + labels + ",le=\"";
        const Histogram& h = *e->histogram;
        for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
          out += base + "_bucket" + le_prefix +
                 sample_value(h.upper_bounds()[i]) + "\"} " +
                 std::to_string(h.cumulative(i)) + "\n";
        }
        out += base + "_bucket" + le_prefix + "+Inf\"} " +
               std::to_string(h.count()) + "\n";
        const std::string suffix_labels =
            labels.empty() ? "" : "{" + labels + "}";
        out += base + "_sum" + suffix_labels + " " + sample_value(h.sum()) +
               "\n";
        out += base + "_count" + suffix_labels + " " +
               std::to_string(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::snapshot_json() const {
  std::string out = "{";
  bool first = true;
  for (const auto& e : entries_) {
    if (!e->deterministic || e->kind == Kind::kHistogram) continue;
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(e->name) + "\":";
    if (e->kind == Kind::kCounter) {
      out += std::to_string(e->counter->value());
    } else {
      out += json_double(e->gauge->value());
    }
  }
  out += "}";
  return out;
}

std::string MetricsRegistry::quantiles_json() const {
  std::string out = "{";
  bool first = true;
  for (const auto& e : entries_) {
    if (e->kind != Kind::kHistogram || e->histogram->count() == 0) continue;
    if (!first) out += ",";
    first = false;
    const Histogram& h = *e->histogram;
    out += "\"" + json_escape(e->name) + "\":{";
    out += "\"p50\":" + json_double(h.quantile(0.50)) + ",";
    out += "\"p95\":" + json_double(h.quantile(0.95)) + ",";
    out += "\"p99\":" + json_double(h.quantile(0.99)) + ",";
    out += "\"count\":" + std::to_string(h.count()) + "}";
  }
  out += "}";
  return out;
}

}  // namespace automap
