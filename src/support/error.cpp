#include "src/support/error.hpp"

#include <sstream>

namespace automap::detail {

void fail(std::string_view kind, std::string_view cond, std::string_view file,
          int line, std::string_view msg) {
  std::ostringstream os;
  os << file << ":" << line << ": " << kind << " failed";
  if (!cond.empty()) os << ": " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace automap::detail
