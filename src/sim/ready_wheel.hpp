#pragma once

// Resource-timeline structures for the simulator's hot path.
//
// Two components live here:
//
//  * ResourceClocks — the per-(lane, resource) busy-until table behind every
//    serialized resource in the simulator (processor pools, intra-node copy
//    channels, the shared network serialization point). Each resource
//    executes its activities back to back, so its whole timeline reduces to
//    one scalar "busy until" clock; ResourceClocks packs those scalars into
//    one flat array so a multi-repeat simulation (Simulator::run_repeats)
//    keeps all R lanes of all resources in a few cache lines and acquiring
//    a resource is one max + one add — no comparison structure at all.
//    This is the degenerate single-rung case of a time wheel: because
//    activities are *committed* in dependency order, nothing ever needs to
//    be parked and re-ordered, and the censored-abort predicate
//    (finish > bound at commit time) stays exact.
//
//  * BucketedWheel — a calendar-queue-style bucketed ordering structure
//    with a sorted-overflow rung, for the places that *do* need events in
//    time order after the fact (the profile module orders trace events by
//    end time to extract critical paths). Keys are distributed into
//    equal-width buckets across a horizon in O(1) per insert; keys at or
//    past the horizon land in the overflow rung (the last bucket), which is
//    sorted on drain. Draining concatenates the per-bucket runs after a
//    stable within-bucket ordering, so the output is exactly what a global
//    std::stable_sort by key would produce — callers can swap one for the
//    other without changing a byte of output — at O(n + B + Σ n_b log n_b)
//    instead of O(n log n) comparisons for time-clustered keys.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace automap {

/// Flat busy-until clocks for `lanes` independent simulations over
/// `resources` serialized resources. Layout is [lane][resource], so one
/// lane's 14-ish clocks share a cache line and a multi-lane pass touches a
/// contiguous block.
class ResourceClocks {
 public:
  /// (Re)sizes to lanes x resources and zeroes every clock. Reuses capacity.
  void reset(std::size_t lanes, std::size_t resources) {
    resources_ = resources;
    clocks_.assign(lanes * resources, 0.0);
  }

  /// Serializes an activity of length `elapsed` arriving at `arrival` on
  /// `resource`: it starts when both the data and the resource are ready
  /// and occupies the resource until it ends. Returns the start time.
  double acquire(std::size_t lane, std::size_t resource, double arrival,
                 double elapsed) {
    double& busy = clocks_[lane * resources_ + resource];
    const double start = std::max(arrival, busy);
    busy = start + elapsed;
    return start;
  }

  [[nodiscard]] double busy_until(std::size_t lane,
                                  std::size_t resource) const {
    return clocks_[lane * resources_ + resource];
  }
  void set(std::size_t lane, std::size_t resource, double busy) {
    clocks_[lane * resources_ + resource] = busy;
  }

 private:
  std::vector<double> clocks_;
  std::size_t resources_ = 0;
};

/// Bucketed time wheel over (key, id) pairs with a sorted-overflow rung.
/// push() is O(1); drain() emits ids in stable ascending-key order —
/// byte-identical to a std::stable_sort of the pairs by key. Keys must be
/// totally ordered (no NaN); keys below the horizon start clamp into the
/// first bucket and keys at or past the horizon end clamp into the overflow
/// rung, both of which preserve global ordering because clamping is
/// monotone.
class BucketedWheel {
 public:
  /// Configures the horizon [t0, t1) split into `buckets` equal rungs
  /// (at least one; the last doubles as the overflow rung) and clears any
  /// held items. Reuses capacity across uses.
  void reset(double t0, double t1, std::size_t buckets) {
    num_buckets_ = std::max<std::size_t>(1, buckets);
    t0_ = t0;
    const double width = (t1 - t0) / static_cast<double>(num_buckets_);
    inv_width_ = width > 0.0 ? 1.0 / width : 0.0;
    items_.clear();
    counts_.assign(num_buckets_ + 1, 0);
  }

  void push(double key, std::uint32_t id) {
    const std::size_t b = bucket_of(key);
    ++counts_[b + 1];
    items_.push_back({key, id, static_cast<std::uint32_t>(b)});
  }

  [[nodiscard]] std::size_t size() const { return items_.size(); }

  /// Appends every held id to `out` in stable ascending-key order and
  /// leaves the wheel empty (reset() must precede the next use).
  void drain(std::vector<std::uint32_t>& out) {
    // Stable counting pass: items land in their rung in insertion order.
    for (std::size_t b = 1; b <= num_buckets_; ++b)
      counts_[b] += counts_[b - 1];
    sorted_.resize(items_.size());
    {
      std::vector<std::size_t> cursor(counts_.begin(), counts_.end() - 1);
      for (const Item& it : items_) sorted_[cursor[it.bucket]++] = it;
    }
    // Each rung holds keys from one interval of the horizon (overflow rung
    // included), so a stable within-rung ordering makes the concatenation
    // globally stable-sorted.
    for (std::size_t b = 0; b < num_buckets_; ++b) {
      const auto lo = sorted_.begin() + static_cast<std::ptrdiff_t>(counts_[b]);
      const auto hi =
          sorted_.begin() + static_cast<std::ptrdiff_t>(counts_[b + 1]);
      if (hi - lo > 1)
        std::stable_sort(lo, hi, [](const Item& a, const Item& b2) {
          return a.key < b2.key;
        });
    }
    out.reserve(out.size() + sorted_.size());
    for (const Item& it : sorted_) out.push_back(it.id);
    items_.clear();
  }

 private:
  struct Item {
    double key;
    std::uint32_t id;
    std::uint32_t bucket;
  };

  [[nodiscard]] std::size_t bucket_of(double key) const {
    if (!(key > t0_)) return 0;  // below-horizon rung (clamped, monotone)
    const double rel = (key - t0_) * inv_width_;
    if (!(rel < static_cast<double>(num_buckets_)))
      return num_buckets_ - 1;  // sorted-overflow rung
    return static_cast<std::size_t>(rel);
  }

  std::vector<Item> items_;
  std::vector<Item> sorted_;
  std::vector<std::size_t> counts_;
  std::size_t num_buckets_ = 1;
  double t0_ = 0.0;
  double inv_width_ = 0.0;
};

}  // namespace automap
