#pragma once

// Distributed-machine execution simulator.
//
// This is the substrate that replaces the paper's physical clusters: given a
// machine model, a task graph and a mapping, it simulates a run and returns
// a (noisy) execution time, exactly the black-box signal AutoMap's dynamic
// search consumes. The model charges:
//
//   * compute: per-point work on the chosen processor kind, executed in
//     waves over the node's processor pool (a 1-GPU node serializes group
//     points; a 48-core CPU pool runs 48 at a time);
//   * launch overhead: fixed per point per kind — the term that makes small
//     weak-scaled inputs favour CPU mappings, as in the paper's Fig. 6;
//   * memory access: bytes touched per point over the processor->memory
//     affinity bandwidth (Frame-Buffer fast, Zero-Copy slow across PCIe);
//     System memory additionally pays a NUMA penalty for the half of a CPU
//     pool on the far socket (the paper's Stencil System-vs-ZeroCopy
//     observation, §5);
//   * data movement: copies inferred from producer/consumer memory-kind and
//     distribution mismatches, with per-channel serialization, intra-node
//     vs inter-node bandwidths, and gather/scatter for leader-only groups;
//   * capacity: an allocation pass walks each argument's memory priority
//     list and fails the run (OOM) when nothing fits (§3.1, §5.2);
//   * noise: multiplicative log-normal run-to-run variation, so the driver
//     must average repeated runs like the real system does.
//
// Because the search is dynamic-profiling-driven, simulator throughput *is*
// search throughput (§4–5): the search evaluates thousands of mappings
// against the same (graph, machine) pair. The simulator therefore
// front-loads every mapping-independent quantity at construction — a CSR
// view of the dependence edges, per-(task, processor kind, distribution)
// wave/duration invariants, per-argument memory-access times for every
// resolvable memory kind, and flat affinity/channel tables — and threads a
// reusable SimScratch arena through run() so that steady-state runs perform
// no heap allocation.

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/machine/machine.hpp"
#include "src/mapping/mapping.hpp"
#include "src/sim/report.hpp"
#include "src/support/rng.hpp"
#include "src/taskgraph/task_graph.hpp"

namespace automap {

class Counter;
class MetricsRegistry;

/// Deterministic fault-injection model. All probabilities are per-event
/// Bernoulli draws from a dedicated fault RNG stream derived from the
/// (seed, mapping) pair — the same derivation discipline as the noise
/// stream, so results stay bit-identical at any thread count, and a
/// disabled model makes *zero* draws (fault-free configs reproduce the
/// pre-fault-layer results bit for bit).
struct FaultModel {
  /// Per-task probability of a transient crash. The crash point is sampled
  /// uniformly inside the task's execution window; the run aborts there
  /// with ExecutionReport::transient set.
  double crash_prob = 0.0;
  /// Per-task probability of a straggler event: the task's duration is
  /// multiplied by `straggler_factor` (slow node, contended NIC, GC pause).
  double straggler_prob = 0.0;
  double straggler_factor = 4.0;
  /// Per-run probability of a transient memory-pressure window: every
  /// allocation's usable capacity shrinks to `mem_pressure_headroom` of
  /// nominal for the run, so a mapping that normally fits can fail with a
  /// transient OOM.
  double mem_pressure_prob = 0.0;
  double mem_pressure_headroom = 0.75;
  /// Per-copy-leg probability of a channel fault: the leg's first attempt
  /// is lost and the copy is re-issued (the leg takes twice its time).
  double copy_fault_prob = 0.0;

  [[nodiscard]] bool enabled() const {
    return crash_prob > 0.0 || straggler_prob > 0.0 ||
           mem_pressure_prob > 0.0 || copy_fault_prob > 0.0;
  }
};

struct SimOptions {
  /// Main-loop iterations to simulate.
  int iterations = 10;
  /// Log-normal sigma of per-task execution noise; 0 disables noise.
  double noise_sigma = 0.05;
  /// Record per-task/per-copy timeline events in the report (costs memory;
  /// off during search, on for visualization).
  bool record_trace = false;
  /// Default simulated-time bound for run(): once the simulated clock
  /// provably exceeds it, the run is abandoned and reported as *censored*
  /// ("the makespan is >= this bound"). Infinity disables bounding. The
  /// search layer uses per-call bounds derived from its incumbent instead
  /// of this default (incumbent-bounded candidate pruning).
  double time_bound = std::numeric_limits<double>::infinity();
  /// Deterministic fault injection; disabled by default.
  FaultModel faults;
  /// Raw simulator run counters (src/support/metrics.hpp). These count
  /// every simulated run, including the speculative tail a thread pool
  /// pre-executes past an early-stopping fold — so they are NOT
  /// thread-count invariant and are registered deterministic=false
  /// (excluded from journal snapshots, present in --metrics-out). Null
  /// disables; the counters are atomic, so pool workers may bump them.
  MetricsRegistry* metrics = nullptr;
};

class Simulator;

/// Reusable per-worker scratch arena for Simulator::run. All per-run state
/// (memory resolution, busy clocks, the report itself) lives here, so a
/// worker that evaluates thousands of candidates against one simulator
/// allocates only on its first run (or when switching simulators) and runs
/// allocation-free afterwards. A SimScratch may be reused across different
/// Simulator instances; it re-sizes itself on first use with each one. Not
/// thread-safe: use one arena per worker lane.
class SimScratch {
 public:
  SimScratch() = default;
  SimScratch(const SimScratch&) = delete;
  SimScratch& operator=(const SimScratch&) = delete;
  SimScratch(SimScratch&&) = default;
  SimScratch& operator=(SimScratch&&) = default;

 private:
  friend class Simulator;

  struct ResolvedArg {
    MemKind memory = MemKind::kSystem;
    bool demoted = false;
  };

  /// Identity of the simulator the buffers are currently sized for.
  const Simulator* prepared_for_ = nullptr;

  // Memory-resolution state (valid between resolve and the runs using it).
  bool resolve_ok_ = false;
  int demoted_args_ = 0;
  std::string failure_;
  std::vector<ResolvedArg> resolved_;       // flat, Simulator::arg_off_
  std::vector<MemoryFootprint> footprints_;
  std::vector<std::uint64_t> used_;         // [node][mem kind]
  std::vector<std::uint8_t> instantiated_;  // [collection][kind][distributed]

  // Event-loop state.
  std::vector<double> finish_prev_;
  std::vector<double> finish_cur_;

  ExecutionReport report_;
};

class Simulator {
 public:
  /// The graph and machine must outlive the simulator.
  Simulator(const MachineModel& machine, const TaskGraph& graph,
            SimOptions options = {});

  /// Simulates one run. `seed` individualizes the noise; runs with equal
  /// seeds and mappings are bit-identical. Convenience wrapper around the
  /// scratch-based overload (allocates a fresh arena per call).
  [[nodiscard]] ExecutionReport run(const Mapping& mapping,
                                    std::uint64_t seed) const;

  /// Fast path: simulates one run using `scratch` for all per-run state and
  /// returns a reference to the report held inside it. The reference stays
  /// valid until the next run with the same arena. Uses
  /// SimOptions::time_bound.
  const ExecutionReport& run(const Mapping& mapping, std::uint64_t seed,
                             SimScratch& scratch) const;

  /// As above with an explicit simulated-time bound: the event loop aborts
  /// as soon as any task provably finishes after `time_bound`, returning a
  /// report with `censored = true` whose `total_seconds` holds the clock
  /// value that crossed the bound (a lower bound on the true makespan).
  /// The abort predicate is exact — a run is censored if and only if its
  /// unbounded makespan strictly exceeds the bound — so bounded and
  /// unbounded runs of the same (mapping, seed) agree on everything up to
  /// the abort point.
  const ExecutionReport& run(const Mapping& mapping, std::uint64_t seed,
                             SimScratch& scratch, double time_bound) const;

  /// Prepares `scratch` for a *run sequence* over one mapping: validates
  /// the mapping and resolves memory placement once — both are noise-
  /// independent, so one pass serves every subsequent repeat. Returns false
  /// when the mapping is invalid or runs out of memory (scratch.report()
  /// then describes the failure and no runs are possible). On success,
  /// run_prepared() simulates individual runs against the cached
  /// resolution without re-validating or re-resolving.
  bool begin_runs(const Mapping& mapping, SimScratch& scratch) const;

  /// One run against the resolution cached by the last successful
  /// begin_runs() on this scratch. Must be called with that same mapping;
  /// behavior is undefined otherwise. Bit-identical to the equivalent
  /// run() call, minus the per-run validation and resolution cost.
  const ExecutionReport& run_prepared(const Mapping& mapping,
                                      std::uint64_t seed, SimScratch& scratch,
                                      double time_bound) const;

  /// Convenience: runs `repeats` times with derived seeds and returns the
  /// mean total time, or infinity if any run fails (OOM). Memory resolution
  /// is noise-independent, so it is performed once and shared by all
  /// repeats.
  [[nodiscard]] double mean_total_seconds(const Mapping& mapping,
                                          std::uint64_t seed,
                                          int repeats) const;

  [[nodiscard]] const MachineModel& machine() const { return machine_; }
  [[nodiscard]] const TaskGraph& graph() const { return graph_; }
  [[nodiscard]] const SimOptions& options() const { return options_; }

 private:
  /// One incoming dependence edge, flattened for the event loop: argument
  /// positions are pre-resolved to flat indices and every derived byte
  /// quantity (gather/scatter shares, blocked vs round-robin inter-node
  /// shares) is precomputed.
  struct EdgeIn {
    std::uint32_t producer = 0;      // task index
    std::uint32_t producer_arg = 0;  // flat collection-argument index
    std::uint32_t consumer_arg = 0;
    bool cross_iteration = false;
    bool carries_data = true;
    /// producer_collection != consumer_collection (halo/ghost flow that
    /// moves between instances even within one memory kind).
    bool cross_collection = false;
    double bytes = 0.0;
    double inter_bytes_blocked = 0.0;  // bytes * internode_fraction
    double inter_bytes_rr = 0.0;       // bytes * min(1, fraction * 1.6)
    double inter_bytes_gather = 0.0;   // bytes * (N-1)/N
    double bytes_over_nodes = 0.0;     // bytes / N
  };

  /// Flat per-(src kind, dst kind, inter-node) channel table.
  struct Chan {
    double bandwidth = 0.0;
    double latency = 0.0;
    bool present = false;
  };

  /// Allocation pass: picks a concrete memory kind per argument from its
  /// priority list under per-instance capacity accounting. Fills the
  /// resolution state of `scratch`.
  void resolve_memories(const Mapping& mapping, SimScratch& scratch) const;

  /// The event loop proper: one simulated run against the resolution held
  /// in `scratch`. Fills scratch.report_.
  void simulate(const Mapping& mapping, std::uint64_t seed,
                double time_bound, SimScratch& scratch) const;

  /// (Re)sizes the arena for this simulator and clears per-run state.
  void prepare(SimScratch& scratch) const;

  /// Bumps the run counters (no-op when metrics are disabled).
  void count_run(const ExecutionReport& report) const;

  [[nodiscard]] std::size_t dur_index(std::size_t task, std::size_t proc,
                                      std::size_t dist) const {
    return (task * kNumProcKinds + proc) * 2 + dist;
  }
  [[nodiscard]] std::size_t arg_sec_index(std::size_t flat_arg,
                                          std::size_t proc,
                                          std::size_t dist,
                                          std::size_t mem) const {
    return ((flat_arg * kNumProcKinds + proc) * 2 + dist) * kNumMemKinds +
           mem;
  }

  const MachineModel& machine_;
  const TaskGraph& graph_;
  SimOptions options_;

  // Mapping-independent invariants, all built once at construction: the
  // search evaluates thousands of mappings against the same graph, so
  // per-run recomputation would dominate.
  std::vector<TaskId> topo_order_;
  /// CSR adjacency over incoming edges (in-edge order matches the graph's
  /// global edge order per consumer, preserving RNG draw order).
  std::vector<std::uint32_t> in_off_;  // size num_tasks + 1
  std::vector<EdgeIn> in_edges_;
  /// CSR offsets of the flattened collection-argument space.
  std::vector<std::uint32_t> arg_off_;  // size num_tasks + 1
  std::size_t num_flat_args_ = 0;
  /// Per (task, proc kind, distributed): wave-execution compute time
  /// (launch overhead included) and the launch-overhead share, pre-noise.
  /// NaN for invalid combinations (missing variant / missing proc kind),
  /// which mapping validation rejects before the event loop runs.
  std::vector<double> dur_compute_;
  std::vector<double> dur_launch_;
  /// Per (task, proc kind, distributed): energy per busy-second
  /// (watts x busy instances x nodes used).
  std::vector<double> energy_coeff_;
  /// Per (flat arg, proc kind, distributed, resolved mem kind): pool-level
  /// memory access seconds, including affinity latency per wave and the
  /// NUMA cross-socket penalty. NaN for unaddressable combinations.
  std::vector<double> arg_sec_;
  Chan chan_[kNumMemKinds][kNumMemKinds][2];
  std::vector<MemKind> mem_kinds_;
  double runtime_overhead_ = 0.0;
  int num_nodes_ = 1;
  /// Expected trace length (tasks + a 2-leg bound per data edge, per
  /// iteration) to reserve up front when record_trace is on.
  std::size_t trace_reserve_ = 0;
  /// Run counters cached from options_.metrics at construction (null when
  /// metrics are disabled — the per-run cost is then a single untaken
  /// branch).
  Counter* runs_total_ = nullptr;
  Counter* runs_censored_ = nullptr;
  Counter* runs_failed_ = nullptr;
};

}  // namespace automap
