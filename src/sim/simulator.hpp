#pragma once

// Distributed-machine execution simulator.
//
// This is the substrate that replaces the paper's physical clusters: given a
// machine model, a task graph and a mapping, it simulates a run and returns
// a (noisy) execution time, exactly the black-box signal AutoMap's dynamic
// search consumes. The model charges:
//
//   * compute: per-point work on the chosen processor kind, executed in
//     waves over the node's processor pool (a 1-GPU node serializes group
//     points; a 48-core CPU pool runs 48 at a time);
//   * launch overhead: fixed per point per kind — the term that makes small
//     weak-scaled inputs favour CPU mappings, as in the paper's Fig. 6;
//   * memory access: bytes touched per point over the processor->memory
//     affinity bandwidth (Frame-Buffer fast, Zero-Copy slow across PCIe);
//     System memory additionally pays a NUMA penalty for the half of a CPU
//     pool on the far socket (the paper's Stencil System-vs-ZeroCopy
//     observation, §5);
//   * data movement: copies inferred from producer/consumer memory-kind and
//     distribution mismatches, with per-channel serialization, intra-node
//     vs inter-node bandwidths, and gather/scatter for leader-only groups;
//   * capacity: an allocation pass walks each argument's memory priority
//     list and fails the run (OOM) when nothing fits (§3.1, §5.2);
//   * noise: multiplicative log-normal run-to-run variation, so the driver
//     must average repeated runs like the real system does.

#include <cstdint>

#include "src/machine/machine.hpp"
#include "src/mapping/mapping.hpp"
#include "src/sim/report.hpp"
#include "src/support/rng.hpp"
#include "src/taskgraph/task_graph.hpp"

namespace automap {

struct SimOptions {
  /// Main-loop iterations to simulate.
  int iterations = 10;
  /// Log-normal sigma of per-task execution noise; 0 disables noise.
  double noise_sigma = 0.05;
  /// Record per-task/per-copy timeline events in the report (costs memory;
  /// off during search, on for visualization).
  bool record_trace = false;
};

class Simulator {
 public:
  /// The graph and machine must outlive the simulator.
  Simulator(const MachineModel& machine, const TaskGraph& graph,
            SimOptions options = {});

  /// Simulates one run. `seed` individualizes the noise; runs with equal
  /// seeds and mappings are bit-identical.
  [[nodiscard]] ExecutionReport run(const Mapping& mapping,
                                    std::uint64_t seed) const;

  /// Convenience: runs `repeats` times with derived seeds and returns the
  /// mean total time, or infinity if any run fails (OOM).
  [[nodiscard]] double mean_total_seconds(const Mapping& mapping,
                                          std::uint64_t seed,
                                          int repeats) const;

  [[nodiscard]] const MachineModel& machine() const { return machine_; }
  [[nodiscard]] const TaskGraph& graph() const { return graph_; }
  [[nodiscard]] const SimOptions& options() const { return options_; }

 private:
  struct ResolvedArg {
    MemKind memory = MemKind::kSystem;
    bool demoted = false;
  };
  struct Resolution {
    bool ok = false;
    std::string failure;
    // Indexed [task][arg].
    std::vector<std::vector<ResolvedArg>> args;
    std::vector<MemoryFootprint> footprints;
    int demoted_args = 0;
  };

  /// Allocation pass: picks a concrete memory kind per argument from its
  /// priority list under per-instance capacity accounting.
  [[nodiscard]] Resolution resolve_memories(const Mapping& mapping) const;

  /// Wave-execution time of one group task on its pool (excluding waits),
  /// with the overhead terms split out for per-task profiling.
  struct TaskDuration {
    double total = 0.0;
    double launch_overhead = 0.0;
    double runtime_overhead = 0.0;
  };
  [[nodiscard]] TaskDuration task_duration(
      const GroupTask& task, const TaskMapping& tm,
      const std::vector<ResolvedArg>& args) const;

  const MachineModel& machine_;
  const TaskGraph& graph_;
  SimOptions options_;
  // Hot-path caches: the search evaluates thousands of mappings against the
  // same graph, so per-run recomputation would dominate.
  std::vector<TaskId> topo_order_;
  std::vector<std::vector<DependenceEdge>> incoming_;
};

}  // namespace automap
