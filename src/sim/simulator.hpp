#pragma once

// Distributed-machine execution simulator.
//
// This is the substrate that replaces the paper's physical clusters: given a
// machine model, a task graph and a mapping, it simulates a run and returns
// a (noisy) execution time, exactly the black-box signal AutoMap's dynamic
// search consumes. The model charges:
//
//   * compute: per-point work on the chosen processor kind, executed in
//     waves over the node's processor pool (a 1-GPU node serializes group
//     points; a 48-core CPU pool runs 48 at a time);
//   * launch overhead: fixed per point per kind — the term that makes small
//     weak-scaled inputs favour CPU mappings, as in the paper's Fig. 6;
//   * memory access: bytes touched per point over the processor->memory
//     affinity bandwidth (Frame-Buffer fast, Zero-Copy slow across PCIe);
//     System memory additionally pays a NUMA penalty for the half of a CPU
//     pool on the far socket (the paper's Stencil System-vs-ZeroCopy
//     observation, §5);
//   * data movement: copies inferred from producer/consumer memory-kind and
//     distribution mismatches, with per-channel serialization, intra-node
//     vs inter-node bandwidths, and gather/scatter for leader-only groups;
//   * capacity: an allocation pass walks each argument's memory priority
//     list and fails the run (OOM) when nothing fits (§3.1, §5.2);
//   * noise: multiplicative log-normal run-to-run variation, so the driver
//     must average repeated runs like the real system does.
//
// Because the search is dynamic-profiling-driven, simulator throughput *is*
// search throughput (§4–5): the search evaluates thousands of mappings
// against the same (graph, machine) pair. The simulator therefore
// front-loads every mapping-independent quantity at construction — a CSR
// view of the dependence edges, per-(task, processor kind, distribution)
// wave/duration invariants, per-argument memory-access times for every
// resolvable memory kind, and flat affinity/channel tables — and threads a
// reusable SimScratch arena through run() so that steady-state runs perform
// no heap allocation.

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "src/machine/machine.hpp"
#include "src/mapping/mapping.hpp"
#include "src/sim/ready_wheel.hpp"
#include "src/sim/report.hpp"
#include "src/support/rng.hpp"
#include "src/taskgraph/task_graph.hpp"

namespace automap {

class Counter;
class MetricsRegistry;

/// Deterministic fault-injection model. All probabilities are per-event
/// Bernoulli draws from a dedicated fault RNG stream derived from the
/// (seed, mapping) pair — the same derivation discipline as the noise
/// stream, so results stay bit-identical at any thread count, and a
/// disabled model makes *zero* draws (fault-free configs reproduce the
/// pre-fault-layer results bit for bit).
struct FaultModel {
  /// Per-task probability of a transient crash. The crash point is sampled
  /// uniformly inside the task's execution window; the run aborts there
  /// with ExecutionReport::transient set.
  double crash_prob = 0.0;
  /// Per-task probability of a straggler event: the task's duration is
  /// multiplied by `straggler_factor` (slow node, contended NIC, GC pause).
  double straggler_prob = 0.0;
  double straggler_factor = 4.0;
  /// Per-run probability of a transient memory-pressure window: every
  /// allocation's usable capacity shrinks to `mem_pressure_headroom` of
  /// nominal for the run, so a mapping that normally fits can fail with a
  /// transient OOM.
  double mem_pressure_prob = 0.0;
  double mem_pressure_headroom = 0.75;
  /// Per-copy-leg probability of a channel fault: the leg's first attempt
  /// is lost and the copy is re-issued (the leg takes twice its time).
  double copy_fault_prob = 0.0;

  [[nodiscard]] bool enabled() const {
    return crash_prob > 0.0 || straggler_prob > 0.0 ||
           mem_pressure_prob > 0.0 || copy_fault_prob > 0.0;
  }
};

struct SimOptions {
  /// Main-loop iterations to simulate.
  int iterations = 10;
  /// Log-normal sigma of per-task execution noise; 0 disables noise.
  double noise_sigma = 0.05;
  /// Record per-task/per-copy timeline events in the report (costs memory;
  /// off during search, on for visualization).
  bool record_trace = false;
  /// Default simulated-time bound for run(): once the simulated clock
  /// provably exceeds it, the run is abandoned and reported as *censored*
  /// ("the makespan is >= this bound"). Infinity disables bounding. The
  /// search layer uses per-call bounds derived from its incumbent instead
  /// of this default (incumbent-bounded candidate pruning).
  double time_bound = std::numeric_limits<double>::infinity();
  /// Deterministic fault injection; disabled by default.
  FaultModel faults;
  /// Raw simulator run counters (src/support/metrics.hpp). These count
  /// every simulated run, including the speculative tail a thread pool
  /// pre-executes past an early-stopping fold — so they are NOT
  /// thread-count invariant and are registered deterministic=false
  /// (excluded from journal snapshots, present in --metrics-out). Null
  /// disables; the counters are atomic, so pool workers may bump them.
  MetricsRegistry* metrics = nullptr;
};

class Simulator;

/// Reusable per-worker scratch arena for Simulator::run. All per-run state
/// (memory resolution, busy clocks, the report itself) lives here, so a
/// worker that evaluates thousands of candidates against one simulator
/// allocates only on its first run (or when switching simulators) and runs
/// allocation-free afterwards. A SimScratch may be reused across different
/// Simulator instances; it re-sizes itself on first use with each one. Not
/// thread-safe: use one arena per worker lane.
class SimScratch {
 public:
  SimScratch() = default;
  SimScratch(const SimScratch&) = delete;
  SimScratch& operator=(const SimScratch&) = delete;
  SimScratch(SimScratch&&) = default;
  SimScratch& operator=(SimScratch&&) = default;

  /// Reusable caller-side buffer for Simulator::run_repeats seed spans —
  /// lives in the arena so steady-state multi-repeat evaluation allocates
  /// nothing (the evaluator fills it per candidate and passes it back in).
  [[nodiscard]] std::vector<std::uint64_t>& seed_buffer() {
    return seed_buffer_;
  }

 private:
  friend class Simulator;

  struct ResolvedArg {
    MemKind memory = MemKind::kSystem;
    bool demoted = false;
  };

  // --- Execution plan, built by Simulator::begin_runs: every mapping-
  // dependent quantity of the event loop (durations with resolved memory
  // access folded in, copy legs with precomputed elapsed times and flat
  // resource-clock ids), laid out as parallel flat arrays in topo_order_
  // visit order. The per-repeat pass then streams through these rows and
  // never touches the Mapping, the TaskGraph or the lookup tables again.

  /// One task row, in topo visit order.
  struct PlanTask {
    std::uint32_t task = 0;        // task index (report/finish slot)
    std::uint32_t edge_begin = 0;  // [edge_begin, edge_end) into plan_edges_
    std::uint32_t edge_end = 0;
    /// Pre-noise duration: runtime overhead + wave compute + resolved
    /// memory-access time, summed in the exact order the event loop
    /// historically used (bit-identical doubles).
    double base_dur = 0.0;
    double launch = 0.0;        // launch-overhead share of base_dur
    double energy_coeff = 0.0;  // energy per busy-second
    std::uint32_t pool = 0;     // leader-node pool clock (ResourceClocks id)
    std::uint8_t dist = 0;      // occupies every node (second pool clock)
    ProcKind proc = ProcKind::kCpu;
  };
  /// One incoming edge row; legs are contiguous in plan_legs_. An ordering
  /// (no-data) edge is simply an edge with zero legs.
  struct PlanEdge {
    std::uint32_t producer = 0;
    std::uint32_t leg_begin = 0;
    std::uint32_t leg_end = 0;
    std::uint8_t cross_iteration = 0;
  };
  /// One copy leg row: elapsed time and byte/energy charges precomputed,
  /// channel resolved to a flat resource-clock id.
  struct PlanLeg {
    double elapsed = 0.0;  // pre-noise channel time
    double bytes = 0.0;
    double energy = 0.0;  // per-byte copy energy charge
    std::uint64_t bytes_u64 = 0;
    /// ResourceClocks id, or Simulator::kMissingChannel when the machine
    /// lacks the channel — raised lazily at execution time, because a leg
    /// on a cross-iteration edge may never execute.
    std::uint32_t resource = 0;
    std::uint8_t inter = 0;
    std::uint8_t src = 0;  // MemKind indices, for traces and errors
    std::uint8_t dst = 0;
  };

  /// Identity of the simulator the buffers are currently sized for.
  const Simulator* prepared_for_ = nullptr;

  // Memory-resolution state (valid between resolve and the runs using it).
  // Failures are recorded as an enum plus the offending ids; the message
  // string is built lazily by begin_runs so the resolve pass itself stays
  // allocation-free.
  enum class ResolveFailure : std::uint8_t { kNone, kOutOfMemory };
  bool resolve_ok_ = false;
  int demoted_args_ = 0;
  ResolveFailure failure_kind_ = ResolveFailure::kNone;
  std::uint32_t failure_task_ = 0;
  std::uint32_t failure_collection_ = 0;
  std::vector<ResolvedArg> resolved_;       // flat, Simulator::arg_off_
  std::vector<MemoryFootprint> footprints_;
  std::vector<std::uint64_t> used_;         // [node][mem kind]
  std::vector<std::uint8_t> instantiated_;  // [collection][kind][distributed]

  // The plan (see above), rebuilt by each begin_runs.
  std::vector<PlanTask> plan_tasks_;
  std::vector<PlanEdge> plan_edges_;
  std::vector<PlanLeg> plan_legs_;
  /// Precomputed trace strings per leg (record_trace only; empty otherwise).
  std::vector<std::string> leg_names_;
  std::vector<std::string> leg_resources_;
  /// mapping.hash() cached at begin_runs — every run's RNG seeding reuses it.
  std::uint64_t plan_hash_ = 0;

  // Event-loop state.
  ResourceClocks clocks_;
  std::vector<double> finish_prev_;
  std::vector<double> finish_cur_;

  // Interleaved multi-repeat lane state (run_repeats). Finish arrays are
  // [task][lane] so the lane-inner loops stream contiguously.
  std::vector<double> lane_finish_a_;
  std::vector<double> lane_finish_b_;
  std::vector<double> lane_ready_;
  std::vector<double> lane_arrival_;
  std::vector<double> lane_makespan_;
  std::vector<Rng> lane_rng_;
  std::vector<Rng> lane_fault_rng_;
  std::vector<std::uint8_t> lane_done_;
  std::vector<ExecutionReport> lane_reports_;
  std::vector<std::uint64_t> seed_buffer_;

  ExecutionReport report_;
};

class Simulator {
 public:
  /// The graph and machine must outlive the simulator.
  Simulator(const MachineModel& machine, const TaskGraph& graph,
            SimOptions options = {});

  /// Simulates one run. `seed` individualizes the noise; runs with equal
  /// seeds and mappings are bit-identical. Convenience wrapper around the
  /// scratch-based overload (allocates a fresh arena per call).
  [[nodiscard]] ExecutionReport run(const Mapping& mapping,
                                    std::uint64_t seed) const;

  /// Fast path: simulates one run using `scratch` for all per-run state and
  /// returns a reference to the report held inside it. The reference stays
  /// valid until the next run with the same arena. Uses
  /// SimOptions::time_bound.
  const ExecutionReport& run(const Mapping& mapping, std::uint64_t seed,
                             SimScratch& scratch) const;

  /// As above with an explicit simulated-time bound: the event loop aborts
  /// as soon as any task provably finishes after `time_bound`, returning a
  /// report with `censored = true` whose `total_seconds` holds the clock
  /// value that crossed the bound (a lower bound on the true makespan).
  /// The abort predicate is exact — a run is censored if and only if its
  /// unbounded makespan strictly exceeds the bound — so bounded and
  /// unbounded runs of the same (mapping, seed) agree on everything up to
  /// the abort point.
  const ExecutionReport& run(const Mapping& mapping, std::uint64_t seed,
                             SimScratch& scratch, double time_bound) const;

  /// Prepares `scratch` for a *run sequence* over one mapping: validates
  /// the mapping and resolves memory placement once — both are noise-
  /// independent, so one pass serves every subsequent repeat. Returns false
  /// when the mapping is invalid or runs out of memory (scratch.report()
  /// then describes the failure and no runs are possible). On success,
  /// run_prepared() simulates individual runs against the cached
  /// resolution without re-validating or re-resolving.
  bool begin_runs(const Mapping& mapping, SimScratch& scratch) const;

  /// One run against the resolution cached by the last successful
  /// begin_runs() on this scratch. Must be called with that same mapping;
  /// behavior is undefined otherwise. Bit-identical to the equivalent
  /// run() call, minus the per-run validation and resolution cost.
  const ExecutionReport& run_prepared(const Mapping& mapping,
                                      std::uint64_t seed, SimScratch& scratch,
                                      double time_bound) const;

  /// Batch-interleaved multi-repeat simulation: simulates one run per seed
  /// in a *single* pass over the task graph — one traversal of the
  /// precomputed plan with seeds.size() parallel clock lanes, instead of
  /// re-walking the graph per repeat. Each lane r is bit-identical to
  /// run_prepared(mapping, seeds[r], scratch, time_bound): per-lane RNG
  /// streams draw in the same order, per-lane resource clocks evolve
  /// identically, and a lane that crosses the bound (or crashes under fault
  /// injection) terminates exactly where its sequential run would, making
  /// no further draws. Requires a successful begin_runs(mapping, scratch);
  /// the returned span (one report per seed, in seed order) stays valid
  /// until the next run on the same arena.
  std::span<const ExecutionReport> run_repeats(
      const Mapping& mapping, std::span<const std::uint64_t> seeds,
      SimScratch& scratch,
      double time_bound = std::numeric_limits<double>::infinity()) const;

  /// Convenience: runs `repeats` times with derived seeds and returns the
  /// mean total time, or infinity if any run fails (OOM). Memory resolution
  /// is noise-independent, so it is performed once and shared by all
  /// repeats.
  [[nodiscard]] double mean_total_seconds(const Mapping& mapping,
                                          std::uint64_t seed,
                                          int repeats) const;

  [[nodiscard]] const MachineModel& machine() const { return machine_; }
  [[nodiscard]] const TaskGraph& graph() const { return graph_; }
  [[nodiscard]] const SimOptions& options() const { return options_; }

 private:
  /// One incoming dependence edge, flattened for the event loop: argument
  /// positions are pre-resolved to flat indices and every derived byte
  /// quantity (gather/scatter shares, blocked vs round-robin inter-node
  /// shares) is precomputed.
  struct EdgeIn {
    std::uint32_t producer = 0;      // task index
    std::uint32_t producer_arg = 0;  // flat collection-argument index
    std::uint32_t consumer_arg = 0;
    bool cross_iteration = false;
    bool carries_data = true;
    /// producer_collection != consumer_collection (halo/ghost flow that
    /// moves between instances even within one memory kind).
    bool cross_collection = false;
    double bytes = 0.0;
    double inter_bytes_blocked = 0.0;  // bytes * internode_fraction
    double inter_bytes_rr = 0.0;       // bytes * min(1, fraction * 1.6)
    double inter_bytes_gather = 0.0;   // bytes * (N-1)/N
    double bytes_over_nodes = 0.0;     // bytes / N
  };

  /// Flat per-(src kind, dst kind, inter-node) channel table.
  struct Chan {
    double bandwidth = 0.0;
    double latency = 0.0;
    bool present = false;
  };

  // Flat resource-clock id space (ResourceClocks): two pool clocks per
  // processor kind (leader node / other nodes), one clock per intra-node
  // (src, dst) channel, and the shared network serialization point.
  static constexpr std::uint32_t kPoolClockBase = 0;
  static constexpr std::uint32_t kChanClockBase =
      kPoolClockBase + kNumProcKinds * 2;
  static constexpr std::uint32_t kNetClock =
      kChanClockBase + kNumMemKinds * kNumMemKinds;
  static constexpr std::uint32_t kNumResClocks = kNetClock + 1;
  /// PlanLeg::resource sentinel: the machine lacks the leg's channel; the
  /// standard missing-channel error is raised if the leg ever executes.
  static constexpr std::uint32_t kMissingChannel = 0xffffffffu;

  /// Allocation pass: picks a concrete memory kind per argument from its
  /// priority list under per-instance capacity accounting. Fills the
  /// resolution state of `scratch`.
  void resolve_memories(const Mapping& mapping, SimScratch& scratch) const;

  /// Builds the scratch-held execution plan (SimScratch::PlanTask/PlanEdge/
  /// PlanLeg) for a resolved mapping: one row per task/edge/copy-leg in
  /// topo visit order, every duration and channel time precomputed with the
  /// exact operation order of the historical event loop (bit-identical
  /// doubles). Called by begin_runs after resolve_memories succeeds.
  void build_plan(const Mapping& mapping, SimScratch& scratch) const;

  /// The event loop proper: one simulated run against the plan held in
  /// `scratch`. Fills scratch.report_.
  void simulate(const Mapping& mapping, std::uint64_t seed,
                double time_bound, SimScratch& scratch) const;

  /// (Re)sizes the arena for this simulator and clears per-run state.
  void prepare(SimScratch& scratch) const;

  /// Bumps the run counters (no-op when metrics are disabled).
  void count_run(const ExecutionReport& report) const;

  [[nodiscard]] std::size_t dur_index(std::size_t task, std::size_t proc,
                                      std::size_t dist) const {
    return (task * kNumProcKinds + proc) * 2 + dist;
  }
  [[nodiscard]] std::size_t arg_sec_index(std::size_t flat_arg,
                                          std::size_t proc,
                                          std::size_t dist,
                                          std::size_t mem) const {
    return ((flat_arg * kNumProcKinds + proc) * 2 + dist) * kNumMemKinds +
           mem;
  }

  const MachineModel& machine_;
  const TaskGraph& graph_;
  SimOptions options_;

  // Mapping-independent invariants, all built once at construction: the
  // search evaluates thousands of mappings against the same graph, so
  // per-run recomputation would dominate.
  std::vector<TaskId> topo_order_;
  /// CSR adjacency over incoming edges (in-edge order matches the graph's
  /// global edge order per consumer, preserving RNG draw order).
  std::vector<std::uint32_t> in_off_;  // size num_tasks + 1
  std::vector<EdgeIn> in_edges_;
  /// CSR offsets of the flattened collection-argument space.
  std::vector<std::uint32_t> arg_off_;  // size num_tasks + 1
  std::size_t num_flat_args_ = 0;
  /// Per (task, proc kind, distributed): wave-execution compute time
  /// (launch overhead included) and the launch-overhead share, pre-noise.
  /// NaN for invalid combinations (missing variant / missing proc kind),
  /// which mapping validation rejects before the event loop runs.
  std::vector<double> dur_compute_;
  std::vector<double> dur_launch_;
  /// Per (task, proc kind, distributed): energy per busy-second
  /// (watts x busy instances x nodes used).
  std::vector<double> energy_coeff_;
  /// Per (flat arg, proc kind, distributed, resolved mem kind): pool-level
  /// memory access seconds, including affinity latency per wave and the
  /// NUMA cross-socket penalty. NaN for unaddressable combinations.
  std::vector<double> arg_sec_;
  Chan chan_[kNumMemKinds][kNumMemKinds][2];
  std::vector<MemKind> mem_kinds_;
  double runtime_overhead_ = 0.0;
  int num_nodes_ = 1;
  /// Expected trace length (tasks + a 2-leg bound per data edge, per
  /// iteration) to reserve up front when record_trace is on.
  std::size_t trace_reserve_ = 0;
  /// Run counters cached from options_.metrics at construction (null when
  /// metrics are disabled — the per-run cost is then a single untaken
  /// branch).
  Counter* runs_total_ = nullptr;
  Counter* runs_censored_ = nullptr;
  Counter* runs_failed_ = nullptr;
  Counter* events_total_ = nullptr;
};

}  // namespace automap
