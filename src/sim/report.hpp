#pragma once

// Execution reports produced by the simulator — the "performance profiles"
// AutoMap's dynamic analysis consumes (paper §3, Figure 4).

#include <cstdint>
#include <string>
#include <vector>

#include "src/machine/kinds.hpp"
#include "src/support/id.hpp"

namespace automap {

/// Per-group-task measurements for one run.
struct TaskReport {
  TaskId task;
  /// Processor kind the task executed on.
  ProcKind proc = ProcKind::kCpu;
  /// Busy time of the task's processor pool per iteration (seconds).
  double compute_seconds = 0.0;
  /// Time spent waiting on incoming copies per iteration (seconds).
  double copy_wait_seconds = 0.0;
  /// Share of compute_seconds that is per-wave launch overhead (seconds per
  /// iteration, before noise) — the term the profile module splits out.
  double launch_overhead_seconds = 0.0;
  /// Share of compute_seconds that is the mapping-independent per-launch
  /// runtime cost (seconds per iteration, before noise).
  double runtime_overhead_seconds = 0.0;
};

/// Memory-kind footprint actually allocated by a run.
struct MemoryFootprint {
  MemKind kind = MemKind::kSystem;
  /// Peak bytes resident in the fullest single allocation of this kind.
  std::uint64_t peak_instance_bytes = 0;
  /// Capacity of one allocation of this kind.
  std::uint64_t capacity_bytes = 0;
};

/// One scheduled activity of a run, for timeline visualization. Only
/// recorded when SimOptions::record_trace is set.
struct TraceEvent {
  /// kFault events annotate injected faults (straggler inflation, crash
  /// points, copy re-issues); their window overlaps the affected task/copy
  /// event, so consumers must not count them toward resource busy time.
  enum class Kind : std::uint8_t { kTask, kCopy, kFault };
  Kind kind = Kind::kTask;
  /// Task name, or "src->dst" channel description for copies.
  std::string name;
  /// "GPU"/"CPU" pool, intra-node channel, or the shared "network" row.
  std::string resource;
  int iteration = 0;
  double start_s = 0.0;
  double duration_s = 0.0;
  /// Bytes moved (copies only; 0 for task events).
  std::uint64_t bytes = 0;
};

/// Tally of the faults the simulator injected into one run (all zero when
/// SimOptions::faults is disabled).
struct FaultCounts {
  /// Transient task crashes (each aborts the run).
  int crashes = 0;
  /// Straggler events (task duration multiplied, run continues).
  int stragglers = 0;
  /// Transient memory-pressure windows observed (fatal only when the
  /// mapping's peak footprint exceeds the reduced capacity).
  int mem_pressure = 0;
  /// Copy legs that failed once and were re-issued.
  int copy_retries = 0;
  /// Simulated seconds consumed by fault effects: straggler inflation,
  /// partial work lost to a crash, and re-issued copy attempts.
  double lost_seconds = 0.0;

  [[nodiscard]] int total() const {
    return crashes + stragglers + mem_pressure + copy_retries;
  }
};

/// Result of simulating one execution of the application under a mapping.
struct ExecutionReport {
  /// True when every collection argument found a memory with capacity; when
  /// false the run failed with an out-of-memory error and the timing fields
  /// are meaningless (the driver skips such mappings, §5.2).
  bool ok = false;
  std::string failure;
  /// Set (with ok == false) when the failure was an injected transient
  /// fault — a retry with a different seed may succeed, unlike the
  /// deterministic placement-time OOM above. `total_seconds` then holds the
  /// simulated clock at the abort (work a retrying driver has to pay for).
  bool transient = false;

  /// True when the run was abandoned because the simulated clock provably
  /// exceeded the caller's time bound (incumbent-bounded pruning). The run
  /// still counts as ok; `total_seconds` then holds the clock value that
  /// crossed the bound — a strict lower bound on the true makespan — and
  /// every other field is partial and must not be consumed.
  bool censored = false;
  /// The bound a censored run was cut at (infinity when unbounded).
  double time_bound = 0.0;

  /// End-to-end wall time of the simulated run (seconds); for censored
  /// runs, the bound-crossing clock value (a lower bound on the true
  /// makespan).
  double total_seconds = 0.0;
  /// Main-loop iterations executed.
  int iterations = 0;
  /// Scheduling events the run processed: one per task execution (crashed
  /// and bound-crossing tasks included — their work was performed) plus one
  /// per copy leg. The true denominator of simulator throughput
  /// (events/second), reported by the BM_SimThroughput* benchmarks and the
  /// automap_sim_events_total counter.
  std::uint64_t events = 0;
  /// total_seconds / iterations — the per-iteration metric of Figure 9.
  [[nodiscard]] double seconds_per_iteration() const {
    return iterations > 0 ? total_seconds / iterations : total_seconds;
  }

  /// Bytes moved by inferred copies, per iteration.
  std::uint64_t intra_node_copy_bytes = 0;
  std::uint64_t inter_node_copy_bytes = 0;

  /// Estimated processor energy of the whole run (busy time x per-instance
  /// power, plus a fixed per-byte cost for copies) — the alternative
  /// objective of §3.3.
  double energy_joules = 0.0;

  std::vector<TaskReport> tasks;
  std::vector<MemoryFootprint> footprints;

  /// Count of collection arguments that were demoted to a lower-priority
  /// memory kind because the first choice was full (§3.1 priority lists).
  int demoted_args = 0;

  /// Injected-fault tally for this run (zeros when fault injection is off).
  FaultCounts faults;

  /// Timeline events; empty unless SimOptions::record_trace.
  std::vector<TraceEvent> trace;
};

}  // namespace automap
