#include "src/sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "src/support/error.hpp"
#include "src/support/format.hpp"

namespace automap {

namespace {

/// ceil(a / b) for positive integers.
std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Index of the (first) argument of `task` that carries `collection`.
std::size_t arg_index_of(const GroupTask& task, CollectionId collection) {
  for (std::size_t i = 0; i < task.args.size(); ++i)
    if (task.args[i].collection == collection) return i;
  AM_UNREACHABLE("dependence edge references a collection the task lacks");
}

}  // namespace

Simulator::Simulator(const MachineModel& machine, const TaskGraph& graph,
                     SimOptions options)
    : machine_(machine), graph_(graph), options_(options) {
  AM_REQUIRE(options_.iterations > 0, "iterations must be positive");
  AM_REQUIRE(options_.noise_sigma >= 0.0, "noise sigma must be >= 0");
  machine_.validate();
  graph_.validate();
  topo_order_ = graph_.topological_order();
  incoming_.resize(graph_.num_tasks());
  for (const DependenceEdge& e : graph_.edges())
    incoming_[e.consumer.index()].push_back(e);
}

Simulator::Resolution Simulator::resolve_memories(
    const Mapping& mapping) const {
  Resolution res;
  res.args.resize(graph_.num_tasks());

  const int num_nodes = machine_.num_nodes();

  // Per (node, mem kind): bytes committed to the *fullest single instance*
  // of that kind. We charge each collection instance divided over the
  // allocations that hold it (sockets for System, GPUs for FrameBuffer).
  std::vector<std::array<std::uint64_t, kNumMemKinds>> used(
      static_cast<std::size_t>(num_nodes), {0, 0, 0});

  // A collection instantiated once per (collection, kind, distributed) is
  // shared by all tasks that agree on those coordinates.
  std::set<std::tuple<std::uint32_t, std::size_t, bool>> instantiated;

  for (const GroupTask& task : graph_.tasks()) {
    const TaskMapping& tm = mapping.at(task.id);
    AM_REQUIRE(tm.arg_memories.size() == task.args.size(),
               "mapping shape mismatch for task " + task.name);
    auto& resolved = res.args[task.id.index()];
    resolved.resize(task.args.size());

    const bool distributed = tm.distribute && num_nodes > 1;
    const int nodes_used = distributed ? num_nodes : 1;
    const std::int64_t points_per_node =
        ceil_div(task.num_points, nodes_used);

    for (std::size_t a = 0; a < task.args.size(); ++a) {
      const CollectionId cid = task.args[a].collection;
      const std::uint64_t total_bytes = graph_.collection_bytes(cid);
      const std::uint64_t node_share =
          total_bytes / static_cast<std::uint64_t>(nodes_used);

      bool placed = false;
      for (std::size_t pri = 0; pri < tm.arg_memories[a].size(); ++pri) {
        const MemKind kind = tm.arg_memories[a][pri];
        if (!machine_.addressable(tm.proc, kind)) continue;

        const auto key = std::make_tuple(cid.value(), index_of(kind),
                                         distributed);
        if (instantiated.contains(key)) {
          // Already resident in this kind with the same layout; reuse it.
          resolved[a] = {.memory = kind, .demoted = pri > 0};
          if (pri > 0) ++res.demoted_args;
          placed = true;
          break;
        }

        // Bytes charged to the fullest allocation of this kind on a node:
        // a distributed collection interleaves across the kind's per-node
        // allocations it can use.
        const int allocs = machine_.mems_per_node(kind);
        const int spread = static_cast<int>(std::max<std::int64_t>(
            1, std::min<std::int64_t>(allocs, points_per_node)));
        const std::uint64_t instance_share =
            node_share / static_cast<std::uint64_t>(spread);
        const std::uint64_t capacity = machine_.mem_capacity(kind);

        bool fits = true;
        for (int n = 0; n < nodes_used; ++n) {
          if (used[static_cast<std::size_t>(n)][index_of(kind)] +
                  instance_share >
              capacity) {
            fits = false;
            break;
          }
        }
        if (!fits) continue;

        for (int n = 0; n < nodes_used; ++n)
          used[static_cast<std::size_t>(n)][index_of(kind)] += instance_share;
        instantiated.insert(key);
        resolved[a] = {.memory = kind, .demoted = pri > 0};
        if (pri > 0) ++res.demoted_args;
        placed = true;
        break;
      }

      if (!placed) {
        std::ostringstream os;
        os << "out of memory: no memory kind in the priority list of task "
           << task.name << " argument "
           << graph_.collection(cid).name << " ("
           << format_bytes(total_bytes) << ") has capacity left";
        res.failure = os.str();
        return res;
      }
    }
  }

  for (const MemKind kind : machine_.mem_kinds()) {
    std::uint64_t peak = 0;
    for (const auto& node_used : used)
      peak = std::max(peak, node_used[index_of(kind)]);
    res.footprints.push_back({.kind = kind,
                              .peak_instance_bytes = peak,
                              .capacity_bytes = machine_.mem_capacity(kind)});
  }
  res.ok = true;
  return res;
}

Simulator::TaskDuration Simulator::task_duration(
    const GroupTask& task, const TaskMapping& tm,
    const std::vector<ResolvedArg>& args) const {
  const ProcGroup& pg = machine_.proc_group(tm.proc);
  const int num_nodes = machine_.num_nodes();
  const bool distributed = tm.distribute && num_nodes > 1;
  const int nodes_used = distributed ? num_nodes : 1;

  const std::int64_t points_per_node = ceil_div(task.num_points, nodes_used);
  const std::int64_t waves = ceil_div(points_per_node, pg.count_per_node);

  const double compute_per_point =
      (tm.proc == ProcKind::kGpu ? task.cost.gpu_seconds_per_point
                                 : task.cost.cpu_seconds_per_point) /
      pg.speed;
  AM_CHECK(compute_per_point >= 0.0, "task mapped to missing variant");

  // Launch overhead and compute serialize in waves over the pool.
  const double launch_time =
      static_cast<double>(waves) * pg.launch_overhead_s;
  const double compute_time =
      launch_time + static_cast<double>(waves) * compute_per_point;

  // Memory access is pool-level: all points on a node stream their bytes
  // through the shared affinity bandwidth (per-allocation for FrameBuffer,
  // engaging as many GPUs as the group occupies).
  double mem_time = 0.0;
  for (std::size_t a = 0; a < task.args.size(); ++a) {
    const CollectionUse& use = task.args[a];
    const MemKind mem = args[a].memory;
    const Affinity aff = machine_.affinity(tm.proc, mem);
    const double node_bytes =
        static_cast<double>(graph_.collection_bytes(use.collection)) *
        use.access_fraction / static_cast<double>(nodes_used);

    // Allocations engaged in parallel: GPUs for FrameBuffer, one shared
    // aggregate otherwise (System's two sockets are already folded into
    // the affinity figure).
    double engaged = 1.0;
    if (mem == MemKind::kFrameBuffer) {
      engaged = static_cast<double>(std::min<std::int64_t>(
          std::min(pg.count_per_node,
                   machine_.mems_per_node(MemKind::kFrameBuffer)),
          points_per_node));
    }
    const double bw = aff.bandwidth_bytes_per_s * engaged;

    double seconds = aff.latency_s * static_cast<double>(waves);
    if (tm.proc == ProcKind::kCpu && mem == MemKind::kSystem &&
        machine_.mems_per_node(MemKind::kSystem) > 1) {
      // NUMA: with per-socket System allocations, roughly half of a CPU
      // pool's accesses cross to the far socket's allocation through the
      // cross-socket link (Legion keeps one instance per socket and
      // transfers between them). Zero-Copy is a single allocation visible
      // to all processors and avoids this — the effect the paper calls out
      // for Stencil (§5).
      const double cross_bw =
          std::min(bw, 2.0 * machine_.cross_socket_channel()
                                 .bandwidth_bytes_per_s);
      seconds += 0.5 * node_bytes / bw + 0.5 * node_bytes / cross_bw;
    } else {
      seconds += node_bytes / bw;
    }
    mem_time += seconds;
  }

  // Mapping-independent per-launch runtime cost (dependence analysis,
  // mapper queries, instance binding on the reserved runtime cores).
  return {.total = machine_.runtime_overhead() + compute_time + mem_time,
          .launch_overhead = launch_time,
          .runtime_overhead = machine_.runtime_overhead()};
}

ExecutionReport Simulator::run(const Mapping& mapping,
                               std::uint64_t seed) const {
  ExecutionReport report;
  report.iterations = options_.iterations;

  {
    const auto violations = mapping.violations(graph_, machine_);
    if (!violations.empty()) {
      report.failure = "invalid mapping: " + violations.front();
      return report;
    }
  }

  const Resolution res = resolve_memories(mapping);
  if (!res.ok) {
    report.failure = res.failure;
    return report;
  }
  report.footprints = res.footprints;
  report.demoted_args = res.demoted_args;

  Rng rng(mix64(seed) ^ mapping.hash());
  const int num_nodes = machine_.num_nodes();
  const auto& topo = topo_order_;

  // Resource state, carried across iterations.
  // Processor pools: busy-until per (proc kind, node).
  std::vector<std::array<double, kNumProcKinds>> pool_busy(
      static_cast<std::size_t>(num_nodes), {0.0, 0.0});
  // Intra-node copy channels: busy-until per (src kind, dst kind). All
  // inter-node legs share one interconnect busy-state instead: the machine
  // has one NIC, so System->System and FB->FB network transfers contend
  // with each other even though their bandwidths (machine_.channel) differ
  // per kind pair.
  std::map<std::tuple<std::size_t, std::size_t>, double> channel_busy;
  double interconnect_busy = 0.0;

  std::vector<double> finish_prev(graph_.num_tasks(), 0.0);
  std::vector<double> finish_cur(graph_.num_tasks(), 0.0);

  report.tasks.resize(graph_.num_tasks());
  for (std::size_t i = 0; i < graph_.num_tasks(); ++i)
    report.tasks[i].task = TaskId(i);

  const double copy_noise_sigma = options_.noise_sigma * 0.5;
  double makespan = 0.0;

  for (int iter = 0; iter < options_.iterations; ++iter) {
    for (const TaskId tid : topo) {
      const GroupTask& task = graph_.task(tid);
      const TaskMapping& tm = mapping.at(tid);
      const auto& resolved = res.args[tid.index()];

      // 1. Data arrival: producers' finish plus any inferred copies.
      double ready = 0.0;
      for (const DependenceEdge& edge : incoming_[tid.index()]) {
        const DependenceEdge* e = &edge;
        double produced_at;
        if (e->cross_iteration) {
          if (iter == 0) continue;  // initial data is in place
          produced_at = finish_prev[e->producer.index()];
        } else {
          produced_at = finish_cur[e->producer.index()];
        }

        if (!e->carries_data) {
          // Pure ordering dependence (WAR/WAW): serializes, moves nothing.
          ready = std::max(ready, produced_at);
          continue;
        }

        const GroupTask& prod_task = graph_.task(e->producer);
        const TaskMapping& ptm = mapping.at(e->producer);
        const MemKind src =
            res.args[e->producer.index()]
                    [arg_index_of(prod_task, e->producer_collection)]
                        .memory;
        const MemKind dst =
            resolved[arg_index_of(task, e->consumer_collection)].memory;

        const bool p_dist = ptm.distribute && num_nodes > 1;
        const bool c_dist = tm.distribute && num_nodes > 1;
        const double bytes = static_cast<double>(e->bytes);
        // Cross-collection (halo/ghost) flow moves between *instances* even
        // when both live in the same memory kind — per-socket System
        // allocations and per-GPU Frame-Buffers require a staging copy.
        // Zero-Copy is a single node-wide allocation, so it alone is exempt:
        // this is the System-vs-ZeroCopy distinction the paper calls out
        // for Stencil (§5).
        const bool cross_collection =
            e->producer_collection != e->consumer_collection;
        const bool intra_copy_needed =
            src != dst || (cross_collection && src != MemKind::kZeroCopy);
        // Round-robin point placement scatters neighboring points across
        // nodes, inflating the boundary traffic a blocked decomposition
        // would keep local (the custom-mapper advantage on Circuit, §5).
        const double internode_fraction =
            (ptm.blocked && tm.blocked)
                ? e->internode_fraction
                : std::min(1.0, e->internode_fraction * 1.6);

        // Copy legs: (bytes to move, effective per-node parallelism,
        // inter-node?). Legs queue on their channel in sequence.
        struct Leg {
          double bytes = 0.0;
          double parallelism = 1.0;
          bool inter = false;
        };
        std::vector<Leg> legs;
        if (p_dist && c_dist) {
          const double inter_bytes = bytes * internode_fraction;
          if (inter_bytes > 0.0)
            legs.push_back({inter_bytes, double(num_nodes), true});
          if (intra_copy_needed) {
            const double intra = bytes - inter_bytes;
            if (intra > 0.0)
              legs.push_back({intra, double(num_nodes), false});
          }
        } else if (p_dist != c_dist) {
          // Gather to / scatter from the leader node: (N-1)/N of the data
          // crosses the network serially into one endpoint.
          const double inter_bytes =
              bytes * static_cast<double>(num_nodes - 1) /
              static_cast<double>(num_nodes);
          if (inter_bytes > 0.0) legs.push_back({inter_bytes, 1.0, true});
          if (intra_copy_needed)
            legs.push_back(
                {bytes / static_cast<double>(num_nodes), 1.0, false});
        } else {
          // Both on the leader node (or a single-node machine).
          if (intra_copy_needed) legs.push_back({bytes, 1.0, false});
        }

        double arrival = produced_at;
        for (const Leg& leg : legs) {
          const Channel ch = machine_.channel(src, dst, leg.inter);
          double elapsed =
              ch.latency_s +
              leg.bytes / leg.parallelism / ch.bandwidth_bytes_per_s;
          if (copy_noise_sigma > 0.0)
            elapsed *= rng.lognormal_factor(copy_noise_sigma);
          double& busy =
              leg.inter ? interconnect_busy
                        : channel_busy[{index_of(src), index_of(dst)}];
          const double start = std::max(arrival, busy);
          busy = start + elapsed;
          arrival = busy;
          if (options_.record_trace) {
            report.trace.push_back(
                {.kind = TraceEvent::Kind::kCopy,
                 .name = std::string(to_string(src)) + "->" +
                         std::string(to_string(dst)) + " for " + task.name,
                 .resource = leg.inter
                                 ? "network"
                                 : "channel " + std::string(to_string(src)) +
                                       "-" + std::string(to_string(dst)),
                 .iteration = iter,
                 .start_s = start,
                 .duration_s = elapsed,
                 .bytes = static_cast<std::uint64_t>(leg.bytes)});
          }
          if (leg.inter) {
            report.inter_node_copy_bytes +=
                static_cast<std::uint64_t>(leg.bytes);
            report.energy_joules += leg.bytes * 0.5e-9;  // NIC + switches
          } else {
            report.intra_node_copy_bytes +=
                static_cast<std::uint64_t>(leg.bytes);
            report.energy_joules += leg.bytes * 20e-12;  // DMA engines
          }
        }
        ready = std::max(ready, arrival);
      }

      // 2. Processor pool availability on every node the task occupies.
      const bool distributed = tm.distribute && num_nodes > 1;
      const int nodes_used = distributed ? num_nodes : 1;
      double pool_free = 0.0;
      for (int n = 0; n < nodes_used; ++n)
        pool_free = std::max(
            pool_free,
            pool_busy[static_cast<std::size_t>(n)][index_of(tm.proc)]);

      const double start = std::max(ready, pool_free);
      const TaskDuration parts = task_duration(task, tm, resolved);
      double duration = parts.total;
      if (options_.noise_sigma > 0.0)
        duration *= rng.lognormal_factor(options_.noise_sigma);
      const double finish = start + duration;

      for (int n = 0; n < nodes_used; ++n)
        pool_busy[static_cast<std::size_t>(n)][index_of(tm.proc)] = finish;
      finish_cur[tid.index()] = finish;
      makespan = std::max(makespan, finish);

      // Energy: busy instances x busy time (per-instance power), across
      // the nodes the group occupies.
      const ProcGroup& pg = machine_.proc_group(tm.proc);
      const std::int64_t points_per_node =
          (task.num_points + nodes_used - 1) / nodes_used;
      const double busy_instances = static_cast<double>(
          std::min<std::int64_t>(points_per_node, pg.count_per_node));
      report.energy_joules +=
          duration * pg.watts_busy * busy_instances * nodes_used;
      if (options_.record_trace) {
        report.trace.push_back({.kind = TraceEvent::Kind::kTask,
                                .name = task.name,
                                .resource = std::string(to_string(tm.proc)) +
                                            " pool",
                                .iteration = iter,
                                .start_s = start,
                                .duration_s = duration});
      }

      TaskReport& tr = report.tasks[tid.index()];
      tr.proc = tm.proc;
      tr.compute_seconds += duration;
      tr.copy_wait_seconds += std::max(0.0, ready - pool_free);
      tr.launch_overhead_seconds += parts.launch_overhead;
      tr.runtime_overhead_seconds += parts.runtime_overhead;
    }
    std::swap(finish_prev, finish_cur);
  }

  // Per-iteration averages for the task reports.
  for (auto& tr : report.tasks) {
    tr.compute_seconds /= options_.iterations;
    tr.copy_wait_seconds /= options_.iterations;
    tr.launch_overhead_seconds /= options_.iterations;
    tr.runtime_overhead_seconds /= options_.iterations;
  }
  report.intra_node_copy_bytes /=
      static_cast<std::uint64_t>(options_.iterations);
  report.inter_node_copy_bytes /=
      static_cast<std::uint64_t>(options_.iterations);

  report.ok = true;
  report.total_seconds = makespan;
  return report;
}

double Simulator::mean_total_seconds(const Mapping& mapping,
                                     std::uint64_t seed, int repeats) const {
  AM_REQUIRE(repeats > 0, "repeats must be positive");
  double sum = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const ExecutionReport rep = run(mapping, mix64(seed + 1000003ULL * r));
    if (!rep.ok) return std::numeric_limits<double>::infinity();
    sum += rep.total_seconds;
  }
  return sum / repeats;
}

}  // namespace automap
