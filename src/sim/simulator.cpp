#include "src/sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/support/error.hpp"
#include "src/support/format.hpp"
#include "src/support/metrics.hpp"

namespace automap {

namespace {

/// ceil(a / b) for positive integers.
std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Index of the (first) argument of `task` that carries `collection`.
std::size_t arg_index_of(const GroupTask& task, CollectionId collection) {
  for (std::size_t i = 0; i < task.args.size(); ++i)
    if (task.args[i].collection == collection) return i;
  AM_UNREACHABLE("dependence edge references a collection the task lacks");
}

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Domain-separation salt for the fault RNG stream: fault draws must not
/// perturb the noise stream (a fault-free config makes zero fault draws and
/// reproduces pre-fault-layer results bit for bit), and an enabled model
/// must not correlate faults with noise.
constexpr std::uint64_t kFaultSalt = 0x8f6a3c1db94e527bULL;

/// Resets a scratch-held report to the state a fresh run expects. Vectors
/// are cleared, not deallocated, so steady-state runs reuse their capacity.
void clear_report(ExecutionReport& report, int iterations,
                  double time_bound) {
  report.ok = false;
  report.failure.clear();
  report.transient = false;
  report.faults = FaultCounts{};
  report.censored = false;
  report.time_bound = time_bound;
  report.total_seconds = 0.0;
  report.iterations = iterations;
  report.intra_node_copy_bytes = 0;
  report.inter_node_copy_bytes = 0;
  report.energy_joules = 0.0;
  report.tasks.clear();
  report.footprints.clear();
  report.demoted_args = 0;
  report.trace.clear();
}

}  // namespace

Simulator::Simulator(const MachineModel& machine, const TaskGraph& graph,
                     SimOptions options)
    : machine_(machine), graph_(graph), options_(options) {
  AM_REQUIRE(options_.iterations > 0, "iterations must be positive");
  AM_REQUIRE(options_.noise_sigma >= 0.0, "noise sigma must be >= 0");
  const FaultModel& fm = options_.faults;
  AM_REQUIRE(fm.crash_prob >= 0.0 && fm.crash_prob <= 1.0,
             "crash probability must be in [0, 1]");
  AM_REQUIRE(fm.straggler_prob >= 0.0 && fm.straggler_prob <= 1.0,
             "straggler probability must be in [0, 1]");
  AM_REQUIRE(fm.straggler_factor >= 1.0, "straggler factor must be >= 1");
  AM_REQUIRE(fm.mem_pressure_prob >= 0.0 && fm.mem_pressure_prob <= 1.0,
             "memory-pressure probability must be in [0, 1]");
  AM_REQUIRE(
      fm.mem_pressure_headroom > 0.0 && fm.mem_pressure_headroom <= 1.0,
      "memory-pressure headroom must be in (0, 1]");
  AM_REQUIRE(fm.copy_fault_prob >= 0.0 && fm.copy_fault_prob <= 1.0,
             "copy-fault probability must be in [0, 1]");
  machine_.validate();
  graph_.validate();
  topo_order_ = graph_.topological_order();
  mem_kinds_ = machine_.mem_kinds();
  runtime_overhead_ = machine_.runtime_overhead();
  num_nodes_ = machine_.num_nodes();

  if (options_.metrics) {
    // Raw run counts include speculative pool work, so they are not
    // thread-count invariant: deterministic=false keeps them out of the
    // journal's metric snapshots (see MetricsRegistry).
    runs_total_ = options_.metrics->counter(
        "automap_sim_runs_total", "Simulated runs executed (any outcome)",
        /*deterministic=*/false);
    runs_censored_ = options_.metrics->counter(
        "automap_sim_runs_censored_total",
        "Simulated runs aborted at a time bound", /*deterministic=*/false);
    runs_failed_ = options_.metrics->counter(
        "automap_sim_runs_failed_total",
        "Simulated runs that failed (OOM or transient fault)",
        /*deterministic=*/false);
  }

  const std::size_t num_tasks = graph_.num_tasks();

  // Flattened collection-argument space: arg_off_[t] .. arg_off_[t+1].
  arg_off_.assign(num_tasks + 1, 0);
  for (std::size_t t = 0; t < num_tasks; ++t)
    arg_off_[t + 1] =
        arg_off_[t] +
        static_cast<std::uint32_t>(graph_.task(TaskId(t)).args.size());
  num_flat_args_ = arg_off_[num_tasks];

  // CSR incoming adjacency. A counting pass followed by an in-order fill
  // keeps each consumer's in-edge order equal to the global edge order,
  // which the RNG draw sequence (copy noise) depends on.
  in_off_.assign(num_tasks + 1, 0);
  for (const DependenceEdge& e : graph_.edges())
    ++in_off_[e.consumer.index() + 1];
  for (std::size_t t = 0; t < num_tasks; ++t) in_off_[t + 1] += in_off_[t];
  in_edges_.resize(graph_.num_edges());
  {
    std::vector<std::uint32_t> cursor(in_off_.begin(), in_off_.end() - 1);
    std::size_t num_data_edges = 0;
    for (const DependenceEdge& e : graph_.edges()) {
      EdgeIn in;
      in.producer = static_cast<std::uint32_t>(e.producer.index());
      in.producer_arg =
          arg_off_[e.producer.index()] +
          static_cast<std::uint32_t>(
              arg_index_of(graph_.task(e.producer), e.producer_collection));
      in.consumer_arg =
          arg_off_[e.consumer.index()] +
          static_cast<std::uint32_t>(
              arg_index_of(graph_.task(e.consumer), e.consumer_collection));
      in.cross_iteration = e.cross_iteration;
      in.carries_data = e.carries_data;
      in.cross_collection = e.producer_collection != e.consumer_collection;
      const double bytes = static_cast<double>(e.bytes);
      in.bytes = bytes;
      in.inter_bytes_blocked = bytes * e.internode_fraction;
      in.inter_bytes_rr = bytes * std::min(1.0, e.internode_fraction * 1.6);
      in.inter_bytes_gather = bytes * static_cast<double>(num_nodes_ - 1) /
                              static_cast<double>(num_nodes_);
      in.bytes_over_nodes = bytes / static_cast<double>(num_nodes_);
      in_edges_[cursor[e.consumer.index()]++] = in;
      if (e.carries_data) ++num_data_edges;
    }
    // Trace upper bound: one task event plus at most two copy legs per
    // data-carrying edge, each iteration.
    trace_reserve_ = static_cast<std::size_t>(options_.iterations) *
                     (num_tasks + 2 * num_data_edges);
  }

  // Per-(task, proc kind, distributed) duration invariants. Combinations a
  // valid mapping can never reach (missing proc kind / missing variant) get
  // NaN; Mapping::violations rejects them before any run consumes these.
  dur_compute_.assign(num_tasks * kNumProcKinds * 2, kNaN);
  dur_launch_.assign(num_tasks * kNumProcKinds * 2, kNaN);
  energy_coeff_.assign(num_tasks * kNumProcKinds * 2, kNaN);
  arg_sec_.assign(num_flat_args_ * kNumProcKinds * 2 * kNumMemKinds, kNaN);

  for (std::size_t t = 0; t < num_tasks; ++t) {
    const GroupTask& task = graph_.task(TaskId(t));
    for (const ProcKind proc : kAllProcKinds) {
      if (!machine_.has_proc_kind(proc)) continue;
      const ProcGroup& pg = machine_.proc_group(proc);
      const double per_point = proc == ProcKind::kGpu
                                   ? task.cost.gpu_seconds_per_point
                                   : task.cost.cpu_seconds_per_point;
      if (per_point < 0.0) continue;  // missing variant
      const double compute_per_point = per_point / pg.speed;

      for (int dist = 0; dist < 2; ++dist) {
        const int nodes_used = dist != 0 ? num_nodes_ : 1;
        const std::int64_t points_per_node =
            ceil_div(task.num_points, nodes_used);
        const std::int64_t waves =
            ceil_div(points_per_node, pg.count_per_node);

        // Launch overhead and compute serialize in waves over the pool.
        const double launch_time =
            static_cast<double>(waves) * pg.launch_overhead_s;
        const double compute_time =
            launch_time + static_cast<double>(waves) * compute_per_point;

        const std::size_t di =
            dur_index(t, index_of(proc), static_cast<std::size_t>(dist));
        // Base duration: the mapping-independent per-launch runtime cost
        // (dependence analysis, mapper queries, instance binding) plus
        // wave compute. Memory-access time is added per resolved argument
        // at run time from arg_sec_.
        dur_compute_[di] = runtime_overhead_ + compute_time;
        dur_launch_[di] = launch_time;

        const double busy_instances = static_cast<double>(
            std::min<std::int64_t>(points_per_node, pg.count_per_node));
        energy_coeff_[di] = pg.watts_busy * busy_instances * nodes_used;

        // Memory access is pool-level: all points on a node stream their
        // bytes through the shared affinity bandwidth (per-allocation for
        // FrameBuffer, engaging as many GPUs as the group occupies).
        for (std::size_t a = 0; a < task.args.size(); ++a) {
          const CollectionUse& use = task.args[a];
          const double node_bytes =
              static_cast<double>(graph_.collection_bytes(use.collection)) *
              use.access_fraction / static_cast<double>(nodes_used);
          for (const MemKind mem : kAllMemKinds) {
            if (!machine_.addressable(proc, mem)) continue;
            const Affinity aff = machine_.affinity(proc, mem);

            // Allocations engaged in parallel: GPUs for FrameBuffer, one
            // shared aggregate otherwise (System's two sockets are already
            // folded into the affinity figure).
            double engaged = 1.0;
            if (mem == MemKind::kFrameBuffer) {
              engaged = static_cast<double>(std::min<std::int64_t>(
                  std::min(pg.count_per_node,
                           machine_.mems_per_node(MemKind::kFrameBuffer)),
                  points_per_node));
            }
            const double bw = aff.bandwidth_bytes_per_s * engaged;

            double seconds = aff.latency_s * static_cast<double>(waves);
            if (proc == ProcKind::kCpu && mem == MemKind::kSystem &&
                machine_.mems_per_node(MemKind::kSystem) > 1) {
              // NUMA: with per-socket System allocations, roughly half of
              // a CPU pool's accesses cross to the far socket's allocation
              // through the cross-socket link (Legion keeps one instance
              // per socket and transfers between them). Zero-Copy is a
              // single allocation visible to all processors and avoids
              // this — the effect the paper calls out for Stencil (§5).
              const double cross_bw =
                  std::min(bw, 2.0 * machine_.cross_socket_channel()
                                         .bandwidth_bytes_per_s);
              seconds += 0.5 * node_bytes / bw + 0.5 * node_bytes / cross_bw;
            } else {
              seconds += node_bytes / bw;
            }
            arg_sec_[arg_sec_index(arg_off_[t] + a, index_of(proc),
                                   static_cast<std::size_t>(dist),
                                   index_of(mem))] = seconds;
          }
        }
      }
    }
  }

  // Flat channel table. Absent channels keep present = false; the event
  // loop falls back to machine_.channel() there, which raises the standard
  // missing-channel error.
  for (const MemKind src : kAllMemKinds) {
    for (const MemKind dst : kAllMemKinds) {
      for (int inter = 0; inter < 2; ++inter) {
        if (!machine_.has_mem_kind(src) || !machine_.has_mem_kind(dst))
          continue;
        if (!machine_.has_channel(src, dst, inter != 0)) continue;
        const Channel ch = machine_.channel(src, dst, inter != 0);
        chan_[index_of(src)][index_of(dst)][inter] = {
            .bandwidth = ch.bandwidth_bytes_per_s,
            .latency = ch.latency_s,
            .present = true};
      }
    }
  }
}

void Simulator::prepare(SimScratch& scratch) const {
  if (scratch.prepared_for_ == this) return;
  scratch.prepared_for_ = this;
  scratch.resolved_.resize(num_flat_args_);
  scratch.footprints_.reserve(kNumMemKinds);
  scratch.used_.resize(static_cast<std::size_t>(num_nodes_) * kNumMemKinds);
  scratch.instantiated_.resize(graph_.num_collections() * kNumMemKinds * 2);
  scratch.finish_prev_.resize(graph_.num_tasks());
  scratch.finish_cur_.resize(graph_.num_tasks());
  scratch.report_.tasks.reserve(graph_.num_tasks());
  scratch.resolve_ok_ = false;
}

void Simulator::resolve_memories(const Mapping& mapping,
                                 SimScratch& scratch) const {
  scratch.resolve_ok_ = false;
  scratch.demoted_args_ = 0;
  scratch.footprints_.clear();

  // Per (node, mem kind): bytes committed to the *fullest single instance*
  // of that kind. We charge each collection instance divided over the
  // allocations that hold it (sockets for System, GPUs for FrameBuffer).
  std::fill(scratch.used_.begin(), scratch.used_.end(), 0);
  // A collection instantiated once per (collection, kind, distributed) is
  // shared by all tasks that agree on those coordinates.
  std::fill(scratch.instantiated_.begin(), scratch.instantiated_.end(), 0);

  for (const GroupTask& task : graph_.tasks()) {
    const TaskMapping& tm = mapping.at(task.id);
    AM_REQUIRE(tm.arg_memories.size() == task.args.size(),
               "mapping shape mismatch for task " + task.name);
    SimScratch::ResolvedArg* resolved =
        scratch.resolved_.data() + arg_off_[task.id.index()];

    const bool distributed = tm.distribute && num_nodes_ > 1;
    const int nodes_used = distributed ? num_nodes_ : 1;
    const std::int64_t points_per_node =
        ceil_div(task.num_points, nodes_used);

    for (std::size_t a = 0; a < task.args.size(); ++a) {
      const CollectionId cid = task.args[a].collection;
      const std::uint64_t total_bytes = graph_.collection_bytes(cid);
      const std::uint64_t node_share =
          total_bytes / static_cast<std::uint64_t>(nodes_used);

      bool placed = false;
      for (std::size_t pri = 0; pri < tm.arg_memories[a].size(); ++pri) {
        const MemKind kind = tm.arg_memories[a][pri];
        if (!machine_.addressable(tm.proc, kind)) continue;

        std::uint8_t& known =
            scratch.instantiated_[(cid.value() * kNumMemKinds +
                                   index_of(kind)) *
                                      2 +
                                  (distributed ? 1 : 0)];
        if (known != 0) {
          // Already resident in this kind with the same layout; reuse it.
          resolved[a] = {.memory = kind, .demoted = pri > 0};
          if (pri > 0) ++scratch.demoted_args_;
          placed = true;
          break;
        }

        // Bytes charged to the fullest allocation of this kind on a node:
        // a distributed collection interleaves across the kind's per-node
        // allocations it can use.
        const int allocs = machine_.mems_per_node(kind);
        const int spread = static_cast<int>(std::max<std::int64_t>(
            1, std::min<std::int64_t>(allocs, points_per_node)));
        const std::uint64_t instance_share =
            node_share / static_cast<std::uint64_t>(spread);
        const std::uint64_t capacity = machine_.mem_capacity(kind);

        bool fits = true;
        for (int n = 0; n < nodes_used; ++n) {
          if (scratch.used_[static_cast<std::size_t>(n) * kNumMemKinds +
                            index_of(kind)] +
                  instance_share >
              capacity) {
            fits = false;
            break;
          }
        }
        if (!fits) continue;

        for (int n = 0; n < nodes_used; ++n)
          scratch.used_[static_cast<std::size_t>(n) * kNumMemKinds +
                        index_of(kind)] += instance_share;
        known = 1;
        resolved[a] = {.memory = kind, .demoted = pri > 0};
        if (pri > 0) ++scratch.demoted_args_;
        placed = true;
        break;
      }

      if (!placed) {
        std::ostringstream os;
        os << "out of memory: no memory kind in the priority list of task "
           << task.name << " argument "
           << graph_.collection(cid).name << " ("
           << format_bytes(total_bytes) << ") has capacity left";
        scratch.failure_ = os.str();
        return;
      }
    }
  }

  for (const MemKind kind : mem_kinds_) {
    std::uint64_t peak = 0;
    for (int n = 0; n < num_nodes_; ++n)
      peak = std::max(
          peak, scratch.used_[static_cast<std::size_t>(n) * kNumMemKinds +
                              index_of(kind)]);
    scratch.footprints_.push_back(
        {.kind = kind,
         .peak_instance_bytes = peak,
         .capacity_bytes = machine_.mem_capacity(kind)});
  }
  scratch.resolve_ok_ = true;
}

void Simulator::simulate(const Mapping& mapping, std::uint64_t seed,
                         double time_bound, SimScratch& scratch) const {
  ExecutionReport& report = scratch.report_;
  clear_report(report, options_.iterations, time_bound);
  report.footprints = scratch.footprints_;
  report.demoted_args = scratch.demoted_args_;

  const std::size_t num_tasks = graph_.num_tasks();
  report.tasks.resize(num_tasks);
  for (std::size_t i = 0; i < num_tasks; ++i)
    report.tasks[i] = TaskReport{.task = TaskId(i)};
  if (options_.record_trace) report.trace.reserve(trace_reserve_);

  Rng rng(mix64(seed) ^ mapping.hash());
  const bool multi = num_nodes_ > 1;

  // Fault injection draws come from a *separate* derived stream: the noise
  // sequence above is untouched whether faults are on or off, and a
  // disabled model makes no draws at all, so fault-free configs reproduce
  // the pre-fault-layer results bit for bit at any thread count.
  const FaultModel& faults = options_.faults;
  const bool inject = faults.enabled();
  Rng fault_rng(inject ? (mix64(seed ^ kFaultSalt) ^ mapping.hash()) : 0);

  // Transient memory pressure: for this run every allocation's usable
  // capacity shrinks to the headroom share of nominal (co-tenant runtime
  // services, fragmentation). The placement itself is cached and
  // deterministic, so the check reduces to comparing the mapping's peak
  // footprints against the reduced capacities.
  if (inject && faults.mem_pressure_prob > 0.0 &&
      fault_rng.bernoulli(faults.mem_pressure_prob)) {
    ++report.faults.mem_pressure;
    for (const MemoryFootprint& fp : scratch.footprints_) {
      const double usable = faults.mem_pressure_headroom *
                            static_cast<double>(fp.capacity_bytes);
      if (static_cast<double>(fp.peak_instance_bytes) > usable) {
        std::ostringstream os;
        os << "transient memory pressure: " << to_string(fp.kind) << " peak "
           << format_bytes(fp.peak_instance_bytes) << " exceeds reduced "
           << "capacity " << format_bytes(static_cast<std::uint64_t>(usable));
        report.failure = os.str();
        report.transient = true;
        return;
      }
    }
  }

  // Resource state, carried across iterations.
  // Processor pools: busy-until per (proc kind, leader node / other nodes).
  // Two clocks per kind suffice: a non-distributed task runs on the leader
  // node alone and a distributed task occupies every node at once, so
  // nodes 1..N-1 always share one busy-until value.
  std::array<double, kNumProcKinds * 2> pool_busy{};
  // Intra-node copy channels: busy-until per (src kind, dst kind). All
  // inter-node legs share one interconnect busy-state instead: the machine
  // has one NIC, so System->System and FB->FB network transfers contend
  // with each other even though their bandwidths (machine_.channel) differ
  // per kind pair.
  std::array<double, kNumMemKinds * kNumMemKinds> channel_busy{};
  double interconnect_busy = 0.0;

  // Never read before written within a run (topological order guarantees
  // producers precede consumers; cross-iteration edges skip iteration 0),
  // so no per-run clearing is needed.
  std::vector<double>& finish_prev = scratch.finish_prev_;
  std::vector<double>& finish_cur = scratch.finish_cur_;

  const double copy_noise_sigma = options_.noise_sigma * 0.5;
  double makespan = 0.0;

  for (int iter = 0; iter < options_.iterations; ++iter) {
    for (const TaskId tid : topo_order_) {
      const std::size_t ti = tid.index();
      const TaskMapping& tm = mapping.at(tid);
      const bool c_dist = tm.distribute && multi;

      // 1. Data arrival: producers' finish plus any inferred copies.
      double ready = 0.0;
      for (std::uint32_t ei = in_off_[ti]; ei < in_off_[ti + 1]; ++ei) {
        const EdgeIn& e = in_edges_[ei];
        double produced_at;
        if (e.cross_iteration) {
          if (iter == 0) continue;  // initial data is in place
          produced_at = finish_prev[e.producer];
        } else {
          produced_at = finish_cur[e.producer];
        }

        if (!e.carries_data) {
          // Pure ordering dependence (WAR/WAW): serializes, moves nothing.
          ready = std::max(ready, produced_at);
          continue;
        }

        const TaskMapping& ptm = mapping.at(TaskId(e.producer));
        const MemKind src = scratch.resolved_[e.producer_arg].memory;
        const MemKind dst = scratch.resolved_[e.consumer_arg].memory;
        const bool p_dist = ptm.distribute && multi;
        // Cross-collection (halo/ghost) flow moves between *instances* even
        // when both live in the same memory kind — per-socket System
        // allocations and per-GPU Frame-Buffers require a staging copy.
        // Zero-Copy is a single node-wide allocation, so it alone is
        // exempt: this is the System-vs-ZeroCopy distinction the paper
        // calls out for Stencil (§5).
        const bool intra_copy_needed =
            src != dst || (e.cross_collection && src != MemKind::kZeroCopy);

        // Copy legs: (bytes to move, effective per-node parallelism,
        // inter-node?). Legs queue on their channel in sequence.
        struct Leg {
          double bytes = 0.0;
          double parallelism = 1.0;
          bool inter = false;
        };
        std::array<Leg, 2> legs;
        int num_legs = 0;
        if (p_dist && c_dist) {
          // Round-robin point placement scatters neighboring points across
          // nodes, inflating the boundary traffic a blocked decomposition
          // would keep local (the custom-mapper advantage on Circuit, §5).
          const double inter_bytes = (ptm.blocked && tm.blocked)
                                         ? e.inter_bytes_blocked
                                         : e.inter_bytes_rr;
          if (inter_bytes > 0.0)
            legs[static_cast<std::size_t>(num_legs++)] = {
                inter_bytes, static_cast<double>(num_nodes_), true};
          if (intra_copy_needed) {
            const double intra = e.bytes - inter_bytes;
            if (intra > 0.0)
              legs[static_cast<std::size_t>(num_legs++)] = {
                  intra, static_cast<double>(num_nodes_), false};
          }
        } else if (p_dist != c_dist) {
          // Gather to / scatter from the leader node: (N-1)/N of the data
          // crosses the network serially into one endpoint.
          if (e.inter_bytes_gather > 0.0)
            legs[static_cast<std::size_t>(num_legs++)] = {
                e.inter_bytes_gather, 1.0, true};
          if (intra_copy_needed)
            legs[static_cast<std::size_t>(num_legs++)] = {e.bytes_over_nodes,
                                                          1.0, false};
        } else {
          // Both on the leader node (or a single-node machine).
          if (intra_copy_needed)
            legs[static_cast<std::size_t>(num_legs++)] = {e.bytes, 1.0,
                                                          false};
        }

        double arrival = produced_at;
        for (int li = 0; li < num_legs; ++li) {
          const Leg& leg = legs[static_cast<std::size_t>(li)];
          const Chan& ch =
              chan_[index_of(src)][index_of(dst)][leg.inter ? 1 : 0];
          if (!ch.present) {
            // Raises the standard missing-channel error.
            (void)machine_.channel(src, dst, leg.inter);
          }
          double elapsed =
              ch.latency + leg.bytes / leg.parallelism / ch.bandwidth;
          if (copy_noise_sigma > 0.0)
            elapsed *= rng.lognormal_factor(copy_noise_sigma);
          // Channel fault: the first attempt is lost at completion and the
          // copy re-issues back to back, doubling the leg's channel time.
          bool copy_faulted = false;
          if (inject && faults.copy_fault_prob > 0.0 &&
              fault_rng.bernoulli(faults.copy_fault_prob)) {
            copy_faulted = true;
            ++report.faults.copy_retries;
            report.faults.lost_seconds += elapsed;
            elapsed *= 2.0;
          }
          double& busy = leg.inter
                             ? interconnect_busy
                             : channel_busy[index_of(src) * kNumMemKinds +
                                            index_of(dst)];
          const double start = std::max(arrival, busy);
          busy = start + elapsed;
          arrival = busy;
          if (options_.record_trace) {
            report.trace.push_back(
                {.kind = TraceEvent::Kind::kCopy,
                 .name = std::string(to_string(src)) + "->" +
                         std::string(to_string(dst)) + " for " +
                         graph_.task(tid).name,
                 .resource = leg.inter
                                 ? "network"
                                 : "channel " + std::string(to_string(src)) +
                                       "-" + std::string(to_string(dst)),
                 .iteration = iter,
                 .start_s = start,
                 .duration_s = elapsed,
                 .bytes = static_cast<std::uint64_t>(leg.bytes)});
            if (copy_faulted) {
              // Annotate the lost first attempt so the profile can
              // attribute the re-issue time to faults.
              report.trace.push_back(
                  {.kind = TraceEvent::Kind::kFault,
                   .name = "copy fault: " + report.trace.back().name,
                   .resource = report.trace.back().resource,
                   .iteration = iter,
                   .start_s = start,
                   .duration_s = elapsed * 0.5});
            }
          }
          if (leg.inter) {
            report.inter_node_copy_bytes +=
                static_cast<std::uint64_t>(leg.bytes);
            report.energy_joules += leg.bytes * 0.5e-9;  // NIC + switches
          } else {
            report.intra_node_copy_bytes +=
                static_cast<std::uint64_t>(leg.bytes);
            report.energy_joules += leg.bytes * 20e-12;  // DMA engines
          }
        }
        ready = std::max(ready, arrival);
      }

      // 2. Processor pool availability on every node the task occupies.
      const std::size_t pk = index_of(tm.proc);
      const double pool_free =
          c_dist ? std::max(pool_busy[pk * 2], pool_busy[pk * 2 + 1])
                 : pool_busy[pk * 2];

      const double start = std::max(ready, pool_free);
      const std::size_t di = dur_index(ti, pk, c_dist ? 1 : 0);
      double mem_time = 0.0;
      for (std::uint32_t a = arg_off_[ti]; a < arg_off_[ti + 1]; ++a) {
        mem_time +=
            arg_sec_[arg_sec_index(a, pk, c_dist ? 1 : 0,
                                   index_of(scratch.resolved_[a].memory))];
      }
      double duration = dur_compute_[di] + mem_time;
      if (options_.noise_sigma > 0.0)
        duration *= rng.lognormal_factor(options_.noise_sigma);

      if (inject) {
        // Straggler: the task's wave runs on a slow/contended instance and
        // its duration inflates; the run continues.
        if (faults.straggler_prob > 0.0 &&
            fault_rng.bernoulli(faults.straggler_prob)) {
          const double inflation = duration * (faults.straggler_factor - 1.0);
          duration += inflation;
          ++report.faults.stragglers;
          report.faults.lost_seconds += inflation;
          if (options_.record_trace) {
            report.trace.push_back(
                {.kind = TraceEvent::Kind::kFault,
                 .name = "straggler: " + graph_.task(tid).name,
                 .resource = std::string(to_string(tm.proc)) + " pool",
                 .iteration = iter,
                 .start_s = start,
                 .duration_s = inflation});
          }
        }
        // Transient crash at a uniformly sampled point of the task's
        // execution: the run aborts there. The partial work up to the crash
        // is what a retrying driver pays for (total_seconds).
        if (faults.crash_prob > 0.0 &&
            fault_rng.bernoulli(faults.crash_prob)) {
          const double lost = fault_rng.uniform() * duration;
          ++report.faults.crashes;
          report.faults.lost_seconds += lost;
          if (options_.record_trace) {
            report.trace.push_back(
                {.kind = TraceEvent::Kind::kFault,
                 .name = "crash: " + graph_.task(tid).name,
                 .resource = std::string(to_string(tm.proc)) + " pool",
                 .iteration = iter,
                 .start_s = start,
                 .duration_s = lost});
          }
          report.transient = true;
          report.failure = "transient crash in task " +
                           graph_.task(tid).name + " (iteration " +
                           std::to_string(iter) + ")";
          report.total_seconds = std::max(makespan, start + lost);
          return;
        }
      }

      const double finish = start + duration;

      pool_busy[pk * 2] = finish;
      if (c_dist) pool_busy[pk * 2 + 1] = finish;
      finish_cur[ti] = finish;
      makespan = std::max(makespan, finish);

      // Incumbent-bounded abort: the makespan is the maximum task finish,
      // so the first finish past the bound proves the full run exceeds it.
      // Report the crossing clock value as a censored lower bound; the
      // remaining report fields stay partial and must not be consumed.
      if (finish > time_bound) {
        report.ok = true;
        report.censored = true;
        report.total_seconds = finish;
        return;
      }

      // Energy: busy instances x busy time (per-instance power), across
      // the nodes the group occupies.
      report.energy_joules += duration * energy_coeff_[di];
      if (options_.record_trace) {
        report.trace.push_back(
            {.kind = TraceEvent::Kind::kTask,
             .name = graph_.task(tid).name,
             .resource = std::string(to_string(tm.proc)) + " pool",
             .iteration = iter,
             .start_s = start,
             .duration_s = duration});
      }

      TaskReport& tr = report.tasks[ti];
      tr.proc = tm.proc;
      tr.compute_seconds += duration;
      tr.copy_wait_seconds += std::max(0.0, ready - pool_free);
      tr.launch_overhead_seconds += dur_launch_[di];
      tr.runtime_overhead_seconds += runtime_overhead_;
    }
    std::swap(finish_prev, finish_cur);
  }

  // Per-iteration averages for the task reports.
  for (auto& tr : report.tasks) {
    tr.compute_seconds /= options_.iterations;
    tr.copy_wait_seconds /= options_.iterations;
    tr.launch_overhead_seconds /= options_.iterations;
    tr.runtime_overhead_seconds /= options_.iterations;
  }
  report.intra_node_copy_bytes /=
      static_cast<std::uint64_t>(options_.iterations);
  report.inter_node_copy_bytes /=
      static_cast<std::uint64_t>(options_.iterations);

  report.ok = true;
  report.total_seconds = makespan;
}

bool Simulator::begin_runs(const Mapping& mapping,
                           SimScratch& scratch) const {
  prepare(scratch);

  {
    const auto violations = mapping.violations(graph_, machine_);
    if (!violations.empty()) {
      clear_report(scratch.report_, options_.iterations,
                   options_.time_bound);
      scratch.report_.failure = "invalid mapping: " + violations.front();
      return false;
    }
  }

  resolve_memories(mapping, scratch);
  if (!scratch.resolve_ok_) {
    clear_report(scratch.report_, options_.iterations, options_.time_bound);
    scratch.report_.failure = scratch.failure_;
    return false;
  }
  return true;
}

void Simulator::count_run(const ExecutionReport& report) const {
  if (!runs_total_) return;
  runs_total_->inc();
  if (report.censored) {
    runs_censored_->inc();
  } else if (!report.ok) {
    runs_failed_->inc();
  }
}

const ExecutionReport& Simulator::run_prepared(const Mapping& mapping,
                                               std::uint64_t seed,
                                               SimScratch& scratch,
                                               double time_bound) const {
  simulate(mapping, seed, time_bound, scratch);
  count_run(scratch.report_);
  return scratch.report_;
}

const ExecutionReport& Simulator::run(const Mapping& mapping,
                                      std::uint64_t seed, SimScratch& scratch,
                                      double time_bound) const {
  if (!begin_runs(mapping, scratch)) return scratch.report_;
  simulate(mapping, seed, time_bound, scratch);
  count_run(scratch.report_);
  return scratch.report_;
}

const ExecutionReport& Simulator::run(const Mapping& mapping,
                                      std::uint64_t seed,
                                      SimScratch& scratch) const {
  return run(mapping, seed, scratch, options_.time_bound);
}

ExecutionReport Simulator::run(const Mapping& mapping,
                               std::uint64_t seed) const {
  SimScratch scratch;
  run(mapping, seed, scratch, options_.time_bound);
  return std::move(scratch.report_);
}

double Simulator::mean_total_seconds(const Mapping& mapping,
                                     std::uint64_t seed, int repeats) const {
  AM_REQUIRE(repeats > 0, "repeats must be positive");
  SimScratch scratch;
  // One validation + memory resolution serves every repeat (both are
  // noise-independent).
  if (!begin_runs(mapping, scratch))
    return std::numeric_limits<double>::infinity();

  double sum = 0.0;
  for (int r = 0; r < repeats; ++r) {
    simulate(mapping,
             mix64(seed + 1000003ULL * static_cast<std::uint64_t>(r)),
             std::numeric_limits<double>::infinity(), scratch);
    if (!scratch.report_.ok)
      return std::numeric_limits<double>::infinity();
    sum += scratch.report_.total_seconds;
  }
  return sum / repeats;
}

}  // namespace automap
