#include "src/sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/support/error.hpp"
#include "src/support/format.hpp"
#include "src/support/metrics.hpp"

namespace automap {

namespace {

/// ceil(a / b) for positive integers.
std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Index of the (first) argument of `task` that carries `collection`.
std::size_t arg_index_of(const GroupTask& task, CollectionId collection) {
  for (std::size_t i = 0; i < task.args.size(); ++i)
    if (task.args[i].collection == collection) return i;
  AM_UNREACHABLE("dependence edge references a collection the task lacks");
}

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Domain-separation salt for the fault RNG stream: fault draws must not
/// perturb the noise stream (a fault-free config makes zero fault draws and
/// reproduces pre-fault-layer results bit for bit), and an enabled model
/// must not correlate faults with noise.
constexpr std::uint64_t kFaultSalt = 0x8f6a3c1db94e527bULL;

/// Resets a scratch-held report to the state a fresh run expects. Vectors
/// are cleared, not deallocated, so steady-state runs reuse their capacity.
void clear_report(ExecutionReport& report, int iterations,
                  double time_bound) {
  report.ok = false;
  report.failure.clear();
  report.transient = false;
  report.faults = FaultCounts{};
  report.censored = false;
  report.time_bound = time_bound;
  report.total_seconds = 0.0;
  report.iterations = iterations;
  report.intra_node_copy_bytes = 0;
  report.inter_node_copy_bytes = 0;
  report.energy_joules = 0.0;
  report.events = 0;
  report.tasks.clear();
  report.footprints.clear();
  report.demoted_args = 0;
  report.trace.clear();
}

}  // namespace

Simulator::Simulator(const MachineModel& machine, const TaskGraph& graph,
                     SimOptions options)
    : machine_(machine), graph_(graph), options_(options) {
  AM_REQUIRE(options_.iterations > 0, "iterations must be positive");
  AM_REQUIRE(options_.noise_sigma >= 0.0, "noise sigma must be >= 0");
  const FaultModel& fm = options_.faults;
  AM_REQUIRE(fm.crash_prob >= 0.0 && fm.crash_prob <= 1.0,
             "crash probability must be in [0, 1]");
  AM_REQUIRE(fm.straggler_prob >= 0.0 && fm.straggler_prob <= 1.0,
             "straggler probability must be in [0, 1]");
  AM_REQUIRE(fm.straggler_factor >= 1.0, "straggler factor must be >= 1");
  AM_REQUIRE(fm.mem_pressure_prob >= 0.0 && fm.mem_pressure_prob <= 1.0,
             "memory-pressure probability must be in [0, 1]");
  AM_REQUIRE(
      fm.mem_pressure_headroom > 0.0 && fm.mem_pressure_headroom <= 1.0,
      "memory-pressure headroom must be in (0, 1]");
  AM_REQUIRE(fm.copy_fault_prob >= 0.0 && fm.copy_fault_prob <= 1.0,
             "copy-fault probability must be in [0, 1]");
  machine_.validate();
  graph_.validate();
  topo_order_ = graph_.topological_order();
  mem_kinds_ = machine_.mem_kinds();
  runtime_overhead_ = machine_.runtime_overhead();
  num_nodes_ = machine_.num_nodes();

  if (options_.metrics) {
    // Raw run counts include speculative pool work, so they are not
    // thread-count invariant: deterministic=false keeps them out of the
    // journal's metric snapshots (see MetricsRegistry).
    runs_total_ = options_.metrics->counter(
        "automap_sim_runs_total", "Simulated runs executed (any outcome)",
        /*deterministic=*/false);
    runs_censored_ = options_.metrics->counter(
        "automap_sim_runs_censored_total",
        "Simulated runs aborted at a time bound", /*deterministic=*/false);
    runs_failed_ = options_.metrics->counter(
        "automap_sim_runs_failed_total",
        "Simulated runs that failed (OOM or transient fault)",
        /*deterministic=*/false);
    events_total_ = options_.metrics->counter(
        "automap_sim_events_total",
        "Scheduling events processed (task executions + copy legs)",
        /*deterministic=*/false);
  }

  const std::size_t num_tasks = graph_.num_tasks();

  // Flattened collection-argument space: arg_off_[t] .. arg_off_[t+1].
  arg_off_.assign(num_tasks + 1, 0);
  for (std::size_t t = 0; t < num_tasks; ++t)
    arg_off_[t + 1] =
        arg_off_[t] +
        static_cast<std::uint32_t>(graph_.task(TaskId(t)).args.size());
  num_flat_args_ = arg_off_[num_tasks];

  // CSR incoming adjacency. A counting pass followed by an in-order fill
  // keeps each consumer's in-edge order equal to the global edge order,
  // which the RNG draw sequence (copy noise) depends on.
  in_off_.assign(num_tasks + 1, 0);
  for (const DependenceEdge& e : graph_.edges())
    ++in_off_[e.consumer.index() + 1];
  for (std::size_t t = 0; t < num_tasks; ++t) in_off_[t + 1] += in_off_[t];
  in_edges_.resize(graph_.num_edges());
  {
    std::vector<std::uint32_t> cursor(in_off_.begin(), in_off_.end() - 1);
    std::size_t num_data_edges = 0;
    for (const DependenceEdge& e : graph_.edges()) {
      EdgeIn in;
      in.producer = static_cast<std::uint32_t>(e.producer.index());
      in.producer_arg =
          arg_off_[e.producer.index()] +
          static_cast<std::uint32_t>(
              arg_index_of(graph_.task(e.producer), e.producer_collection));
      in.consumer_arg =
          arg_off_[e.consumer.index()] +
          static_cast<std::uint32_t>(
              arg_index_of(graph_.task(e.consumer), e.consumer_collection));
      in.cross_iteration = e.cross_iteration;
      in.carries_data = e.carries_data;
      in.cross_collection = e.producer_collection != e.consumer_collection;
      const double bytes = static_cast<double>(e.bytes);
      in.bytes = bytes;
      in.inter_bytes_blocked = bytes * e.internode_fraction;
      in.inter_bytes_rr = bytes * std::min(1.0, e.internode_fraction * 1.6);
      in.inter_bytes_gather = bytes * static_cast<double>(num_nodes_ - 1) /
                              static_cast<double>(num_nodes_);
      in.bytes_over_nodes = bytes / static_cast<double>(num_nodes_);
      in_edges_[cursor[e.consumer.index()]++] = in;
      if (e.carries_data) ++num_data_edges;
    }
    // Trace upper bound: one task event plus at most two copy legs per
    // data-carrying edge, each iteration.
    trace_reserve_ = static_cast<std::size_t>(options_.iterations) *
                     (num_tasks + 2 * num_data_edges);
  }

  // Per-(task, proc kind, distributed) duration invariants. Combinations a
  // valid mapping can never reach (missing proc kind / missing variant) get
  // NaN; Mapping::violations rejects them before any run consumes these.
  dur_compute_.assign(num_tasks * kNumProcKinds * 2, kNaN);
  dur_launch_.assign(num_tasks * kNumProcKinds * 2, kNaN);
  energy_coeff_.assign(num_tasks * kNumProcKinds * 2, kNaN);
  arg_sec_.assign(num_flat_args_ * kNumProcKinds * 2 * kNumMemKinds, kNaN);

  for (std::size_t t = 0; t < num_tasks; ++t) {
    const GroupTask& task = graph_.task(TaskId(t));
    for (const ProcKind proc : kAllProcKinds) {
      if (!machine_.has_proc_kind(proc)) continue;
      const ProcGroup& pg = machine_.proc_group(proc);
      const double per_point = proc == ProcKind::kGpu
                                   ? task.cost.gpu_seconds_per_point
                                   : task.cost.cpu_seconds_per_point;
      if (per_point < 0.0) continue;  // missing variant
      const double compute_per_point = per_point / pg.speed;

      for (int dist = 0; dist < 2; ++dist) {
        const int nodes_used = dist != 0 ? num_nodes_ : 1;
        const std::int64_t points_per_node =
            ceil_div(task.num_points, nodes_used);
        const std::int64_t waves =
            ceil_div(points_per_node, pg.count_per_node);

        // Launch overhead and compute serialize in waves over the pool.
        const double launch_time =
            static_cast<double>(waves) * pg.launch_overhead_s;
        const double compute_time =
            launch_time + static_cast<double>(waves) * compute_per_point;

        const std::size_t di =
            dur_index(t, index_of(proc), static_cast<std::size_t>(dist));
        // Base duration: the mapping-independent per-launch runtime cost
        // (dependence analysis, mapper queries, instance binding) plus
        // wave compute. Memory-access time is added per resolved argument
        // at run time from arg_sec_.
        dur_compute_[di] = runtime_overhead_ + compute_time;
        dur_launch_[di] = launch_time;

        const double busy_instances = static_cast<double>(
            std::min<std::int64_t>(points_per_node, pg.count_per_node));
        energy_coeff_[di] = pg.watts_busy * busy_instances * nodes_used;

        // Memory access is pool-level: all points on a node stream their
        // bytes through the shared affinity bandwidth (per-allocation for
        // FrameBuffer, engaging as many GPUs as the group occupies).
        for (std::size_t a = 0; a < task.args.size(); ++a) {
          const CollectionUse& use = task.args[a];
          const double node_bytes =
              static_cast<double>(graph_.collection_bytes(use.collection)) *
              use.access_fraction / static_cast<double>(nodes_used);
          for (const MemKind mem : kAllMemKinds) {
            if (!machine_.addressable(proc, mem)) continue;
            const Affinity aff = machine_.affinity(proc, mem);

            // Allocations engaged in parallel: GPUs for FrameBuffer, one
            // shared aggregate otherwise (System's two sockets are already
            // folded into the affinity figure).
            double engaged = 1.0;
            if (mem == MemKind::kFrameBuffer) {
              engaged = static_cast<double>(std::min<std::int64_t>(
                  std::min(pg.count_per_node,
                           machine_.mems_per_node(MemKind::kFrameBuffer)),
                  points_per_node));
            }
            const double bw = aff.bandwidth_bytes_per_s * engaged;

            double seconds = aff.latency_s * static_cast<double>(waves);
            if (proc == ProcKind::kCpu && mem == MemKind::kSystem &&
                machine_.mems_per_node(MemKind::kSystem) > 1) {
              // NUMA: with per-socket System allocations, roughly half of
              // a CPU pool's accesses cross to the far socket's allocation
              // through the cross-socket link (Legion keeps one instance
              // per socket and transfers between them). Zero-Copy is a
              // single allocation visible to all processors and avoids
              // this — the effect the paper calls out for Stencil (§5).
              const double cross_bw =
                  std::min(bw, 2.0 * machine_.cross_socket_channel()
                                         .bandwidth_bytes_per_s);
              seconds += 0.5 * node_bytes / bw + 0.5 * node_bytes / cross_bw;
            } else {
              seconds += node_bytes / bw;
            }
            arg_sec_[arg_sec_index(arg_off_[t] + a, index_of(proc),
                                   static_cast<std::size_t>(dist),
                                   index_of(mem))] = seconds;
          }
        }
      }
    }
  }

  // Flat channel table. Absent channels keep present = false; the event
  // loop falls back to machine_.channel() there, which raises the standard
  // missing-channel error.
  for (const MemKind src : kAllMemKinds) {
    for (const MemKind dst : kAllMemKinds) {
      for (int inter = 0; inter < 2; ++inter) {
        if (!machine_.has_mem_kind(src) || !machine_.has_mem_kind(dst))
          continue;
        if (!machine_.has_channel(src, dst, inter != 0)) continue;
        const Channel ch = machine_.channel(src, dst, inter != 0);
        chan_[index_of(src)][index_of(dst)][inter] = {
            .bandwidth = ch.bandwidth_bytes_per_s,
            .latency = ch.latency_s,
            .present = true};
      }
    }
  }
}

void Simulator::prepare(SimScratch& scratch) const {
  if (scratch.prepared_for_ == this) return;
  scratch.prepared_for_ = this;
  scratch.resolved_.resize(num_flat_args_);
  scratch.footprints_.reserve(kNumMemKinds);
  scratch.used_.resize(static_cast<std::size_t>(num_nodes_) * kNumMemKinds);
  scratch.instantiated_.resize(graph_.num_collections() * kNumMemKinds * 2);
  scratch.finish_prev_.resize(graph_.num_tasks());
  scratch.finish_cur_.resize(graph_.num_tasks());
  scratch.report_.tasks.reserve(graph_.num_tasks());
  scratch.resolve_ok_ = false;
}

void Simulator::resolve_memories(const Mapping& mapping,
                                 SimScratch& scratch) const {
  scratch.resolve_ok_ = false;
  scratch.demoted_args_ = 0;
  scratch.failure_kind_ = SimScratch::ResolveFailure::kNone;
  scratch.footprints_.clear();

  // Per (node, mem kind): bytes committed to the *fullest single instance*
  // of that kind. We charge each collection instance divided over the
  // allocations that hold it (sockets for System, GPUs for FrameBuffer).
  std::fill(scratch.used_.begin(), scratch.used_.end(), 0);
  // A collection instantiated once per (collection, kind, distributed) is
  // shared by all tasks that agree on those coordinates.
  std::fill(scratch.instantiated_.begin(), scratch.instantiated_.end(), 0);

  for (const GroupTask& task : graph_.tasks()) {
    const TaskMapping& tm = mapping.at(task.id);
    AM_REQUIRE(tm.arg_memories.size() == task.args.size(),
               "mapping shape mismatch for task " + task.name);
    SimScratch::ResolvedArg* resolved =
        scratch.resolved_.data() + arg_off_[task.id.index()];

    const bool distributed = tm.distribute && num_nodes_ > 1;
    const int nodes_used = distributed ? num_nodes_ : 1;
    const std::int64_t points_per_node =
        ceil_div(task.num_points, nodes_used);

    for (std::size_t a = 0; a < task.args.size(); ++a) {
      const CollectionId cid = task.args[a].collection;
      const std::uint64_t total_bytes = graph_.collection_bytes(cid);
      const std::uint64_t node_share =
          total_bytes / static_cast<std::uint64_t>(nodes_used);

      bool placed = false;
      for (std::size_t pri = 0; pri < tm.arg_memories[a].size(); ++pri) {
        const MemKind kind = tm.arg_memories[a][pri];
        if (!machine_.addressable(tm.proc, kind)) continue;

        std::uint8_t& known =
            scratch.instantiated_[(cid.value() * kNumMemKinds +
                                   index_of(kind)) *
                                      2 +
                                  (distributed ? 1 : 0)];
        if (known != 0) {
          // Already resident in this kind with the same layout; reuse it.
          resolved[a] = {.memory = kind, .demoted = pri > 0};
          if (pri > 0) ++scratch.demoted_args_;
          placed = true;
          break;
        }

        // Bytes charged to the fullest allocation of this kind on a node:
        // a distributed collection interleaves across the kind's per-node
        // allocations it can use.
        const int allocs = machine_.mems_per_node(kind);
        const int spread = static_cast<int>(std::max<std::int64_t>(
            1, std::min<std::int64_t>(allocs, points_per_node)));
        const std::uint64_t instance_share =
            node_share / static_cast<std::uint64_t>(spread);
        const std::uint64_t capacity = machine_.mem_capacity(kind);

        bool fits = true;
        for (int n = 0; n < nodes_used; ++n) {
          if (scratch.used_[static_cast<std::size_t>(n) * kNumMemKinds +
                            index_of(kind)] +
                  instance_share >
              capacity) {
            fits = false;
            break;
          }
        }
        if (!fits) continue;

        for (int n = 0; n < nodes_used; ++n)
          scratch.used_[static_cast<std::size_t>(n) * kNumMemKinds +
                        index_of(kind)] += instance_share;
        known = 1;
        resolved[a] = {.memory = kind, .demoted = pri > 0};
        if (pri > 0) ++scratch.demoted_args_;
        placed = true;
        break;
      }

      if (!placed) {
        // Record only the offending ids: the message is built lazily by
        // begin_runs, so the resolve pass — probed on every candidate —
        // stays allocation-free.
        scratch.failure_kind_ = SimScratch::ResolveFailure::kOutOfMemory;
        scratch.failure_task_ = static_cast<std::uint32_t>(task.id.index());
        scratch.failure_collection_ = static_cast<std::uint32_t>(cid.value());
        return;
      }
    }
  }

  for (const MemKind kind : mem_kinds_) {
    std::uint64_t peak = 0;
    for (int n = 0; n < num_nodes_; ++n)
      peak = std::max(
          peak, scratch.used_[static_cast<std::size_t>(n) * kNumMemKinds +
                              index_of(kind)]);
    scratch.footprints_.push_back(
        {.kind = kind,
         .peak_instance_bytes = peak,
         .capacity_bytes = machine_.mem_capacity(kind)});
  }
  scratch.resolve_ok_ = true;
}

void Simulator::build_plan(const Mapping& mapping,
                           SimScratch& scratch) const {
  // Every mapping-dependent quantity of the event loop, flattened into
  // parallel arrays in topo visit order. All derived doubles are computed
  // with the exact expressions (and operand order) the historical per-run
  // loop used, so a plan-driven run is bit-identical to the original.
  scratch.plan_hash_ = mapping.hash();
  scratch.plan_tasks_.clear();
  scratch.plan_edges_.clear();
  scratch.plan_legs_.clear();
  scratch.leg_names_.clear();
  scratch.leg_resources_.clear();
  scratch.plan_tasks_.reserve(graph_.num_tasks());
  scratch.plan_edges_.reserve(in_edges_.size());
  const bool multi = num_nodes_ > 1;

  for (const TaskId tid : topo_order_) {
    const std::size_t ti = tid.index();
    const TaskMapping& tm = mapping.at(tid);
    const bool c_dist = tm.distribute && multi;

    SimScratch::PlanTask pt;
    pt.task = static_cast<std::uint32_t>(ti);
    pt.edge_begin = static_cast<std::uint32_t>(scratch.plan_edges_.size());

    for (std::uint32_t ei = in_off_[ti]; ei < in_off_[ti + 1]; ++ei) {
      const EdgeIn& e = in_edges_[ei];
      SimScratch::PlanEdge pe;
      pe.producer = e.producer;
      pe.cross_iteration = e.cross_iteration ? 1 : 0;
      pe.leg_begin = static_cast<std::uint32_t>(scratch.plan_legs_.size());

      if (e.carries_data) {
        const TaskMapping& ptm = mapping.at(TaskId(e.producer));
        const MemKind src = scratch.resolved_[e.producer_arg].memory;
        const MemKind dst = scratch.resolved_[e.consumer_arg].memory;
        const bool p_dist = ptm.distribute && multi;
        // Cross-collection (halo/ghost) flow moves between *instances* even
        // when both live in the same memory kind — per-socket System
        // allocations and per-GPU Frame-Buffers require a staging copy.
        // Zero-Copy is a single node-wide allocation, so it alone is
        // exempt: this is the System-vs-ZeroCopy distinction the paper
        // calls out for Stencil (§5).
        const bool intra_copy_needed =
            src != dst || (e.cross_collection && src != MemKind::kZeroCopy);

        // Copy legs: (bytes to move, effective per-node parallelism,
        // inter-node?). Legs queue on their channel in sequence.
        struct Leg {
          double bytes = 0.0;
          double parallelism = 1.0;
          bool inter = false;
        };
        std::array<Leg, 2> legs;
        int num_legs = 0;
        if (p_dist && c_dist) {
          // Round-robin point placement scatters neighboring points across
          // nodes, inflating the boundary traffic a blocked decomposition
          // would keep local (the custom-mapper advantage on Circuit, §5).
          const double inter_bytes = (ptm.blocked && tm.blocked)
                                         ? e.inter_bytes_blocked
                                         : e.inter_bytes_rr;
          if (inter_bytes > 0.0)
            legs[static_cast<std::size_t>(num_legs++)] = {
                inter_bytes, static_cast<double>(num_nodes_), true};
          if (intra_copy_needed) {
            const double intra = e.bytes - inter_bytes;
            if (intra > 0.0)
              legs[static_cast<std::size_t>(num_legs++)] = {
                  intra, static_cast<double>(num_nodes_), false};
          }
        } else if (p_dist != c_dist) {
          // Gather to / scatter from the leader node: (N-1)/N of the data
          // crosses the network serially into one endpoint.
          if (e.inter_bytes_gather > 0.0)
            legs[static_cast<std::size_t>(num_legs++)] = {
                e.inter_bytes_gather, 1.0, true};
          if (intra_copy_needed)
            legs[static_cast<std::size_t>(num_legs++)] = {e.bytes_over_nodes,
                                                          1.0, false};
        } else {
          // Both on the leader node (or a single-node machine).
          if (intra_copy_needed)
            legs[static_cast<std::size_t>(num_legs++)] = {e.bytes, 1.0,
                                                          false};
        }

        for (int li = 0; li < num_legs; ++li) {
          const Leg& leg = legs[static_cast<std::size_t>(li)];
          const std::size_t si = index_of(src);
          const std::size_t di = index_of(dst);
          const Chan& ch = chan_[si][di][leg.inter ? 1 : 0];
          SimScratch::PlanLeg pl;
          pl.bytes = leg.bytes;
          pl.bytes_u64 = static_cast<std::uint64_t>(leg.bytes);
          pl.inter = leg.inter ? 1 : 0;
          pl.src = static_cast<std::uint8_t>(si);
          pl.dst = static_cast<std::uint8_t>(di);
          pl.energy = leg.inter ? leg.bytes * 0.5e-9   // NIC + switches
                                : leg.bytes * 20e-12;  // DMA engines
          if (ch.present) {
            pl.resource =
                leg.inter ? kNetClock
                          : kChanClockBase +
                                static_cast<std::uint32_t>(
                                    si * kNumMemKinds + di);
            pl.elapsed =
                ch.latency + leg.bytes / leg.parallelism / ch.bandwidth;
          } else {
            // Raised at execution time: a leg on a cross-iteration edge of
            // a 1-iteration run never executes and must not throw here.
            pl.resource = kMissingChannel;
          }
          scratch.plan_legs_.push_back(pl);
          if (options_.record_trace) {
            scratch.leg_names_.push_back(
                std::string(to_string(src)) + "->" +
                std::string(to_string(dst)) + " for " + graph_.task(tid).name);
            scratch.leg_resources_.push_back(
                leg.inter ? "network"
                          : "channel " + std::string(to_string(src)) + "-" +
                                std::string(to_string(dst)));
          }
        }
      }
      pe.leg_end = static_cast<std::uint32_t>(scratch.plan_legs_.size());
      scratch.plan_edges_.push_back(pe);
    }
    pt.edge_end = static_cast<std::uint32_t>(scratch.plan_edges_.size());

    const std::size_t pk = index_of(tm.proc);
    const std::size_t dist = c_dist ? 1 : 0;
    const std::size_t di = dur_index(ti, pk, dist);
    double mem_time = 0.0;
    for (std::uint32_t a = arg_off_[ti]; a < arg_off_[ti + 1]; ++a) {
      mem_time += arg_sec_[arg_sec_index(
          a, pk, dist, index_of(scratch.resolved_[a].memory))];
    }
    pt.base_dur = dur_compute_[di] + mem_time;
    pt.launch = dur_launch_[di];
    pt.energy_coeff = energy_coeff_[di];
    pt.pool = kPoolClockBase + static_cast<std::uint32_t>(pk * 2);
    pt.dist = c_dist ? 1 : 0;
    pt.proc = tm.proc;
    scratch.plan_tasks_.push_back(pt);
  }
}

void Simulator::simulate(const Mapping& mapping, std::uint64_t seed,
                         double time_bound, SimScratch& scratch) const {
  // Everything mapping-dependent was flattened into the plan by
  // begin_runs; the loop below never touches the Mapping again.
  (void)mapping;
  ExecutionReport& report = scratch.report_;
  clear_report(report, options_.iterations, time_bound);
  report.footprints = scratch.footprints_;
  report.demoted_args = scratch.demoted_args_;

  const std::size_t num_tasks = graph_.num_tasks();
  report.tasks.resize(num_tasks);
  for (std::size_t i = 0; i < num_tasks; ++i)
    report.tasks[i] = TaskReport{.task = TaskId(i)};
  if (options_.record_trace) report.trace.reserve(trace_reserve_);

  Rng rng(mix64(seed) ^ scratch.plan_hash_);

  // Fault injection draws come from a *separate* derived stream: the noise
  // sequence above is untouched whether faults are on or off, and a
  // disabled model makes no draws at all, so fault-free configs reproduce
  // the pre-fault-layer results bit for bit at any thread count.
  const FaultModel& faults = options_.faults;
  const bool inject = faults.enabled();
  Rng fault_rng(inject ? (mix64(seed ^ kFaultSalt) ^ scratch.plan_hash_) : 0);

  // Transient memory pressure: for this run every allocation's usable
  // capacity shrinks to the headroom share of nominal (co-tenant runtime
  // services, fragmentation). The placement itself is cached and
  // deterministic, so the check reduces to comparing the mapping's peak
  // footprints against the reduced capacities.
  if (inject && faults.mem_pressure_prob > 0.0 &&
      fault_rng.bernoulli(faults.mem_pressure_prob)) {
    ++report.faults.mem_pressure;
    for (const MemoryFootprint& fp : scratch.footprints_) {
      const double usable = faults.mem_pressure_headroom *
                            static_cast<double>(fp.capacity_bytes);
      if (static_cast<double>(fp.peak_instance_bytes) > usable) {
        std::ostringstream os;
        os << "transient memory pressure: " << to_string(fp.kind) << " peak "
           << format_bytes(fp.peak_instance_bytes) << " exceeds reduced "
           << "capacity " << format_bytes(static_cast<std::uint64_t>(usable));
        report.failure = os.str();
        report.transient = true;
        return;
      }
    }
  }

  // Resource state, carried across iterations: one busy-until clock per
  // serialized resource (pool leader/others per proc kind, intra-node
  // channel per (src, dst), and the shared network serialization point —
  // the machine has one NIC, so System->System and FB->FB network
  // transfers contend even though their bandwidths differ per kind pair).
  ResourceClocks& clocks = scratch.clocks_;
  clocks.reset(1, kNumResClocks);

  // Never read before written within a run (topological order guarantees
  // producers precede consumers; cross-iteration edges skip iteration 0),
  // so no per-run clearing is needed.
  std::vector<double>& finish_prev = scratch.finish_prev_;
  std::vector<double>& finish_cur = scratch.finish_cur_;

  const double copy_noise_sigma = options_.noise_sigma * 0.5;
  const bool record_trace = options_.record_trace;
  double makespan = 0.0;
  // Run totals accumulated in locals (registers) and flushed into the
  // report at every exit; the addition order matches the historical
  // in-place accumulation, so the flushed doubles are bit-identical.
  double energy = 0.0;
  std::uint64_t intra_bytes = 0;
  std::uint64_t inter_bytes = 0;
  std::uint64_t events = 0;

  const SimScratch::PlanTask* const tasks = scratch.plan_tasks_.data();
  const SimScratch::PlanEdge* const edges = scratch.plan_edges_.data();
  const SimScratch::PlanLeg* const legs = scratch.plan_legs_.data();
  const std::size_t num_rows = scratch.plan_tasks_.size();

  for (int iter = 0; iter < options_.iterations; ++iter) {
    for (std::size_t row = 0; row < num_rows; ++row) {
      const SimScratch::PlanTask& pt = tasks[row];

      // 1. Data arrival: producers' finish plus any inferred copies.
      double ready = 0.0;
      for (std::uint32_t ei = pt.edge_begin; ei < pt.edge_end; ++ei) {
        const SimScratch::PlanEdge& e = edges[ei];
        double produced_at;
        if (e.cross_iteration != 0) {
          if (iter == 0) continue;  // initial data is in place
          produced_at = finish_prev[e.producer];
        } else {
          produced_at = finish_cur[e.producer];
        }

        double arrival = produced_at;
        for (std::uint32_t li = e.leg_begin; li < e.leg_end; ++li) {
          const SimScratch::PlanLeg& leg = legs[li];
          if (leg.resource == kMissingChannel) {
            // Raises the standard missing-channel error.
            (void)machine_.channel(static_cast<MemKind>(leg.src),
                                   static_cast<MemKind>(leg.dst),
                                   leg.inter != 0);
          }
          double elapsed = leg.elapsed;
          if (copy_noise_sigma > 0.0)
            elapsed *= rng.lognormal_factor(copy_noise_sigma);
          // Channel fault: the first attempt is lost at completion and the
          // copy re-issues back to back, doubling the leg's channel time.
          bool copy_faulted = false;
          if (inject && faults.copy_fault_prob > 0.0 &&
              fault_rng.bernoulli(faults.copy_fault_prob)) {
            copy_faulted = true;
            ++report.faults.copy_retries;
            report.faults.lost_seconds += elapsed;
            elapsed *= 2.0;
          }
          const double start =
              clocks.acquire(0, leg.resource, arrival, elapsed);
          arrival = start + elapsed;
          ++events;
          if (record_trace) {
            report.trace.push_back({.kind = TraceEvent::Kind::kCopy,
                                    .name = scratch.leg_names_[li],
                                    .resource = scratch.leg_resources_[li],
                                    .iteration = iter,
                                    .start_s = start,
                                    .duration_s = elapsed,
                                    .bytes = leg.bytes_u64});
            if (copy_faulted) {
              // Annotate the lost first attempt so the profile can
              // attribute the re-issue time to faults.
              report.trace.push_back(
                  {.kind = TraceEvent::Kind::kFault,
                   .name = "copy fault: " + scratch.leg_names_[li],
                   .resource = scratch.leg_resources_[li],
                   .iteration = iter,
                   .start_s = start,
                   .duration_s = elapsed * 0.5});
            }
          }
          if (leg.inter != 0) {
            inter_bytes += leg.bytes_u64;
          } else {
            intra_bytes += leg.bytes_u64;
          }
          energy += leg.energy;
        }
        ready = std::max(ready, arrival);
      }

      // 2. Processor pool availability on every node the task occupies.
      const double lead = clocks.busy_until(0, pt.pool);
      const double pool_free =
          pt.dist != 0 ? std::max(lead, clocks.busy_until(0, pt.pool + 1))
                       : lead;

      const double start = std::max(ready, pool_free);
      double duration = pt.base_dur;
      if (options_.noise_sigma > 0.0)
        duration *= rng.lognormal_factor(options_.noise_sigma);
      ++events;

      if (inject) {
        // Straggler: the task's wave runs on a slow/contended instance and
        // its duration inflates; the run continues.
        if (faults.straggler_prob > 0.0 &&
            fault_rng.bernoulli(faults.straggler_prob)) {
          const double inflation = duration * (faults.straggler_factor - 1.0);
          duration += inflation;
          ++report.faults.stragglers;
          report.faults.lost_seconds += inflation;
          if (record_trace) {
            report.trace.push_back(
                {.kind = TraceEvent::Kind::kFault,
                 .name = "straggler: " + graph_.task(TaskId(pt.task)).name,
                 .resource = std::string(to_string(pt.proc)) + " pool",
                 .iteration = iter,
                 .start_s = start,
                 .duration_s = inflation});
          }
        }
        // Transient crash at a uniformly sampled point of the task's
        // execution: the run aborts there. The partial work up to the crash
        // is what a retrying driver pays for (total_seconds).
        if (faults.crash_prob > 0.0 &&
            fault_rng.bernoulli(faults.crash_prob)) {
          const double lost = fault_rng.uniform() * duration;
          ++report.faults.crashes;
          report.faults.lost_seconds += lost;
          if (record_trace) {
            report.trace.push_back(
                {.kind = TraceEvent::Kind::kFault,
                 .name = "crash: " + graph_.task(TaskId(pt.task)).name,
                 .resource = std::string(to_string(pt.proc)) + " pool",
                 .iteration = iter,
                 .start_s = start,
                 .duration_s = lost});
          }
          report.transient = true;
          report.failure = "transient crash in task " +
                           graph_.task(TaskId(pt.task)).name +
                           " (iteration " + std::to_string(iter) + ")";
          report.total_seconds = std::max(makespan, start + lost);
          report.energy_joules = energy;
          report.intra_node_copy_bytes = intra_bytes;
          report.inter_node_copy_bytes = inter_bytes;
          report.events = events;
          return;
        }
      }

      const double finish = start + duration;

      clocks.set(0, pt.pool, finish);
      if (pt.dist != 0) clocks.set(0, pt.pool + 1, finish);
      finish_cur[pt.task] = finish;
      makespan = std::max(makespan, finish);

      // Incumbent-bounded abort: the makespan is the maximum task finish,
      // so the first finish past the bound proves the full run exceeds it.
      // Report the crossing clock value as a censored lower bound; the
      // remaining report fields stay partial and must not be consumed.
      if (finish > time_bound) {
        report.ok = true;
        report.censored = true;
        report.total_seconds = finish;
        report.energy_joules = energy;
        report.intra_node_copy_bytes = intra_bytes;
        report.inter_node_copy_bytes = inter_bytes;
        report.events = events;
        return;
      }

      // Energy: busy instances x busy time (per-instance power), across
      // the nodes the group occupies.
      energy += duration * pt.energy_coeff;
      if (record_trace) {
        report.trace.push_back(
            {.kind = TraceEvent::Kind::kTask,
             .name = graph_.task(TaskId(pt.task)).name,
             .resource = std::string(to_string(pt.proc)) + " pool",
             .iteration = iter,
             .start_s = start,
             .duration_s = duration});
      }

      TaskReport& tr = report.tasks[pt.task];
      tr.proc = pt.proc;
      tr.compute_seconds += duration;
      tr.copy_wait_seconds += std::max(0.0, ready - pool_free);
      tr.launch_overhead_seconds += pt.launch;
      tr.runtime_overhead_seconds += runtime_overhead_;
    }
    std::swap(finish_prev, finish_cur);
  }

  // Per-iteration averages for the task reports.
  for (auto& tr : report.tasks) {
    tr.compute_seconds /= options_.iterations;
    tr.copy_wait_seconds /= options_.iterations;
    tr.launch_overhead_seconds /= options_.iterations;
    tr.runtime_overhead_seconds /= options_.iterations;
  }
  report.intra_node_copy_bytes =
      intra_bytes / static_cast<std::uint64_t>(options_.iterations);
  report.inter_node_copy_bytes =
      inter_bytes / static_cast<std::uint64_t>(options_.iterations);
  report.energy_joules = energy;
  report.events = events;

  report.ok = true;
  report.total_seconds = makespan;
}

bool Simulator::begin_runs(const Mapping& mapping,
                           SimScratch& scratch) const {
  prepare(scratch);

  {
    const auto violations = mapping.violations(graph_, machine_);
    if (!violations.empty()) {
      clear_report(scratch.report_, options_.iterations,
                   options_.time_bound);
      scratch.report_.failure = "invalid mapping: " + violations.front();
      return false;
    }
  }

  resolve_memories(mapping, scratch);
  if (!scratch.resolve_ok_) {
    clear_report(scratch.report_, options_.iterations, options_.time_bound);
    // The resolve pass records only ids; the human-readable message is
    // built here, on the (cold) failure path.
    if (scratch.failure_kind_ == SimScratch::ResolveFailure::kOutOfMemory) {
      const CollectionId cid(scratch.failure_collection_);
      std::ostringstream os;
      os << "out of memory: no memory kind in the priority list of task "
         << graph_.task(TaskId(scratch.failure_task_)).name << " argument "
         << graph_.collection(cid).name << " ("
         << format_bytes(graph_.collection_bytes(cid))
         << ") has capacity left";
      scratch.report_.failure = os.str();
    }
    return false;
  }
  build_plan(mapping, scratch);
  return true;
}

void Simulator::count_run(const ExecutionReport& report) const {
  if (events_total_) events_total_->inc(report.events);
  if (!runs_total_) return;
  runs_total_->inc();
  if (report.censored) {
    runs_censored_->inc();
  } else if (!report.ok) {
    runs_failed_->inc();
  }
}

const ExecutionReport& Simulator::run_prepared(const Mapping& mapping,
                                               std::uint64_t seed,
                                               SimScratch& scratch,
                                               double time_bound) const {
  simulate(mapping, seed, time_bound, scratch);
  count_run(scratch.report_);
  return scratch.report_;
}

std::span<const ExecutionReport> Simulator::run_repeats(
    const Mapping& mapping, std::span<const std::uint64_t> seeds,
    SimScratch& scratch, double time_bound) const {
  // The plan from begin_runs carries every mapping-dependent quantity.
  (void)mapping;
  const std::size_t R = seeds.size();
  scratch.lane_reports_.resize(R);
  if (R == 0) return {};

  const std::size_t num_tasks = graph_.num_tasks();
  const FaultModel& faults = options_.faults;
  const bool inject = faults.enabled();
  const bool record_trace = options_.record_trace;
  const double copy_noise_sigma = options_.noise_sigma * 0.5;

  // Per-lane state. Lane r replays exactly the draw/clock sequence of a
  // sequential run_prepared(seeds[r]): each lane owns its RNG streams and
  // its row of resource clocks, and a lane that exits early (crash, bound
  // crossing, memory pressure) is flagged done and skipped everywhere
  // after, so it makes no further draws — just like its sequential run.
  scratch.lane_rng_.resize(R);
  scratch.lane_fault_rng_.resize(R);
  scratch.lane_ready_.resize(R);
  scratch.lane_arrival_.resize(R);
  scratch.lane_makespan_.assign(R, 0.0);
  scratch.lane_done_.assign(R, 0);
  scratch.clocks_.reset(R, kNumResClocks);
  // Finish times laid out [task][lane] so the lane-inner loops stream a
  // contiguous row per producer. Never read before written per live lane
  // (topological order; cross-iteration edges skip iteration 0).
  scratch.lane_finish_a_.resize(num_tasks * R);
  scratch.lane_finish_b_.resize(num_tasks * R);
  double* fin_prev = scratch.lane_finish_a_.data();
  double* fin_cur = scratch.lane_finish_b_.data();

  std::size_t live = R;
  for (std::size_t r = 0; r < R; ++r) {
    ExecutionReport& rep = scratch.lane_reports_[r];
    clear_report(rep, options_.iterations, time_bound);
    rep.footprints = scratch.footprints_;
    rep.demoted_args = scratch.demoted_args_;
    rep.tasks.resize(num_tasks);
    for (std::size_t i = 0; i < num_tasks; ++i)
      rep.tasks[i] = TaskReport{.task = TaskId(i)};
    if (record_trace) rep.trace.reserve(trace_reserve_);

    scratch.lane_rng_[r] = Rng(mix64(seeds[r]) ^ scratch.plan_hash_);
    scratch.lane_fault_rng_[r] =
        Rng(inject ? (mix64(seeds[r] ^ kFaultSalt) ^ scratch.plan_hash_) : 0);

    // Transient memory pressure (see simulate()): a per-run pre-pass.
    if (inject && faults.mem_pressure_prob > 0.0 &&
        scratch.lane_fault_rng_[r].bernoulli(faults.mem_pressure_prob)) {
      ++rep.faults.mem_pressure;
      for (const MemoryFootprint& fp : scratch.footprints_) {
        const double usable = faults.mem_pressure_headroom *
                              static_cast<double>(fp.capacity_bytes);
        if (static_cast<double>(fp.peak_instance_bytes) > usable) {
          std::ostringstream os;
          os << "transient memory pressure: " << to_string(fp.kind)
             << " peak " << format_bytes(fp.peak_instance_bytes)
             << " exceeds reduced " << "capacity "
             << format_bytes(static_cast<std::uint64_t>(usable));
          rep.failure = os.str();
          rep.transient = true;
          scratch.lane_done_[r] = 1;
          --live;
          break;
        }
      }
    }
  }

  const SimScratch::PlanTask* const tasks = scratch.plan_tasks_.data();
  const SimScratch::PlanEdge* const edges = scratch.plan_edges_.data();
  const SimScratch::PlanLeg* const legs = scratch.plan_legs_.data();
  const std::size_t num_rows = scratch.plan_tasks_.size();
  double* const ready = scratch.lane_ready_.data();
  double* const arrival = scratch.lane_arrival_.data();
  std::uint8_t* const done = scratch.lane_done_.data();

  for (int iter = 0; live > 0 && iter < options_.iterations; ++iter) {
    for (std::size_t row = 0; live > 0 && row < num_rows; ++row) {
      const SimScratch::PlanTask& pt = tasks[row];

      // 1. Data arrival per lane: producers' finish plus inferred copies.
      for (std::size_t r = 0; r < R; ++r) ready[r] = 0.0;
      for (std::uint32_t ei = pt.edge_begin; ei < pt.edge_end; ++ei) {
        const SimScratch::PlanEdge& e = edges[ei];
        if (e.cross_iteration != 0 && iter == 0)
          continue;  // initial data is in place
        const double* const prod =
            (e.cross_iteration != 0 ? fin_prev : fin_cur) + e.producer * R;
        for (std::size_t r = 0; r < R; ++r) arrival[r] = prod[r];

        for (std::uint32_t li = e.leg_begin; li < e.leg_end; ++li) {
          const SimScratch::PlanLeg& leg = legs[li];
          if (leg.resource == kMissingChannel && live > 0) {
            // Raises the standard missing-channel error.
            (void)machine_.channel(static_cast<MemKind>(leg.src),
                                   static_cast<MemKind>(leg.dst),
                                   leg.inter != 0);
          }
          for (std::size_t r = 0; r < R; ++r) {
            if (done[r] != 0) continue;
            ExecutionReport& rep = scratch.lane_reports_[r];
            double elapsed = leg.elapsed;
            if (copy_noise_sigma > 0.0)
              elapsed *=
                  scratch.lane_rng_[r].lognormal_factor(copy_noise_sigma);
            bool copy_faulted = false;
            if (inject && faults.copy_fault_prob > 0.0 &&
                scratch.lane_fault_rng_[r].bernoulli(
                    faults.copy_fault_prob)) {
              copy_faulted = true;
              ++rep.faults.copy_retries;
              rep.faults.lost_seconds += elapsed;
              elapsed *= 2.0;
            }
            const double start =
                scratch.clocks_.acquire(r, leg.resource, arrival[r], elapsed);
            arrival[r] = start + elapsed;
            ++rep.events;
            if (record_trace) {
              rep.trace.push_back({.kind = TraceEvent::Kind::kCopy,
                                   .name = scratch.leg_names_[li],
                                   .resource = scratch.leg_resources_[li],
                                   .iteration = iter,
                                   .start_s = start,
                                   .duration_s = elapsed,
                                   .bytes = leg.bytes_u64});
              if (copy_faulted) {
                rep.trace.push_back(
                    {.kind = TraceEvent::Kind::kFault,
                     .name = "copy fault: " + scratch.leg_names_[li],
                     .resource = scratch.leg_resources_[li],
                     .iteration = iter,
                     .start_s = start,
                     .duration_s = elapsed * 0.5});
              }
            }
            if (leg.inter != 0) {
              rep.inter_node_copy_bytes += leg.bytes_u64;
            } else {
              rep.intra_node_copy_bytes += leg.bytes_u64;
            }
            rep.energy_joules += leg.energy;
          }
        }
        for (std::size_t r = 0; r < R; ++r)
          if (done[r] == 0) ready[r] = std::max(ready[r], arrival[r]);
      }

      // 2. Pool availability, duration, faults, commit — per lane.
      for (std::size_t r = 0; r < R; ++r) {
        if (done[r] != 0) continue;
        ExecutionReport& rep = scratch.lane_reports_[r];
        const double lead = scratch.clocks_.busy_until(r, pt.pool);
        const double pool_free =
            pt.dist != 0
                ? std::max(lead, scratch.clocks_.busy_until(r, pt.pool + 1))
                : lead;
        const double start = std::max(ready[r], pool_free);
        double duration = pt.base_dur;
        if (options_.noise_sigma > 0.0)
          duration *=
              scratch.lane_rng_[r].lognormal_factor(options_.noise_sigma);
        ++rep.events;

        if (inject) {
          if (faults.straggler_prob > 0.0 &&
              scratch.lane_fault_rng_[r].bernoulli(faults.straggler_prob)) {
            const double inflation =
                duration * (faults.straggler_factor - 1.0);
            duration += inflation;
            ++rep.faults.stragglers;
            rep.faults.lost_seconds += inflation;
            if (record_trace) {
              rep.trace.push_back(
                  {.kind = TraceEvent::Kind::kFault,
                   .name = "straggler: " + graph_.task(TaskId(pt.task)).name,
                   .resource = std::string(to_string(pt.proc)) + " pool",
                   .iteration = iter,
                   .start_s = start,
                   .duration_s = inflation});
            }
          }
          if (faults.crash_prob > 0.0 &&
              scratch.lane_fault_rng_[r].bernoulli(faults.crash_prob)) {
            const double lost =
                scratch.lane_fault_rng_[r].uniform() * duration;
            ++rep.faults.crashes;
            rep.faults.lost_seconds += lost;
            if (record_trace) {
              rep.trace.push_back(
                  {.kind = TraceEvent::Kind::kFault,
                   .name = "crash: " + graph_.task(TaskId(pt.task)).name,
                   .resource = std::string(to_string(pt.proc)) + " pool",
                   .iteration = iter,
                   .start_s = start,
                   .duration_s = lost});
            }
            rep.transient = true;
            rep.failure = "transient crash in task " +
                          graph_.task(TaskId(pt.task)).name +
                          " (iteration " + std::to_string(iter) + ")";
            rep.total_seconds =
                std::max(scratch.lane_makespan_[r], start + lost);
            done[r] = 1;
            --live;
            continue;
          }
        }

        const double finish = start + duration;
        scratch.clocks_.set(r, pt.pool, finish);
        if (pt.dist != 0) scratch.clocks_.set(r, pt.pool + 1, finish);
        fin_cur[pt.task * R + r] = finish;
        scratch.lane_makespan_[r] =
            std::max(scratch.lane_makespan_[r], finish);

        if (finish > time_bound) {
          // Censored exactly like the sequential run: the partial report
          // keeps whatever accumulated so far and the lane stops drawing.
          rep.ok = true;
          rep.censored = true;
          rep.total_seconds = finish;
          done[r] = 1;
          --live;
          continue;
        }

        rep.energy_joules += duration * pt.energy_coeff;
        if (record_trace) {
          rep.trace.push_back(
              {.kind = TraceEvent::Kind::kTask,
               .name = graph_.task(TaskId(pt.task)).name,
               .resource = std::string(to_string(pt.proc)) + " pool",
               .iteration = iter,
               .start_s = start,
               .duration_s = duration});
        }

        TaskReport& tr = rep.tasks[pt.task];
        tr.proc = pt.proc;
        tr.compute_seconds += duration;
        tr.copy_wait_seconds += std::max(0.0, ready[r] - pool_free);
        tr.launch_overhead_seconds += pt.launch;
        tr.runtime_overhead_seconds += runtime_overhead_;
      }
    }
    std::swap(fin_prev, fin_cur);
  }

  for (std::size_t r = 0; r < R; ++r) {
    ExecutionReport& rep = scratch.lane_reports_[r];
    if (done[r] == 0) {
      // Lane ran to completion: per-iteration averages and totals, exactly
      // as the sequential run finalizes.
      for (auto& tr : rep.tasks) {
        tr.compute_seconds /= options_.iterations;
        tr.copy_wait_seconds /= options_.iterations;
        tr.launch_overhead_seconds /= options_.iterations;
        tr.runtime_overhead_seconds /= options_.iterations;
      }
      rep.intra_node_copy_bytes /=
          static_cast<std::uint64_t>(options_.iterations);
      rep.inter_node_copy_bytes /=
          static_cast<std::uint64_t>(options_.iterations);
      rep.ok = true;
      rep.total_seconds = scratch.lane_makespan_[r];
    }
    count_run(rep);
  }
  return {scratch.lane_reports_.data(), R};
}

const ExecutionReport& Simulator::run(const Mapping& mapping,
                                      std::uint64_t seed, SimScratch& scratch,
                                      double time_bound) const {
  if (!begin_runs(mapping, scratch)) return scratch.report_;
  simulate(mapping, seed, time_bound, scratch);
  count_run(scratch.report_);
  return scratch.report_;
}

const ExecutionReport& Simulator::run(const Mapping& mapping,
                                      std::uint64_t seed,
                                      SimScratch& scratch) const {
  return run(mapping, seed, scratch, options_.time_bound);
}

ExecutionReport Simulator::run(const Mapping& mapping,
                               std::uint64_t seed) const {
  SimScratch scratch;
  run(mapping, seed, scratch, options_.time_bound);
  return std::move(scratch.report_);
}

double Simulator::mean_total_seconds(const Mapping& mapping,
                                     std::uint64_t seed, int repeats) const {
  AM_REQUIRE(repeats > 0, "repeats must be positive");
  SimScratch scratch;
  // One validation + memory resolution serves every repeat (both are
  // noise-independent).
  if (!begin_runs(mapping, scratch))
    return std::numeric_limits<double>::infinity();

  double sum = 0.0;
  for (int r = 0; r < repeats; ++r) {
    simulate(mapping,
             mix64(seed + 1000003ULL * static_cast<std::uint64_t>(r)),
             std::numeric_limits<double>::infinity(), scratch);
    if (!scratch.report_.ok)
      return std::numeric_limits<double>::infinity();
    sum += scratch.report_.total_seconds;
  }
  return sum / repeats;
}

}  // namespace automap
