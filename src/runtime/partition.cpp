#include "src/runtime/partition.hpp"

#include "src/support/error.hpp"

namespace automap {

std::vector<CollectionUse> BlockPartition1D::piece_uses(
    int piece, Privilege block_privilege, double access_fraction) const {
  AM_REQUIRE(piece >= 0 && piece < num_pieces(), "piece out of range");
  std::vector<CollectionUse> uses;
  uses.push_back({blocks[static_cast<std::size_t>(piece)], block_privilege,
                  access_fraction});
  if (halo_lo[static_cast<std::size_t>(piece)].valid())
    uses.push_back({halo_lo[static_cast<std::size_t>(piece)],
                    Privilege::kReadOnly, 1.0});
  if (halo_hi[static_cast<std::size_t>(piece)].valid())
    uses.push_back({halo_hi[static_cast<std::size_t>(piece)],
                    Privilege::kReadOnly, 1.0});
  return uses;
}

BlockPartition1D make_block_partition_1d(Program& program, RegionId region,
                                         std::int64_t lo, std::int64_t hi,
                                         int pieces, std::int64_t halo_width,
                                         const std::string& prefix) {
  AM_REQUIRE(pieces > 0, "need at least one piece");
  AM_REQUIRE(hi >= lo, "empty range");
  const std::int64_t extent = hi - lo + 1;
  AM_REQUIRE(extent >= pieces, "fewer elements than pieces");
  AM_REQUIRE(halo_width >= 0, "negative halo width");
  AM_REQUIRE(halo_width <= extent / pieces,
             "halo wider than the smallest block");

  BlockPartition1D part;
  part.blocks.reserve(static_cast<std::size_t>(pieces));
  part.halo_lo.reserve(static_cast<std::size_t>(pieces));
  part.halo_hi.reserve(static_cast<std::size_t>(pieces));

  for (int i = 0; i < pieces; ++i) {
    const std::int64_t block_lo = lo + extent * i / pieces;
    const std::int64_t block_hi = lo + extent * (i + 1) / pieces - 1;
    part.blocks.push_back(program.add_collection(
        region, prefix + "_block" + std::to_string(i),
        Rect::line(block_lo, block_hi)));

    // Halo views extend into the neighbours' blocks.
    if (i > 0 && halo_width > 0) {
      part.halo_lo.push_back(program.add_collection(
          region, prefix + "_halo_lo" + std::to_string(i),
          Rect::line(block_lo - halo_width, block_lo - 1)));
    } else {
      part.halo_lo.push_back(CollectionId());
    }
    if (i + 1 < pieces && halo_width > 0) {
      part.halo_hi.push_back(program.add_collection(
          region, prefix + "_halo_hi" + std::to_string(i),
          Rect::line(block_hi + 1, block_hi + halo_width)));
    } else {
      part.halo_hi.push_back(CollectionId());
    }
  }
  return part;
}

BlockPartition2D make_block_partition_2d(Program& program, RegionId region,
                                         std::int64_t lo_x, std::int64_t hi_x,
                                         std::int64_t lo_y, std::int64_t hi_y,
                                         int pieces_x, int pieces_y,
                                         std::int64_t halo_width,
                                         const std::string& prefix) {
  AM_REQUIRE(pieces_x > 0 && pieces_y > 0, "need at least one piece per dim");
  AM_REQUIRE(hi_x >= lo_x && hi_y >= lo_y, "empty rectangle");
  const std::int64_t ex = hi_x - lo_x + 1;
  const std::int64_t ey = hi_y - lo_y + 1;
  AM_REQUIRE(ex >= pieces_x && ey >= pieces_y,
             "fewer elements than pieces in a dimension");
  AM_REQUIRE(halo_width >= 0, "negative halo width");
  AM_REQUIRE(halo_width <= ex / pieces_x && halo_width <= ey / pieces_y,
             "halo wider than the smallest block");

  BlockPartition2D part;
  part.pieces_x = pieces_x;
  part.pieces_y = pieces_y;
  const std::size_t n =
      static_cast<std::size_t>(pieces_x) * static_cast<std::size_t>(pieces_y);
  part.blocks.reserve(n);
  part.halo_xm.reserve(n);
  part.halo_xp.reserve(n);
  part.halo_ym.reserve(n);
  part.halo_yp.reserve(n);

  for (int py = 0; py < pieces_y; ++py) {
    const std::int64_t by_lo = lo_y + ey * py / pieces_y;
    const std::int64_t by_hi = lo_y + ey * (py + 1) / pieces_y - 1;
    for (int px = 0; px < pieces_x; ++px) {
      const std::int64_t bx_lo = lo_x + ex * px / pieces_x;
      const std::int64_t bx_hi = lo_x + ex * (px + 1) / pieces_x - 1;
      const std::string tag =
          "_" + std::to_string(px) + "_" + std::to_string(py);

      part.blocks.push_back(program.add_collection(
          region, prefix + "_block" + tag,
          Rect::plane(bx_lo, bx_hi, by_lo, by_hi)));

      auto edge = [&](bool present, std::int64_t xl, std::int64_t xh,
                      std::int64_t yl, std::int64_t yh, const char* name) {
        if (!present || halo_width == 0) return CollectionId();
        return program.add_collection(region, prefix + name + tag,
                                      Rect::plane(xl, xh, yl, yh));
      };
      part.halo_xm.push_back(edge(px > 0, bx_lo - halo_width, bx_lo - 1,
                                  by_lo, by_hi, "_halo_xm"));
      part.halo_xp.push_back(edge(px + 1 < pieces_x, bx_hi + 1,
                                  bx_hi + halo_width, by_lo, by_hi,
                                  "_halo_xp"));
      part.halo_ym.push_back(edge(py > 0, bx_lo, bx_hi, by_lo - halo_width,
                                  by_lo - 1, "_halo_ym"));
      part.halo_yp.push_back(edge(py + 1 < pieces_y, bx_lo, bx_hi,
                                  by_hi + 1, by_hi + halo_width,
                                  "_halo_yp"));
    }
  }
  return part;
}

}  // namespace automap
