#include "src/runtime/program.hpp"

#include <optional>

#include "src/support/error.hpp"

namespace automap {

RegionId Program::add_region(std::string name, Rect bounds,
                             std::uint64_t bytes_per_element) {
  return shell_.add_region(std::move(name), bounds, bytes_per_element);
}

CollectionId Program::add_collection(RegionId region, std::string name,
                                     Rect rect) {
  return shell_.add_collection(region, std::move(name), rect);
}

TaskId Program::launch(std::string name, int num_points, TaskCost cost,
                       std::vector<CollectionUse> args, bool in_main_loop) {
  const TaskId id =
      shell_.add_task(std::move(name), num_points, cost, std::move(args));
  launches_.push_back({.task = id, .in_main_loop = in_main_loop});
  return id;
}

TaskGraph Program::lower() const {
  TaskGraph graph = shell_;  // copies regions/collections/tasks, no edges

  const std::size_t n = launches_.size();

  // Finds, for the consumer at launch position `pos` reading collection
  // `c`, the nearest preceding writer of each collection overlapping `c`.
  // Searches straight-line first (same iteration); for main-loop consumers
  // it then wraps around the loop body (cross-iteration).
  struct Writer {
    TaskId task;
    CollectionId collection;
    std::uint64_t overlap = 0;
    bool cross_iteration = false;
  };

  auto writes_overlapping =
      [&](std::size_t launch_pos, CollectionId c,
          bool cross) -> std::vector<Writer> {
    std::vector<Writer> out;
    const GroupTask& t = graph.task(launches_[launch_pos].task);
    for (const CollectionUse& use : t.args) {
      if (!writes(use.privilege)) continue;
      const std::uint64_t ov = graph.overlap_bytes(use.collection, c);
      if (ov == 0) continue;
      out.push_back({t.id, use.collection, ov, cross});
    }
    return out;
  };

  // For each consumer argument, the set of source collections already
  // satisfied (a nearer writer of the same data shadows farther ones).
  for (std::size_t pos = 0; pos < n; ++pos) {
    const Launch& launch = launches_[pos];
    const GroupTask& task = graph.task(launch.task);

    for (const CollectionUse& use : task.args) {
      auto connect = [&](Privilege needed_privilege) {
        const bool want_reads = needed_privilege == Privilege::kReadOnly;
        std::vector<bool> satisfied(graph.num_collections(), false);

        auto visit = [&](std::size_t producer_pos, bool cross) {
          for (const Writer& w :
               writes_overlapping(producer_pos, use.collection, cross)) {
            if (satisfied[w.collection.index()]) continue;
            satisfied[w.collection.index()] = true;
            DependenceEdge e;
            e.producer = w.task;
            e.consumer = task.id;
            e.producer_collection = w.collection;
            e.consumer_collection = use.collection;
            e.bytes = w.overlap;
            e.cross_iteration = cross;
            // RAW edges move data; WAR/WAW only order execution.
            e.carries_data = want_reads;
            // Heuristic (documented in DESIGN.md): an edge between two
            // *different* collections is boundary data (halo/ghost
            // exchange) that crosses node blocks; flow through the *same*
            // collection stays within a block.
            e.internode_fraction =
                (w.collection == use.collection) ? 0.0 : 1.0;
            graph.add_dependence(e);
          }
        };

        // Straight-line: nearest preceding writers in program order.
        for (std::size_t back = 1; back <= pos; ++back)
          visit(pos - back, /*cross=*/false);

        // Loop-carried: wrap around the main-loop body.
        if (launch.in_main_loop) {
          for (std::size_t wrapped = n; wrapped > pos; --wrapped) {
            const std::size_t producer_pos = wrapped - 1;
            if (!launches_[producer_pos].in_main_loop) continue;
            visit(producer_pos, /*cross=*/true);
          }
        }
      };

      if (reads(use.privilege)) connect(Privilege::kReadOnly);
      // A writer must also wait for the previous writer of the same data
      // (WAW). WAR edges against previous readers are subsumed in this
      // model because readers and writers of the same collection already
      // serialize through the RAW chain; modeling them would only add
      // duplicate ordering edges.
      if (writes(use.privilege) && !reads(use.privilege))
        connect(Privilege::kWriteOnly);
    }
  }

  graph.validate();
  return graph;
}

}  // namespace automap
