#pragma once

// Mini-Legion program layer.
//
// Applications are written against this builder in Legion style: declare
// regions, carve collections (sub-rectangles, e.g. interiors and halos) out
// of them, and launch group tasks in program order with per-collection
// read/write privileges. `lower()` performs the runtime's dependence
// analysis — RAW edges carry data, WAR/WAW edges only order — including
// loop-carried dependences for launches inside the application's main loop,
// and produces the acyclic TaskGraph that the simulator executes and the
// AutoMap search optimizes. The per-collection dependence information this
// computes is exactly the runtime feature the paper lists as a prerequisite
// for porting AutoMap to a new task system (§3).

#include <string>
#include <vector>

#include "src/taskgraph/task_graph.hpp"

namespace automap {

class Program {
 public:
  /// Declares a logical region (an index space with an element size).
  RegionId add_region(std::string name, Rect bounds,
                      std::uint64_t bytes_per_element);

  /// Declares a collection: a named sub-rectangle view of a region.
  /// Collections of the same region may overlap (halos, shared/ghost sets).
  CollectionId add_collection(RegionId region, std::string name, Rect rect);

  /// Launches a group task in program order. `in_main_loop` marks launches
  /// inside the iterative main loop: their mutual dependences wrap around
  /// to the next iteration (loop-carried) when no earlier same-iteration
  /// writer exists.
  TaskId launch(std::string name, int num_points, TaskCost cost,
                std::vector<CollectionUse> args, bool in_main_loop = true);

  [[nodiscard]] std::size_t num_launches() const { return launches_.size(); }

  /// Runs dependence analysis and returns the task graph. May be called
  /// repeatedly; later launches invalidate earlier results.
  [[nodiscard]] TaskGraph lower() const;

 private:
  struct Launch {
    TaskId task;  // index into graph under construction
    bool in_main_loop = true;
  };

  // The program accumulates regions/collections/tasks in a TaskGraph shell
  // (without edges); lower() copies it and adds the dependence edges.
  TaskGraph shell_;
  std::vector<Launch> launches_;
};

}  // namespace automap
