#pragma once

// Partitioning helpers for writing applications against the mini-Legion
// Program API. Most task-based codes follow the same pattern: block a
// region into per-piece sub-collections plus halo views of the neighbors'
// boundary data (the overlap structure that drives both the dependence
// analysis and CCD's co-location constraints). These builders construct
// that structure mechanically.

#include <string>
#include <vector>

#include "src/runtime/program.hpp"

namespace automap {

/// A 1-D block partition with two-sided halos. For piece i:
///  * blocks[i] is the owned sub-range;
///  * halo_lo[i] / halo_hi[i] are read-views of width `halo_width`
///    extending into the neighbouring pieces (absent, i.e. invalid id, at
///    the domain boundary).
struct BlockPartition1D {
  std::vector<CollectionId> blocks;
  std::vector<CollectionId> halo_lo;
  std::vector<CollectionId> halo_hi;

  [[nodiscard]] int num_pieces() const {
    return static_cast<int>(blocks.size());
  }

  /// Collection uses for piece i under the given privileges: the block
  /// plus its existing halos (halo privilege is ReadOnly).
  [[nodiscard]] std::vector<CollectionUse> piece_uses(
      int piece, Privilege block_privilege,
      double access_fraction = 1.0) const;
};

/// Partitions [lo, hi] of `region` into `pieces` blocks named
/// "<prefix>_block<i>" with halos "<prefix>_halo_lo/hi<i>". Requires the
/// range to hold at least `pieces` elements and halo_width smaller than
/// the smallest block.
[[nodiscard]] BlockPartition1D make_block_partition_1d(
    Program& program, RegionId region, std::int64_t lo, std::int64_t hi,
    int pieces, std::int64_t halo_width, const std::string& prefix);

/// A 2-D block partition with four-sided halos, indexed piece-major
/// (py * pieces_x + px). Halos are full-edge strips extending into the
/// neighbouring blocks; absent at domain boundaries.
struct BlockPartition2D {
  int pieces_x = 0;
  int pieces_y = 0;
  std::vector<CollectionId> blocks;
  std::vector<CollectionId> halo_xm, halo_xp, halo_ym, halo_yp;

  [[nodiscard]] int num_pieces() const { return pieces_x * pieces_y; }
  [[nodiscard]] std::size_t index(int px, int py) const {
    return static_cast<std::size_t>(py) * static_cast<std::size_t>(pieces_x) +
           static_cast<std::size_t>(px);
  }
};

/// Tiles the rectangle [lo_x, hi_x] x [lo_y, hi_y] of `region` into
/// pieces_x x pieces_y blocks with `halo_width`-wide edge halos.
[[nodiscard]] BlockPartition2D make_block_partition_2d(
    Program& program, RegionId region, std::int64_t lo_x, std::int64_t hi_x,
    std::int64_t lo_y, std::int64_t hi_y, int pieces_x, int pieces_y,
    std::int64_t halo_width, const std::string& prefix);

}  // namespace automap
