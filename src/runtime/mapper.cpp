#include "src/runtime/mapper.hpp"

#include "src/support/error.hpp"

namespace automap {

Mapping Mapper::map_all(const TaskGraph& graph, const MachineModel& machine) {
  Mapping mapping(graph);
  for (const GroupTask& task : graph.tasks())
    mapping.at(task.id) = map_task(task, graph, machine);
  const auto violations = mapping.violations(graph, machine);
  AM_CHECK(violations.empty(),
           "mapper " + name() + " produced an invalid mapping: " +
               (violations.empty() ? "" : violations.front()));
  return mapping;
}

TaskMapping DefaultMapper::map_task(const GroupTask& task,
                                    const TaskGraph& graph,
                                    const MachineModel& machine) {
  (void)graph;
  TaskMapping tm;
  tm.distribute = true;
  const bool gpu =
      task.cost.has_gpu_variant() && machine.has_proc_kind(ProcKind::kGpu);
  tm.proc = gpu ? ProcKind::kGpu : ProcKind::kCpu;
  const MemKind mem = machine.best_memory_for(tm.proc);
  tm.arg_memories.assign(task.args.size(), {mem});
  return tm;
}

FixedMapper::FixedMapper(std::string name, Mapping mapping)
    : name_(std::move(name)), mapping_(std::move(mapping)) {}

TaskMapping FixedMapper::map_task(const GroupTask& task,
                                  const TaskGraph& graph,
                                  const MachineModel& machine) {
  (void)graph;
  (void)machine;
  return mapping_.at(task.id);
}

}  // namespace automap
