#pragma once

// Mapper interface, mirroring Legion's dynamic mapping API (§3).
//
// A Mapper decides, per group task, the distribution flag, processor kind
// and per-argument memory kinds. The runtime (here: the simulator harness)
// queries the mapper for every task; AutoMap's own "mapper" component is a
// FixedMapper replaying whichever candidate mapping the driver wants
// evaluated next.

#include <memory>
#include <string>

#include "src/machine/machine.hpp"
#include "src/mapping/mapping.hpp"
#include "src/taskgraph/task_graph.hpp"

namespace automap {

class Mapper {
 public:
  virtual ~Mapper() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Kind-level mapping decision for one group task.
  [[nodiscard]] virtual TaskMapping map_task(const GroupTask& task,
                                             const TaskGraph& graph,
                                             const MachineModel& machine) = 0;

  /// Maps every task of a graph (the paper's offline usage).
  [[nodiscard]] Mapping map_all(const TaskGraph& graph,
                                const MachineModel& machine);
};

/// Legion's default mapper heuristics (§5 "Baselines"): distribute group
/// tasks, place every task on a GPU when it has a GPU variant, and place
/// each collection in the highest-bandwidth memory addressable from the
/// chosen processor (Frame-Buffer for GPU tasks).
class DefaultMapper final : public Mapper {
 public:
  [[nodiscard]] std::string name() const override { return "DefaultMapper"; }
  [[nodiscard]] TaskMapping map_task(const GroupTask& task,
                                     const TaskGraph& graph,
                                     const MachineModel& machine) override;
};

/// Replays a pre-computed full mapping (AutoMap's mapper component: the
/// driver hands it the next candidate to evaluate).
class FixedMapper final : public Mapper {
 public:
  FixedMapper(std::string name, Mapping mapping);

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] TaskMapping map_task(const GroupTask& task,
                                     const TaskGraph& graph,
                                     const MachineModel& machine) override;

 private:
  std::string name_;
  Mapping mapping_;
};

}  // namespace automap
