#pragma once

// Mapping representation (paper §2, §3.1, §3.2).
//
// After AutoMap's factorization, a mapping assigns to every group task t a
// distribution flag d and a processor kind k_p, and to every collection
// argument c of t a memory kind k_m:  f(t, c) = (d, k_p, k_m).  Following
// the §3.1 generalization, each argument actually carries a *priority list*
// of memory kinds; the first kind whose concrete memory can hold the data is
// used, which is how the memory-constrained experiments avoid hard failures.

#include <cstdint>
#include <string>
#include <vector>

#include "src/machine/machine.hpp"
#include "src/support/error.hpp"
#include "src/support/id.hpp"
#include "src/taskgraph/task_graph.hpp"

namespace automap {

/// Memory priority list for one collection argument. Usually size one; the
/// memory-constrained mode appends fallbacks.
using MemPriority = std::vector<MemKind>;

/// Kind-level mapping of one group task and all of its collection arguments.
struct TaskMapping {
  /// True: points are distributed across all nodes; false: the whole group
  /// runs on the initial leader node (§3.1).
  bool distribute = true;
  /// Point-to-node placement when distributed. AutoMap's runtime logic uses
  /// round-robin (false) and never searches this dimension; hand-written
  /// mappers may use a blocked decomposition (true), which keeps neighbor
  /// exchanges local — the advantage the paper credits Circuit's custom
  /// mapper with (§5 "Results"). Meaningless (and normalized away by
  /// serialization and hashing) when `distribute` is false.
  bool blocked = false;
  ProcKind proc = ProcKind::kGpu;
  /// One priority list per collection argument, aligned with GroupTask::args.
  std::vector<MemPriority> arg_memories;

  bool operator==(const TaskMapping&) const = default;
};

/// A complete mapping for a task graph.
class Mapping {
 public:
  Mapping() = default;
  /// Creates a mapping shaped after the graph: every task gets a default
  /// TaskMapping with one empty-initialized slot per collection argument
  /// (proc = GPU, memory = FrameBuffer, distributed).
  explicit Mapping(const TaskGraph& graph);

  [[nodiscard]] std::size_t num_tasks() const { return tasks_.size(); }
  // Defined inline: the simulator event loop reads task mappings millions
  // of times per search.
  [[nodiscard]] TaskMapping& at(TaskId id) {
    AM_REQUIRE(id.index() < tasks_.size(), "task id out of range");
    return tasks_[id.index()];
  }
  [[nodiscard]] const TaskMapping& at(TaskId id) const {
    AM_REQUIRE(id.index() < tasks_.size(), "task id out of range");
    return tasks_[id.index()];
  }

  /// Primary (first-priority) memory kind of argument `arg` of task `id`.
  [[nodiscard]] MemKind primary_memory(TaskId id, std::size_t arg) const;
  void set_primary_memory(TaskId id, std::size_t arg, MemKind kind);

  /// Constraint 1 (§4.2): every argument's primary memory kind must be
  /// addressable by the task's processor kind, and the task must have a
  /// variant for that processor kind. Returns human-readable violations;
  /// empty means valid.
  [[nodiscard]] std::vector<std::string> violations(
      const TaskGraph& graph, const MachineModel& machine) const;
  [[nodiscard]] bool valid(const TaskGraph& graph,
                           const MachineModel& machine) const;

  /// Structural hash for the profiles database (collision-checked by
  /// equality there). Only kind-level decisions participate.
  [[nodiscard]] std::uint64_t hash() const;

  bool operator==(const Mapping&) const = default;

  /// Serializes to a line-oriented text form:
  ///   task <index> <dist|leader> <CPU|GPU> <mem[,mem...]> ...
  [[nodiscard]] std::string serialize() const;
  /// Parses the output of serialize(). Throws Error on malformed input or
  /// when the shape does not match `graph`.
  [[nodiscard]] static Mapping parse(const std::string& text,
                                     const TaskGraph& graph);

  /// Human-readable mapping dump with task/collection names.
  [[nodiscard]] std::string describe(const TaskGraph& graph) const;

  /// Lists the decisions on which two equal-shaped mappings differ.
  [[nodiscard]] std::vector<std::string> diff(const Mapping& other,
                                              const TaskGraph& graph) const;

 private:
  std::vector<TaskMapping> tasks_;
};

}  // namespace automap
