#include "src/mapping/mapping.hpp"

#include <sstream>

#include "src/support/error.hpp"
#include "src/support/rng.hpp"

namespace automap {

Mapping::Mapping(const TaskGraph& graph) {
  tasks_.reserve(graph.num_tasks());
  for (const auto& t : graph.tasks()) {
    TaskMapping tm;
    tm.arg_memories.assign(t.args.size(), {MemKind::kFrameBuffer});
    tasks_.push_back(std::move(tm));
  }
}

MemKind Mapping::primary_memory(TaskId id, std::size_t arg) const {
  const TaskMapping& tm = at(id);
  AM_REQUIRE(arg < tm.arg_memories.size(), "argument index out of range");
  AM_REQUIRE(!tm.arg_memories[arg].empty(), "empty memory priority list");
  return tm.arg_memories[arg].front();
}

void Mapping::set_primary_memory(TaskId id, std::size_t arg, MemKind kind) {
  TaskMapping& tm = at(id);
  AM_REQUIRE(arg < tm.arg_memories.size(), "argument index out of range");
  if (tm.arg_memories[arg].empty()) {
    tm.arg_memories[arg] = {kind};
  } else {
    tm.arg_memories[arg].front() = kind;
  }
}

std::vector<std::string> Mapping::violations(
    const TaskGraph& graph, const MachineModel& machine) const {
  std::vector<std::string> out;
  AM_REQUIRE(tasks_.size() == graph.num_tasks(),
             "mapping shape does not match graph");
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const GroupTask& task = graph.task(TaskId(i));
    const TaskMapping& tm = tasks_[i];
    if (tm.arg_memories.size() != task.args.size()) {
      out.push_back("task " + task.name + ": argument count mismatch");
      continue;
    }
    if (!machine.has_proc_kind(tm.proc)) {
      out.push_back("task " + task.name + ": machine lacks " +
                    std::string(to_string(tm.proc)));
      continue;
    }
    if (tm.proc == ProcKind::kGpu && !task.cost.has_gpu_variant()) {
      out.push_back("task " + task.name + ": no GPU variant");
    }
    for (std::size_t a = 0; a < tm.arg_memories.size(); ++a) {
      if (tm.arg_memories[a].empty()) {
        out.push_back("task " + task.name + " arg " + std::to_string(a) +
                      ": empty memory priority list");
        continue;
      }
      for (const MemKind m : tm.arg_memories[a]) {
        if (!machine.addressable(tm.proc, m)) {
          out.push_back("task " + task.name + " arg " + std::to_string(a) +
                        ": " + std::string(to_string(m)) +
                        " not addressable from " +
                        std::string(to_string(tm.proc)));
        }
      }
    }
  }
  return out;
}

bool Mapping::valid(const TaskGraph& graph, const MachineModel& machine) const {
  // Same predicate as violations().empty(), without building the
  // human-readable strings: the search layer validates every proposed
  // candidate, most of which are invalid mutations.
  if (tasks_.size() != graph.num_tasks()) return false;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const GroupTask& task = graph.task(TaskId(i));
    const TaskMapping& tm = tasks_[i];
    if (tm.arg_memories.size() != task.args.size()) return false;
    if (!machine.has_proc_kind(tm.proc)) return false;
    if (tm.proc == ProcKind::kGpu && !task.cost.has_gpu_variant())
      return false;
    for (const auto& mems : tm.arg_memories) {
      if (mems.empty()) return false;
      for (const MemKind m : mems)
        if (!machine.addressable(tm.proc, m)) return false;
    }
  }
  return true;
}

std::uint64_t Mapping::hash() const {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  auto absorb = [&h](std::uint64_t v) { h = mix64(h ^ v); };
  for (const auto& tm : tasks_) {
    absorb(tm.distribute ? 1 : 2);
    absorb((tm.distribute && tm.blocked) ? 3 : 4);
    absorb(static_cast<std::uint64_t>(index_of(tm.proc)) + 10);
    for (const auto& mems : tm.arg_memories) {
      absorb(0xabcdULL);
      for (const MemKind m : mems)
        absorb(static_cast<std::uint64_t>(index_of(m)) + 100);
    }
  }
  return h;
}

std::string Mapping::serialize() const {
  // Plain string appends: the profiles-database export serializes every
  // measured mapping, which can be tens of thousands per search.
  std::string out;
  out.reserve(tasks_.size() * 48);
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const TaskMapping& tm = tasks_[i];
    out += "task ";
    out += std::to_string(i);
    out += ' ';
    out += tm.distribute ? (tm.blocked ? "blocked" : "dist") : "leader";
    out += ' ';
    out += to_string(tm.proc);
    for (const auto& mems : tm.arg_memories) {
      out += ' ';
      for (std::size_t m = 0; m < mems.size(); ++m) {
        if (m > 0) out += ',';
        out += to_string(mems[m]);
      }
    }
    out += '\n';
  }
  return out;
}

Mapping Mapping::parse(const std::string& text, const TaskGraph& graph) {
  Mapping mapping(graph);
  std::istringstream is(text);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string keyword, dist, proc;
    std::size_t index = 0;
    ls >> keyword >> index >> dist >> proc;
    AM_REQUIRE(keyword == "task" && !ls.fail(), "malformed mapping line: " +
                                                    line);
    AM_REQUIRE(index < graph.num_tasks(), "task index out of range");
    TaskMapping& tm = mapping.at(TaskId(index));
    AM_REQUIRE(dist == "dist" || dist == "leader" || dist == "blocked",
               "bad distribution flag: " + dist);
    tm.distribute = (dist != "leader");
    tm.blocked = (dist == "blocked");
    tm.proc = parse_proc_kind(proc);
    const std::size_t num_args = graph.task(TaskId(index)).args.size();
    for (std::size_t a = 0; a < num_args; ++a) {
      std::string mems;
      ls >> mems;
      AM_REQUIRE(!ls.fail(), "mapping line has too few arguments: " + line);
      MemPriority priority;
      std::istringstream ms(mems);
      std::string one;
      while (std::getline(ms, one, ',')) priority.push_back(parse_mem_kind(one));
      AM_REQUIRE(!priority.empty(), "empty memory list in: " + line);
      tm.arg_memories[a] = std::move(priority);
    }
    ++lines;
  }
  AM_REQUIRE(lines == graph.num_tasks(),
             "mapping text does not cover every task");
  return mapping;
}

std::string Mapping::describe(const TaskGraph& graph) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const GroupTask& task = graph.task(TaskId(i));
    const TaskMapping& tm = tasks_[i];
    os << task.name << ": " << (tm.distribute ? "distributed" : "leader-only")
       << " on " << to_string(tm.proc) << "\n";
    for (std::size_t a = 0; a < tm.arg_memories.size(); ++a) {
      os << "  " << graph.collection(task.args[a].collection).name << " -> ";
      for (std::size_t m = 0; m < tm.arg_memories[a].size(); ++m) {
        if (m > 0) os << " | ";
        os << to_string(tm.arg_memories[a][m]);
      }
      os << "\n";
    }
  }
  return os.str();
}

std::vector<std::string> Mapping::diff(const Mapping& other,
                                       const TaskGraph& graph) const {
  AM_REQUIRE(tasks_.size() == other.tasks_.size(),
             "diff requires equal-shaped mappings");
  std::vector<std::string> out;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const GroupTask& task = graph.task(TaskId(i));
    const TaskMapping& a = tasks_[i];
    const TaskMapping& b = other.tasks_[i];
    if (a.distribute != b.distribute) {
      out.push_back(task.name + ": distribution " +
                    (a.distribute ? "dist" : "leader") + " -> " +
                    (b.distribute ? "dist" : "leader"));
    }
    if (a.proc != b.proc) {
      out.push_back(task.name + ": proc " + std::string(to_string(a.proc)) +
                    " -> " + std::string(to_string(b.proc)));
    }
    const std::size_t args =
        std::min(a.arg_memories.size(), b.arg_memories.size());
    for (std::size_t arg = 0; arg < args; ++arg) {
      if (a.arg_memories[arg] != b.arg_memories[arg]) {
        out.push_back(task.name + "/" +
                      graph.collection(task.args[arg].collection).name +
                      ": memory changed");
      }
    }
  }
  return out;
}

}  // namespace automap
