#include "src/io/text_io.hpp"

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "src/support/error.hpp"

namespace automap {

namespace {

/// Line-oriented tokenizer with positional error reporting.
class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(is) {}

  /// Next non-empty, non-comment line split into tokens; false at EOF.
  bool next(std::vector<std::string>& tokens) {
    std::string line;
    while (std::getline(is_, line)) {
      ++line_number_;
      // Strip comments.
      if (const auto hash = line.find('#'); hash != std::string::npos)
        line.resize(hash);
      std::istringstream ls(line);
      tokens.clear();
      std::string token;
      while (ls >> token) tokens.push_back(token);
      if (!tokens.empty()) return true;
    }
    return false;
  }

  [[noreturn]] void fail(const std::string& message) const {
    AM_REQUIRE(false,
               "line " + std::to_string(line_number_) + ": " + message);
    AM_UNREACHABLE("");
  }

  void expect(bool condition, const std::string& message) const {
    if (!condition) fail(message);
  }

  [[nodiscard]] double to_double(const std::string& s) const {
    try {
      std::size_t pos = 0;
      const double v = std::stod(s, &pos);
      expect(pos == s.size(), "trailing characters in number: " + s);
      return v;
    } catch (const std::logic_error&) {
      fail("expected a number, got: " + s);
    }
  }

  [[nodiscard]] long long to_int(const std::string& s) const {
    try {
      std::size_t pos = 0;
      const long long v = std::stoll(s, &pos);
      expect(pos == s.size(), "trailing characters in integer: " + s);
      return v;
    } catch (const std::logic_error&) {
      fail("expected an integer, got: " + s);
    }
  }

 private:
  std::istream& is_;
  int line_number_ = 0;
};

const char* privilege_name(Privilege p) { return to_string(p); }

Privilege parse_privilege(const LineReader& reader, const std::string& s) {
  if (s == "RO") return Privilege::kReadOnly;
  if (s == "WO") return Privilege::kWriteOnly;
  if (s == "RW") return Privilege::kReadWrite;
  if (s == "RD") return Privilege::kReduce;
  reader.fail("unknown privilege: " + s);
}

void write_rect(std::ostream& os, const Rect& r) {
  os << r.dims;
  for (int d = 0; d < r.dims; ++d) os << " " << r.lo[d] << " " << r.hi[d];
}

Rect read_rect(const LineReader& reader,
               const std::vector<std::string>& tokens, std::size_t& cursor) {
  reader.expect(cursor < tokens.size(), "missing rect dimensionality");
  const int dims = static_cast<int>(reader.to_int(tokens[cursor++]));
  reader.expect(dims >= 1 && dims <= Rect::kMaxDims, "bad rect dims");
  Rect r;
  r.dims = dims;
  for (int d = 0; d < dims; ++d) {
    reader.expect(cursor + 1 < tokens.size(), "truncated rect bounds");
    r.lo[d] = reader.to_int(tokens[cursor++]);
    r.hi[d] = reader.to_int(tokens[cursor++]);
  }
  return r;
}

}  // namespace

// --- machine --------------------------------------------------------------

namespace {
/// Round-trip-exact double formatting; restores stream precision on exit.
class PrecisionGuard {
 public:
  explicit PrecisionGuard(std::ostream& os)
      : os_(os), saved_(os.precision(17)) {}
  ~PrecisionGuard() { os_.precision(saved_); }
  PrecisionGuard(const PrecisionGuard&) = delete;
  PrecisionGuard& operator=(const PrecisionGuard&) = delete;

 private:
  std::ostream& os_;
  std::streamsize saved_;
};
}  // namespace

void write_machine(std::ostream& os, const MachineModel& machine) {
  const PrecisionGuard guard(os);
  os << "machine " << machine.name() << " nodes " << machine.num_nodes()
     << "\n";
  os << "runtime_overhead " << machine.runtime_overhead() << "\n";
  if (machine.restart_overhead() > 0.0)
    os << "restart_overhead " << machine.restart_overhead() << "\n";
  for (const ProcKind k : machine.proc_kinds()) {
    const ProcGroup& g = machine.proc_group(k);
    os << "proc " << to_string(k) << " count " << g.count_per_node
       << " speed " << g.speed << " launch_overhead " << g.launch_overhead_s
       << " watts " << g.watts_busy << "\n";
  }
  for (const MemKind k : machine.mem_kinds()) {
    const MemGroup& g = machine.mem_group(k);
    os << "mem " << to_string(k) << " count " << g.count_per_node
       << " capacity " << g.capacity_bytes << "\n";
  }
  for (const ProcKind p : machine.proc_kinds()) {
    for (const MemKind m : machine.mem_kinds()) {
      if (!machine.addressable(p, m)) continue;
      const Affinity a = machine.affinity(p, m);
      os << "affinity " << to_string(p) << " " << to_string(m)
         << " bandwidth " << a.bandwidth_bytes_per_s << " latency "
         << a.latency_s << "\n";
    }
  }
  const auto mems = machine.mem_kinds();
  for (std::size_t i = 0; i < mems.size(); ++i) {
    for (std::size_t j = i; j < mems.size(); ++j) {
      for (const bool inter : {false, true}) {
        if (machine.num_nodes() == 1 && inter) continue;
        const Channel c = machine.channel(mems[i], mems[j], inter);
        os << "channel " << to_string(mems[i]) << " " << to_string(mems[j])
           << " " << (inter ? "inter" : "intra") << " bandwidth "
           << c.bandwidth_bytes_per_s << " latency " << c.latency_s << "\n";
      }
    }
  }
  if (machine.mems_per_node(MemKind::kSystem) > 1) {
    const Channel c = machine.cross_socket_channel();
    os << "cross_socket bandwidth " << c.bandwidth_bytes_per_s << " latency "
       << c.latency_s << "\n";
  }
}

MachineModel read_machine(std::istream& is) {
  LineReader reader(is);
  std::vector<std::string> t;

  reader.expect(reader.next(t), "empty machine file");
  reader.expect(t.size() == 4 && t[0] == "machine" && t[2] == "nodes",
                "expected: machine <name> nodes <count>");
  MachineModel machine(t[1], static_cast<int>(reader.to_int(t[3])));

  while (reader.next(t)) {
    if (t[0] == "runtime_overhead") {
      reader.expect(t.size() == 2, "runtime_overhead <seconds>");
      machine.set_runtime_overhead(reader.to_double(t[1]));
    } else if (t[0] == "restart_overhead") {
      // Optional (absent in machine files written before the fault layer).
      reader.expect(t.size() == 2, "restart_overhead <seconds>");
      machine.set_restart_overhead(reader.to_double(t[1]));
    } else if (t[0] == "proc") {
      reader.expect((t.size() == 8 || t.size() == 10) && t[2] == "count" &&
                        t[4] == "speed" && t[6] == "launch_overhead",
                    "proc <kind> count <n> speed <s> launch_overhead <s> "
                    "[watts <w>]");
      ProcGroup group{.kind = parse_proc_kind(t[1]),
                      .count_per_node = static_cast<int>(reader.to_int(t[3])),
                      .speed = reader.to_double(t[5]),
                      .launch_overhead_s = reader.to_double(t[7])};
      if (t.size() == 10) {
        reader.expect(t[8] == "watts", "expected: watts <w>");
        group.watts_busy = reader.to_double(t[9]);
      }
      machine.add_proc_group(group);
    } else if (t[0] == "mem") {
      reader.expect(t.size() == 6 && t[2] == "count" && t[4] == "capacity",
                    "mem <kind> count <n> capacity <bytes>");
      machine.add_mem_group(
          {.kind = parse_mem_kind(t[1]),
           .count_per_node = static_cast<int>(reader.to_int(t[3])),
           .capacity_bytes =
               static_cast<std::uint64_t>(reader.to_int(t[5]))});
    } else if (t[0] == "affinity") {
      reader.expect(t.size() == 7 && t[3] == "bandwidth" && t[5] == "latency",
                    "affinity <proc> <mem> bandwidth <b> latency <l>");
      machine.set_affinity(parse_proc_kind(t[1]), parse_mem_kind(t[2]),
                           {reader.to_double(t[4]), reader.to_double(t[6])});
    } else if (t[0] == "channel") {
      reader.expect(t.size() == 8 && t[4] == "bandwidth" && t[6] == "latency",
                    "channel <mem> <mem> <intra|inter> bandwidth <b> "
                    "latency <l>");
      reader.expect(t[3] == "intra" || t[3] == "inter",
                    "channel scope must be intra or inter");
      machine.set_channel(parse_mem_kind(t[1]), parse_mem_kind(t[2]),
                          t[3] == "inter",
                          {reader.to_double(t[5]), reader.to_double(t[7])});
    } else if (t[0] == "cross_socket") {
      reader.expect(t.size() == 5 && t[1] == "bandwidth" && t[3] == "latency",
                    "cross_socket bandwidth <b> latency <l>");
      machine.set_cross_socket_channel(
          {reader.to_double(t[2]), reader.to_double(t[4])});
    } else {
      reader.fail("unknown machine directive: " + t[0]);
    }
  }
  machine.validate();
  return machine;
}

// --- task graph -------------------------------------------------------------

void write_task_graph(std::ostream& os, const TaskGraph& graph) {
  const PrecisionGuard guard(os);
  os << "taskgraph regions " << graph.num_regions() << " collections "
     << graph.num_collections() << " tasks " << graph.num_tasks()
     << " edges " << graph.num_edges() << "\n";
  for (const Region& r : graph.regions()) {
    os << "region " << r.name << " elem_bytes " << r.bytes_per_element
       << " bounds ";
    write_rect(os, r.bounds);
    os << "\n";
  }
  for (const Collection& c : graph.collections()) {
    os << "collection " << c.name << " region " << c.region.value()
       << " rect ";
    write_rect(os, c.rect);
    os << "\n";
  }
  for (const GroupTask& task : graph.tasks()) {
    os << "task " << task.name << " points " << task.num_points << " cpu "
       << task.cost.cpu_seconds_per_point << " gpu "
       << task.cost.gpu_seconds_per_point << "\n";
    for (const CollectionUse& use : task.args) {
      os << "  arg " << use.collection.value() << " "
         << privilege_name(use.privilege) << " " << use.access_fraction
         << "\n";
    }
  }
  for (const DependenceEdge& e : graph.edges()) {
    os << "edge " << e.producer.value() << " " << e.consumer.value() << " "
       << e.producer_collection.value() << " " << e.consumer_collection.value()
       << " bytes " << e.bytes << " cross " << (e.cross_iteration ? 1 : 0)
       << " fraction " << e.internode_fraction << " data "
       << (e.carries_data ? 1 : 0) << "\n";
  }
}

TaskGraph read_task_graph(std::istream& is) {
  LineReader reader(is);
  std::vector<std::string> t;
  TaskGraph graph;

  reader.expect(reader.next(t), "empty task graph file");
  reader.expect(!t.empty() && t[0] == "taskgraph",
                "expected a taskgraph header");

  std::optional<TaskId> current_task;
  while (reader.next(t)) {
    if (t[0] == "region") {
      reader.expect(t.size() >= 6 && t[2] == "elem_bytes" && t[4] == "bounds",
                    "region <name> elem_bytes <n> bounds <rect>");
      std::size_t cursor = 5;
      const Rect bounds = read_rect(reader, t, cursor);
      graph.add_region(t[1], bounds,
                       static_cast<std::uint64_t>(reader.to_int(t[3])));
    } else if (t[0] == "collection") {
      reader.expect(t.size() >= 6 && t[2] == "region" && t[4] == "rect",
                    "collection <name> region <id> rect <rect>");
      std::size_t cursor = 5;
      const Rect rect = read_rect(reader, t, cursor);
      graph.add_collection(RegionId(reader.to_int(t[3])), t[1], rect);
    } else if (t[0] == "task") {
      reader.expect(t.size() == 8 && t[2] == "points" && t[4] == "cpu" &&
                        t[6] == "gpu",
                    "task <name> points <n> cpu <s> gpu <s>");
      current_task = graph.add_task(
          t[1], static_cast<int>(reader.to_int(t[3])),
          {.cpu_seconds_per_point = reader.to_double(t[5]),
           .gpu_seconds_per_point = reader.to_double(t[7])},
          {});
    } else if (t[0] == "arg") {
      reader.expect(current_task.has_value(), "arg before any task");
      reader.expect(t.size() == 4, "arg <collection id> <priv> <fraction>");
      // Tasks are immutable once added; rebuild with the extra argument by
      // mutating through a fresh add is not possible, so args are parsed
      // into the task via the dedicated hook below.
      graph.append_task_arg(*current_task,
                            {CollectionId(reader.to_int(t[1])),
                             parse_privilege(reader, t[2]),
                             reader.to_double(t[3])});
    } else if (t[0] == "edge") {
      reader.expect(t.size() == 13 && t[5] == "bytes" && t[7] == "cross" &&
                        t[9] == "fraction" && t[11] == "data",
                    "edge <p> <c> <pcol> <ccol> bytes <n> cross <0|1> "
                    "fraction <f> data <0|1>");
      graph.add_dependence(
          {.producer = TaskId(reader.to_int(t[1])),
           .consumer = TaskId(reader.to_int(t[2])),
           .producer_collection = CollectionId(reader.to_int(t[3])),
           .consumer_collection = CollectionId(reader.to_int(t[4])),
           .bytes = static_cast<std::uint64_t>(reader.to_int(t[6])),
           .cross_iteration = reader.to_int(t[8]) != 0,
           .internode_fraction = reader.to_double(t[10]),
           .carries_data = reader.to_int(t[12]) != 0});
    } else {
      reader.fail("unknown task graph directive: " + t[0]);
    }
  }
  graph.validate();
  return graph;
}

// --- string/file helpers -----------------------------------------------------

std::string machine_to_string(const MachineModel& machine) {
  std::ostringstream os;
  write_machine(os, machine);
  return os.str();
}

MachineModel machine_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_machine(is);
}

std::string task_graph_to_string(const TaskGraph& graph) {
  std::ostringstream os;
  write_task_graph(os, graph);
  return os.str();
}

TaskGraph task_graph_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_task_graph(is);
}

void save_text(const std::string& path, const std::string& text) {
  std::ofstream os(path);
  AM_REQUIRE(os.good(), "cannot open for writing: " + path);
  os << text;
  AM_REQUIRE(os.good(), "write failed: " + path);
}

std::string load_text(const std::string& path) {
  std::ifstream is(path);
  AM_REQUIRE(is.good(), "cannot open for reading: " + path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void require_writable_path(const std::string& path) {
  AM_REQUIRE(!path.empty(), "output path is empty");
  // Append mode probes writability without truncating an existing file.
  const bool existed = static_cast<bool>(std::ifstream(path));
  {
    std::ofstream os(path, std::ios::app);
    AM_REQUIRE(os.good(), "cannot write output file: " + path +
                              " (missing directory or no permission?)");
  }
  if (!existed) std::remove(path.c_str());
}

void save_machine(const std::string& path, const MachineModel& machine) {
  save_text(path, machine_to_string(machine));
}

MachineModel load_machine(const std::string& path) {
  return machine_from_string(load_text(path));
}

void save_task_graph(const std::string& path, const TaskGraph& graph) {
  save_text(path, task_graph_to_string(graph));
}

TaskGraph load_task_graph(const std::string& path) {
  return task_graph_from_string(load_text(path));
}

}  // namespace automap
