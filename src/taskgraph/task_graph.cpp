#include "src/taskgraph/task_graph.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

#include "src/support/error.hpp"
#include "src/support/format.hpp"

namespace automap {

const char* to_string(Privilege p) {
  switch (p) {
    case Privilege::kReadOnly:
      return "RO";
    case Privilege::kWriteOnly:
      return "WO";
    case Privilege::kReadWrite:
      return "RW";
    case Privilege::kReduce:
      return "RD";
  }
  AM_UNREACHABLE("bad Privilege");
}

RegionId TaskGraph::add_region(std::string name, Rect bounds,
                               std::uint64_t bytes_per_element) {
  AM_REQUIRE(!bounds.empty(), "region bounds must be non-empty");
  AM_REQUIRE(bytes_per_element > 0, "bytes_per_element must be positive");
  const RegionId id(regions_.size());
  regions_.push_back(
      {.id = id, .name = std::move(name), .bounds = bounds,
       .bytes_per_element = bytes_per_element});
  return id;
}

CollectionId TaskGraph::add_collection(RegionId region, std::string name,
                                       Rect rect) {
  AM_REQUIRE(region.index() < regions_.size(), "unknown region");
  AM_REQUIRE(!rect.empty(), "collection rectangle must be non-empty");
  AM_REQUIRE(regions_[region.index()].bounds.contains(rect),
             "collection must lie inside its region: " + name);
  const CollectionId id(collections_.size());
  collections_.push_back(
      {.id = id, .region = region, .name = std::move(name), .rect = rect});
  return id;
}

TaskId TaskGraph::add_task(std::string name, int num_points, TaskCost cost,
                           std::vector<CollectionUse> args) {
  AM_REQUIRE(num_points > 0, "group task needs at least one point");
  AM_REQUIRE(cost.cpu_seconds_per_point > 0.0,
             "every task needs a CPU variant with positive cost");
  for (const auto& use : args) {
    AM_REQUIRE(use.collection.index() < collections_.size(),
               "task argument references unknown collection");
    AM_REQUIRE(use.access_fraction > 0.0 && use.access_fraction <= 1.0,
               "access_fraction must be in (0, 1]");
  }
  const TaskId id(tasks_.size());
  tasks_.push_back({.id = id,
                    .name = std::move(name),
                    .num_points = num_points,
                    .cost = cost,
                    .args = std::move(args)});
  return id;
}

void TaskGraph::append_task_arg(TaskId task, CollectionUse use) {
  AM_REQUIRE(task.index() < tasks_.size(), "unknown task");
  AM_REQUIRE(use.collection.index() < collections_.size(),
             "task argument references unknown collection");
  AM_REQUIRE(use.access_fraction > 0.0 && use.access_fraction <= 1.0,
             "access_fraction must be in (0, 1]");
  tasks_[task.index()].args.push_back(use);
}

void TaskGraph::add_dependence(DependenceEdge edge) {
  AM_REQUIRE(edge.producer.index() < tasks_.size(), "unknown producer");
  AM_REQUIRE(edge.consumer.index() < tasks_.size(), "unknown consumer");
  AM_REQUIRE(edge.producer_collection.index() < collections_.size(),
             "unknown producer collection");
  AM_REQUIRE(edge.consumer_collection.index() < collections_.size(),
             "unknown consumer collection");
  AM_REQUIRE(edge.internode_fraction >= 0.0 && edge.internode_fraction <= 1.0,
             "internode_fraction must be in [0, 1]");
  edges_.push_back(edge);
}

std::size_t TaskGraph::num_collection_args() const {
  std::size_t n = 0;
  for (const auto& t : tasks_) n += t.args.size();
  return n;
}

const Region& TaskGraph::region(RegionId id) const {
  AM_REQUIRE(id.index() < regions_.size(), "unknown region");
  return regions_[id.index()];
}

const Collection& TaskGraph::collection(CollectionId id) const {
  AM_REQUIRE(id.index() < collections_.size(), "unknown collection");
  return collections_[id.index()];
}

const GroupTask& TaskGraph::task(TaskId id) const {
  AM_REQUIRE(id.index() < tasks_.size(), "unknown task");
  return tasks_[id.index()];
}

std::uint64_t TaskGraph::collection_bytes(CollectionId id) const {
  const Collection& c = collection(id);
  return c.volume() * region(c.region).bytes_per_element;
}

std::vector<const DependenceEdge*> TaskGraph::incoming(TaskId id) const {
  std::vector<const DependenceEdge*> out;
  for (const auto& e : edges_)
    if (e.consumer == id) out.push_back(&e);
  return out;
}

std::vector<const DependenceEdge*> TaskGraph::outgoing(TaskId id) const {
  std::vector<const DependenceEdge*> out;
  for (const auto& e : edges_)
    if (e.producer == id) out.push_back(&e);
  return out;
}

std::vector<TaskId> TaskGraph::topological_order() const {
  std::vector<std::size_t> in_degree(tasks_.size(), 0);
  for (const auto& e : edges_)
    if (!e.cross_iteration) ++in_degree[e.consumer.index()];

  std::queue<std::size_t> ready;
  for (std::size_t i = 0; i < tasks_.size(); ++i)
    if (in_degree[i] == 0) ready.push(i);

  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  while (!ready.empty()) {
    const std::size_t i = ready.front();
    ready.pop();
    order.push_back(TaskId(i));
    for (const auto& e : edges_) {
      if (e.cross_iteration || e.producer.index() != i) continue;
      if (--in_degree[e.consumer.index()] == 0)
        ready.push(e.consumer.index());
    }
  }
  AM_CHECK(order.size() == tasks_.size(),
           "same-iteration dependence graph has a cycle");
  return order;
}

void TaskGraph::validate() const {
  for (const auto& e : edges_) {
    AM_CHECK(!e.carries_data || e.bytes > 0,
             "data-carrying dependence edge with zero bytes");
  }
  (void)topological_order();  // throws on cycles
}

std::vector<OverlapEdge> TaskGraph::build_overlap_graph() const {
  std::vector<OverlapEdge> out;
  for (std::size_t i = 0; i < collections_.size(); ++i) {
    for (std::size_t j = i + 1; j < collections_.size(); ++j) {
      const std::uint64_t w =
          overlap_bytes(CollectionId(i), CollectionId(j));
      if (w > 0)
        out.push_back({CollectionId(i), CollectionId(j), w});
    }
  }
  return out;
}

std::uint64_t TaskGraph::overlap_bytes(CollectionId a, CollectionId b) const {
  const Collection& ca = collection(a);
  const Collection& cb = collection(b);
  if (ca.region != cb.region) return 0;
  const Rect inter = ca.rect.intersect(cb.rect);
  return inter.volume() * region(ca.region).bytes_per_element;
}

std::string TaskGraph::describe() const {
  std::ostringstream os;
  os << "task graph: " << tasks_.size() << " group tasks, "
     << collections_.size() << " collections, " << num_collection_args()
     << " collection args, " << edges_.size() << " dependences\n";
  for (const auto& t : tasks_) {
    os << "  task " << t.id << " " << t.name << " x" << t.num_points << " (";
    for (std::size_t i = 0; i < t.args.size(); ++i) {
      if (i > 0) os << ", ";
      const auto& use = t.args[i];
      os << collection(use.collection).name << ":"
         << to_string(use.privilege);
    }
    os << ")\n";
  }
  for (const auto& c : collections_) {
    os << "  collection " << c.id << " " << c.name << " "
       << format_bytes(collection_bytes(c.id))
       << " region=" << region(c.region).name << "\n";
  }
  return os.str();
}

}  // namespace automap
