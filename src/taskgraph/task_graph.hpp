#pragma once

// Task graph model (paper §2).
//
// A program is an acyclic dependence graph whose nodes are *group tasks*
// (sets of independent instances of the same task launched in one operation —
// individual tasks are groups of size one, §3.1) and whose edges are
// per-collection data dependences. Tasks name the *collections* they read and
// write; collections are rectangles over a region's index space, so two
// collections of the same region may overlap (e.g. halo regions), which is
// the structure CCD's co-location constraints exploit.

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/id.hpp"
#include "src/taskgraph/rect.hpp"

namespace automap {

enum class Privilege : std::uint8_t {
  kReadOnly,
  kWriteOnly,
  kReadWrite,
  kReduce,
};

[[nodiscard]] constexpr bool reads(Privilege p) {
  return p == Privilege::kReadOnly || p == Privilege::kReadWrite;
}
[[nodiscard]] constexpr bool writes(Privilege p) {
  return p != Privilege::kReadOnly;
}
[[nodiscard]] const char* to_string(Privilege p);

/// A named logical region; collections are sub-rectangles of a region and
/// only collections of the same region can overlap.
struct Region {
  RegionId id;
  std::string name;
  Rect bounds;
  std::uint64_t bytes_per_element = 8;
};

/// A collection: a task-visible view (sub-rectangle) of a region. Collection
/// *arguments* of tasks reference these by id; the paper's "collection
/// argument" count is the number of (task, collection) pairs.
struct Collection {
  CollectionId id;
  RegionId region;
  std::string name;
  Rect rect;

  [[nodiscard]] std::uint64_t volume() const { return rect.volume(); }
};

/// One collection argument of a task.
struct CollectionUse {
  CollectionId collection;
  Privilege privilege = Privilege::kReadOnly;
  /// Fraction of the collection's bytes the task actually touches per
  /// execution (e.g. a halo exchange touches only the boundary).
  double access_fraction = 1.0;
};

/// Per-processor-kind compute cost of one *point* of a group task, on a
/// reference-speed processor, excluding launch overhead and memory access
/// time (both are charged by the simulator from machine parameters).
struct TaskCost {
  double cpu_seconds_per_point = 0.0;
  /// Negative when the task has no GPU variant.
  double gpu_seconds_per_point = -1.0;

  [[nodiscard]] bool has_gpu_variant() const {
    return gpu_seconds_per_point >= 0.0;
  }
};

/// A group task: `num_points` independent instances launched together. All
/// points receive the same kind-level mapping (§3.2).
struct GroupTask {
  TaskId id;
  std::string name;
  int num_points = 1;
  TaskCost cost;
  std::vector<CollectionUse> args;
};

/// A data dependence between two group tasks through a (pair of overlapping)
/// collection(s). `bytes` is the overlap volume in bytes — the amount that
/// must move when producer and consumer map the data to different memories.
struct DependenceEdge {
  TaskId producer;
  TaskId consumer;
  CollectionId producer_collection;
  CollectionId consumer_collection;
  std::uint64_t bytes = 0;
  /// True when the consumer instance belongs to the *next* iteration of the
  /// application's main loop (loop-carried dependence).
  bool cross_iteration = false;
  /// Fraction of `bytes` that crosses node boundaries when both endpoint
  /// tasks are distributed *blocked* across nodes. Halo-exchange edges are
  /// ~1.0 for scattered placements (the overlap *is* the boundary data);
  /// bulk producer-consumer edges within a block are 0.0. Round-robin point
  /// placement inflates this (see TaskMapping::blocked).
  double internode_fraction = 0.0;
  /// False for pure ordering dependences (WAR/WAW): they serialize execution
  /// but move no data.
  bool carries_data = true;
};

/// Weighted edge of the induced collection overlap graph C (§4.2):
/// (c1, c2) in E iff c1 n c2 != {} with weight |c1 n c2| in bytes.
struct OverlapEdge {
  CollectionId a;
  CollectionId b;
  std::uint64_t weight_bytes = 0;
};

class TaskGraph {
 public:
  // --- construction -------------------------------------------------------

  RegionId add_region(std::string name, Rect bounds,
                      std::uint64_t bytes_per_element);
  CollectionId add_collection(RegionId region, std::string name, Rect rect);
  TaskId add_task(std::string name, int num_points, TaskCost cost,
                  std::vector<CollectionUse> args);
  /// Appends one collection argument to an existing task (used by the text
  /// deserializer, which streams arguments line by line).
  void append_task_arg(TaskId task, CollectionUse use);
  void add_dependence(DependenceEdge edge);

  /// Checks referential integrity and acyclicity of the same-iteration
  /// subgraph. Throws Error when malformed.
  void validate() const;

  // --- access --------------------------------------------------------------

  [[nodiscard]] std::size_t num_regions() const { return regions_.size(); }
  [[nodiscard]] std::size_t num_collections() const {
    return collections_.size();
  }
  [[nodiscard]] std::size_t num_tasks() const { return tasks_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }
  /// Total number of collection arguments over all tasks — the paper's
  /// "Collection Arguments" column in Fig. 5.
  [[nodiscard]] std::size_t num_collection_args() const;

  [[nodiscard]] const Region& region(RegionId id) const;
  [[nodiscard]] const Collection& collection(CollectionId id) const;
  [[nodiscard]] const GroupTask& task(TaskId id) const;
  [[nodiscard]] const std::vector<Region>& regions() const { return regions_; }
  [[nodiscard]] const std::vector<Collection>& collections() const {
    return collections_;
  }
  [[nodiscard]] const std::vector<GroupTask>& tasks() const { return tasks_; }
  [[nodiscard]] const std::vector<DependenceEdge>& edges() const {
    return edges_;
  }

  /// Bytes of one collection (volume x element size of its region).
  [[nodiscard]] std::uint64_t collection_bytes(CollectionId id) const;

  /// Incoming dependences of a task (same-iteration and cross-iteration).
  [[nodiscard]] std::vector<const DependenceEdge*> incoming(TaskId id) const;
  [[nodiscard]] std::vector<const DependenceEdge*> outgoing(TaskId id) const;

  /// Topological order of the same-iteration subgraph.
  [[nodiscard]] std::vector<TaskId> topological_order() const;

  /// Builds the induced collection overlap graph C (§4.2). Edges are
  /// symmetric and listed once with a < b.
  [[nodiscard]] std::vector<OverlapEdge> build_overlap_graph() const;

  /// Overlap in bytes of two collections (0 for different regions).
  [[nodiscard]] std::uint64_t overlap_bytes(CollectionId a,
                                            CollectionId b) const;

  /// Multi-line human-readable dump (used by examples and debugging).
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<Region> regions_;
  std::vector<Collection> collections_;
  std::vector<GroupTask> tasks_;
  std::vector<DependenceEdge> edges_;
};

}  // namespace automap
