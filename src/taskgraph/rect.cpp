#include "src/taskgraph/rect.hpp"

#include <algorithm>

#include "src/support/error.hpp"

namespace automap {

Rect Rect::line(std::int64_t l, std::int64_t h) {
  Rect r;
  r.dims = 1;
  r.lo = {l, 0, 0};
  r.hi = {h, 0, 0};
  return r;
}

Rect Rect::plane(std::int64_t lx, std::int64_t hx, std::int64_t ly,
                 std::int64_t hy) {
  Rect r;
  r.dims = 2;
  r.lo = {lx, ly, 0};
  r.hi = {hx, hy, 0};
  return r;
}

Rect Rect::box(std::int64_t lx, std::int64_t hx, std::int64_t ly,
               std::int64_t hy, std::int64_t lz, std::int64_t hz) {
  Rect r;
  r.dims = 3;
  r.lo = {lx, ly, lz};
  r.hi = {hx, hy, hz};
  return r;
}

bool Rect::empty() const {
  for (int d = 0; d < dims; ++d)
    if (lo[d] > hi[d]) return true;
  return false;
}

std::uint64_t Rect::volume() const {
  if (empty()) return 0;
  std::uint64_t v = 1;
  for (int d = 0; d < dims; ++d)
    v *= static_cast<std::uint64_t>(hi[d] - lo[d] + 1);
  return v;
}

Rect Rect::intersect(const Rect& other) const {
  AM_REQUIRE(dims == other.dims,
             "intersect requires equal dimensionality");
  Rect out;
  out.dims = dims;
  for (int d = 0; d < dims; ++d) {
    out.lo[d] = std::max(lo[d], other.lo[d]);
    out.hi[d] = std::min(hi[d], other.hi[d]);
  }
  return out;
}

bool Rect::overlaps(const Rect& other) const {
  return dims == other.dims && !intersect(other).empty();
}

bool Rect::contains(const Rect& other) const {
  if (dims != other.dims || other.empty()) return false;
  for (int d = 0; d < dims; ++d)
    if (other.lo[d] < lo[d] || other.hi[d] > hi[d]) return false;
  return true;
}

bool Rect::operator==(const Rect& other) const {
  if (dims != other.dims) return false;
  for (int d = 0; d < dims; ++d)
    if (lo[d] != other.lo[d] || hi[d] != other.hi[d]) return false;
  return true;
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  os << "[";
  for (int d = 0; d < r.dims; ++d) {
    if (d > 0) os << " x ";
    os << r.lo[d] << ".." << r.hi[d];
  }
  return os << "]";
}

}  // namespace automap
