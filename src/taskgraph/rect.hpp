#pragma once

// Dense multi-dimensional rectangles.
//
// Collections are (sub-)rectangles of a region's index space; collection
// overlap — the quantity CCD's co-location constraints are built from — is
// the volume of the rectangle intersection times the element size.

#include <array>
#include <cstdint>
#include <ostream>

namespace automap {

/// Closed integer rectangle in up to 3 dimensions: [lo[d], hi[d]] per dim.
/// An empty rectangle is represented by any dimension with lo > hi.
struct Rect {
  static constexpr int kMaxDims = 3;

  int dims = 1;
  std::array<std::int64_t, kMaxDims> lo{{0, 0, 0}};
  std::array<std::int64_t, kMaxDims> hi{{-1, 0, 0}};

  /// 1-D rectangle [l, h].
  [[nodiscard]] static Rect line(std::int64_t l, std::int64_t h);
  /// 2-D rectangle [lx, hx] x [ly, hy].
  [[nodiscard]] static Rect plane(std::int64_t lx, std::int64_t hx,
                                  std::int64_t ly, std::int64_t hy);
  /// 3-D rectangle.
  [[nodiscard]] static Rect box(std::int64_t lx, std::int64_t hx,
                                std::int64_t ly, std::int64_t hy,
                                std::int64_t lz, std::int64_t hz);

  [[nodiscard]] bool empty() const;
  /// Number of points; 0 when empty.
  [[nodiscard]] std::uint64_t volume() const;
  /// Component-wise intersection (same dimensionality required).
  [[nodiscard]] Rect intersect(const Rect& other) const;
  /// True when the rectangles share at least one point.
  [[nodiscard]] bool overlaps(const Rect& other) const;
  /// True when other is fully contained in *this.
  [[nodiscard]] bool contains(const Rect& other) const;

  bool operator==(const Rect& other) const;
};

std::ostream& operator<<(std::ostream& os, const Rect& r);

}  // namespace automap
