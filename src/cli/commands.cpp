#include "src/cli/commands.hpp"

#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "src/apps/registry.hpp"
#include "src/automap/automap.hpp"
#include "src/io/text_io.hpp"
#include "src/machine/machine.hpp"
#include "src/report/analysis.hpp"
#include "src/report/codegen.hpp"
#include "src/report/explain.hpp"
#include "src/report/journal.hpp"
#include "src/report/profile.hpp"
#include "src/report/visualize.hpp"
#include "src/runtime/mapper.hpp"
#include "src/search/algorithms.hpp"
#include "src/sim/simulator.hpp"
#include "src/support/durable.hpp"
#include "src/support/error.hpp"
#include "src/support/format.hpp"
#include "src/support/metrics.hpp"

namespace automap::cli {

namespace {

/// Reruns `mapping` noise-free with trace recording and emits the requested
/// observability outputs: the profile digest to stdout and/or Chrome-trace
/// JSON to `trace_json_path`.
void emit_observability(const MachineModel& machine, const TaskGraph& graph,
                        const Mapping& mapping, bool profile,
                        const std::string& trace_json_path,
                        const std::vector<TrajectoryPoint>& trajectory = {}) {
  if (!profile && trace_json_path.empty()) return;
  Simulator sim(machine, graph,
                {.iterations = 10, .noise_sigma = 0.0, .record_trace = true});
  const ExecutionReport report = sim.run(mapping, 1);
  AM_REQUIRE(report.ok, "mapping failed to execute: " + report.failure);
  if (profile) {
    std::cout << "\n" << render_profile(graph, compute_profile(graph, report));
  }
  if (!trace_json_path.empty()) {
    save_text(trace_json_path, render_chrome_trace(report, trajectory));
    std::cout << "\nwrote " << trace_json_path
              << " (open in a Chrome-tracing / Perfetto viewer)\n";
  }
}

int cmd_export_machine(const Args& args) {
  const int nodes = std::stoi(args.pos(1));
  const MachineModel machine =
      args.pos(0) == "lassen"        ? make_lassen(nodes)
      : args.pos(0) == "cpu-cluster" ? make_cpu_cluster(nodes)
                                     : make_shepard(nodes);
  save_machine(args.pos(2), machine);
  std::cout << "wrote " << args.pos(2) << "\n" << machine.describe();
  return 0;
}

int cmd_export_app(const Args& args) {
  const std::string& name = args.pos(0);
  AM_REQUIRE(is_app_name(name), "unknown application: " + name);
  const int nodes = std::stoi(args.pos(1));
  const int step = std::stoi(args.pos(2));
  const BenchmarkApp app = make_app_by_name(name, nodes, step);
  save_task_graph(args.pos(3), app.graph);
  std::cout << "wrote " << args.pos(3) << " (" << app.name << " " << app.input
            << ": " << app.graph.num_tasks() << " tasks, "
            << app.graph.num_collection_args() << " collection args)\n";
  return 0;
}

int cmd_describe(const Args& args) {
  const MachineModel machine = load_machine(args.pos(0));
  const TaskGraph graph = load_task_graph(args.pos(1));
  std::cout << machine.describe() << "\n" << graph.describe();
  return 0;
}

int cmd_search(const Args& args) {
  const MachineModel machine = load_machine(args.pos(0));
  const TaskGraph graph = load_task_graph(args.pos(1));

  std::string algorithm_name = "ccd";
  SearchOptions options{.seed = 42};
  FaultModel faults;
  apply_search_flags(args, algorithm_name, options, faults);
  // 0 = one evaluation lane per hardware thread. Results are bit-identical
  // for every value; only wall-clock time changes.
  options.threads = args.int_or("--threads", options.threads);
  options.checkpoint_path = args.value_or("--checkpoint");

  if (args.has("--dump-options")) {
    // The canonical configuration this invocation would run, ready to be
    // fed back via --options or a service submit request.
    std::cout << search_options_to_json(options) << "\n";
    return 0;
  }

  const std::string out_path = args.value_or("-o");
  const std::string profiles_path = args.value_or("--profiles");
  const std::string trace_json_path = args.value_or("--trace-json");
  const std::string resume_path = args.value_or("--resume");
  const std::string journal_path = args.value_or("--journal");
  const std::string metrics_path = args.value_or("--metrics-out");
  const bool telemetry = args.has("--telemetry");
  const bool profile = args.has("--profile");

  // Every output path is validated before the search starts: a typo'd
  // directory costs milliseconds and one Error line here instead of a
  // finished search whose results cannot be written.
  for (const std::string* path :
       std::initializer_list<const std::string*>{
           &out_path, &profiles_path, &trace_json_path, &journal_path,
           &metrics_path, &options.checkpoint_path}) {
    if (!path->empty()) require_writable_path(*path);
  }

  if (!resume_path.empty()) {
    // Checkpoints carry a checksum trailer; verify before resuming so a
    // torn file (crash mid-write, partial copy) fails with one clear line
    // instead of a confusing parse error deep in the search.
    DurableLoad checkpoint = load_checksummed(resume_path);
    AM_REQUIRE(checkpoint.status != DurableLoad::Status::kMissing,
               "no checkpoint at " + resume_path);
    AM_REQUIRE(checkpoint.status == DurableLoad::Status::kOk,
               "checkpoint " + resume_path +
                   " is torn or corrupt (checksum trailer mismatch)");
    options.resume_state = std::move(checkpoint.payload);
    std::cout << "resuming from checkpoint " << resume_path << "\n";
  }

  if (!profiles_path.empty()) {
    // Resume from a previous search's profiles database if present.
    try {
      options.profiles_seed = load_text(profiles_path);
      std::cout << "seeded profiles database from " << profiles_path << "\n";
    } catch (const Error&) {
      // First run: the file does not exist yet.
    }
  }

  const SearchAlgorithmInfo* algorithm =
      find_search_algorithm(algorithm_name);
  if (algorithm == nullptr) {
    std::cerr << "unknown algorithm: " << algorithm_name << " (expected "
              << search_algorithm_names() << ")\n";
    return 2;
  }

  // Serializing the profiles database costs real time on long searches;
  // only pay for it when --profiles asked to save it.
  options.export_profiles_db = !profiles_path.empty();

  // Observability backends. The journal lives on this frame; the search
  // keeps only a pointer, and null pointers disable all emission. Raw
  // simulator run counters are thread-count-dependent (speculative pool
  // tails), so they are wired only into the final --metrics-out dump,
  // never into the journal.
  std::optional<Journal> journal;
  if (!journal_path.empty()) journal.emplace(journal_path);
  MetricsRegistry metrics;
  const bool want_metrics = journal.has_value() || !metrics_path.empty();
  options.journal = journal.has_value() ? &*journal : nullptr;
  options.metrics = want_metrics ? &metrics : nullptr;

  Simulator sim(machine, graph,
                {.faults = faults,
                 .metrics = metrics_path.empty() ? nullptr : &metrics});
  const SearchResult result = algorithm->run(sim, options);
  if (result.stats.degraded)
    std::cout << "warning: search degraded — finalist protocol was "
                 "unprofilable under the fault rate; reporting the "
                 "best-known incumbent\n";
  if (!profiles_path.empty()) save_text(profiles_path, result.profiles_db);
  std::cout << render_search_summary(result) << "\n\n"
            << result.best.describe(graph);
  if (!metrics_path.empty()) save_text(metrics_path, metrics.expose());
  if (telemetry)
    std::cout << "\n"
              << render_search_telemetry(result, journal_path, metrics_path);
  if (journal.has_value())
    std::cout << "\nwrote " << journal_path
              << " (inspect with: automap_cli explain / replay)\n";
  if (!metrics_path.empty())
    std::cout << (journal.has_value() ? "" : "\n") << "wrote " << metrics_path
              << " (Prometheus text format)\n";
  emit_observability(machine, graph, result.best, profile, trace_json_path,
                     result.trajectory);
  if (!out_path.empty()) {
    save_text(out_path, result.best.serialize());
    std::cout << "\nwrote " << out_path << "\n";
  }
  return 0;
}

int cmd_evaluate(const Args& args) {
  const MachineModel machine = load_machine(args.pos(0));
  const TaskGraph graph = load_task_graph(args.pos(1));
  const Mapping mapping = Mapping::parse(load_text(args.pos(2)), graph);
  const int repeats = args.int_or("--repeats", 31);
  const bool profile = args.has("--profile");
  const std::string trace_json_path = args.value_or("--trace-json");

  Simulator sim(machine, graph, {});
  const double mean = measure_mapping(sim, mapping, repeats, 1);
  std::cout << "mean over " << repeats
            << " runs: " << format_seconds(mean) << "\n";

  DefaultMapper dm;
  const double def =
      measure_mapping(sim, dm.map_all(graph, machine), repeats, 1);
  std::cout << "default mapper: " << format_seconds(def) << " ("
            << format_speedup(def / mean) << " speedup)\n";
  emit_observability(machine, graph, mapping, profile, trace_json_path);
  return 0;
}

int cmd_explain(const Args& args) {
  const TaskGraph graph = load_task_graph(args.pos(0));
  std::cout << render_explain(graph, load_text(args.pos(1)));
  return 0;
}

int cmd_replay(const Args& args) {
  const MachineModel machine = load_machine(args.pos(0));
  const TaskGraph graph = load_task_graph(args.pos(1));
  const std::string journal_text = load_text(args.pos(2));
  const ReplayOutcome outcome = replay_journal(machine, graph, journal_text,
                                               args.int_or("--threads", 1));
  std::cout << outcome.rendering;
  return outcome.drift ? 1 : 0;
}

int cmd_visualize(const Args& args) {
  const MachineModel machine = load_machine(args.pos(0));
  const TaskGraph graph = load_task_graph(args.pos(1));
  const Mapping mapping = Mapping::parse(load_text(args.pos(2)), graph);
  const std::string dot_path = args.value_or("--dot");
  const std::string trace_path = args.value_or("--trace");

  std::cout << render_mapping(graph, mapping);
  if (!dot_path.empty()) {
    save_text(dot_path, render_mapping_dot(graph, mapping));
    std::cout << "\nwrote " << dot_path << " (render with: dot -Tsvg)\n";
  }
  if (!trace_path.empty()) {
    Simulator sim(machine, graph,
                  {.iterations = 10, .noise_sigma = 0.0, .record_trace = true});
    const ExecutionReport report = sim.run(mapping, 1);
    AM_REQUIRE(report.ok, "mapping failed to execute: " + report.failure);
    save_text(trace_path, render_chrome_trace(report));
    std::cout << "wrote " << trace_path
              << " (open in a Chrome-tracing / Perfetto viewer)\n";
  }
  return 0;
}

int cmd_codegen(const Args& args) {
  const TaskGraph graph = load_task_graph(args.pos(0));
  const Mapping mapping = Mapping::parse(load_text(args.pos(1)), graph);
  save_text(args.pos(3), generate_mapper_source(graph, mapping, args.pos(2)));
  std::cout << "wrote " << args.pos(3) << " (class " << args.pos(2) << ")\n";
  return 0;
}

int cmd_validate(const Args& args) {
  const MachineModel machine = load_machine(args.pos(0));
  const TaskGraph graph = load_task_graph(args.pos(1));
  const Mapping mapping = Mapping::parse(load_text(args.pos(2)), graph);

  const auto violations = mapping.violations(graph, machine);
  for (const auto& v : violations) std::cout << "constraint: " << v << "\n";
  if (!violations.empty()) return 1;

  // Capacity dry run: detect out-of-memory without timing anything.
  Simulator sim(machine, graph, {.iterations = 1, .noise_sigma = 0.0});
  const ExecutionReport report = sim.run(mapping, 1);
  if (!report.ok) {
    std::cout << "capacity: " << report.failure << "\n";
    return 1;
  }
  std::cout << "mapping is valid and executable; peak footprints:\n";
  for (const auto& fp : report.footprints) {
    std::cout << "  " << to_string(fp.kind) << ": "
              << format_bytes(fp.peak_instance_bytes) << " / "
              << format_bytes(fp.capacity_bytes) << " per allocation\n";
  }
  return 0;
}

}  // namespace

std::vector<FlagSpec> search_option_flags() {
  return {
      {"--algorithm", "NAME", "search algorithm (" +
                                  std::string(search_algorithm_names()) +
                                  "; default ccd)"},
      {"--options", "FILE", "canonical SearchOptions JSON to start from "
                            "(individual flags override it)"},
      {"--rotations", "N", "CCD/CD rotations (default 5)"},
      {"--repeats", "N", "runs per candidate (default 7)"},
      {"--budget", "S", "simulated search budget in seconds "
                        "(default unlimited)"},
      {"--seed", "N", "search seed (default 42)"},
      {"--no-prune", "", "disable incumbent-bounded candidate pruning "
                         "(results are bit-identical either way)"},
      {"--fallbacks", "", "enable §3.1 memory priority lists"},
      {"--retries", "N", "transient-fault retries per repeat (default 2)"},
      {"--quarantine", "K", "quarantine after K consecutive lost repeats"},
      {"--backoff", "S", "retry backoff quantum (default: machine restart "
                         "overhead)"},
      {"--aggregate", "KIND", "repeat aggregation: mean|median|trimmed"},
      {"--fault-crash", "P", "per-run crash probability"},
      {"--fault-straggler", "P", "per-run straggler probability"},
      {"--fault-straggler-factor", "X", "straggler slowdown factor"},
      {"--fault-oom", "P", "per-run memory-pressure probability"},
      {"--fault-copy", "P", "per-copy fault probability"},
  };
}

void apply_search_flags(const Args& args, std::string& algorithm_name,
                        SearchOptions& options, FaultModel& faults) {
  if (args.has("--options"))
    options = search_options_from_json(load_text(args.value_or("--options")));
  algorithm_name = args.value_or("--algorithm", algorithm_name);
  options.rotations = args.int_or("--rotations", options.rotations);
  options.repeats = args.int_or("--repeats", options.repeats);
  options.time_budget_s = args.num_or("--budget", options.time_budget_s);
  options.seed = args.u64_or("--seed", options.seed);
  if (args.has("--no-prune")) options.prune_candidates = false;
  if (args.has("--fallbacks")) options.memory_fallbacks = true;
  options.resilience.max_retries =
      args.int_or("--retries", options.resilience.max_retries);
  options.resilience.quarantine_after =
      args.int_or("--quarantine", options.resilience.quarantine_after);
  options.resilience.retry_backoff_s =
      args.num_or("--backoff", options.resilience.retry_backoff_s);
  if (args.has("--aggregate")) {
    const std::string name = args.value_or("--aggregate");
    if (name == "mean") {
      options.resilience.aggregation = Aggregation::kMean;
    } else if (name == "median") {
      options.resilience.aggregation = Aggregation::kMedian;
    } else if (name == "trimmed") {
      options.resilience.aggregation = Aggregation::kTrimmedMean;
    } else {
      throw Error("unknown aggregation: " + name +
                  " (expected mean|median|trimmed)");
    }
  }
  faults.crash_prob = args.num_or("--fault-crash", faults.crash_prob);
  faults.straggler_prob =
      args.num_or("--fault-straggler", faults.straggler_prob);
  faults.straggler_factor =
      args.num_or("--fault-straggler-factor", faults.straggler_factor);
  faults.mem_pressure_prob =
      args.num_or("--fault-oom", faults.mem_pressure_prob);
  faults.copy_fault_prob = args.num_or("--fault-copy", faults.copy_fault_prob);
}

void register_core_commands(CommandRegistry& registry) {
  registry.add({.name = "export-machine",
                .positionals = "<shepard|lassen|cpu-cluster> <nodes> <out>",
                .summary = "write a machine-model file for a paper machine",
                .min_positional = 3,
                .max_positional = 3,
                .flags = {},
                .run = cmd_export_machine});
  registry.add({.name = "export-app",
                .positionals = "<app> <nodes> <step> <out>",
                .summary = "write a benchmark application's task graph",
                .min_positional = 4,
                .max_positional = 4,
                .flags = {},
                .run = cmd_export_app});
  registry.add({.name = "describe",
                .positionals = "<machine> <graph>",
                .summary = "print machine and task-graph structure",
                .min_positional = 2,
                .max_positional = 2,
                .flags = {},
                .run = cmd_describe});

  std::vector<FlagSpec> search_flags = search_option_flags();
  search_flags.insert(
      search_flags.end(),
      {{"--threads", "N", "evaluation lanes (0 = hardware threads; results "
                          "are bit-identical for every value)"},
       {"--dump-options", "", "print the canonical SearchOptions JSON and "
                              "exit without searching"},
       {"-o", "FILE", "write the best mapping"},
       {"--profiles", "FILE", "seed from / save the profiles database"},
       {"--trace-json", "FILE", "write a Chrome trace of the best mapping"},
       {"--telemetry", "", "print search telemetry digest"},
       {"--profile", "", "print the best mapping's execution profile"},
       {"--checkpoint", "FILE", "write periodic checkpoints"},
       {"--resume", "FILE", "resume from a checkpoint"},
       {"--journal", "FILE", "write the provenance journal (JSONL)"},
       {"--metrics-out", "FILE", "write Prometheus-format metrics"}});
  registry.add({.name = "search",
                .positionals = "<machine> <graph>",
                .summary = "offline mapping search (paper §3.3)",
                .min_positional = 2,
                .max_positional = 2,
                .flags = std::move(search_flags),
                .run = cmd_search});

  registry.add({.name = "evaluate",
                .positionals = "<machine> <graph> <mapping>",
                .summary = "measure a mapping against the default mapper",
                .min_positional = 3,
                .max_positional = 3,
                .flags = {{"--repeats", "N", "runs to average (default 31)"},
                          {"--profile", "", "print the execution profile"},
                          {"--trace-json", "FILE", "write a Chrome trace"}},
                .run = cmd_evaluate});
  registry.add({.name = "explain",
                .positionals = "<graph> <journal.jsonl>",
                .summary = "render per-decision provenance from a journal",
                .min_positional = 2,
                .max_positional = 2,
                .flags = {},
                .run = cmd_explain});
  registry.add({.name = "replay",
                .positionals = "<machine> <graph> <journal.jsonl>",
                .summary = "re-run a journaled search and report drift",
                .min_positional = 3,
                .max_positional = 3,
                .flags = {{"--threads", "N", "evaluation lanes for the "
                                             "re-run (default 1)"}},
                .run = cmd_replay});
  registry.add({.name = "visualize",
                .positionals = "<machine> <graph> <mapping>",
                .summary = "render a mapping (text, DOT, Chrome trace)",
                .min_positional = 3,
                .max_positional = 3,
                .flags = {{"--dot", "FILE", "write Graphviz DOT"},
                          {"--trace", "FILE", "write a Chrome trace"}},
                .run = cmd_visualize});
  registry.add({.name = "codegen",
                .positionals = "<graph> <mapping> <ClassName> <out.cpp>",
                .summary = "generate a C++ mapper class from a mapping",
                .min_positional = 4,
                .max_positional = 4,
                .flags = {},
                .run = cmd_codegen});
  registry.add({.name = "validate",
                .positionals = "<machine> <graph> <mapping>",
                .summary = "check constraints and memory capacity",
                .min_positional = 3,
                .max_positional = 3,
                .flags = {},
                .run = cmd_validate});
}

}  // namespace automap::cli
