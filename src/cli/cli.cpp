#include "src/cli/cli.hpp"

#include <iostream>
#include <sstream>

#include "src/support/error.hpp"

namespace automap::cli {

bool Args::has(const std::string& flag) const {
  for (const auto& [name, value] : flags_)
    if (name == flag) return true;
  return false;
}

std::string Args::value_or(const std::string& flag,
                           const std::string& fallback) const {
  for (const auto& [name, value] : flags_)
    if (name == flag) return value;
  return fallback;
}

int Args::int_or(const std::string& flag, int fallback) const {
  return has(flag) ? std::stoi(value_or(flag)) : fallback;
}

double Args::num_or(const std::string& flag, double fallback) const {
  return has(flag) ? std::stod(value_or(flag)) : fallback;
}

std::uint64_t Args::u64_or(const std::string& flag,
                           std::uint64_t fallback) const {
  return has(flag) ? std::stoull(value_or(flag)) : fallback;
}

void CommandRegistry::add(Command command) {
  commands_.push_back(std::move(command));
}

const Command* CommandRegistry::find(const std::string& name) const {
  for (const Command& command : commands_)
    if (command.name == name) return &command;
  return nullptr;
}

std::string CommandRegistry::render_usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " <command> [arguments]\n\ncommands:\n";
  std::size_t width = 0;
  for (const Command& command : commands_)
    width = std::max(width, command.name.size());
  for (const Command& command : commands_) {
    os << "  " << command.name
       << std::string(width - command.name.size() + 2, ' ')
       << command.summary << "\n";
  }
  os << "\nrun '" << program_
     << " help <command>' (or <command> --help) for flags\n";
  return os.str();
}

std::string CommandRegistry::render_help(const Command& command) const {
  std::ostringstream os;
  os << "usage: " << program_ << " " << command.name;
  if (!command.positionals.empty()) os << " " << command.positionals;
  if (!command.flags.empty()) os << " [flags]";
  os << "\n\n" << command.summary << "\n";
  if (command.flags.empty()) return os.str();
  os << "\nflags:\n";
  std::size_t width = 0;
  for (const FlagSpec& flag : command.flags) {
    std::size_t w = flag.name.size();
    if (!flag.value_name.empty()) w += 1 + flag.value_name.size();
    width = std::max(width, w);
  }
  for (const FlagSpec& flag : command.flags) {
    std::string head = flag.name;
    if (!flag.value_name.empty()) head += " " + flag.value_name;
    os << "  " << head << std::string(width - head.size() + 2, ' ')
       << flag.help << "\n";
  }
  return os.str();
}

int CommandRegistry::run(int argc, char** argv) const {
  if (argc < 2) {
    std::cerr << render_usage();
    return 2;
  }
  const std::string name = argv[1];
  if (name == "help" || name == "--help" || name == "-h") {
    if (argc >= 3) {
      if (const Command* command = find(argv[2])) {
        std::cout << render_help(*command);
        return 0;
      }
      std::cerr << "unknown command: " << argv[2] << "\n" << render_usage();
      return 2;
    }
    std::cout << render_usage();
    return 0;
  }
  const Command* command = find(name);
  if (command == nullptr) {
    std::cerr << "unknown command: " << name << "\n" << render_usage();
    return 2;
  }

  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      std::cout << render_help(*command);
      return 0;
    }
    const FlagSpec* spec = nullptr;
    for (const FlagSpec& flag : command->flags)
      if (flag.name == token) spec = &flag;
    if (spec != nullptr) {
      std::string value;
      if (!spec->value_name.empty()) {
        AM_REQUIRE(i + 1 < argc, token + " needs a value");
        value = argv[++i];
      }
      args.flags_.emplace_back(token, std::move(value));
    } else if (!token.empty() && token[0] == '-' && token != "-") {
      std::cerr << "unknown option: " << token << "\n"
                << render_help(*command);
      return 2;
    } else {
      args.positionals_.push_back(token);
    }
  }

  if (args.positionals_.size() < command->min_positional ||
      args.positionals_.size() > command->max_positional) {
    std::cerr << "expected " << command->positionals << "\n"
              << render_help(*command);
    return 2;
  }
  return command->run(args);
}

}  // namespace automap::cli
